"""The pluggable observer layer on the discrete-event engine.

Covers the observer contract (chronological callbacks, opt-in cost),
the built-in observers, and the fast path: a run with tracing disabled
must produce byte- and second-identical aggregate results, because
observers watch the dispatch — they never steer it.
"""

import json

import pytest

from repro.errors import OutOfMemoryError
from repro.hardware.gpu import GPU_PRESETS, GPUSpec
from repro.models import build_vgg16
from repro.analysis.runner import run_policy
from repro.runtime.engine import Engine, EngineOptions
from repro.runtime.instructions import (
    ComputeInstr,
    Program,
    SwapInInstr,
    SwapOutInstr,
    TensorRef,
)
from repro.runtime.observers import (
    ChromeTraceObserver,
    EngineObserver,
    MemoryTimelineObserver,
    TraceObserver,
)
from repro.units import MB, TFLOPS
from tests.conftest import BIG_GPU, TINY_GPU, build_tiny_cnn

#: 11 GB card shrunk to 3.5 GB: tight enough that SuperNeurons offloads
#: every conv output while both policies stay feasible at batch 32.
TIGHT_GPU = GPU_PRESETS["gtx_1080ti"].with_memory(3584 * MB)

SLOW_PCIE_GPU = GPUSpec(
    name="slow-pcie",
    memory_bytes=8 * MB,
    peak_flops=1.0 * TFLOPS,
    mem_bandwidth=100e9,
    pcie_bandwidth=float(MB),
    pcie_latency=0.0,
)


def _stall_program() -> Program:
    """4 MB swap-out frees memory a later-issued 4 MB compute needs."""
    a = TensorRef(0, 4 * MB, label="a")
    b = TensorRef(1, 4 * MB, label="b")
    h = TensorRef(2, 4 * MB, label="h")
    return Program(
        instructions=[
            ComputeInstr("c1", 1.0, outputs=(a,)),
            SwapOutInstr(a),
            ComputeInstr("c2", 1.0, outputs=(b,)),
            SwapInInstr(h),
        ],
        initial_host=[h],
        batch=1,
        name="stall_case",
    )


class TestFastPathIdentity:
    """Observers are read-only: disabling them changes nothing measured."""

    @pytest.mark.parametrize("policy", ["tsplit", "superneurons"])
    def test_untraced_run_matches_traced_run_on_vgg16(self, policy):
        graph = build_vgg16(32)
        traced = run_policy(graph, policy, TIGHT_GPU)
        untraced = run_policy(
            graph, policy, TIGHT_GPU,
            engine_options=EngineOptions(record_trace=False),
        )
        assert traced.feasible and untraced.feasible
        assert untraced.trace.iteration_time == traced.trace.iteration_time
        assert untraced.trace.peak_memory == traced.trace.peak_memory
        assert untraced.trace.memory_stall == traced.trace.memory_stall
        # The fast path really skipped the bookkeeping...
        assert untraced.trace.records == []
        assert untraced.trace.alloc_events == []
        # ...which the traced run performed.
        assert traced.trace.records


class TestObserverContract:
    def test_callbacks_fire_in_chronological_time(self):
        """alloc/free/instr-start events arrive in non-decreasing time."""

        class Recorder(EngineObserver):
            def __init__(self):
                self.event_times = []
                self.start_times = []

            def on_alloc(self, time, label, nbytes, used):
                self.event_times.append(time)

            def on_free(self, time, label, nbytes, used):
                self.event_times.append(time)

            def on_instr_start(self, label, kind, stream, time,
                               nbytes=0, tag=""):
                self.start_times.append(time)

        recorder = Recorder()
        graph = build_tiny_cnn(batch=16)
        result = run_policy(
            graph, "superneurons", BIG_GPU, observers=(recorder,),
        )
        assert result.feasible
        assert recorder.event_times
        assert recorder.event_times == sorted(recorder.event_times)
        assert recorder.start_times == sorted(recorder.start_times)

    def test_counts_match_the_trace(self):
        """One start and one end per executed instruction record."""

        class Counter(EngineObserver):
            def __init__(self):
                self.starts = 0
                self.ends = 0
                self.runs = 0

            def on_run_begin(self, program, gpu):
                self.runs += 1

            def on_instr_start(self, label, kind, stream, time,
                               nbytes=0, tag=""):
                self.starts += 1

            def on_instr_end(self, label, kind, stream, start, end,
                             nbytes=0, tag=""):
                self.ends += 1

        counter = Counter()
        graph = build_tiny_cnn(batch=16)
        result = run_policy(graph, "vdnn_all", BIG_GPU, observers=(counter,))
        assert result.feasible
        assert counter.runs == 1
        assert counter.starts == counter.ends == len(result.trace.records)

    def test_stall_callbacks_bracket_the_wait(self):
        """on_stall_begin/on_stall_end report the exact Eq. 3 stall."""
        stalls = []

        class StallWatcher(EngineObserver):
            def on_stall_end(self, time, label, stalled):
                stalls.append((label, time, stalled))

        Engine(SLOW_PCIE_GPU).execute(
            _stall_program(), observers=(StallWatcher(),),
        )
        assert len(stalls) == 1
        label, time, stalled = stalls[0]
        assert label == "c2"
        assert stalled == pytest.approx(4.0)
        assert time == pytest.approx(5.0)  # c2 proceeds when a's bytes land

    def test_on_oom_fires_before_the_raise(self):
        ooms = []

        class OomWatcher(EngineObserver):
            def on_oom(self, time, label, requested, available):
                ooms.append((label, requested, available))

        huge = TensorRef(0, 16 * MB, label="huge")
        program = Program(
            instructions=[ComputeInstr("big", 1.0, outputs=(huge,))],
            batch=1, name="oom_case",
        )
        with pytest.raises(OutOfMemoryError):
            Engine(TINY_GPU).execute(program, observers=(OomWatcher(),))
        assert len(ooms) == 1
        label, requested, available = ooms[0]
        assert label == "big"
        assert requested == 16 * MB
        assert available <= TINY_GPU.memory_bytes


class TestMemoryTimelineObserver:
    def test_peak_matches_engine(self):
        timeline = MemoryTimelineObserver()
        graph = build_tiny_cnn(batch=16)
        result = run_policy(
            graph, "superneurons", BIG_GPU, observers=(timeline,),
        )
        assert result.feasible
        assert timeline.peak == result.trace.peak_memory

    def test_curve_is_chronological_and_bounded(self):
        timeline = MemoryTimelineObserver()
        Engine(SLOW_PCIE_GPU).execute(
            _stall_program(), observers=(timeline,),
        )
        curve = timeline.curve()
        assert curve.shape[1] == 2
        times, used = curve[:, 0], curve[:, 1]
        assert list(times) == sorted(times)
        assert used.max() == timeline.peak == 8 * MB


class TestChromeTraceObserver:
    def test_export_is_valid_trace_event_json(self):
        chrome = ChromeTraceObserver()
        graph = build_tiny_cnn(batch=16)
        result = run_policy(
            graph, "superneurons", BIG_GPU, observers=(chrome,),
        )
        assert result.feasible
        payload = json.loads(chrome.to_json())
        events = payload["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        counters = [e for e in events if e["ph"] == "C"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(slices) == len(result.trace.records)
        assert counters and meta
        assert all(e["dur"] >= 0 for e in slices)
        track_names = {e["args"]["name"] for e in meta
                       if e["name"] == "thread_name"}
        assert {"compute", "d2h", "h2d", "cpu"} <= track_names

    def test_write_round_trips(self, tmp_path):
        chrome = ChromeTraceObserver()
        Engine(SLOW_PCIE_GPU).execute(
            _stall_program(), observers=(chrome,),
        )
        path = tmp_path / "trace.json"
        chrome.write(path)
        payload = json.loads(path.read_text())
        stall_slices = [
            e for e in payload["traceEvents"]
            if e["ph"] == "X" and e["cat"] == "stall"
        ]
        assert len(stall_slices) == 1
        assert stall_slices[0]["dur"] == pytest.approx(4.0 * 1e6)


class TestTraceObserverStandalone:
    def test_explicit_trace_observer_with_fast_path_engine(self):
        """A hand-attached TraceObserver collects even when the engine's
        implicit tracing is off."""
        tracer = TraceObserver()
        program = Program(
            instructions=[ComputeInstr(
                "a", 1.0, outputs=(TensorRef(0, MB, label="t0"),),
            )],
            batch=1, name="t",
        )
        trace = Engine(
            BIG_GPU, EngineOptions(record_trace=False),
        ).execute(program, observers=(tracer,))
        # The engine's own trace stays empty on the fast path...
        assert trace.records == []
        # ...but the explicit observer saw everything.
        assert [r.label for r in tracer.records] == ["a"]
        assert any(label == "t0" and n == MB
                   for _, label, n in tracer.alloc_events)


class TestChromeTracePids:
    def test_two_observers_use_distinct_pids(self):
        first, second = ChromeTraceObserver(), ChromeTraceObserver()
        for observer in (first, second):
            Engine(SLOW_PCIE_GPU).execute(
                _stall_program(), observers=(observer,),
            )
        first_pids = {e["pid"] for e in first.events}
        second_pids = {e["pid"] for e in second.events}
        assert first_pids.isdisjoint(second_pids)

    def test_repeat_runs_get_distinct_process_tracks(self):
        """A sweep funnelled through one observer must not collide."""
        observer = ChromeTraceObserver()
        for _ in range(2):
            Engine(SLOW_PCIE_GPU).execute(
                _stall_program(), observers=(observer,),
            )
        names = [e for e in observer.events
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert len(names) == 2
        assert names[0]["pid"] != names[1]["pid"]
        assert names[0]["args"]["name"] != names[1]["args"]["name"]

    def test_explicit_pid_is_pinned(self):
        observer = ChromeTraceObserver(pid=42, process_name="mine")
        for _ in range(2):
            Engine(SLOW_PCIE_GPU).execute(
                _stall_program(), observers=(observer,),
            )
        assert {e["pid"] for e in observer.events} == {42}
        names = [e["args"]["name"] for e in observer.events
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert names[0] == "mine"
        assert names[1] == "mine (run 2)"
