"""TensorSpec: shapes, split axes, micro-tensor geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.graph.tensor import (
    DIM_PARAMETER,
    DIM_SAMPLE,
    TensorKind,
    TensorSpec,
)
from repro.units import DType


def make_tensor(shape=(8, 4, 16, 16), **kwargs) -> TensorSpec:
    defaults = dict(
        tensor_id=0,
        name="t",
        shape=shape,
        split_axes={DIM_SAMPLE: 0, DIM_PARAMETER: 1},
    )
    defaults.update(kwargs)
    return TensorSpec(**defaults)


class TestBasics:
    def test_numel(self):
        assert make_tensor().numel == 8 * 4 * 16 * 16

    def test_size_bytes_fp32(self):
        assert make_tensor().size_bytes == 8 * 4 * 16 * 16 * 4

    def test_size_bytes_int64(self):
        t = make_tensor(shape=(4, 4), dtype=DType.INT64, split_axes={})
        assert t.size_bytes == 16 * 8

    def test_nonpositive_dim_rejected(self):
        with pytest.raises(ValueError):
            make_tensor(shape=(0, 3))

    def test_split_axis_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            make_tensor(shape=(4,), split_axes={DIM_SAMPLE: 3})


class TestKinds:
    def test_gradient_flags(self):
        assert TensorKind.GRAD_PARAM.is_gradient
        assert TensorKind.GRAD_ACTIVATION.is_gradient
        assert not TensorKind.ACTIVATION.is_gradient

    def test_persistent_flags(self):
        assert TensorKind.PARAM.is_persistent
        assert TensorKind.OPTIMIZER_STATE.is_persistent
        assert not TensorKind.ACTIVATION.is_persistent


class TestSplitGeometry:
    def test_splittable_dims(self):
        assert set(make_tensor().splittable_dims()) == {
            DIM_SAMPLE, DIM_PARAMETER,
        }

    def test_axis_for_known_dim(self):
        assert make_tensor().axis_for(DIM_PARAMETER) == 1

    def test_axis_for_unknown_dim(self):
        with pytest.raises(KeyError):
            make_tensor().axis_for("bogus")

    def test_even_micro_shape(self):
        t = make_tensor()
        assert t.micro_shape(DIM_SAMPLE, 4, 0) == (2, 4, 16, 16)

    def test_uneven_micro_shapes_follow_array_split(self):
        t = make_tensor(shape=(7, 4), split_axes={DIM_SAMPLE: 0})
        parts = [t.micro_shape(DIM_SAMPLE, 3, i)[0] for i in range(3)]
        assert parts == [3, 2, 2]

    def test_micro_index_out_of_range(self):
        with pytest.raises(ValueError):
            make_tensor().micro_shape(DIM_SAMPLE, 2, 5)

    def test_split_wider_than_extent_rejected(self):
        t = make_tensor(shape=(2, 4), split_axes={DIM_SAMPLE: 0})
        with pytest.raises(ValueError):
            t.micro_shape(DIM_SAMPLE, 3, 0)

    def test_micro_sizes_sum_to_whole(self):
        t = make_tensor(shape=(10, 6), split_axes={DIM_SAMPLE: 0})
        total = sum(t.micro_size_bytes(DIM_SAMPLE, 4, i) for i in range(4))
        assert total == t.size_bytes


@given(
    extent=st.integers(min_value=1, max_value=64),
    other=st.integers(min_value=1, max_value=8),
    p_num=st.integers(min_value=1, max_value=64),
)
def test_micro_partition_properties(extent, other, p_num):
    """Splitting always tiles the tensor exactly, never loses elements."""
    if p_num > extent:
        return
    t = TensorSpec(
        tensor_id=0, name="t", shape=(extent, other),
        split_axes={DIM_SAMPLE: 0},
    )
    shapes = [t.micro_shape(DIM_SAMPLE, p_num, i) for i in range(p_num)]
    # Partition covers the axis exactly.
    assert sum(s[0] for s in shapes) == extent
    # Sizes are balanced within one slice.
    extents = [s[0] for s in shapes]
    assert max(extents) - min(extents) <= 1
    # Non-split axes untouched.
    assert all(s[1] == other for s in shapes)
    # Byte sizes add up.
    total = sum(t.micro_size_bytes(DIM_SAMPLE, p_num, i) for i in range(p_num))
    assert total == t.size_bytes
