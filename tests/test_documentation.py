"""Documentation quality gates.

A reproduction is only usable if its public surface is documented: every
module, public class and public function in ``repro`` must carry a
docstring, and the repo-level documents must exist and mention what they
promise.
"""

import ast
import pathlib

SRC = pathlib.Path("src/repro")


def iter_module_sources():
    for path in sorted(SRC.rglob("*.py")):
        yield path, ast.parse(path.read_text())


class TestDocstrings:
    def test_every_module_documented(self):
        missing = [
            str(path) for path, tree in iter_module_sources()
            if not ast.get_docstring(tree)
        ]
        assert missing == []

    def test_every_public_class_documented(self):
        missing = []
        for path, tree in iter_module_sources():
            for node in ast.walk(tree):
                if isinstance(node, ast.ClassDef):
                    if node.name.startswith("_"):
                        continue
                    if not ast.get_docstring(node):
                        missing.append(f"{path}:{node.name}")
        assert missing == []

    def test_every_public_function_documented(self):
        missing = []
        for path, tree in iter_module_sources():
            scopes = [tree.body]
            for node in ast.walk(tree):
                if isinstance(node, ast.ClassDef):
                    scopes.append(node.body)
            for body in scopes:
                for node in body:
                    if not isinstance(
                        node, (ast.FunctionDef, ast.AsyncFunctionDef),
                    ):
                        continue
                    if node.name.startswith("_"):
                        continue
                    if len(node.body) <= 1:
                        # Trivial accessor (single return): the name and
                        # the class docstring carry the meaning.
                        continue
                    if not ast.get_docstring(node):
                        missing.append(f"{path}:{node.name}")
        assert missing == [], missing[:10]


class TestRepoDocuments:
    def test_design_md_exists_and_covers_experiments(self):
        text = pathlib.Path("DESIGN.md").read_text()
        for token in ("Table IV", "Fig. 12", "Algorithm 2", "sTensor"):
            assert token in text

    def test_experiments_md_covers_every_bench(self):
        text = pathlib.Path("EXPERIMENTS.md").read_text()
        for path in pathlib.Path("benchmarks").glob("bench_*.py"):
            assert path.name in text or path.stem in text, path.name

    def test_readme_quickstart_is_runnable_code(self):
        text = pathlib.Path("README.md").read_text()
        assert "run_policy" in text
        assert "pytest benchmarks/ --benchmark-only" in text

    def test_every_bench_maps_to_paper_artifact(self):
        """Each bench file names the table/figure it regenerates."""
        for path in pathlib.Path("benchmarks").glob("bench_*.py"):
            head = path.read_text()[:400].lower()
            assert any(
                token in head
                for token in ("table", "figure", "ablation", "extension")
            ), path.name
