"""Sweep fan-out backends: serial / thread / process equivalence."""

import os
import pickle
import threading

import pytest

from repro.analysis import parallel as parallel_mod
from repro.analysis.footprint import memory_requirement_grid
from repro.analysis.oversubscription import oversubscription_sweep
from repro.analysis.parallel import (
    BACKENDS,
    MAX_WORKERS_ENV,
    _check_picklable,
    active_worker_budget,
    parallel_map,
    resolve_backend,
    resolve_workers,
    worker_budget,
)
from repro.analysis.scaling import scale_table
from repro.analysis.sweep_tasks import (
    ThroughputTaskSpec,
    canonical_point_bytes,
    resolve_sweep_cache,
    run_throughput_point,
    worker_cache,
)
from repro.analysis.throughput import throughput_sweep
from repro.hardware.gpu import GPU_PRESETS
from repro.pipeline import CompileCache
from tests.conftest import BIG_GPU, build_tiny_cnn

GPU = GPU_PRESETS["gtx_1080ti"]


class TestResolveWorkers:
    def test_serial_settings(self):
        assert resolve_workers(None, 10) == 1
        assert resolve_workers(False, 10) == 1
        assert resolve_workers(0, 10) == 1
        assert resolve_workers(1, 10) == 1

    def test_single_item_is_serial(self):
        assert resolve_workers(8, 1) == 1

    def test_integer_caps_at_item_count(self):
        assert resolve_workers(4, 2) == 2
        assert resolve_workers(2, 100) == 2

    def test_true_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv(MAX_WORKERS_ENV, raising=False)
        assert resolve_workers(True, 10_000) == (os.cpu_count() or 4)

    def test_env_cap_applies(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "2")
        assert resolve_workers(True, 100) == min(2, os.cpu_count() or 4)
        assert resolve_workers(16, 100) == 2

    def test_invalid_env_cap_ignored(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "not-a-number")
        assert resolve_workers(4, 100) == 4
        monkeypatch.setenv(MAX_WORKERS_ENV, "0")
        assert resolve_workers(4, 100) == 4


class TestWorkerBudget:
    """Regression: ``REPRO_MAX_WORKERS`` is a machine-wide budget.

    Pre-fix, N concurrent sweeps (e.g. serve requests fanning out with
    ``parallel=True``) each resolved the full cap and oversubscribed
    N × cap workers; :func:`worker_budget` scopes each caller's share.
    """

    def test_budget_context_caps_resolution(self, monkeypatch):
        monkeypatch.delenv(MAX_WORKERS_ENV, raising=False)
        with worker_budget(2):
            assert resolve_workers(16, 100) == 2
            assert resolve_workers(True, 100) == \
                min(2, os.cpu_count() or 4)
        assert resolve_workers(16, 100) == 16  # scope exited

    def test_explicit_budget_argument(self, monkeypatch):
        monkeypatch.delenv(MAX_WORKERS_ENV, raising=False)
        assert resolve_workers(8, 100, budget=3) == 3
        assert resolve_workers(2, 100, budget=8) == 2  # never raises
        assert resolve_workers(8, 100, budget=0) == 1  # floor of one

    def test_budgets_compose_by_shrinking(self):
        assert active_worker_budget() is None
        with worker_budget(4):
            with worker_budget(8):  # a larger inner scope cannot loosen
                assert active_worker_budget() == 4
            with worker_budget(2):
                assert active_worker_budget() == 2
            assert active_worker_budget() == 4
        assert active_worker_budget() is None

    def test_none_budget_is_a_noop_scope(self):
        with worker_budget(None):
            assert active_worker_budget() is None

    def test_concurrent_sweeps_stay_within_machine_cap(self, monkeypatch):
        """N budgeted sweeps collectively never exceed the env cap."""
        monkeypatch.setenv(MAX_WORKERS_ENV, "4")
        recorded = []
        recorded_lock = threading.Lock()
        real_pool = parallel_mod.ThreadPoolExecutor

        class RecordingPool(real_pool):
            """Captures each fan-out's resolved worker count."""

            def __init__(self, max_workers=None, **kwargs):
                with recorded_lock:
                    recorded.append(max_workers)
                super().__init__(max_workers=max_workers, **kwargs)

        monkeypatch.setattr(
            parallel_mod, "ThreadPoolExecutor", RecordingPool,
        )
        slots = 2
        share = 4 // slots
        barrier = threading.Barrier(slots)

        def one_sweep():
            barrier.wait()  # both sweeps genuinely concurrent
            with worker_budget(share):
                # parallel=4 asks for more than the share on purpose —
                # the budget must be what actually bounds the pool.
                throughput_sweep(
                    "vgg16", ["base"], [16, 32], GPU,
                    parallel=4, backend="thread",
                )

        threads = [
            threading.Thread(target=one_sweep) for _ in range(slots)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(recorded) == slots
        assert all(workers == share for workers in recorded)
        assert sum(recorded) <= 4  # the cap holds machine-wide


class TestResolveBackend:
    def test_default_tracks_parallel_knob(self):
        assert resolve_backend(None, None) == "serial"
        assert resolve_backend(None, 4) == "thread"
        assert resolve_backend(None, True) == "thread"

    def test_explicit_backend_wins(self):
        assert resolve_backend("process", None) == "process"
        assert resolve_backend("serial", 8) == "serial"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("greenlet", None)

    def test_backends_tuple(self):
        assert BACKENDS == ("serial", "thread", "process")


class TestParallelMap:
    def test_order_preserved_all_backends(self):
        expected = [x * x for x in range(20)]
        for backend in ("serial", "thread"):
            assert parallel_map(
                lambda x: x * x, range(20), 4, backend=backend,
            ) == expected

    def test_process_backend_rejects_closures(self):
        captured = 3
        with pytest.raises(ValueError, match="picklable"):
            parallel_map(
                lambda x: x * captured, range(4), 2, backend="process",
            )

    def test_check_picklable_passes_module_level(self):
        _check_picklable(
            run_throughput_point,
            [ThroughputTaskSpec(
                model="vgg16", policy="base", batch=8, gpu=GPU,
            )],
        )

    def test_probe_names_failing_index_and_type(self):
        """Regression: a heterogeneous spec list with one stray closure
        used to pass a first-item-only probe and die inside the pool."""
        specs = [
            ThroughputTaskSpec(
                model="vgg16", policy="base", batch=8, gpu=GPU,
            ),
            lambda: None,  # the stray unpicklable entry, *not* first
        ]
        with pytest.raises(ValueError, match="item 1 of type function"):
            _check_picklable(run_throughput_point, specs)

    def test_probe_is_per_type_not_per_item(self, monkeypatch):
        calls = []
        real_dumps = pickle.dumps

        def counting_dumps(obj, *args, **kwargs):
            calls.append(type(obj).__name__)
            return real_dumps(obj, *args, **kwargs)

        monkeypatch.setattr(
            parallel_mod.pickle, "dumps", counting_dumps,
        )
        _check_picklable(len, list(range(100)) + ["one string"])
        # One probe for the function, one per distinct item type.
        assert len(calls) == 3
        assert calls.count("int") == 1 and calls.count("str") == 1


class TestSweepCacheResolution:
    def test_process_backend_rejects_in_memory_cache(self):
        with pytest.raises(ValueError, match="cache_dir"):
            resolve_sweep_cache("process", CompileCache(), None)

    def test_process_backend_returns_none(self):
        assert resolve_sweep_cache("process", None, None) is None

    def test_thread_backend_passes_cache_through(self):
        cache = CompileCache()
        assert resolve_sweep_cache("thread", cache, None) is cache

    def test_serial_backend_builds_disk_cache(self, tmp_path):
        cache = resolve_sweep_cache("serial", None, str(tmp_path))
        assert cache is not None and cache.disk_dir is not None

    def test_worker_cache_is_per_directory_singleton(self, tmp_path):
        a = worker_cache(str(tmp_path))
        b = worker_cache(str(tmp_path))
        c = worker_cache(None)
        assert a is b and a is not c


class TestBackendEquivalence:
    """The acceptance bar: byte-identical point lists per backend."""

    POLICIES = ["base", "tsplit"]
    BATCHES = [64, 128]

    def _sweep(self, backend, **kwargs):
        return throughput_sweep(
            "vgg16", self.POLICIES, self.BATCHES, GPU,
            parallel=2, backend=backend, **kwargs,
        )

    def test_three_backends_byte_identical(self):
        serial = self._sweep("serial")
        thread = self._sweep("thread")
        process = self._sweep("process")
        assert (
            canonical_point_bytes(serial)
            == canonical_point_bytes(thread)
            == canonical_point_bytes(process)
        )
        assert len(serial) == len(self.POLICIES) * len(self.BATCHES)

    def test_process_backend_with_disk_cache_dir(self, tmp_path):
        first = self._sweep("process", cache_dir=str(tmp_path))
        second = self._sweep("serial", cache_dir=str(tmp_path))
        assert canonical_point_bytes(first) == canonical_point_bytes(second)

    def test_process_backend_rejects_shared_cache(self):
        with pytest.raises(ValueError, match="in-memory"):
            self._sweep("process", cache=CompileCache())

    def test_infeasible_points_identical_too(self):
        tiny = GPU.with_memory(32 * 2**20)
        serial = throughput_sweep(
            "vgg16", ["base"], [256], tiny, backend="serial",
        )
        process = throughput_sweep(
            "vgg16", ["base"], [256], tiny, parallel=2, backend="process",
        )
        assert not serial[0].feasible
        assert canonical_point_bytes(serial) == canonical_point_bytes(process)


class TestOtherSweepsAcceptBackend:
    def test_scale_table_backends_agree(self):
        gpu = BIG_GPU.with_memory(4 * 1024 * 1024)
        serial = scale_table(
            [build_tiny_cnn], ["base", "vdnn_all"], gpu,
            axis="sample", backend="serial", cap=64,
        )
        process = scale_table(
            [build_tiny_cnn], ["base", "vdnn_all"], gpu,
            axis="sample", parallel=2, backend="process", cap=64,
        )
        assert serial == process
        assert serial[build_tiny_cnn]["base"] > 0

    def test_oversubscription_backends_agree(self):
        graph = build_tiny_cnn(batch=16)
        serial = oversubscription_sweep(
            graph, ["base", "vdnn_all"], BIG_GPU,
            ratios=(1.0, 2.0), backend="serial",
        )
        process = oversubscription_sweep(
            graph, ["base", "vdnn_all"], BIG_GPU,
            ratios=(1.0, 2.0), parallel=2, backend="process",
        )
        assert canonical_point_bytes(serial) == canonical_point_bytes(process)

    def test_footprint_grid_backends_agree(self):
        serial = memory_requirement_grid(
            "vgg16", [16, 32], [1.0], backend="serial",
        )
        process = memory_requirement_grid(
            "vgg16", [16, 32], [1.0], parallel=2, backend="process",
        )
        assert serial == process
        assert all(peak > 0 for peak in serial.values())
