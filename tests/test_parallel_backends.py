"""Sweep fan-out backends: serial / thread / process equivalence."""

import os

import pytest

from repro.analysis.footprint import memory_requirement_grid
from repro.analysis.oversubscription import oversubscription_sweep
from repro.analysis.parallel import (
    BACKENDS,
    MAX_WORKERS_ENV,
    _check_picklable,
    parallel_map,
    resolve_backend,
    resolve_workers,
)
from repro.analysis.scaling import scale_table
from repro.analysis.sweep_tasks import (
    ThroughputTaskSpec,
    canonical_point_bytes,
    resolve_sweep_cache,
    run_throughput_point,
    worker_cache,
)
from repro.analysis.throughput import throughput_sweep
from repro.hardware.gpu import GPU_PRESETS
from repro.pipeline import CompileCache
from tests.conftest import BIG_GPU, build_tiny_cnn

GPU = GPU_PRESETS["gtx_1080ti"]


class TestResolveWorkers:
    def test_serial_settings(self):
        assert resolve_workers(None, 10) == 1
        assert resolve_workers(False, 10) == 1
        assert resolve_workers(0, 10) == 1
        assert resolve_workers(1, 10) == 1

    def test_single_item_is_serial(self):
        assert resolve_workers(8, 1) == 1

    def test_integer_caps_at_item_count(self):
        assert resolve_workers(4, 2) == 2
        assert resolve_workers(2, 100) == 2

    def test_true_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv(MAX_WORKERS_ENV, raising=False)
        assert resolve_workers(True, 10_000) == (os.cpu_count() or 4)

    def test_env_cap_applies(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "2")
        assert resolve_workers(True, 100) == min(2, os.cpu_count() or 4)
        assert resolve_workers(16, 100) == 2

    def test_invalid_env_cap_ignored(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "not-a-number")
        assert resolve_workers(4, 100) == 4
        monkeypatch.setenv(MAX_WORKERS_ENV, "0")
        assert resolve_workers(4, 100) == 4


class TestResolveBackend:
    def test_default_tracks_parallel_knob(self):
        assert resolve_backend(None, None) == "serial"
        assert resolve_backend(None, 4) == "thread"
        assert resolve_backend(None, True) == "thread"

    def test_explicit_backend_wins(self):
        assert resolve_backend("process", None) == "process"
        assert resolve_backend("serial", 8) == "serial"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("greenlet", None)

    def test_backends_tuple(self):
        assert BACKENDS == ("serial", "thread", "process")


class TestParallelMap:
    def test_order_preserved_all_backends(self):
        expected = [x * x for x in range(20)]
        for backend in ("serial", "thread"):
            assert parallel_map(
                lambda x: x * x, range(20), 4, backend=backend,
            ) == expected

    def test_process_backend_rejects_closures(self):
        captured = 3
        with pytest.raises(ValueError, match="picklable"):
            parallel_map(
                lambda x: x * captured, range(4), 2, backend="process",
            )

    def test_check_picklable_passes_module_level(self):
        _check_picklable(
            run_throughput_point,
            [ThroughputTaskSpec(
                model="vgg16", policy="base", batch=8, gpu=GPU,
            )],
        )


class TestSweepCacheResolution:
    def test_process_backend_rejects_in_memory_cache(self):
        with pytest.raises(ValueError, match="cache_dir"):
            resolve_sweep_cache("process", CompileCache(), None)

    def test_process_backend_returns_none(self):
        assert resolve_sweep_cache("process", None, None) is None

    def test_thread_backend_passes_cache_through(self):
        cache = CompileCache()
        assert resolve_sweep_cache("thread", cache, None) is cache

    def test_serial_backend_builds_disk_cache(self, tmp_path):
        cache = resolve_sweep_cache("serial", None, str(tmp_path))
        assert cache is not None and cache.disk_dir is not None

    def test_worker_cache_is_per_directory_singleton(self, tmp_path):
        a = worker_cache(str(tmp_path))
        b = worker_cache(str(tmp_path))
        c = worker_cache(None)
        assert a is b and a is not c


class TestBackendEquivalence:
    """The acceptance bar: byte-identical point lists per backend."""

    POLICIES = ["base", "tsplit"]
    BATCHES = [64, 128]

    def _sweep(self, backend, **kwargs):
        return throughput_sweep(
            "vgg16", self.POLICIES, self.BATCHES, GPU,
            parallel=2, backend=backend, **kwargs,
        )

    def test_three_backends_byte_identical(self):
        serial = self._sweep("serial")
        thread = self._sweep("thread")
        process = self._sweep("process")
        assert (
            canonical_point_bytes(serial)
            == canonical_point_bytes(thread)
            == canonical_point_bytes(process)
        )
        assert len(serial) == len(self.POLICIES) * len(self.BATCHES)

    def test_process_backend_with_disk_cache_dir(self, tmp_path):
        first = self._sweep("process", cache_dir=str(tmp_path))
        second = self._sweep("serial", cache_dir=str(tmp_path))
        assert canonical_point_bytes(first) == canonical_point_bytes(second)

    def test_process_backend_rejects_shared_cache(self):
        with pytest.raises(ValueError, match="in-memory"):
            self._sweep("process", cache=CompileCache())

    def test_infeasible_points_identical_too(self):
        tiny = GPU.with_memory(32 * 2**20)
        serial = throughput_sweep(
            "vgg16", ["base"], [256], tiny, backend="serial",
        )
        process = throughput_sweep(
            "vgg16", ["base"], [256], tiny, parallel=2, backend="process",
        )
        assert not serial[0].feasible
        assert canonical_point_bytes(serial) == canonical_point_bytes(process)


class TestOtherSweepsAcceptBackend:
    def test_scale_table_backends_agree(self):
        gpu = BIG_GPU.with_memory(4 * 1024 * 1024)
        serial = scale_table(
            [build_tiny_cnn], ["base", "vdnn_all"], gpu,
            axis="sample", backend="serial", cap=64,
        )
        process = scale_table(
            [build_tiny_cnn], ["base", "vdnn_all"], gpu,
            axis="sample", parallel=2, backend="process", cap=64,
        )
        assert serial == process
        assert serial[build_tiny_cnn]["base"] > 0

    def test_oversubscription_backends_agree(self):
        graph = build_tiny_cnn(batch=16)
        serial = oversubscription_sweep(
            graph, ["base", "vdnn_all"], BIG_GPU,
            ratios=(1.0, 2.0), backend="serial",
        )
        process = oversubscription_sweep(
            graph, ["base", "vdnn_all"], BIG_GPU,
            ratios=(1.0, 2.0), parallel=2, backend="process",
        )
        assert canonical_point_bytes(serial) == canonical_point_bytes(process)

    def test_footprint_grid_backends_agree(self):
        serial = memory_requirement_grid(
            "vgg16", [16, 32], [1.0], backend="serial",
        )
        process = memory_requirement_grid(
            "vgg16", [16, 32], [1.0], parallel=2, backend="process",
        )
        assert serial == process
        assert all(peak > 0 for peak in serial.values())
