"""Memscope: shadow-pool provenance, timelines, and OOM forensics.

Covers the core contracts: the occupancy counter track agrees with the
engine's ledger at every event, plans/traces are byte-identical with
memscope attached or not, the postmortem classifies capacity vs
fragmentation and proposes a minimal eviction set that provably admits
the failed request, and digests are identical across sweep backends and
around mid-run attach/detach.
"""

import dataclasses
import json

from repro.analysis.memscope import (
    PERSISTENT_LABEL,
    AddressSpaceTimeline,
    MemscopeObserver,
    analyze_failed_alloc,
    eviction_admits,
    minimal_eviction_set,
    run_memscope,
    run_memscope_cluster,
    tensor_residency,
)
from repro.analysis.parallel import parallel_map
from repro.analysis.runner import run_policy
from repro.analysis.sweep_tasks import MemscopeTaskSpec, run_memscope_point
from repro.faults import FaultConfig
from repro.hardware.cluster import ClusterSpec
from repro.hardware.memory_pool import ALIGNMENT, MemoryPool, PoolRecorder
from repro.pipeline.compile import compile_run
from repro.runtime.engine import Engine, EngineOptions
from repro.runtime.observers import MemoryTimelineObserver
from repro.units import MB
from tests.conftest import BIG_GPU, build_tiny_cnn


def trace_bytes(trace) -> bytes:
    """Canonical byte encoding of every trace field."""
    return json.dumps(
        dataclasses.asdict(trace), sort_keys=True, default=str,
    ).encode()


def shrunk(gpu, capacity: int):
    return dataclasses.replace(
        gpu, name="shrunk-gpu", memory_bytes=int(capacity),
    )


def recorded_pool(capacity: int, strategy: str = "best_fit"):
    pool = MemoryPool(capacity=capacity, strategy=strategy)
    pool.recorder = PoolRecorder()
    return pool


class TestLedgerAgreement:
    """The exported counter track is the ledger, sample for sample."""

    def setup_method(self):
        self.graph = build_tiny_cnn(batch=32, image=32)
        self.scope = MemscopeObserver()
        self.timeline_obs = MemoryTimelineObserver()
        self.result = run_policy(
            self.graph, "vdnn_all", BIG_GPU,
            observers=(self.scope, self.timeline_obs),
        )
        assert self.result.feasible

    def test_occupancy_equals_memory_timeline_at_every_event(self):
        assert self.scope.occupancy == self.timeline_obs.points

    def test_peak_occupancy_equals_ledger_peak(self):
        timeline = self.scope.timeline()
        assert timeline.peak_occupancy == self.result.trace.peak_memory

    def test_chrome_counter_track_carries_ledger_values(self):
        events = self.scope.timeline().to_chrome_events()
        counter = [
            e for e in events
            if e["ph"] == "C" and e["name"] == "device memory (ledger)"
        ]
        assert [
            (e["ts"], e["args"]["value"]) for e in counter
        ] == [(t * 1e6, used) for t, used in self.scope.occupancy]

    def test_every_alloc_has_an_address_range(self):
        timeline = self.scope.timeline()
        assert not self.scope.placement_failures
        for record in timeline.records:
            assert 0 <= record.offset
            assert record.offset + record.size <= timeline.capacity

    def test_instruction_attribution(self):
        """Records name the instruction that requested them."""
        instrs = {
            r.instr for r in self.scope.timeline().records
            if r.label != PERSISTENT_LABEL
        }
        assert instrs and all(instrs)


class TestByteIdentity:
    """Memscope watches; it never steers the execution."""

    def test_trace_identical_with_and_without_observer(self):
        graph = build_tiny_cnn(batch=32, image=32)
        bare = run_policy(graph, "vdnn_all", BIG_GPU)
        scoped = run_policy(
            graph, "vdnn_all", BIG_GPU, observers=(MemscopeObserver(),),
        )
        assert trace_bytes(bare.trace) == trace_bytes(scoped.trace)

    def test_plan_identical_with_and_without_observer(self):
        from repro.pipeline.cache import fingerprint

        graph = build_tiny_cnn(batch=32, image=32)
        bare = compile_run(graph, "tsplit", BIG_GPU)
        scoped = compile_run(
            graph, "tsplit", BIG_GPU, observers=(MemscopeObserver(),),
        )
        assert fingerprint(bare.lowered.program) == \
            fingerprint(scoped.lowered.program)


class TestTimeline:
    def setup_method(self):
        graph = build_tiny_cnn(batch=16, image=32)
        self.scope = MemscopeObserver()
        self.result = run_policy(
            graph, "vdnn_all", BIG_GPU, observers=(self.scope,),
        )
        assert self.result.feasible
        self.timeline = self.scope.timeline()

    def test_heatmap_shape_and_bounds(self):
        grid = self.timeline.heatmap(time_bins=16, addr_bins=8)
        assert len(grid["cells"]) == 8
        assert all(len(row) == 16 for row in grid["cells"])
        assert all(
            0.0 <= cell <= 1.0 for row in grid["cells"] for cell in row
        )
        # The persistent region keeps the bottom band occupied all run.
        assert min(grid["cells"][0]) > 0.0

    def test_from_trace_rebuilds_the_same_rectangles(self):
        rebuilt = AddressSpaceTimeline.from_trace(
            self.result.trace, BIG_GPU.memory_bytes,
        )
        live = [
            (r.label, r.offset, r.size, r.birth, r.death)
            for r in self.timeline.records
        ]
        offline = [
            (r.label, r.offset, r.size, r.birth, r.death)
            for r in rebuilt.records
        ]
        assert live == offline

    def test_digest_is_deterministic(self):
        assert self.timeline.digest() == self.scope.timeline().digest()

    def test_merged_trace_has_both_sources(self):
        from repro.telemetry.chrome import merge_traces

        merged = merge_traces(
            self.timeline.to_chrome_events(),
            names=["memscope address space"],
        )
        names = {
            e["args"]["name"] for e in merged["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert "memscope address space" in names


class TestResidency:
    def test_swap_counts_and_pcie_bytes(self):
        graph = build_tiny_cnn(batch=32, image=32)
        scope = MemscopeObserver()
        result = run_policy(graph, "vdnn_all", BIG_GPU, observers=(scope,))
        assert result.feasible
        rows = {row.label: row for row in scope.residency()}
        assert PERSISTENT_LABEL in rows
        swapped = [r for r in rows.values() if r.evictions > 0]
        assert swapped, "vdnn_all must swap activations"
        for row in swapped:
            assert row.pcie_bytes > 0
        # Not every evicted tensor comes back (some die on the host),
        # but backward needs most activations re-materialised.
        assert any(row.prefetches >= 1 for row in swapped)

    def test_stall_attribution_sums_to_total_stall(self):
        graph = build_tiny_cnn(batch=32, image=32)
        scope = MemscopeObserver()
        trace = None
        # Shrink until swaps stall: capacity a little over the vdnn peak.
        clean = run_policy(graph, "vdnn_all", BIG_GPU)
        for frac in (0.9, 0.8, 0.7):
            gpu = shrunk(BIG_GPU, clean.trace.peak_memory * frac)
            scope = MemscopeObserver()
            result = run_policy(graph, "vdnn_all", gpu, observers=(scope,))
            if result.feasible and result.trace.memory_stall > 0:
                trace = result.trace
                break
        if trace is None:  # pragma: no cover - model-dependent guard
            import pytest

            pytest.skip("could not provoke a memory stall")
        total = sum(scope.stall_by_label.values())
        assert abs(total - scope.stall_time) < 1e-9
        assert abs(scope.stall_time - trace.memory_stall) < 1e-9

    def test_residency_time_bounded_by_run(self):
        rows = tensor_residency(
            [], 1.0,
        )
        assert rows == []


class TestPostmortem:
    """Pool-level OOM forensics with constructed address spaces."""

    def _fragmented_pool(self):
        """5x 2MB allocs fill 10MB; freeing slots 0 and 2 leaves two
        2MB holes fenced by live neighbours."""
        pool = recorded_pool(10 * MB)
        handles = [
            pool.alloc(2 * MB, label=name)
            for name in ("a", "b", "c", "d", "e")
        ]
        pool.free(handles[0])
        pool.free(handles[2])
        return pool, handles

    def test_fragmentation_classified_and_blamed(self):
        pool, _ = self._fragmented_pool()
        post = analyze_failed_alloc(
            pool, 3 * MB, label="victim", recorder=pool.recorder,
        )
        assert post.classification == "fragmentation"
        assert post.free_bytes == 4 * MB
        assert post.largest_free_block == 2 * MB
        # Both holes are fenced by b and d (and the end hole doesn't
        # exist; e runs to capacity).
        assert "b" in post.blockers and "d" in post.blockers

    def test_capacity_classified_when_free_is_short(self):
        pool, _ = self._fragmented_pool()
        post = analyze_failed_alloc(pool, 5 * MB, label="victim")
        assert post.classification == "capacity"

    def test_over_capacity_request_has_no_eviction_set(self):
        pool, _ = self._fragmented_pool()
        post = analyze_failed_alloc(pool, 20 * MB, label="victim")
        assert post.classification == "capacity"
        assert post.eviction_set == ()

    def test_minimal_eviction_set_admits_the_request(self):
        pool, _ = self._fragmented_pool()
        victims = minimal_eviction_set(
            pool, 3 * MB, recorder=pool.recorder,
        )
        # One eviction suffices: freeing b merges [0,6MB).
        assert len(victims) == 1
        assert victims[0].label == "b"
        assert eviction_admits(pool, victims, 3 * MB)
        # Replay it for real: free the set, and the alloc succeeds.
        for victim in victims:
            pool.free(victim.handle)
        assert pool.alloc(3 * MB, label="victim") >= 0

    def test_protected_labels_are_never_evicted(self):
        pool = recorded_pool(12 * MB)
        pool.alloc(6 * MB, label=PERSISTENT_LABEL)
        x = pool.alloc(2 * MB, label="x")
        pool.alloc(2 * MB, label="y")
        z = pool.alloc(2 * MB, label="z")
        pool.free(x)
        pool.free(z)
        post = analyze_failed_alloc(
            pool, 4 * MB, label="victim", recorder=pool.recorder,
        )
        assert post.classification == "fragmentation"
        assert [c.label for c in post.eviction_set] == ["y"]

    def test_eviction_set_deterministic(self):
        pool, _ = self._fragmented_pool()
        a = minimal_eviction_set(pool, 3 * MB, recorder=pool.recorder)
        b = minimal_eviction_set(pool, 3 * MB, recorder=pool.recorder)
        assert a == b

    def test_alignment_rounds_requests_up(self):
        pool = recorded_pool(10 * ALIGNMENT)
        pool.alloc(ALIGNMENT * 9 + 1, label="big")  # rounds to 10 blocks
        post = analyze_failed_alloc(pool, 1, label="one-byte")
        assert post.aligned == ALIGNMENT
        assert post.classification == "capacity"


class TestEngineOOM:
    """Postmortems for engine-terminal (ledger) OOMs."""

    def setup_method(self):
        self.graph = build_tiny_cnn(batch=32, image=32)
        clean = run_policy(self.graph, "base", BIG_GPU)
        assert clean.feasible
        self.peak = clean.trace.peak_memory
        self.persistent = clean.trace.persistent_bytes

    def test_capacity_oom_is_classified_capacity(self):
        gpu = shrunk(BIG_GPU, (self.peak + self.persistent) // 2)
        scope = MemscopeObserver()
        result = run_policy(self.graph, "base", gpu, observers=(scope,))
        assert not result.feasible
        assert scope.postmortem is not None
        assert scope.placement_failures == []
        assert scope.postmortem.classification == "capacity"
        assert scope.postmortem.requested > 0

    def test_fault_induced_oom_with_eviction_disabled(self):
        gpu = shrunk(BIG_GPU, int(self.peak * 0.9))
        scope = MemscopeObserver()
        run = compile_run(
            self.graph, "base", gpu,
            faults=FaultConfig(seed=0, emergency_eviction=False),
            observers=(scope,),
        )
        assert not run.result.feasible
        assert scope.postmortem is not None
        assert scope.postmortem.classification in (
            "capacity", "fragmentation",
        )
        # The report survives the failed run and carries the forensics.
        report = scope.report(feasible=False, failure=run.result.failure)
        assert report.postmortem is scope.postmortem
        assert "OOM postmortem" in report.to_markdown()

    def test_infeasible_run_report_through_driver(self):
        run = run_memscope(
            self.graph, "base", shrunk(BIG_GPU, int(self.peak * 0.9)),
            batch=32,
        )
        assert not run.report.feasible
        assert run.report.postmortem is not None


class TestMidRunAttachDetach:
    """Attaching/detaching memscope mid-run neither perturbs the run
    nor breaks the observer."""

    def _compiled_program(self):
        run = compile_run(self.graph, "base", BIG_GPU)
        assert run.result.feasible
        return run.lowered.program.program

    def setup_method(self):
        self.graph = build_tiny_cnn(batch=8, image=16)
        self.program = self._compiled_program()

    def test_windowed_observation_is_nonperturbing(self):
        engine = Engine(BIG_GPU, EngineOptions(record_trace=True))
        _, bare = engine.execute_iterations(self.program, 3)

        scope = MemscopeObserver(capacity=BIG_GPU.memory_bytes)
        hooks: list[int] = []

        def boundary(index, run):
            hooks.append(index)
            if index == 0:
                run.attach_observer(scope)
            elif index == 1:
                run.detach_observer(scope)
            return None

        engine = Engine(BIG_GPU, EngineOptions(record_trace=True))
        _, windowed = engine.execute_iterations(
            self.program, 3, boundary_hook=boundary,
        )
        assert hooks == [0, 1]
        assert trace_bytes(bare) == trace_bytes(windowed)
        # The observer saw exactly the middle iteration's events.
        assert scope.occupancy
        times = [t for t, _ in scope.occupancy]
        assert min(times) > 0.0
        assert max(times) <= windowed.iteration_time
        # And its products still render.
        assert scope.timeline().digest()
        assert scope.report().to_markdown()

    def test_mid_run_attach_sizes_a_lazy_pool(self):
        scope = MemscopeObserver()  # no capacity override

        def boundary(index, run):
            if index == 0:
                run.attach_observer(scope)
            return None

        engine = Engine(BIG_GPU, EngineOptions(record_trace=True))
        engine.execute_iterations(self.program, 2, boundary_hook=boundary)
        assert scope.pool is not None
        assert scope.capacity > 0


class TestBackendDeterminism:
    """Identical digests across serial, thread, and process backends."""

    def test_digests_agree_across_backends(self):
        spec = MemscopeTaskSpec(
            model="vgg16", policy="base", batch=4,
            gpu=BIG_GPU, param_scale=0.25,
        )
        reference = run_memscope_point(spec)
        assert reference["timeline_digest"]
        assert reference["report_digest"]
        for backend in ("serial", "thread", "process"):
            points = parallel_map(
                run_memscope_point, [spec], parallel=2, backend=backend,
            )
            assert points[0]["timeline_digest"] == \
                reference["timeline_digest"], backend
            assert points[0]["report_digest"] == \
                reference["report_digest"], backend


class TestClusterMemscope:
    def test_per_rank_timelines(self):
        cluster = ClusterSpec.homogeneous(BIG_GPU, 2)
        runs, trace = run_memscope_cluster(
            "vgg16", 8, "base", cluster, param_scale=0.25,
        )
        assert len(runs) == 2
        for rank, run in enumerate(runs):
            assert f"rank{rank}" in run.report.name
            assert run.report.peak_memory == trace.ranks[rank].peak_memory
            assert run.report.timeline.records
        assert "rank 0" in trace.describe()
        assert "rank 1" in trace.describe()


class TestReportIntegration:
    def test_explain_embeds_memscope_sections(self):
        graph = build_tiny_cnn(batch=32, image=32)
        from repro import telemetry
        from repro.analysis.report import explain_json, explain_markdown

        scope = MemscopeObserver()
        with telemetry.session():
            run = compile_run(graph, "tsplit", BIG_GPU, observers=(scope,))
        assert run.result.feasible
        explanation = run.plan.plan.explanation
        assert explanation is not None
        report = scope.report(policy="tsplit")
        payload = explain_json(
            explanation, graph=graph, plan=run.plan.plan,
            trace=run.result.trace, memscope=report,
        )
        assert payload["memscope"]["peak_memory"] == report.peak_memory
        text = explain_markdown(
            explanation, graph=graph, plan=run.plan.plan,
            trace=run.result.trace, memscope=report,
        )
        assert "## Memscope:" in text
        assert "### Tensor residency" in text

    def test_report_json_roundtrips(self):
        graph = build_tiny_cnn(batch=8, image=16)
        run = run_memscope(graph, "base", BIG_GPU, batch=8)
        payload = run.report.to_json(full_timeline=True)
        encoded = json.dumps(payload, sort_keys=True)
        assert json.loads(encoded)["timeline"]["records"]


class TestCLI:
    def test_memscope_markdown_and_artifacts(self, capsys, tmp_path):
        from repro.__main__ import main

        trace_path = tmp_path / "ms.json"
        heatmap_path = tmp_path / "hm.json"
        main([
            "memscope", "vgg16", "--policy", "base", "--batch", "2",
            "--trace", str(trace_path), "--heatmap", str(heatmap_path),
        ])
        out = capsys.readouterr().out
        assert "# Memscope:" in out
        assert "Tensor residency" in out
        merged = json.loads(trace_path.read_text())
        names = {
            e["name"] for e in merged["traceEvents"] if e.get("ph") == "C"
        }
        assert "device memory (ledger)" in names
        grid = json.loads(heatmap_path.read_text())
        assert grid["cells"]

    def test_memscope_json_postmortem_on_oom(self, capsys):
        from repro.__main__ import main

        main([
            "memscope", "vgg16", "--policy", "base", "--batch", "64",
            "--capacity-frac", "0.2", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert payload["feasible"] is False
        assert payload["postmortem"]["classification"] in (
            "capacity", "fragmentation",
        )

    def test_memscope_cluster(self, capsys):
        from repro.__main__ import main

        main([
            "memscope", "vgg16", "--policy", "base", "--batch", "4",
            "--world", "2", "--param-scale", "0.25",
        ])
        out = capsys.readouterr().out
        assert "rank0" in out and "rank1" in out

    def test_explain_memscope_flag(self, capsys):
        from repro.__main__ import main

        main([
            "explain", "vgg16", "--batch", "2", "--gpu", "gtx_1080ti",
            "--policy", "base", "--memscope",
        ])
        out = capsys.readouterr().out
        assert "# Memscope:" in out
        assert "Tensor residency" in out
