"""Engine allocation-event log: balance and chronology."""

from collections import defaultdict

import pytest

from repro.analysis.runner import run_policy
from repro.runtime.engine import Engine, EngineOptions
from repro.runtime.instructions import ComputeInstr, Program, TensorRef
from repro.units import MB
from tests.conftest import BIG_GPU, build_tiny_cnn


@pytest.fixture(scope="module")
def traced():
    graph = build_tiny_cnn(batch=16)
    result = run_policy(graph, "superneurons", BIG_GPU)
    assert result.feasible
    return result.trace


class TestBalance:
    def test_events_balance_to_zero(self, traced):
        """Every transient allocation is eventually released."""
        net = defaultdict(int)
        for _, label, nbytes in traced.alloc_events:
            net[label] += nbytes
        leaks = {label: b for label, b in net.items() if b != 0}
        assert leaks == {}

    def test_chronological_peak_equals_engine_view(self, traced):
        """The engine dispatches chronologically, so its peak *is* the
        time-ordered peak of the allocation log, byte for byte."""
        from repro.analysis.allocator_replay import chronological_peak

        current = traced.persistent_bytes
        for _, _, nbytes in traced.alloc_events:
            current += nbytes
        assert current == traced.persistent_bytes  # all released by the end
        assert chronological_peak(traced) == traced.peak_memory

    def test_positive_events_match_traffic(self, traced):
        swap_ins = sum(
            nbytes for _, label, nbytes in traced.alloc_events
            if nbytes > 0 and label.startswith("h2d") is False
        )
        assert swap_ins > 0


class TestTracingToggle:
    def test_disabled_tracing_records_nothing(self):
        program = Program(
            instructions=[ComputeInstr(
                "a", 1.0, outputs=(TensorRef(0, MB, label="t0"),),
            )],
            batch=1, name="t",
        )
        trace = Engine(
            BIG_GPU, EngineOptions(record_trace=False),
        ).execute(program)
        assert trace.alloc_events == []
        assert trace.records == []

    def test_enabled_tracing_records_alloc(self):
        program = Program(
            instructions=[ComputeInstr(
                "a", 1.0, outputs=(TensorRef(0, MB, label="t0"),),
            )],
            batch=1, name="t",
        )
        trace = Engine(BIG_GPU).execute(program)
        assert any(
            label == "t0" and nbytes == MB
            for _, label, nbytes in trace.alloc_events
        )
