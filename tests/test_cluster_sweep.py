"""Cluster sweeps: spec/point plumbing and cross-backend determinism."""

from __future__ import annotations

import pytest

from repro.analysis.cluster_sweep import (
    ClusterPointSpec,
    cluster_sweep,
    run_cluster_point,
)
from repro.analysis.sweep_tasks import canonical_point_bytes
from repro.hardware.gpu import GPU_PRESETS

V100 = GPU_PRESETS["v100_16gb"]

SWEEP_KWARGS = dict(
    worlds=(1, 2), modes=("dp", "zero_shard"),
)


def test_point_specs_flatten_cluster_traces():
    spec = ClusterPointSpec(
        model="transformer", policy="base", batch=8, gpu=V100, world=2,
    )
    point = run_cluster_point(spec)
    assert point.feasible, point.failure
    assert point.mode == "dp" and point.world == 2
    assert len(point.per_rank_peak) == 2
    assert point.throughput == pytest.approx(8 / point.makespan)


def test_infeasible_points_are_reported_not_raised():
    tiny = V100.with_memory(1 << 20)
    point = run_cluster_point(ClusterPointSpec(
        model="transformer", policy="base", batch=8, gpu=tiny, world=2,
    ))
    assert not point.feasible
    assert point.failure
    assert point.per_rank_peak == ()


def test_sweep_covers_the_mode_world_grid():
    result = cluster_sweep(
        "transformer", "base", V100, 8, backend="serial", **SWEEP_KWARGS,
    )
    grid = [(point.mode, point.world) for point in result.points]
    assert grid == [
        ("dp", 1), ("dp", 2), ("zero_shard", 1), ("zero_shard", 2),
    ]
    assert result.feasible() == result.points


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_backends_are_byte_identical_to_serial(backend):
    serial = cluster_sweep(
        "transformer", "base", V100, 8, backend="serial", **SWEEP_KWARGS,
    )
    other = cluster_sweep(
        "transformer", "base", V100, 8,
        parallel=2, backend=backend, **SWEEP_KWARGS,
    )
    assert canonical_point_bytes(other.points) == canonical_point_bytes(
        serial.points,
    )
