"""Examples stay importable: syntax and imports resolve.

The examples run full experiments (minutes), so tests only compile them
and import their module-level dependencies — enough to catch signature
drift against the library.
"""

import ast
import importlib
import pathlib

import pytest

EXAMPLES = sorted(pathlib.Path("examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    source = path.read_text()
    compile(source, str(path), "exec")


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Every `from repro...` / `import repro...` the example uses exists."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if not node.module.startswith("repro"):
                continue
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} missing"
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro"):
                    importlib.import_module(alias.name)


def test_every_example_has_main():
    for path in EXAMPLES:
        tree = ast.parse(path.read_text())
        names = {
            n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)
        }
        assert "main" in names, path.name


def test_at_least_five_examples():
    assert len(EXAMPLES) >= 5
