"""The unified telemetry layer: metrics, spans, provenance, merging.

The load-bearing property is *inertness*: telemetry observes, it never
steers. Plans must be byte-identical with provenance on or off, in both
the incremental and the reference planner modes, and a disabled
registry/tracer must record nothing.
"""

import json
import threading

import pytest

from repro import telemetry
from repro.core.cost_model import CostModelOptions
from repro.core.planner import PlannerOptions, TsplitPlanner
from repro.pipeline.cache import CompileCache
from repro.pipeline.compile import compile_run
from repro.runtime.engine import Engine
from repro.runtime.observers import ChromeTraceObserver
from repro.telemetry.metrics import NULL_METRIC, MetricsRegistry
from repro.telemetry.spans import SpanTracer
from tests.conftest import BIG_GPU, build_tiny_cnn


def tight_gpu(graph, fraction=0.7):
    baseline = TsplitPlanner(BIG_GPU).plan(graph).baseline_peak
    return BIG_GPU.with_memory(int(baseline * fraction))


def tight_options(incremental=True) -> PlannerOptions:
    return PlannerOptions(
        cost=CostModelOptions(min_split_bytes=0, min_evict_bytes=0),
        incremental=incremental,
    )


class TestMetricsRegistry:
    def test_counter_gauge_histogram_timer(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2)
        registry.gauge("g").set(4.5)
        registry.histogram("h").observe(1.0)
        registry.histogram("h").observe(3.0)
        with registry.timer("t").time():
            pass
        snap = registry.snapshot()
        assert snap["c"] == {"kind": "counter", "value": 3}
        assert snap["g"]["value"] == 4.5
        assert snap["h"]["count"] == 2
        assert snap["h"]["mean"] == 2.0
        assert snap["t"]["count"] == 1
        assert snap["t"]["total"] >= 0

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        metric = registry.counter("c")
        assert metric is NULL_METRIC
        metric.inc()
        with registry.timer("t").time():
            pass
        assert len(registry) == 0
        assert registry.snapshot() == {}

    def test_jsonl_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a.b").inc(7)
        path = tmp_path / "metrics.jsonl"
        registry.write_jsonl(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines == [{"name": "a.b", "kind": "counter", "value": 7}]


class TestSpanTracer:
    def test_nesting_depth_and_monotonic_clock(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["inner"].depth == 1
        assert by_name["outer"].depth == 0
        # Children close before parents; all bounds are well ordered and
        # relative to the tracer's zero epoch.
        inner, outer = by_name["inner"], by_name["outer"]
        assert 0 <= outer.start <= inner.start
        assert inner.start <= inner.end <= outer.end
        assert inner.duration >= 0 and outer.duration >= 0

    def test_disabled_tracer_records_nothing(self):
        tracer = SpanTracer(enabled=False)
        with tracer.span("x"):
            pass
        assert tracer.spans == []

    def test_chrome_export_shape(self):
        tracer = SpanTracer()
        with tracer.span("plan", model="m"):
            pass
        events = tracer.to_chrome_events(pid=3)
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 1
        assert slices[0]["name"] == "plan"
        assert slices[0]["pid"] == 3
        assert slices[0]["args"] == {"model": "m"}
        assert any(e["name"] == "process_name" for e in events)


class TestConcurrentSpans:
    """Regression: span nesting state is context-local, not shared.

    Pre-fix, one tracer kept a single mutable span stack; two threads
    recording through it interleaved, inflating depths and producing
    malformed Chrome flames. Now depth lives in a context variable and
    every span carries the track (``tid``) it was opened on.
    """

    def test_threads_get_distinct_tracks_with_local_depth(self):
        tracer = SpanTracer()
        barrier = threading.Barrier(4)

        def one_request(n):
            barrier.wait()  # maximise overlap across threads
            with tracer.span(f"outer-{n}"):
                with tracer.span(f"inner-{n}"):
                    pass

        threads = [
            threading.Thread(target=one_request, args=(n,))
            for n in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer.spans) == 8
        # Depth never exceeds each thread's true nesting (a shared stack
        # would have climbed towards 8 under full overlap).
        assert max(s.depth for s in tracer.spans) == 1
        by_tid = {}
        for span in tracer.spans:
            by_tid.setdefault(span.tid, []).append(span)
        assert sorted(by_tid) == [0, 1, 2, 3]
        for spans in by_tid.values():
            by_depth = {s.depth: s for s in spans}
            assert set(by_depth) == {0, 1}
            # Each track holds exactly one request's pair.
            assert by_depth[0].name.split("-")[1] == \
                by_depth[1].name.split("-")[1]
            assert by_depth[0].start <= by_depth[1].start
            assert by_depth[1].end <= by_depth[0].end

    def test_chrome_export_names_every_track(self):
        tracer = SpanTracer()

        def record(name):
            with tracer.span(name):
                pass

        record("main")
        worker = threading.Thread(target=record, args=("worker",))
        worker.start()
        worker.join()
        events = tracer.to_chrome_events()
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in events if e.get("name") == "thread_name"
        }
        assert thread_names == {0: "pipeline", 1: "pipeline-1"}
        slices = {e["name"]: e["tid"] for e in events if e["ph"] == "X"}
        assert slices == {"main": 0, "worker": 1}

    def test_concurrent_counters_do_not_tear(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        histogram = registry.histogram("h")

        def spin():
            for _ in range(5000):
                counter.inc()
                histogram.observe(1.0)

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = registry.snapshot()
        assert snap["c"]["value"] == 40_000
        assert snap["h"]["count"] == 40_000
        assert snap["h"]["mean"] == 1.0


class TestProvenanceInert:
    """Plans are byte-identical with provenance on or off."""

    @pytest.mark.parametrize("incremental", [True, False])
    def test_identical_plans_both_modes(self, incremental):
        graph = build_tiny_cnn(batch=64, image=32)
        gpu = tight_gpu(graph)
        options = tight_options(incremental)
        plain = TsplitPlanner(gpu, options).plan(graph, explain=False)
        explained = TsplitPlanner(gpu, options).plan(graph, explain=True)
        assert explained.plan.configs == plain.plan.configs
        assert explained.plan == plain.plan  # explanation excluded
        assert [d.key for d in explained.decisions] == \
            [d.key for d in plain.decisions]
        assert explained.peak_memory == plain.peak_memory
        assert explained.estimated_time == plain.estimated_time
        assert plain.explanation is None
        assert explained.explanation is not None

    def test_explanation_contents(self):
        graph = build_tiny_cnn(batch=64, image=32)
        gpu = tight_gpu(graph)
        result = TsplitPlanner(gpu, tight_options()).plan(
            graph, explain=True,
        )
        explanation = result.explanation
        assert explanation.graph == graph.name
        assert explanation.baseline_peak == result.baseline_peak
        assert explanation.final_peak == result.peak_memory
        assert len(explanation.decisions) == len(result.decisions)
        for decision, candidate in zip(
            explanation.decisions, result.decisions,
        ):
            assert decision.tensor_id == candidate.tensor_id
            assert decision.delta_t == candidate.delta_t
            assert decision.kind == candidate.kind
            assert decision.tensor  # named, not just an id
            assert decision.peak_before >= decision.peak_after >= 0
        # The last decision lands the peak on the final value.
        assert explanation.decisions[-1].peak_after == result.peak_memory
        assert sum(explanation.kind_counts().values()) == \
            len(explanation.decisions)

    def test_follows_telemetry_session(self):
        graph = build_tiny_cnn(batch=64, image=32)
        gpu = tight_gpu(graph)
        planner = TsplitPlanner(gpu, tight_options())
        assert planner.plan(graph).explanation is None
        with telemetry.session():
            assert planner.plan(graph).explanation is not None
        assert planner.plan(graph).explanation is None

    def test_explanation_serializes(self):
        graph = build_tiny_cnn(batch=64, image=32)
        result = TsplitPlanner(
            tight_gpu(graph), tight_options(),
        ).plan(graph, explain=True)
        payload = json.loads(result.explanation.to_json())
        assert payload["graph"] == graph.name
        assert len(payload["decisions"]) == len(result.decisions)


class TestCacheStats:
    def test_per_kind_counts(self):
        cache = CompileCache()
        cache.get("k1", kind="profile")           # miss
        cache.put("k1", "v", kind="profile")
        cache.get("k1", kind="profile")           # hit
        cache.get("k2", kind="plan")              # miss
        stats = cache.cache_stats()
        assert stats["kinds"]["profile"] == \
            {"hits": 1, "misses": 1, "evictions": 0}
        assert stats["kinds"]["plan"]["misses"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 2

    def test_evictions_attributed_to_kind(self):
        cache = CompileCache(max_entries=1)
        cache.put("k1", "v1", kind="profile")
        cache.put("k2", "v2", kind="plan")        # evicts k1
        stats = cache.cache_stats()
        assert stats["evictions"] == 1
        assert stats["kinds"]["profile"]["evictions"] == 1

    def test_pipeline_populates_kind_stats(self):
        graph = build_tiny_cnn(batch=8)
        cache = CompileCache()
        compile_run(graph, "base", BIG_GPU, cache=cache)
        compile_run(graph, "base", BIG_GPU, cache=cache)
        stats = cache.cache_stats()
        assert stats["kinds"]["profile"]["misses"] == 1
        assert stats["kinds"]["profile"]["hits"] == 1
        assert stats["kinds"]["plan"]["hits"] == 1

    def test_telemetry_counters_mirror_cache_events(self):
        graph = build_tiny_cnn(batch=8)
        cache = CompileCache()
        with telemetry.session() as tel:
            compile_run(graph, "base", BIG_GPU, cache=cache)
            compile_run(graph, "base", BIG_GPU, cache=cache)
            snap = tel.metrics.snapshot()
        assert snap["compile_cache.profile.misses"]["value"] == 1
        assert snap["compile_cache.profile.hits"]["value"] == 1
        assert snap["compile_cache.profile.key_seconds"]["count"] == 2
        assert snap["pipeline.profile.cached"]["value"] == 1


class TestPipelineSpans:
    def test_compile_run_emits_stage_spans(self):
        graph = build_tiny_cnn(batch=8)
        with telemetry.session() as tel:
            compile_run(graph, "base", BIG_GPU)
            names = [s.name for s in tel.tracer.spans]
        assert names == ["profile", "plan", "lower", "execute"]
        assert all(s.depth == 0 for s in tel.tracer.spans)

    def test_disabled_session_emits_nothing(self):
        graph = build_tiny_cnn(batch=8)
        compile_run(graph, "base", BIG_GPU)
        assert telemetry.get_telemetry().tracer.spans == []


class TestMergeTraces:
    def _engine_trace(self):
        from tests.test_observers import SLOW_PCIE_GPU, _stall_program

        observer = ChromeTraceObserver()
        Engine(SLOW_PCIE_GPU).execute(
            _stall_program(), observers=(observer,),
        )
        return observer

    def test_sources_get_distinct_pids(self):
        tracer = SpanTracer()
        with tracer.span("plan"):
            pass
        observer = self._engine_trace()
        merged = telemetry.merge_traces(tracer, observer)
        events = merged["traceEvents"]
        tracer_pids = {e["pid"] for e in events if e.get("name") == "plan"}
        engine_pids = {
            e["pid"] for e in events
            if e["ph"] == "X" and e.get("cat") == "stall"
        }
        assert tracer_pids and engine_pids
        assert tracer_pids.isdisjoint(engine_pids)

    def test_names_override_process_metadata(self):
        tracer = SpanTracer()
        with tracer.span("plan"):
            pass
        merged = telemetry.merge_traces(
            tracer, self._engine_trace(),
            names=["compile", "runtime"],
        )
        names = {
            e["args"]["name"] for e in merged["traceEvents"]
            if e.get("name") == "process_name"
        }
        assert {"compile", "runtime"} <= names

    def test_round_trips_through_write(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("plan"):
            pass
        path = tmp_path / "merged.json"
        telemetry.write_trace(path, telemetry.merge_traces(tracer))
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]
