"""Analysis drivers: runner, scaling search, throughput sweep, breakdowns."""

import pytest

from repro.analysis.breakdown import max_scale_under_throughput, strategy_breakdown
from repro.analysis.distribution import SIZE_BUCKETS, tensor_size_distribution
from repro.analysis.footprint import (
    max_trainable_scale,
    memory_requirement_grid,
    model_memory_requirement,
)
from repro.analysis.runner import evaluate, run_policy
from repro.analysis.scaling import _search_max, max_sample_scale
from repro.analysis.throughput import speedups_over, throughput_sweep
from repro.core.plan import MemOption, Plan, TensorConfig
from tests.conftest import BIG_GPU, TINY_GPU, build_tiny_cnn


def scaled_gpu(graph, fraction):
    base = model_memory_requirement(graph)
    return BIG_GPU.with_memory(int(base * fraction))


class TestRunner:
    def test_feasible_run_has_trace(self, tiny_cnn):
        result = run_policy(tiny_cnn, "base", BIG_GPU)
        assert result.feasible
        assert result.trace is not None
        assert result.throughput > 0

    def test_oom_reported_not_raised(self, tiny_cnn):
        gpu = BIG_GPU.with_memory(256 * 1024)
        result = run_policy(tiny_cnn, "base", gpu)
        assert not result.feasible
        assert result.failure

    def test_policy_error_reported(self, tiny_transformer):
        result = run_policy(tiny_transformer, "vdnn_conv", BIG_GPU)
        assert not result.feasible
        assert "convolution" in result.failure

    def test_evaluate_builds_model(self):
        result = evaluate("vgg16", "base", BIG_GPU, 2, image_size=32)
        assert result.feasible

    def test_infeasible_iteration_time_infinite(self, tiny_cnn):
        gpu = BIG_GPU.with_memory(256 * 1024)
        result = run_policy(tiny_cnn, "base", gpu)
        assert result.iteration_time == float("inf")
        assert result.throughput == 0.0


class TestSearchMax:
    def test_simple_threshold(self):
        assert _search_max(lambda n: n <= 37, start=4, cap=1000) == 37

    def test_all_feasible_hits_cap(self):
        assert _search_max(lambda n: True, start=4, cap=64) == 64

    def test_nothing_feasible(self):
        assert _search_max(lambda n: False, start=4, cap=64) == 0

    def test_only_one(self):
        assert _search_max(lambda n: n <= 1, start=8, cap=64) == 1

    def test_threshold_below_start(self):
        assert _search_max(lambda n: n <= 5, start=32, cap=1000) == 5


class TestMaxSampleScale:
    def test_monotone_in_memory(self):
        small = max_sample_scale(
            build_tiny_cnn, "base",
            BIG_GPU.with_memory(4 * 1024 * 1024), cap=512,
        )
        large = max_sample_scale(
            build_tiny_cnn, "base",
            BIG_GPU.with_memory(8 * 1024 * 1024), cap=512,
        )
        assert large > small > 0

    def test_zero_when_hopeless(self):
        assert max_sample_scale(
            build_tiny_cnn, "base", BIG_GPU.with_memory(64 * 1024), cap=16,
        ) == 0


class TestThroughputSweep:
    def test_sweep_covers_grid(self):
        points = throughput_sweep(
            build_tiny_cnn, ["base", "vdnn_all"], [2, 4], BIG_GPU,
        )
        assert len(points) == 4
        assert all(p.feasible for p in points)

    def test_infeasible_points_present_with_zero_throughput(self):
        gpu = BIG_GPU.with_memory(2 * 1024 * 1024)
        points = throughput_sweep(build_tiny_cnn, ["base"], [64], gpu)
        assert len(points) == 1
        assert not points[0].feasible
        assert points[0].throughput == 0.0

    def test_speedups_relative_to_reference(self):
        points = throughput_sweep(
            build_tiny_cnn, ["base", "vdnn_all"], [4], BIG_GPU,
        )
        speedups = speedups_over(points, "vdnn_all")
        assert speedups[("vdnn_all", 4)] == pytest.approx(1.0)
        assert ("base", 4) in speedups


class TestFootprint:
    def test_requirement_positive(self, tiny_cnn):
        assert model_memory_requirement(tiny_cnn) > 0

    def test_grid_monotone_in_batch(self):
        grid = memory_requirement_grid(
            lambda b, param_scale=1.0: build_tiny_cnn(batch=b),
            sample_scales=[2, 4, 8],
            param_scales=[1.0],
        )
        assert grid[(2, 1.0)] < grid[(4, 1.0)] < grid[(8, 1.0)]

    def test_trainable_frontier(self):
        grid = memory_requirement_grid(
            lambda b, param_scale=1.0: build_tiny_cnn(batch=b),
            sample_scales=[2, 256],
            param_scales=[1.0],
        )
        frontier = max_trainable_scale(grid, TINY_GPU)
        assert (2, 1.0) in frontier
        assert (256, 1.0) not in frontier


class TestDistribution:
    def test_fractions_sum_to_one(self, tiny_cnn):
        dist = tensor_size_distribution(tiny_cnn)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_bucket_labels_are_papers(self, tiny_cnn):
        dist = tensor_size_distribution(tiny_cnn)
        assert list(dist) == [label for label, _, _ in SIZE_BUCKETS]

    def test_byte_weighting_shifts_mass_up(self):
        graph = build_tiny_cnn(batch=32)
        by_count = tensor_size_distribution(graph)
        by_bytes = tensor_size_distribution(graph, weight_by_bytes=True)
        assert by_bytes["< 1MB"] <= by_count["< 1MB"]


class TestBreakdown:
    def test_strategy_breakdown_counts_bytes(self, tiny_cnn):
        plan = Plan()
        act = tiny_cnn.activations()[0]
        plan.set(act.tensor_id, TensorConfig(opt=MemOption.SWAP))
        breakdown = strategy_breakdown(tiny_cnn, plan)
        assert breakdown["swap"] == act.size_bytes
        assert breakdown["recompute"] == 0

    def test_max_scale_under_throughput_bounds(self):
        gpu = BIG_GPU.with_memory(8 * 1024 * 1024)
        unconstrained = max_sample_scale(build_tiny_cnn, "base", gpu, cap=256)
        constrained = max_scale_under_throughput(
            build_tiny_cnn, "base", gpu, fraction=0.5, cap=256,
        )
        assert 0 < constrained <= max(unconstrained, 1)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            max_scale_under_throughput(
                build_tiny_cnn, "base", BIG_GPU, fraction=0.0,
            )
