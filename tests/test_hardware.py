"""GPU specs, kernel-time model (Figure 5 patterns), PCIe model."""

import pytest

from repro.errors import HardwareError
from repro.graph.ops import Operator, OpType
from repro.hardware.gpu import (
    GPU_PRESETS,
    GTX_1080TI,
    RTX_TITAN,
    GPUSpec,
)
from repro.hardware.kernels import KernelModel
from repro.hardware.pcie import PCIeModel
from repro.units import GB, MB


def conv_op(flops=1e10, nbytes=64 * MB) -> Operator:
    return Operator(
        op_id=0, name="conv", op_type=OpType.CONV2D,
        flops=flops, bytes_accessed=int(nbytes),
    )


def relu_op(nbytes=64 * MB) -> Operator:
    return Operator(
        op_id=1, name="relu", op_type=OpType.RELU,
        flops=nbytes / 8, bytes_accessed=int(nbytes),
    )


class TestGPUSpec:
    def test_paper_presets_exist(self):
        assert RTX_TITAN.memory_bytes == 24 * GB
        assert GTX_1080TI.memory_bytes == 11 * GB

    def test_1080ti_is_slower(self):
        # "FP32 FLOPS is about 70% of TITAN RTX" (Figure 13 caption).
        ratio = GTX_1080TI.peak_flops / RTX_TITAN.peak_flops
        assert 0.65 < ratio < 0.75

    def test_preset_registry_complete(self):
        assert {"rtx_titan", "gtx_1080ti", "p100", "v100_16gb"} <= set(GPU_PRESETS)

    def test_with_memory(self):
        half = RTX_TITAN.with_memory(12 * GB)
        assert half.memory_bytes == 12 * GB
        assert half.peak_flops == RTX_TITAN.peak_flops

    def test_invalid_memory_rejected(self):
        with pytest.raises(HardwareError):
            GPUSpec(name="bad", memory_bytes=0, peak_flops=1e12,
                    mem_bandwidth=1e11)

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(HardwareError):
            GPUSpec(name="bad", memory_bytes=GB, peak_flops=1e12,
                    mem_bandwidth=1e11, max_efficiency=1.5)


class TestKernelModel:
    def setup_method(self):
        self.model = KernelModel(RTX_TITAN)

    def test_efficiency_monotone_in_flops(self):
        effs = [self.model.efficiency(f) for f in (1e6, 1e8, 1e10, 1e12)]
        assert effs == sorted(effs)

    def test_efficiency_bounded(self):
        assert self.model.efficiency(1e15) <= RTX_TITAN.max_efficiency

    def test_compute_time_includes_launch(self):
        assert self.model.compute_time(0) == RTX_TITAN.kernel_launch_overhead

    def test_conv_time_reasonable(self):
        # 1e10 FLOPs at ~10 TFLOP/s effective -> about a millisecond.
        t = self.model.op_time(conv_op(flops=1e10))
        assert 0.5e-3 < t < 5e-3

    def test_memory_bound_op_uses_bandwidth(self):
        t = self.model.op_time(relu_op(nbytes=672e6))  # 1ms at 672 GB/s
        assert t == pytest.approx(1e-3, rel=0.1)

    def test_compute_op_floored_by_bandwidth(self):
        # Tiny FLOPs but huge traffic: bandwidth governs.
        op = conv_op(flops=1e3, nbytes=672e6)
        assert self.model.op_time(op) >= 0.9e-3

    def test_split_monotone_overhead(self):
        """Figure 5: total time never decreases with partition count."""
        op = conv_op()
        times = [self.model.split_kernel_time(op, p) for p in (1, 2, 4, 8, 16)]
        for earlier, later in zip(times, times[1:]):
            assert later >= earlier - 1e-12

    def test_split_overhead_small_for_big_conv(self):
        """A large convolution tolerates splitting (Figure 5 conv curve)."""
        op = conv_op(flops=1e11)
        overhead = self.model.split_overhead(op, 8)
        assert overhead / self.model.op_time(op) < 0.15

    def test_split_overhead_large_for_small_kernel(self):
        """A small kernel drowns in launch overhead when split."""
        op = conv_op(flops=1e7, nbytes=1 * MB)
        overhead = self.model.split_overhead(op, 32)
        assert overhead / self.model.op_time(op) > 0.2

    def test_different_op_classes_have_different_patterns(self):
        """Figure 5: different operators exhibit different split curves."""
        conv = conv_op(flops=2e10, nbytes=100 * MB)
        relu = relu_op(nbytes=100 * MB)
        conv_ratio = self.model.split_kernel_time(conv, 16) / self.model.op_time(conv)
        relu_ratio = self.model.split_kernel_time(relu, 16) / self.model.op_time(relu)
        assert conv_ratio != pytest.approx(relu_ratio, rel=1e-3)

    def test_transfer_op_rejected(self):
        op = Operator(op_id=2, name="x", op_type=OpType.SWAP_OUT)
        with pytest.raises(HardwareError):
            self.model.op_time(op)

    def test_memcpy_time_scales(self):
        assert self.model.memcpy_time(2 * MB) > self.model.memcpy_time(1 * MB)

    def test_invalid_p_num(self):
        with pytest.raises(HardwareError):
            self.model.split_kernel_time(conv_op(), 0)


class TestPCIeModel:
    def setup_method(self):
        self.pcie = PCIeModel(RTX_TITAN)

    def test_zero_transfer_free(self):
        assert self.pcie.transfer_time(0) == 0.0

    def test_transfer_time_linear_plus_latency(self):
        one = self.pcie.transfer_time(1 * GB)
        two = self.pcie.transfer_time(2 * GB)
        assert two - one == pytest.approx(GB / RTX_TITAN.pcie_bandwidth)

    def test_gigabyte_takes_fraction_of_second(self):
        # ~12 GB/s effective: 1 GB in ~90 ms.
        assert 0.05 < self.pcie.transfer_time(1 * GB) < 0.15

    def test_effective_rate_penalises_small_transfers(self):
        small = self.pcie.effective_rate(64 * 1024)
        large = self.pcie.effective_rate(1 * GB)
        assert small < large

    def test_negative_rejected(self):
        with pytest.raises(HardwareError):
            self.pcie.transfer_time(-1)
