"""Determinism: identical inputs must give identical results.

The planner, augmenter and engine are all deterministic (the only RNG in
the system is the profiler's optional, seeded noise) — a property both
reproducibility and the planner's static/dynamic contract depend on.
"""

from repro.analysis.runner import run_policy
from repro.core.augment import augment_graph
from repro.core.planner import TsplitPlanner
from repro.core.profiler import Profiler
from repro.graph.scheduler import dfs_schedule
from tests.conftest import BIG_GPU, build_tiny_cnn


class TestDeterminism:
    def test_schedule_stable(self):
        a = dfs_schedule(build_tiny_cnn(batch=8))
        b = dfs_schedule(build_tiny_cnn(batch=8))
        assert a == b

    def test_planner_stable(self):
        from repro.core.cost_model import CostModelOptions
        from repro.core.planner import PlannerOptions

        options = PlannerOptions(
            cost=CostModelOptions(min_split_bytes=0, min_evict_bytes=0),
        )
        baseline = TsplitPlanner(BIG_GPU).plan(
            build_tiny_cnn(batch=64, image=32),
        ).baseline_peak
        gpu = BIG_GPU.with_memory(int(baseline * 0.7))
        plans = []
        for _ in range(2):
            graph = build_tiny_cnn(batch=64, image=32)
            result = TsplitPlanner(gpu, options).plan(graph)
            plans.append(sorted(
                (tid, cfg.opt.value, cfg.p_num, cfg.dim)
                for tid, cfg in result.plan.configs.items()
            ))
        assert plans[0] == plans[1]
        assert plans[0]  # pressure actually forced decisions

    def test_program_stable(self):
        graph = build_tiny_cnn(batch=16)
        profile = Profiler(BIG_GPU).profile(graph)
        schedule = dfs_schedule(graph)
        from repro.core.plan import MemOption, Plan, TensorConfig

        plan = Plan()
        act = graph.activations()[2]
        plan.set(act.tensor_id, TensorConfig(opt=MemOption.SWAP))
        first = augment_graph(graph, plan, profile, schedule=schedule)
        second = augment_graph(graph, plan, profile, schedule=schedule)
        assert first.program.counts() == second.program.counts()
        labels_a = [getattr(i, "label", "") for i in first.program.instructions]
        labels_b = [getattr(i, "label", "") for i in second.program.instructions]
        assert labels_a == labels_b

    def test_end_to_end_trace_stable(self):
        graph_a = build_tiny_cnn(batch=16)
        graph_b = build_tiny_cnn(batch=16)
        trace_a = run_policy(graph_a, "superneurons", BIG_GPU).trace
        trace_b = run_policy(graph_b, "superneurons", BIG_GPU).trace
        assert trace_a.iteration_time == trace_b.iteration_time
        assert trace_a.peak_memory == trace_b.peak_memory
        assert trace_a.swapped_out_bytes == trace_b.swapped_out_bytes
        assert len(trace_a.records) == len(trace_b.records)
