"""Backward-graph construction."""

import pytest

from repro.errors import GraphError
from repro.graph.autodiff import build_training_graph
from repro.graph.graph import Graph
from repro.graph.ops import OpType, Phase
from repro.graph.tensor import TensorKind
from repro.models.layers import ModelBuilder
from tests.conftest import build_tiny_cnn


class TestStructure:
    def test_phases_present(self, tiny_cnn):
        assert tiny_cnn.ops_in_phase(Phase.FORWARD)
        assert tiny_cnn.ops_in_phase(Phase.BACKWARD)
        assert tiny_cnn.ops_in_phase(Phase.UPDATE)

    def test_one_update_per_param(self, tiny_cnn):
        updates = tiny_cnn.ops_in_phase(Phase.UPDATE)
        assert len(updates) == len(tiny_cnn.parameters())

    def test_every_param_gets_gradient(self, tiny_cnn):
        grads = tiny_cnn.tensors_of_kind(TensorKind.GRAD_PARAM)
        # After accumulation, at least one grad per parameter.
        assert len(grads) >= len(tiny_cnn.parameters())

    def test_backward_links_forward_op(self, tiny_cnn):
        for op in tiny_cnn.ops_in_phase(Phase.BACKWARD):
            if op.op_type is OpType.GRAD_ACCUM:
                continue
            assert op.forward_op in tiny_cnn.ops

    def test_backward_flops_scaled(self, tiny_cnn):
        for op in tiny_cnn.ops_in_phase(Phase.BACKWARD):
            fwd = op.forward_op
            if fwd is None:
                continue
            forward = tiny_cnn.ops[fwd]
            ratio = forward.op_type.info.backward_flops_ratio
            assert op.flops == pytest.approx(forward.flops * ratio)

    def test_result_is_valid_graph(self, tiny_cnn):
        tiny_cnn.validate()

    def test_momentum_state_allocated(self, tiny_cnn):
        states = tiny_cnn.tensors_of_kind(TensorKind.OPTIMIZER_STATE)
        assert len(states) == len(tiny_cnn.parameters())

    def test_adam_allocates_two_states(self):
        g = build_tiny_cnn(optimizer="adam")
        states = g.tensors_of_kind(TensorKind.OPTIMIZER_STATE)
        assert len(states) == 2 * len(g.parameters())

    def test_plain_sgd_allocates_none(self):
        g = build_tiny_cnn(optimizer="sgd")
        assert g.tensors_of_kind(TensorKind.OPTIMIZER_STATE) == []


class TestGradAccumulation:
    def test_residual_input_grad_accumulated(self, tiny_resnet):
        accums = [
            op for op in tiny_resnet.ops.values()
            if op.op_type is OpType.GRAD_ACCUM
        ]
        assert accums, "residual fan-out must create a GRAD_ACCUM node"

    def test_accum_inputs_are_partials(self, tiny_resnet):
        for op in tiny_resnet.ops.values():
            if op.op_type is not OpType.GRAD_ACCUM:
                continue
            assert len(op.inputs) >= 2
            for tid in op.inputs:
                assert tiny_resnet.tensors[tid].kind.is_gradient


class TestSavedTensors:
    def test_conv_backward_sees_forward_input(self, tiny_cnn):
        conv = next(
            op for op in tiny_cnn.ops.values()
            if op.name == "conv1" and op.phase is Phase.FORWARD
        )
        d_conv = next(
            op for op in tiny_cnn.ops.values()
            if op.phase is Phase.BACKWARD and op.forward_op == conv.op_id
        )
        assert set(conv.inputs) <= set(d_conv.inputs)

    def test_relu_backward_sees_forward_output(self, tiny_cnn):
        relu = next(
            op for op in tiny_cnn.ops.values()
            if op.name == "relu1" and op.phase is Phase.FORWARD
        )
        d_relu = next(
            op for op in tiny_cnn.ops.values()
            if op.phase is Phase.BACKWARD and op.forward_op == relu.op_id
        )
        assert relu.outputs[0] in d_relu.inputs


class TestErrors:
    def test_unknown_optimizer(self):
        builder = ModelBuilder("m", 2)
        x = builder.input_image(1, 4, 4)
        y = builder.relu(x)
        loss = builder.cross_entropy_loss(builder.flatten(y))
        with pytest.raises(ValueError, match="optimizer"):
            build_training_graph(builder.graph, loss, optimizer="bogus")

    def test_loss_without_producer(self):
        g = Graph()
        loose = g.add_tensor("loose", (2,))
        with pytest.raises(GraphError):
            build_training_graph(g, loose)

    def test_double_backward_rejected(self, tiny_cnn):
        loss = next(
            t for t in tiny_cnn.tensors.values() if t.name.startswith("loss")
        )
        with pytest.raises(GraphError, match="already has a backward"):
            build_training_graph(tiny_cnn, loss)

    def test_unknown_loss_id(self):
        g = Graph()
        with pytest.raises(GraphError):
            build_training_graph(g, 99)
