"""Cluster hardware model: link specs and ring collective cost models."""

from __future__ import annotations

import pytest

from repro.hardware.cluster import (
    LINK_PRESETS,
    ClusterSpec,
    LinkSpec,
    all_gather_time,
    all_reduce_time,
    reduce_scatter_time,
    send_recv_time,
)
from repro.hardware.gpu import GPU_PRESETS

GPU = GPU_PRESETS["v100_16gb"]
NVLINK = LINK_PRESETS["nvlink"]


class TestLinkSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="link kind"):
            LinkSpec("bad", "infiniband", 1e9, 1e-6)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            LinkSpec("bad", "nvlink", 0.0, 1e-6)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError, match="latency"):
            LinkSpec("bad", "nvlink", 1e9, -1e-6)

    def test_transfer_time_is_latency_plus_serialisation(self):
        link = LinkSpec("l", "pcie", 10e9, 5e-6)
        assert link.transfer_time(100e9) == pytest.approx(5e-6 + 10.0)
        assert link.transfer_time(0) == pytest.approx(5e-6)

    def test_presets_cover_all_kinds(self):
        kinds = {link.kind for link in LINK_PRESETS.values()}
        assert kinds == {"nvlink", "pcie", "network"}


class TestRingCostModels:
    def test_single_rank_collectives_are_free(self):
        for fn in (all_reduce_time, all_gather_time, reduce_scatter_time):
            assert fn(NVLINK, 1 << 30, 1) == 0.0

    def test_all_reduce_matches_ring_formula(self):
        nbytes, world = 1 << 30, 4
        chunk = nbytes / world
        expected = 2 * (world - 1) * (chunk / NVLINK.bandwidth + NVLINK.latency)
        assert all_reduce_time(NVLINK, nbytes, world) == pytest.approx(expected)

    def test_all_gather_is_half_an_all_reduce(self):
        nbytes, world = 1 << 28, 8
        assert all_gather_time(NVLINK, nbytes, world) == pytest.approx(
            all_reduce_time(NVLINK, nbytes, world) / 2,
        )

    def test_reduce_scatter_mirrors_all_gather(self):
        assert reduce_scatter_time(NVLINK, 12345678, 4) == all_gather_time(
            NVLINK, 12345678, 4,
        )

    def test_send_recv_is_one_hop(self):
        assert send_recv_time(NVLINK, 1 << 20) == pytest.approx(
            NVLINK.transfer_time(1 << 20),
        )

    def test_monotone_in_bytes_and_latency_bound_in_world(self):
        times = [all_reduce_time(NVLINK, n, 4) for n in (1, 1 << 20, 1 << 30)]
        assert times == sorted(times)
        # Fixed payload, growing ring: more latency hops, so never faster.
        rings = [all_reduce_time(NVLINK, 1 << 10, w) for w in (2, 4, 8, 16)]
        assert rings == sorted(rings)


class TestClusterSpec:
    def test_requires_at_least_one_gpu(self):
        with pytest.raises(ValueError, match="at least one GPU"):
            ClusterSpec(name="empty", gpus=())

    def test_homogeneous_builds_world(self):
        cluster = ClusterSpec.homogeneous(GPU, 4, link="pcie")
        assert cluster.world_size == 4
        assert cluster.intra_link is LINK_PRESETS["pcie"]
        assert all(gpu is GPU for gpu in cluster.gpus)
        assert cluster.name == f"4x {GPU.name}"

    def test_link_for_picks_inter_link_across_nodes(self):
        cluster = ClusterSpec.homogeneous(
            GPU, 4, link="nvlink",
            inter_link=LINK_PRESETS["ethernet"], node_size=2,
        )
        assert cluster.node_of(1) == 0
        assert cluster.node_of(2) == 1
        assert cluster.link_for((0, 1)) is LINK_PRESETS["nvlink"]
        assert cluster.link_for((0, 3)) is LINK_PRESETS["ethernet"]

    def test_collective_time_dispatch(self):
        cluster = ClusterSpec.homogeneous(GPU, 4)
        nbytes = 1 << 26
        assert cluster.collective_time(
            "all_reduce", (0, 1, 2, 3), nbytes,
        ) == pytest.approx(all_reduce_time(NVLINK, nbytes, 4))
        assert cluster.collective_time(
            "send", (0, 1), nbytes,
        ) == pytest.approx(send_recv_time(NVLINK, nbytes))
        with pytest.raises(ValueError, match="unknown collective"):
            cluster.collective_time("broadcast", (0, 1), nbytes)
