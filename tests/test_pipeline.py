"""The staged compilation pipeline and its content-addressed cache."""

from __future__ import annotations

import os

import pytest

from repro.analysis.parallel import parallel_map, resolve_workers
from repro.analysis.runner import run_policy
from repro.analysis.throughput import throughput_sweep
from repro.hardware.gpu import GPU_PRESETS
from repro.models.registry import build_model
from repro.pipeline import (
    CompileCache,
    PlanStage,
    ProfileStage,
    compile_run,
    fingerprint,
    graph_signature,
)
from repro.pipeline.stages import resolve_policy
from repro.core.profiler import Profiler

GPU = GPU_PRESETS["gtx_1080ti"]


@pytest.fixture(scope="module")
def graph():
    return build_model("vgg16", 128)


class TestFingerprint:
    def test_stable_across_key_order(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_sets_are_canonical(self):
        assert fingerprint({3, 1, 2}) == fingerprint({1, 2, 3})

    def test_rebuilt_graph_has_same_signature(self, graph):
        again = build_model("vgg16", 128)
        assert graph_signature(graph) == graph_signature(again)

    def test_different_batch_changes_signature(self, graph):
        other = build_model("vgg16", 64)
        assert graph_signature(graph) != graph_signature(other)


class TestProfileCache:
    def test_second_run_hits(self, graph):
        cache = CompileCache()
        stage = ProfileStage(Profiler(GPU))
        first = stage.run(graph, GPU, cache=cache)
        second = stage.run(graph, GPU, cache=cache)
        assert not first.cached and second.cached
        assert second.profile is first.profile

    def test_capacity_change_shares_profile(self, graph):
        """Over-subscription sweeps shrink only the capacity; the
        profile key must not change."""
        cache = CompileCache()
        stage = ProfileStage(Profiler(GPU))
        stage.run(graph, GPU, cache=cache)
        shrunk = GPU.with_memory(GPU.memory_bytes // 2)
        again = stage.run(graph, shrunk, cache=cache)
        assert again.cached

    def test_plan_key_sees_capacity(self, graph):
        """Plans, unlike profiles, must re-key when capacity changes."""
        cache = CompileCache()
        profile = ProfileStage(Profiler(GPU)).run(graph, GPU, cache=cache)
        stage = PlanStage(resolve_policy("tsplit"))
        shrunk = GPU.with_memory(GPU.memory_bytes // 2)
        assert stage.key(profile, GPU) != stage.key(profile, shrunk)


class TestCompileRun:
    def test_matches_run_policy(self, graph):
        direct = run_policy(graph, "tsplit", GPU)
        compiled = compile_run(graph, "tsplit", GPU).result
        assert direct.feasible == compiled.feasible
        assert direct.throughput == compiled.throughput
        assert direct.plan.configs == compiled.plan.configs

    def test_cached_recompilation_is_identical(self, graph):
        cache = CompileCache()
        first = compile_run(graph, "tsplit", GPU, cache=cache)
        second = compile_run(graph, "tsplit", GPU, cache=cache)
        assert second.profile.cached and second.plan.cached
        assert second.result.throughput == first.result.throughput

    def test_planning_failure_is_cached(self, graph):
        cache = CompileCache()
        tiny = GPU.with_memory(64 * 2**20)
        first = compile_run(graph, "tsplit", tiny, cache=cache)
        second = compile_run(graph, "tsplit", tiny, cache=cache)
        assert not first.result.feasible
        assert second.plan.cached
        assert second.result.failure == first.result.failure
        assert first.lowered is None and first.executed is None


class TestParallelSweep:
    def test_resolve_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_WORKERS", raising=False)
        assert resolve_workers(None, 10) == 1
        assert resolve_workers(0, 10) == 1
        assert resolve_workers(4, 2) == 2
        assert resolve_workers(True, 100) == min(os.cpu_count() or 4, 100)

    def test_map_preserves_order(self):
        assert parallel_map(lambda x: x * x, range(20), 4) == [
            x * x for x in range(20)
        ]

    def test_parallel_sweep_equals_serial(self):
        policies = ["base", "tsplit"]
        batches = [32, 128]
        serial = throughput_sweep("vgg16", policies, batches, GPU)
        threaded = throughput_sweep(
            "vgg16", policies, batches, GPU, parallel=4,
        )
        assert serial == threaded

    def test_shared_cache_profiles_once(self):
        cache = CompileCache()
        throughput_sweep(
            "vgg16", ["base", "vdnn_all", "tsplit"], [64], GPU,
            cache=cache,
        )
        stats = cache.stats()
        # Three policies, one batch: one profile miss, two profile hits
        # (plans never hit — each policy keys its own).
        assert stats["hits"] >= 2


class TestCacheEviction:
    def test_lru_bound(self):
        cache = CompileCache(max_entries=2)
        for i in range(5):
            cache.put(f"k{i}", i)
        assert len(cache) == 2
        assert cache.get("k4") == 4
        assert cache.get("k0") is None

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            CompileCache(max_entries=0)


class TestCacheStats:
    def test_kind_breakdown_tracks_stage_traffic(self, graph):
        cache = CompileCache()
        compile_run(graph, "base", GPU, cache=cache)
        compile_run(graph, "base", GPU, cache=cache)
        stats = cache.cache_stats()
        assert stats["hits"] == cache.stats()["hits"]
        assert stats["kinds"]["profile"] == \
            {"hits": 1, "misses": 1, "evictions": 0}
        assert stats["kinds"]["plan"] == \
            {"hits": 1, "misses": 1, "evictions": 0}

    def test_eviction_counted_against_evicted_kind(self):
        cache = CompileCache(max_entries=1)
        cache.put("a", 1, kind="profile")
        cache.put("b", 2, kind="plan")
        assert cache.cache_stats()["kinds"]["profile"]["evictions"] == 1
        assert cache.stats()["evictions"] == 1
