"""Parallelism transforms: gradient all-reduce and multi-rank ZeRO."""

from __future__ import annotations

from repro.cluster.transforms import (
    splice_all_reduce,
    splice_zero_shard,
    zero_shard_savings,
)
from repro.core.profiler import Profiler
from repro.graph.tensor import TensorKind
from repro.pipeline.stages import (
    LowerStage,
    PlanStage,
    ProfileStage,
    default_augment_options,
    resolve_policy,
)
from repro.runtime.instructions import CollectiveInstr, ComputeInstr

from tests.conftest import BIG_GPU


def _compile(graph, gpu, policy_name="base"):
    policy = resolve_policy(policy_name)
    profile = ProfileStage(Profiler(gpu)).run(graph, gpu)
    plan_art = PlanStage(policy).run(graph, gpu, profile)
    assert plan_art.plan is not None, plan_art.error
    options = default_augment_options(policy, None)
    return LowerStage(options).run(graph, plan_art.plan, profile).program.program


def _collectives(program) -> list[CollectiveInstr]:
    return [
        instr for instr in program.instructions
        if isinstance(instr, CollectiveInstr)
    ]


def _grad_param_tids(graph) -> set[int]:
    return {
        tid for tid, tensor in graph.tensors.items()
        if tensor.kind is TensorKind.GRAD_PARAM
    }


class TestSpliceAllReduce:
    def test_world_one_is_identity(self, tiny_cnn):
        program = _compile(tiny_cnn, BIG_GPU)
        assert splice_all_reduce(tiny_cnn, program, 1) is program

    def test_one_all_reduce_per_gradient(self, tiny_cnn):
        program = _compile(tiny_cnn, BIG_GPU)
        spliced = splice_all_reduce(tiny_cnn, program, 2)
        collectives = _collectives(spliced)
        grads = _grad_param_tids(tiny_cnn)
        assert len(collectives) == len(grads)
        reduced = set()
        for instr in collectives:
            assert instr.kind == "all_reduce"
            assert instr.group == (0, 1)
            assert instr.lane == "comm"
            assert instr.inputs and not instr.outputs and not instr.frees
            tids = {ref.tensor_id for ref in instr.inputs}
            assert tids <= grads
            assert instr.nbytes == sum(ref.nbytes for ref in instr.inputs)
            reduced |= tids
        assert reduced == grads
        # comm_ids follow graph update-op order; the backward pass emits
        # gradients (and so the spliced collectives) in reverse.
        comm_ids = [instr.comm_id for instr in collectives]
        assert sorted(comm_ids) == list(range(len(collectives)))

    def test_reduction_precedes_the_update(self, tiny_cnn):
        spliced = splice_all_reduce(
            tiny_cnn, _compile(tiny_cnn, BIG_GPU), 2,
        )
        instrs = spliced.instructions
        for index, instr in enumerate(instrs):
            if not isinstance(instr, CollectiveInstr):
                continue
            grad_tids = {ref.tensor_id for ref in instr.inputs}
            updates = [
                at for at, other in enumerate(instrs)
                if isinstance(other, ComputeInstr) and other.tag == "update"
                and grad_tids & {ref.tensor_id for ref in other.inputs}
            ]
            assert updates and min(updates) > index

    def test_unchanged_instruction_multiset_otherwise(self, tiny_cnn):
        program = _compile(tiny_cnn, BIG_GPU)
        spliced = splice_all_reduce(tiny_cnn, program, 4)
        base = program.counts()
        after = spliced.counts()
        assert after.pop("CollectiveInstr") == len(_grad_param_tids(tiny_cnn))
        assert after == base


class TestZeroShard:
    def test_savings_formula(self, tiny_cnn):
        world = 4
        savings, max_gather = zero_shard_savings(tiny_cnn, world)
        expected = 0
        expected_gather = 0
        for tensor in tiny_cnn.tensors.values():
            if tensor.kind not in (
                TensorKind.PARAM, TensorKind.OPTIMIZER_STATE,
            ):
                continue
            shard = -(-tensor.size_bytes // world)
            expected += tensor.size_bytes - shard
            if tensor.kind is TensorKind.PARAM:
                expected_gather = max(
                    expected_gather, tensor.size_bytes - shard,
                )
        assert savings == expected > 0
        assert max_gather == expected_gather > 0
        assert zero_shard_savings(tiny_cnn, 1) == (0, 0)

    def test_splice_shrinks_persistent_and_adds_collectives(self, tiny_cnn):
        world = 4
        program = _compile(tiny_cnn, BIG_GPU)
        savings, _ = zero_shard_savings(tiny_cnn, world)
        spliced = splice_zero_shard(tiny_cnn, program, world)
        assert spliced.persistent_bytes == program.persistent_bytes - savings
        kinds = {instr.kind for instr in _collectives(spliced)}
        assert kinds == {"all_gather", "reduce_scatter"}

    def test_one_reduce_scatter_per_gradient(self, tiny_cnn):
        spliced = splice_zero_shard(
            tiny_cnn, _compile(tiny_cnn, BIG_GPU), 4,
        )
        scatters = [
            instr for instr in _collectives(spliced)
            if instr.kind == "reduce_scatter"
        ]
        grads = _grad_param_tids(tiny_cnn)
        assert len(scatters) == len(grads)
        for instr in scatters:
            # The full-size gradient is retired; a shard survives.
            assert instr.frees
            assert instr.outputs
            shard = sum(ref.nbytes for ref in instr.outputs)
            full = sum(ref.nbytes for ref in instr.frees)
            assert 0 < shard < full

    def test_gathers_are_paired_with_frees(self, tiny_cnn):
        spliced = splice_zero_shard(
            tiny_cnn, _compile(tiny_cnn, BIG_GPU), 4,
        )
        gathered = set()
        for instr in _collectives(spliced):
            if instr.kind == "all_gather":
                for ref in instr.outputs:
                    gathered.add(ref.key)
        assert gathered
        from repro.runtime.instructions import FreeInstr

        freed = {
            instr.ref.key for instr in spliced.instructions
            if isinstance(instr, FreeInstr)
        }
        assert gathered <= freed
