"""The dynamic-replanning feedback loop: acting on pressure signals.

Covers the acting half of the DELTA-style loop built on top of the
:mod:`repro.runtime.pressure` monitor:

* ``ReplanConfig.coerce`` semantics and program digests;
* ``swap_program`` validation (persistent region / batch pinned);
* the never-loses machinery: clean runs byte-identical to static,
  degraded runs that win, the scratch pre-screen rejecting marginal
  plans, and the last-boundary guard;
* cross-backend determinism of replanned instruction streams;
* the cluster plumbing (rank-local hooks, single-rank parity).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import RuntimeExecutionError
from repro.faults.model import FaultConfig
from repro.hardware.cluster import ClusterSpec
from repro.hardware.gpu import GPU_PRESETS, GPUSpec
from repro.pipeline.cache import CompileCache
from repro.pipeline.compile import compile_run
from repro.pipeline.replan import (
    BASE_CONDITION,
    ClusterReplanController,
    ReplanConfig,
    program_digest,
)
from repro.runtime.cluster_engine import ClusterEngine
from repro.runtime.engine import Engine
from repro.runtime.pressure import PressureMonitor
from repro.units import MB, TFLOPS
from tests.conftest import build_tiny_cnn

#: Slow-ish compute and a capacity squeeze expose the swap traffic, so
#: a 60%-degraded link leaves real time on the table for a replan to
#: recover (validated: dynamic beats static by ~2% here).
WIN_GPU = GPUSpec(
    name="replan-win-gpu",
    memory_bytes=28 * MB,
    peak_flops=0.2 * TFLOPS,
    mem_bandwidth=100e9,
    pcie_bandwidth=12e9,
)

#: Faster compute hides the degraded transfers again: the replanned
#: plan is predicted no better, so the pre-screen rejects the swap.
NOGAIN_GPU = GPUSpec(
    name="replan-nogain-gpu",
    memory_bytes=56 * MB,
    peak_flops=0.5 * TFLOPS,
    mem_bandwidth=100e9,
    pcie_bandwidth=12e9,
)

#: Deterministic persistent degradation (no jitter): the monitor sees
#: exactly 40% of nominal bandwidth every window.
DEGRADED = FaultConfig(seed=3, pcie_degradation=0.6)


def win_graph():
    return build_tiny_cnn(32, image=64)


def nogain_graph():
    return build_tiny_cnn(32, image=96)


def run_pair(graph_builder, gpu, *, iterations, faults=None, replan=True):
    """The same configuration compiled statically and with the loop."""
    cache = CompileCache()
    static = compile_run(
        graph_builder(), "tsplit", gpu, cache=cache,
        iterations=iterations, faults=faults,
    )
    dynamic = compile_run(
        graph_builder(), "tsplit", gpu, cache=cache,
        iterations=iterations, faults=faults, replan=replan,
    )
    assert static.result.feasible, static.result.failure
    assert dynamic.result.feasible, dynamic.result.failure
    return static, dynamic


class TestReplanConfig:
    def test_coerce_none_and_false_disable(self):
        assert ReplanConfig.coerce(None) is None
        assert ReplanConfig.coerce(False) is None

    def test_coerce_true_yields_defaults(self):
        config = ReplanConfig.coerce(True)
        assert isinstance(config, ReplanConfig)
        assert config.enabled and config.max_replans == 8

    def test_coerce_passes_instances_through(self):
        config = ReplanConfig(max_replans=2)
        assert ReplanConfig.coerce(config) is config

    def test_coerce_disabled_instance_is_none(self):
        assert ReplanConfig.coerce(ReplanConfig(enabled=False)) is None


class TestProgramDigest:
    def test_digest_is_stable_and_discriminating(self):
        cache = CompileCache()
        a = compile_run(win_graph(), "tsplit", WIN_GPU, cache=cache)
        b = compile_run(win_graph(), "tsplit", WIN_GPU, cache=cache)
        other = compile_run(win_graph(), "vdnn_all", WIN_GPU, cache=cache)
        digest = program_digest(a.lowered.program.program)
        assert digest == program_digest(b.lowered.program.program)
        assert digest != program_digest(other.lowered.program.program)


class TestSwapProgramValidation:
    def lowered(self, graph, gpu=WIN_GPU):
        run = compile_run(graph, "tsplit", gpu, cache=CompileCache())
        assert run.result.feasible, run.result.failure
        return run.lowered.program.program

    def swap_at_first_boundary(self, base, replacement):
        def hook(index, run):
            run.swap_program(replacement)
            return None

        Engine(WIN_GPU).execute_iterations(base, 2, boundary_hook=hook)

    def test_batch_change_rejected(self):
        base = self.lowered(win_graph())
        other = dataclasses.replace(base, batch=base.batch * 2)
        with pytest.raises(RuntimeExecutionError, match="batch"):
            self.swap_at_first_boundary(base, other)

    def test_persistent_region_change_rejected(self):
        base = self.lowered(win_graph())
        other = dataclasses.replace(
            base, persistent_bytes=base.persistent_bytes + 1024,
        )
        with pytest.raises(RuntimeExecutionError, match="persistent"):
            self.swap_at_first_boundary(base, other)

    def test_swapping_identical_program_is_allowed(self):
        base = self.lowered(win_graph())
        durations, trace = Engine(WIN_GPU).execute_iterations(
            base, 3,
            boundary_hook=lambda index, run: (
                run.swap_program(base) if index == 0 else None
            ),
        )
        plain, _ = Engine(WIN_GPU).execute_iterations(base, 3)
        assert trace.plan_swaps == 1
        assert durations == plain


class TestCleanByteIdentity:
    """Faults off ⇒ the loop is attached but provably inert."""

    def test_dynamic_equals_static_without_pressure(self):
        static, dynamic = run_pair(win_graph, WIN_GPU, iterations=4)
        assert dynamic.executed.durations == static.executed.durations
        assert dynamic.result.trace.records == static.result.trace.records
        assert dynamic.result.trace.plan_swaps == 0

    def test_clean_replan_report_is_empty(self):
        _, dynamic = run_pair(win_graph, WIN_GPU, iterations=4)
        report = dynamic.replan
        assert report is not None and report.enabled
        assert report.replans == 0 and report.reverts == 0
        assert report.records == [] and not report.triggered
        assert len(report.segments) == 1
        assert report.events == []

    def test_static_run_carries_no_report(self):
        static, _ = run_pair(win_graph, WIN_GPU, iterations=4)
        assert static.replan is None


class TestDegradedReplanWins:
    def test_dynamic_beats_static_under_degraded_link(self):
        static, dynamic = run_pair(
            win_graph, WIN_GPU, iterations=5, faults=DEGRADED,
        )
        static_time = sum(static.executed.durations)
        dynamic_time = sum(dynamic.executed.durations)
        assert dynamic_time < static_time
        report = dynamic.replan
        assert report.replans >= 1 and report.reverts == 0
        assert "swap" in {record.action for record in report.records}
        assert len(report.segments) >= 2
        assert dynamic.result.trace.plan_swaps >= 1

    def test_swap_condition_reflects_observed_bandwidth(self):
        _, dynamic = run_pair(
            win_graph, WIN_GPU, iterations=5, faults=DEGRADED,
        )
        swaps = [
            record for record in dynamic.replan.records
            if record.action == "swap"
        ]
        # 60% degradation quantised on the 0.05 grid: exactly 0.4, not
        # the 0.35 float dust would give.
        assert swaps[0].condition == (0.4, 0.0)

    def test_trace_describe_mentions_replans(self):
        _, dynamic = run_pair(
            win_graph, WIN_GPU, iterations=5, faults=DEGRADED,
        )
        assert "replans" in dynamic.result.trace.describe()

    def test_report_to_dict_round_trips(self):
        _, dynamic = run_pair(
            win_graph, WIN_GPU, iterations=5, faults=DEGRADED,
        )
        payload = dynamic.replan.to_dict()
        assert payload["replans"] == dynamic.replan.replans
        assert payload["stream_digest"] == dynamic.replan.stream_digest()
        assert len(payload["segments"]) == len(dynamic.replan.segments)
        assert payload["records"][0]["action"] in {
            "swap", "no_change", "no_gain", "infeasible", "incompatible",
        }
        assert payload["pressure_events"]

    def test_replanning_is_deterministic_across_runs(self):
        _, first = run_pair(
            win_graph, WIN_GPU, iterations=5, faults=DEGRADED,
        )
        _, second = run_pair(
            win_graph, WIN_GPU, iterations=5, faults=DEGRADED,
        )
        assert first.replan.stream_digest() == second.replan.stream_digest()
        assert first.executed.durations == second.executed.durations


class TestPrescreenGuard:
    """The scratch simulation rejects swaps the cost model oversells."""

    def test_no_gain_keeps_dynamic_equal_to_static(self):
        static, dynamic = run_pair(
            nogain_graph, NOGAIN_GPU, iterations=5, faults=DEGRADED,
        )
        assert dynamic.executed.durations == static.executed.durations
        report = dynamic.replan
        actions = [record.action for record in report.records]
        assert "no_gain" in actions and "swap" not in actions
        assert report.replans == 0 and report.reverts == 0
        assert dynamic.result.trace.plan_swaps == 0

    def test_no_gain_records_the_prediction(self):
        _, dynamic = run_pair(
            nogain_graph, NOGAIN_GPU, iterations=5, faults=DEGRADED,
        )
        record = next(
            r for r in dynamic.replan.records if r.action == "no_gain"
        )
        assert "pre-screen" in record.detail
        assert record.condition != BASE_CONDITION

    def test_rejected_condition_is_not_retried(self):
        _, dynamic = run_pair(
            nogain_graph, NOGAIN_GPU, iterations=6, faults=DEGRADED,
        )
        no_gains = [
            r for r in dynamic.replan.records if r.action == "no_gain"
        ]
        # Pressure persists every window, but the blacklisted condition
        # is decided exactly once.
        assert len(no_gains) == 1


class TestLastBoundaryGuard:
    """No swap whose measured trial could not be reverted."""

    def test_two_iterations_never_swap(self):
        static, dynamic = run_pair(
            win_graph, WIN_GPU, iterations=2, faults=DEGRADED,
        )
        assert dynamic.replan.replans == 0
        assert dynamic.replan.records == []
        assert dynamic.executed.durations == static.executed.durations

    def test_three_iterations_can_swap(self):
        _, dynamic = run_pair(
            win_graph, WIN_GPU, iterations=3, faults=DEGRADED,
        )
        assert dynamic.replan.replans == 1


class TestBackendDeterminism:
    """The same points replanned on any backend are byte-identical."""

    def specs(self, cache_dir):
        from repro.analysis.sweep_tasks import ReplanTaskSpec

        gpu = GPU_PRESETS["gtx_1080ti"]
        gpu = gpu.with_memory(int(gpu.memory_bytes * 0.5))
        return [
            ReplanTaskSpec(
                model="resnet152", batch=64, policy="tsplit", gpu=gpu,
                fault_class="degraded_pcie", intensity=intensity, seed=0,
                iterations=4, cache_dir=cache_dir,
            )
            for intensity in (0.0, 1.0)
        ]

    def test_serial_thread_process_agree(self, tmp_path):
        from repro.analysis.parallel import parallel_map
        from repro.analysis.sweep_tasks import run_replan_point

        specs = self.specs(str(tmp_path))
        results = {
            backend: parallel_map(
                run_replan_point, specs, 2, backend=backend,
            )
            for backend in ("serial", "thread", "process")
        }
        assert results["serial"] == results["thread"]
        assert results["serial"] == results["process"]
        degraded = results["serial"][1]
        assert degraded["replans"] >= 1
        assert degraded["dynamic_time_s"] < degraded["static_time_s"]
        assert degraded["stream_digest"]


class _StubController:
    """Boundary-hook plumbing double for cluster tests."""

    def __init__(self, program=None):
        self.monitor = PressureMonitor()
        self.program = program
        self.calls = []

    def boundary_hook(self, index, run):
        self.calls.append(index)
        return self.program

    def finalize(self):
        return f"report@{len(self.calls)}"


class TestClusterReplanController:
    def test_rank_bounds_validated(self):
        with pytest.raises(ValueError, match="rank"):
            ClusterReplanController(2, {2: _StubController()})

    def test_every_rank_gets_a_monitor(self):
        controller = _StubController()
        cluster = ClusterReplanController(3, {1: controller})
        assert len(cluster.monitors) == 3
        assert cluster.monitors[1] is controller.monitor
        assert all(
            isinstance(monitor, PressureMonitor)
            for monitor in cluster.monitors
        )
        assert cluster.observers == [[m] for m in cluster.monitors]

    def test_boundary_hook_collects_rank_local_swaps(self):
        swapping = _StubController(program="program-1")
        quiet = _StubController(program=None)
        cluster = ClusterReplanController(2, {0: swapping, 1: quiet})
        swaps = cluster.boundary_hook(0, ["run-0", "run-1"])
        assert swaps == {0: "program-1"}
        assert swapping.calls == [0] and quiet.calls == [0]

    def test_finalize_reports_per_controlled_rank(self):
        cluster = ClusterReplanController(2, {1: _StubController()})
        cluster.boundary_hook(0, ["run-0", "run-1"])
        assert cluster.finalize() == {1: "report@1"}


class TestClusterSingleRankParity:
    def test_cluster_iterations_match_single_engine(self):
        run = compile_run(win_graph(), "tsplit", WIN_GPU, cache=CompileCache())
        program = run.lowered.program.program
        single_durations, single_trace = Engine(WIN_GPU).execute_iterations(
            program, 3,
        )
        cluster = ClusterSpec.homogeneous(WIN_GPU, 1)
        cluster_durations, cluster_trace = ClusterEngine(
            cluster,
        ).execute_iterations([program], 3)
        assert cluster_durations == [single_durations]
        assert cluster_trace.ranks[0].records == single_trace.records
        assert cluster_trace.makespan == sum(single_durations)

    def test_cluster_boundary_swap_is_rank_local_noop_for_identity(self):
        run = compile_run(win_graph(), "tsplit", WIN_GPU, cache=CompileCache())
        program = run.lowered.program.program
        cluster = ClusterSpec.homogeneous(WIN_GPU, 1)
        monitor = PressureMonitor()
        durations, trace = ClusterEngine(cluster).execute_iterations(
            [program], 3, observers=[[monitor]],
            boundary_hook=lambda index, runs: {},
        )
        plain, _ = ClusterEngine(cluster).execute_iterations([program], 3)
        assert durations == plain
        assert len(monitor.history) == 3
