"""ModelBuilder layer vocabulary: shape inference and annotations."""

import pytest

from repro.errors import ShapeError
from repro.graph.ops import OpType, conv2d_flops, matmul_flops
from repro.graph.tensor import DIM_PARAMETER, DIM_SAMPLE
from repro.models.layers import ModelBuilder


@pytest.fixture
def builder():
    return ModelBuilder("t", 4)


class TestConv:
    def test_same_padding_preserves_spatial(self, builder):
        x = builder.input_image(3, 16, 16)
        y = builder.conv2d(x, 8, 3)
        assert y.shape == (4, 8, 16, 16)

    def test_stride_halves(self, builder):
        x = builder.input_image(3, 16, 16)
        y = builder.conv2d(x, 8, 3, stride=2)
        assert y.shape[2] == 8

    def test_valid_padding(self, builder):
        x = builder.input_image(3, 16, 16)
        y = builder.conv2d(x, 8, 3, padding=0)
        assert y.shape[2] == 14

    def test_flops_formula(self, builder):
        x = builder.input_image(3, 16, 16)
        builder.conv2d(x, 8, 3, name="c")
        op = next(o for o in builder.graph.ops.values() if o.name == "c")
        assert op.flops == conv2d_flops(4, 3, 8, 16, 16, 3, 3)

    def test_workspace_attached(self, builder):
        x = builder.input_image(3, 16, 16)
        builder.conv2d(x, 8, 3, name="c")
        op = next(o for o in builder.graph.ops.values() if o.name == "c")
        assert op.workspace_bytes > 0

    def test_collapsed_output_rejected(self, builder):
        x = builder.input_image(3, 4, 4)
        with pytest.raises(ShapeError):
            builder.conv2d(x, 8, 7, padding=0)

    def test_non_nchw_rejected(self, builder):
        tokens = builder.input_tokens(6)
        with pytest.raises(ShapeError):
            builder.conv2d(tokens, 8, 3)

    def test_split_axes_annotated(self, builder):
        x = builder.input_image(3, 16, 16)
        y = builder.conv2d(x, 8, 3)
        assert y.split_axes[DIM_SAMPLE] == 0
        assert y.split_axes[DIM_PARAMETER] == 1


class TestPoolAndShape:
    def test_maxpool_defaults_stride_to_kernel(self, builder):
        x = builder.input_image(3, 16, 16)
        y = builder.maxpool(x, 2)
        assert y.shape[2:] == (8, 8)

    def test_global_avgpool_flattens_spatial(self, builder):
        x = builder.input_image(3, 16, 16)
        y = builder.global_avgpool(x)
        assert y.shape == (4, 3)

    def test_flatten(self, builder):
        x = builder.input_image(3, 4, 4)
        y = builder.flatten(x)
        assert y.shape == (4, 48)

    def test_concat_channel(self, builder):
        x = builder.input_image(3, 8, 8)
        a = builder.conv2d(x, 4, 1, padding=0)
        b = builder.conv2d(x, 6, 1, padding=0)
        y = builder.concat([a, b])
        assert y.shape[1] == 10

    def test_concat_mismatched_spatial_rejected(self, builder):
        x = builder.input_image(3, 8, 8)
        a = builder.conv2d(x, 4, 1, padding=0)
        b = builder.conv2d(x, 4, 3, padding=0)
        with pytest.raises(ShapeError):
            builder.concat([a, b])

    def test_empty_concat_rejected(self, builder):
        with pytest.raises(ShapeError):
            builder.concat([])


class TestAdd:
    def test_same_shape(self, builder):
        x = builder.input_image(3, 8, 8)
        a = builder.relu(x)
        y = builder.add(x, a)
        assert y.shape == x.shape

    def test_broadcast_allowed(self, builder):
        tokens = builder.input_tokens(6)
        x = builder.embedding(tokens, 10, 8)
        bias = builder.graph.add_tensor("bias", (6, 8))
        seed = builder.graph.add_tensor(
            "seed", (6, 8),
        )
        # give bias a producer so validation holds
        builder.graph.add_op("mk", OpType.RELU, inputs=[seed], outputs=[bias])
        y = builder.add(x, bias)
        assert y.shape == (4, 6, 8)

    def test_incompatible_rejected(self, builder):
        x = builder.input_image(3, 8, 8)
        tokens = builder.input_tokens(7)
        with pytest.raises(ShapeError):
            builder.add(x, tokens)


class TestDenseAndAttention:
    def test_linear_2d(self, builder):
        x = builder.input_image(3, 4, 4)
        flat = builder.flatten(x)
        y = builder.linear(flat, 10)
        assert y.shape == (4, 10)

    def test_linear_3d_keeps_sequence(self, builder):
        tokens = builder.input_tokens(6)
        x = builder.embedding(tokens, 10, 8)
        y = builder.linear(x, 16)
        assert y.shape == (4, 6, 16)

    def test_linear_flops(self, builder):
        x = builder.input_image(3, 4, 4)
        flat = builder.flatten(x)
        builder.linear(flat, 10, name="fc")
        op = next(o for o in builder.graph.ops.values() if o.name == "fc")
        assert op.flops == matmul_flops(4, 10, 48)

    def test_attention_shapes(self, builder):
        tokens = builder.input_tokens(6)
        x = builder.embedding(tokens, 10, 8)
        y = builder.attention(x, heads=2)
        assert y.shape == (4, 6, 8)
        scores = next(
            t for t in builder.graph.tensors.values()
            if t.name.endswith("/scores")
        )
        assert scores.shape == (4, 2, 6, 6)

    def test_cross_attention_uses_kv_length(self, builder):
        q_tokens = builder.input_tokens(6)
        kv_tokens = builder.input_tokens(9, name="kv")
        q = builder.embedding(q_tokens, 10, 8, name="qe")
        kv = builder.embedding(kv_tokens, 10, 8, name="kve")
        builder.attention(q, heads=2, kv=kv, name="cross")
        scores = next(
            t for t in builder.graph.tensors.values()
            if t.name == "cross/scores"
        )
        assert scores.shape == (4, 2, 6, 9)

    def test_indivisible_heads_rejected(self, builder):
        tokens = builder.input_tokens(6)
        x = builder.embedding(tokens, 10, 9)
        with pytest.raises(ShapeError):
            builder.attention(x, heads=2)


class TestNaming:
    def test_unique_names(self, builder):
        assert builder.unique("conv") == "conv"
        assert builder.unique("conv") == "conv_2"
        assert builder.unique("conv") == "conv_3"

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            ModelBuilder("bad", 0)
