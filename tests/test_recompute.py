"""Recompute chains and strategies (Section V-D)."""

import pytest

from repro.core.plan import MemOption, Plan, TensorConfig
from repro.core.recompute import (
    RecomputeStrategy,
    chain_compute_time,
    chain_extra_bytes,
    chain_transient_bytes,
    planning_chain,
    recompute_chain,
)
from repro.errors import PlanningError
from repro.graph.liveness import compute_liveness
from repro.graph.scheduler import dfs_schedule


def find(graph, name):
    return next(t for t in graph.tensors.values() if t.name == name)


class TestChainDiscovery:
    def test_single_op_chain_when_input_resident(self, tiny_cnn):
        relu_out = find(tiny_cnn, "relu1/out")
        chain = recompute_chain(tiny_cnn, relu_out.tensor_id, lambda t: True)
        assert len(chain) == 1
        assert tiny_cnn.ops[chain[0]].name == "relu1"

    def test_chain_extends_through_missing_ancestors(self, tiny_cnn):
        relu_out = find(tiny_cnn, "relu2/out")
        conv2_out = find(tiny_cnn, "conv2/out")
        relu1_out = find(tiny_cnn, "relu1/out")
        missing = {conv2_out.tensor_id, relu1_out.tensor_id}
        chain = recompute_chain(
            tiny_cnn, relu_out.tensor_id, lambda t: t not in missing,
        )
        names = [tiny_cnn.ops[op].name for op in chain]
        assert names == ["relu1", "conv2", "relu2"]

    def test_chain_order_is_topological(self, tiny_cnn):
        relu_out = find(tiny_cnn, "relu2/out")
        chain = recompute_chain(tiny_cnn, relu_out.tensor_id, lambda t: False)
        assert chain == sorted(chain)

    def test_unproducible_tensor_rejected(self, tiny_cnn):
        graph_input = tiny_cnn.graph_inputs()[0]
        with pytest.raises(PlanningError):
            recompute_chain(tiny_cnn, graph_input.tensor_id, lambda t: True)

    def test_chain_length_cap(self, tiny_cnn):
        relu_out = find(tiny_cnn, "relu2/out")
        with pytest.raises(PlanningError, match="exceeds"):
            recompute_chain(
                tiny_cnn, relu_out.tensor_id, lambda t: False, max_len=1,
            )


class TestPlanningChain:
    def test_swap_sources_terminate_chain(self, tiny_cnn):
        schedule = dfs_schedule(tiny_cnn)
        liveness = compute_liveness(tiny_cnn, schedule)
        relu2 = find(tiny_cnn, "relu2/out")
        conv2 = find(tiny_cnn, "conv2/out")
        plan = Plan()
        plan.set(relu2.tensor_id, TensorConfig(opt=MemOption.RECOMPUTE))
        plan.set(conv2.tensor_id, TensorConfig(opt=MemOption.SWAP))
        chain = planning_chain(
            tiny_cnn, relu2.tensor_id, plan, liveness.free_step,
            regen_step=len(schedule) - 1,
        )
        assert [tiny_cnn.ops[o].name for o in chain] == ["relu2"]

    def test_dead_reside_ancestor_joins_chain(self, tiny_cnn):
        """conv2/out (RESIDE) dies at relu2 in the forward; a chain
        regenerating relu2/out late in the backward must rebuild it."""
        schedule = dfs_schedule(tiny_cnn)
        liveness = compute_liveness(tiny_cnn, schedule)
        relu2 = find(tiny_cnn, "relu2/out")
        conv2 = find(tiny_cnn, "conv2/out")
        plan = Plan()
        plan.set(relu2.tensor_id, TensorConfig(opt=MemOption.RECOMPUTE))
        conv2_free = liveness.free_step[conv2.tensor_id]
        chain = planning_chain(
            tiny_cnn, relu2.tensor_id, plan, liveness.free_step,
            regen_step=conv2_free + 1,
        )
        assert conv2.producer in chain


class TestChainCosts:
    def test_compute_time_sums(self, tiny_cnn):
        chain = [0, 1, 2]
        assert chain_compute_time(chain, lambda op: 2.0) == 6.0

    def test_transient_bytes_is_worst_op(self, tiny_cnn):
        relu2 = find(tiny_cnn, "relu2/out")
        chain = recompute_chain(tiny_cnn, relu2.tensor_id, lambda t: False)
        transient = chain_transient_bytes(tiny_cnn, chain)
        # At least the largest activation in the chain.
        assert transient >= relu2.size_bytes

    def test_extra_bytes_subtracts_target(self, tiny_cnn):
        relu2 = find(tiny_cnn, "relu2/out")
        chain = recompute_chain(tiny_cnn, relu2.tensor_id, lambda t: True)
        extra = chain_extra_bytes(tiny_cnn, chain, relu2.tensor_id)
        assert extra == chain_transient_bytes(tiny_cnn, chain) - relu2.size_bytes


class TestStrategyEnum:
    def test_three_strategies(self):
        assert {s.value for s in RecomputeStrategy} == {
            "memory_centric", "speed_centric", "lru",
        }
