"""Instruction IR data model."""

from repro.runtime.instructions import (
    ComputeInstr,
    Device,
    FreeInstr,
    Program,
    SwapInInstr,
    SwapOutInstr,
    TensorRef,
    WHOLE,
    XferInstr,
)


class TestTensorRef:
    def test_whole_marker(self):
        ref = TensorRef(5, 1024)
        assert ref.micro_index == WHOLE
        assert not ref.is_micro
        assert ref.key == (5, WHOLE)

    def test_micro_identity(self):
        a = TensorRef(5, 512, 0)
        b = TensorRef(5, 512, 1)
        assert a.is_micro and b.is_micro
        assert a.key != b.key

    def test_refs_hashable_and_equal(self):
        assert TensorRef(1, 10, 2) == TensorRef(1, 10, 2)
        assert hash(TensorRef(1, 10, 2)) == hash(TensorRef(1, 10, 2))


class TestProgram:
    def test_append_and_len(self):
        program = Program(name="p")
        program.append(ComputeInstr("a", 1.0))
        program.extend([
            SwapOutInstr(TensorRef(0, 1)),
            SwapInInstr(TensorRef(0, 1)),
            FreeInstr(TensorRef(1, 1)),
            XferInstr(nbytes=1, direction="h2d"),
        ])
        assert len(program) == 5

    def test_counts_histogram(self):
        program = Program(name="p")
        program.append(ComputeInstr("a", 1.0))
        program.append(ComputeInstr("b", 1.0))
        program.append(FreeInstr(TensorRef(0, 1)))
        counts = program.counts()
        assert counts["ComputeInstr"] == 2
        assert counts["FreeInstr"] == 1

    def test_devices(self):
        gpu_instr = ComputeInstr("a", 1.0)
        cpu_instr = ComputeInstr("b", 1.0, device=Device.CPU)
        assert gpu_instr.device is Device.GPU
        assert cpu_instr.device is Device.CPU

    def test_defaults(self):
        instr = ComputeInstr("a", 1.0)
        assert instr.inputs == ()
        assert instr.alloc_only == ()
        assert instr.finishes == ()
        assert instr.transient_bytes == 0
