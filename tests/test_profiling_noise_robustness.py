"""Planner robustness to profiling noise.

The paper's planner relies on the predictability of DNN op times; real
profilers still measure with some jitter. Plans built from noisy
profiles must stay feasible — the memory side of planning is
noise-independent, only ΔT rankings wobble.
"""

import pytest

from repro.core.cost_model import CostModelOptions
from repro.core.planner import PlannerOptions, TsplitPlanner
from repro.core.profiler import Profiler
from repro.core.simulate import simulate_memory
from tests.conftest import BIG_GPU, build_tiny_cnn


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_noisy_profiles_still_plan_feasibly(seed):
    graph = build_tiny_cnn(batch=64, image=32)
    baseline = TsplitPlanner(BIG_GPU).plan(graph).baseline_peak
    gpu = BIG_GPU.with_memory(int(baseline * 0.7))
    options = PlannerOptions(
        cost=CostModelOptions(min_split_bytes=0, min_evict_bytes=0),
    )
    profiler = Profiler(gpu, noise_sigma=0.05, seed=seed)
    planner = TsplitPlanner(gpu, options, profiler=profiler)
    result = planner.plan(graph)
    curve = simulate_memory(graph, result.schedule, result.plan)
    assert curve.max() <= gpu.memory_bytes


def test_noise_changes_only_time_estimates():
    """Same budget, different noise: the plans may differ in ΔT ranking,
    but every produced plan meets the memory budget."""
    graph = build_tiny_cnn(batch=64, image=32)
    baseline = TsplitPlanner(BIG_GPU).plan(graph).baseline_peak
    gpu = BIG_GPU.with_memory(int(baseline * 0.75))
    options = PlannerOptions(
        cost=CostModelOptions(min_split_bytes=0, min_evict_bytes=0),
    )
    peaks = []
    for seed in (0, 7):
        profiler = Profiler(gpu, noise_sigma=0.1, seed=seed)
        result = TsplitPlanner(gpu, options, profiler=profiler).plan(graph)
        peaks.append(result.peak_memory)
    assert all(peak <= gpu.memory_bytes for peak in peaks)
