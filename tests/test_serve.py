"""The plan-serving daemon: coalescing, admission, warm cache sharing.

Concurrency tests use event-gated fake computes where determinism
matters (every duplicate *must* overlap its flight) and real compiles
where the contract is about artifacts (byte-identity with direct
``compile_run``, exactly-once planning per unique key).
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import telemetry
from repro.hardware.gpu import GPU_PRESETS
from repro.models.registry import build_model
from repro.pipeline import CompileCache, compile_run
from repro.serve import (
    AdmissionController,
    AdmissionRejected,
    PlanService,
    ServeConfig,
    SingleFlight,
    plan_digest,
    start_server,
)
from repro.serve.client import ServeClient, ServeError
from repro.serve.service import RequestError, ServiceClosed


def make_service(**overrides) -> PlanService:
    defaults = dict(workers=4, max_inflight=32, tenant_quota=8)
    defaults.update(overrides)
    return PlanService(ServeConfig(**defaults))


PLAN_PAYLOAD = {
    "model": "vgg16", "policy": "tsplit", "gpu": "rtx_titan", "batch": 16,
}


class TestSingleFlight:
    def test_concurrent_duplicates_share_one_compute(self):
        table = SingleFlight()
        release = threading.Event()
        computes = []

        def compute():
            computes.append(1)
            assert release.wait(5.0)
            return "value"

        results = []
        with ThreadPoolExecutor(max_workers=6) as pool:
            futures = [
                pool.submit(table.run, "k", compute) for _ in range(6)
            ]
            # Wait until every joiner is parked on the flight.
            deadline = time.time() + 5.0
            while table.joins < 5 and time.time() < deadline:
                time.sleep(0.01)
            release.set()
            results = [f.result() for f in futures]
        assert len(computes) == 1
        assert sorted(coalesced for _, coalesced in results) == \
            [False] + [True] * 5
        assert all(value == "value" for value, _ in results)
        stats = table.stats()
        assert stats == {
            "flights": 1, "joins": 5, "coalescing_ratio": 6.0,
        }

    def test_sequential_calls_start_fresh_flights(self):
        table = SingleFlight()
        assert table.run("k", lambda: 1) == (1, False)
        assert table.run("k", lambda: 2) == (2, False)
        assert table.stats()["flights"] == 2

    def test_distinct_keys_do_not_coalesce(self):
        table = SingleFlight()
        table.run("a", lambda: 1)
        table.run("b", lambda: 2)
        assert table.stats() == {
            "flights": 2, "joins": 0, "coalescing_ratio": 1.0,
        }

    def test_leader_error_propagates_to_joiners(self):
        table = SingleFlight()
        release = threading.Event()

        def explode():
            assert release.wait(5.0)
            raise RuntimeError("boom")

        with ThreadPoolExecutor(max_workers=3) as pool:
            futures = [
                pool.submit(table.run, "k", explode) for _ in range(3)
            ]
            deadline = time.time() + 5.0
            while table.joins < 2 and time.time() < deadline:
                time.sleep(0.01)
            release.set()
            for future in futures:
                with pytest.raises(RuntimeError, match="boom"):
                    future.result()


class TestAdmissionController:
    def test_global_cap_rejects_with_queue_scope(self):
        admission = AdmissionController(max_inflight=2, tenant_quota=2)
        admission.acquire("a")
        admission.acquire("b")
        with pytest.raises(AdmissionRejected) as exc:
            admission.acquire("c")
        assert exc.value.scope == "queue"
        assert admission.stats()["rejected_queue"] == 1

    def test_tenant_quota_rejects_with_tenant_scope(self):
        admission = AdmissionController(max_inflight=10, tenant_quota=1)
        admission.acquire("a")
        with pytest.raises(AdmissionRejected) as exc:
            admission.acquire("a")
        assert exc.value.scope == "tenant"
        admission.acquire("b")  # other tenants unaffected
        assert admission.stats()["rejected_tenant"] == 1

    def test_release_frees_both_limits(self):
        admission = AdmissionController(max_inflight=1, tenant_quota=1)
        admission.acquire("a")
        admission.release("a")
        admission.acquire("a")  # does not raise
        assert admission.stats()["inflight"] == 1
        assert admission.stats()["by_tenant"] == {"a": 1}


class TestRequestValidation:
    def test_unknown_model_policy_gpu_mode(self):
        service = make_service()
        for bad in (
            {"model": "nope"},
            {**PLAN_PAYLOAD, "policy": "nope"},
            {**PLAN_PAYLOAD, "gpu": "nope"},
            {**PLAN_PAYLOAD, "mode": "nope"},
            {**PLAN_PAYLOAD, "unknown_field": 1},
            {**PLAN_PAYLOAD, "batch": "not-a-number"},
            {**PLAN_PAYLOAD, "batch": 0},
            {**PLAN_PAYLOAD, "capacity_frac": 0.0},
            {**PLAN_PAYLOAD, "iterations": 3},  # requires mode="run"
            {**PLAN_PAYLOAD, "precision": "fp64"},
            "not a dict",
        ):
            with pytest.raises(RequestError):
                service.handle_plan(bad)
        service.close()

    def test_key_excludes_tenant_but_not_config(self):
        service = make_service()
        base = service.parse_request(PLAN_PAYLOAD)
        other_tenant = service.parse_request(
            {**PLAN_PAYLOAD, "tenant": "team-b"},
        )
        other_batch = service.parse_request({**PLAN_PAYLOAD, "batch": 32})
        other_mode = service.parse_request({**PLAN_PAYLOAD, "mode": "run"})
        assert base.key == other_tenant.key
        assert base.key != other_batch.key
        assert base.key != other_mode.key
        service.close()

    def test_precision_folds_into_overrides(self):
        service = make_service()
        request = service.parse_request(
            {**PLAN_PAYLOAD, "precision": "fp16"},
        )
        assert ("precision", "fp16") in request.overrides
        service.close()


class TestPlanService:
    def test_plan_digest_matches_direct_compile_run(self):
        service = make_service()
        body = service.handle_plan(PLAN_PAYLOAD)
        assert body["feasible"]
        assert body["cached"] == {"profile": False, "plan": False}
        direct = compile_run(
            build_model("vgg16", 16), "tsplit", GPU_PRESETS["rtx_titan"],
        )
        assert body["plan_digest"] == plan_digest(direct.plan.plan)
        assert body["plan_summary"] == direct.plan.plan.summary(
            build_model("vgg16", 16),
        )
        # Second request: warm graph cache + warm compile cache.
        warm = service.handle_plan(PLAN_PAYLOAD)
        assert warm["cached"] == {"profile": True, "plan": True}
        assert warm["plan_digest"] == body["plan_digest"]
        service.close()

    def test_run_mode_reports_trace_metrics(self):
        service = make_service()
        body = service.handle_plan({**PLAN_PAYLOAD, "mode": "run"})
        assert body["feasible"]
        assert body["throughput"] > 0
        assert body["peak_memory"] > 0
        assert body["iteration_time"] > 0
        service.close()

    def test_infeasible_is_a_response_not_an_error(self):
        service = make_service()
        body = service.handle_plan({
            "model": "vgg16", "policy": "tsplit", "gpu": "rtx_titan",
            "batch": 64, "capacity_frac": 0.02,
        })
        assert not body["feasible"]
        assert body["failure"]
        assert body["plan_digest"] == ""
        service.close()

    def test_concurrent_duplicates_coalesce(self, monkeypatch):
        service = make_service(workers=2)
        release = threading.Event()
        computes = []
        original = service._compute

        def gated(request):
            computes.append(request.key)
            assert release.wait(5.0)
            return original(request)

        monkeypatch.setattr(service, "_compute", gated)
        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [
                pool.submit(service.handle_plan, dict(PLAN_PAYLOAD))
                for _ in range(8)
            ]
            deadline = time.time() + 5.0
            while service.flights.joins < 7 and time.time() < deadline:
                time.sleep(0.01)
            release.set()
            bodies = [f.result() for f in futures]
        assert len(computes) == 1  # one flight computed, 7 joined
        assert sorted(b["coalesced"] for b in bodies) == \
            [False] + [True] * 7
        digests = {b["plan_digest"] for b in bodies}
        assert len(digests) == 1
        assert service.flights.stats()["coalescing_ratio"] == 8.0
        service.close()

    def test_tenant_quota_rejection_through_handle_plan(self, monkeypatch):
        service = make_service(workers=2, max_inflight=16, tenant_quota=1)
        release = threading.Event()
        original = service._compute

        def gated(request):
            assert release.wait(5.0)
            return original(request)

        monkeypatch.setattr(service, "_compute", gated)
        with ThreadPoolExecutor(max_workers=2) as pool:
            first = pool.submit(
                service.handle_plan, {**PLAN_PAYLOAD, "tenant": "a"},
            )
            deadline = time.time() + 5.0
            while (
                service.admission.stats()["inflight"] < 1
                and time.time() < deadline
            ):
                time.sleep(0.01)
            # Same tenant, *different* config: quota must trip (the
            # identical config would coalesce, not queue).
            with pytest.raises(AdmissionRejected) as exc:
                service.handle_plan(
                    {**PLAN_PAYLOAD, "batch": 32, "tenant": "a"},
                )
            assert exc.value.scope == "tenant"
            release.set()
            assert first.result()["feasible"]
        service.close()

    def test_close_drains_inflight_then_rejects(self, monkeypatch):
        service = make_service(workers=2)
        started = threading.Event()
        original = service._compute

        def slow(request):
            started.set()
            time.sleep(0.2)
            return original(request)

        monkeypatch.setattr(service, "_compute", slow)
        with ThreadPoolExecutor(max_workers=1) as pool:
            future = pool.submit(service.handle_plan, dict(PLAN_PAYLOAD))
            assert started.wait(5.0)
            service.close(drain=True)  # waits for the in-flight compute
            assert future.result()["feasible"]
        with pytest.raises(ServiceClosed):
            service.handle_plan(dict(PLAN_PAYLOAD))

    def test_budget_share_respects_machine_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "8")
        service = make_service(workers=4)
        assert service.budget_share == 2
        service.close()
        monkeypatch.setenv("REPRO_MAX_WORKERS", "2")
        tight = make_service(workers=4)
        assert tight.budget_share == 1  # floor: never zero
        tight.close()


class TestConcurrentCacheSharing:
    """N threads against one shared CompileCache (the stress contract).

    Exactly one *planning* computation per unique key (every duplicate
    either coalesces into the in-flight compile or hits the warm
    cache), coherent counters (no torn lookups), and artifacts
    byte-identical to a serial ``compile_run``.
    """

    CONFIGS = [
        {"model": "vgg16", "policy": "tsplit", "gpu": "rtx_titan",
         "batch": 8},
        {"model": "vgg16", "policy": "base", "gpu": "rtx_titan",
         "batch": 8},
        {"model": "vgg16", "policy": "tsplit", "gpu": "gtx_1080ti",
         "batch": 16},
        {"model": "resnet50", "policy": "tsplit", "gpu": "rtx_titan",
         "batch": 8},
    ]

    def test_stress_exactly_one_plan_per_unique_key(self):
        service = make_service(workers=4, max_inflight=64,
                               tenant_quota=64)
        requests = [dict(config) for config in self.CONFIGS] * 6
        with ThreadPoolExecutor(max_workers=12) as pool:
            bodies = list(pool.map(service.handle_plan, requests))
        assert all(b["feasible"] for b in bodies)

        stats = service.cache.cache_stats()
        # Coherent counters under concurrency: every lookup resolved
        # as exactly one of memory hit / disk hit / miss.
        assert stats["lookups"] == stats["total_hits"] + stats["misses"]
        # Exactly one planning computation per unique config, one
        # profiling run per unique (model, batch, GPU-perf) identity
        # (capacity excluded; both rtx/1080ti differ in perf too).
        assert stats["kinds"]["plan"]["misses"] == len(self.CONFIGS)
        assert stats["kinds"]["profile"]["misses"] == 3

        # Served plans byte-identical to serial compile_run artifacts.
        by_key = {}
        for config, body in zip(requests, bodies):
            by_key.setdefault(json.dumps(config, sort_keys=True), []).append(
                body,
            )
        for config in self.CONFIGS:
            serial = compile_run(
                build_model(config["model"], config["batch"]),
                config["policy"], GPU_PRESETS[config["gpu"]],
            )
            expected = plan_digest(serial.plan.plan)
            for body in by_key[json.dumps(config, sort_keys=True)]:
                assert body["plan_digest"] == expected
        service.close()

    def test_torn_counter_free_stats_snapshots(self):
        """cache_stats() snapshots taken *during* traffic stay coherent."""
        service = make_service(workers=4, max_inflight=64,
                               tenant_quota=64)
        stop = threading.Event()
        violations = []

        def watch():
            while not stop.is_set():
                stats = service.cache.stats()
                if stats["lookups"] != \
                        stats["total_hits"] + stats["misses"]:
                    violations.append(stats)
                time.sleep(0.001)

        watcher = threading.Thread(target=watch)
        watcher.start()
        requests = [dict(config) for config in self.CONFIGS] * 4
        try:
            with ThreadPoolExecutor(max_workers=8) as pool:
                list(pool.map(service.handle_plan, requests))
        finally:
            stop.set()
            watcher.join()
        assert violations == []
        service.close()


class TestServeTelemetry:
    def test_concurrent_requests_emit_well_nested_spans(self):
        """The serve stress case for the contextvars span fix: many
        compile_run calls against one tracer yield per-track flames
        whose intervals nest properly (no cross-request interleaving).
        """
        with telemetry.session(
            metrics=True, spans=True, provenance=False,
        ) as tel:
            service = make_service(workers=4)
            requests = [
                {**PLAN_PAYLOAD, "mode": "run", "batch": batch}
                for batch in (8, 12, 16, 24)
            ] * 3
            with ThreadPoolExecutor(max_workers=8) as pool:
                bodies = list(pool.map(service.handle_plan, requests))
            assert all(b["feasible"] for b in bodies)
            service.close()

            by_tid = {}
            for span in tel.tracer.spans:
                by_tid.setdefault(span.tid, []).append(span)
            assert len(by_tid) > 1  # several worker threads recorded
            for spans in by_tid.values():
                for span in spans:
                    containers = [
                        other for other in spans
                        if other is not span
                        and other.start <= span.start
                        and span.end <= other.end
                    ]
                    overlaps = [
                        other for other in spans
                        if other is not span
                        and other.start < span.end
                        and span.start < other.end
                        and other not in containers
                        and not (
                            span.start <= other.start
                            and other.end <= span.end
                        )
                    ]
                    assert overlaps == [], (
                        "malformed nesting on one track"
                    )

    def test_stats_surfaces_cache_and_telemetry(self):
        with telemetry.session(
            metrics=True, spans=False, provenance=False,
        ):
            service = make_service()
            service.handle_plan(dict(PLAN_PAYLOAD))
            service.handle_plan(dict(PLAN_PAYLOAD))
            stats = service.stats()
            assert stats["server"]["requests"] == 2
            cache = stats["cache"]
            assert cache["lookups"] == cache["total_hits"] + cache["misses"]
            assert cache["hit_rate"] > 0  # second request was warm
            assert any(
                name.startswith("compile_cache.")
                for name in stats["telemetry"]
            )
            service.close()


class TestServeHTTP:
    @pytest.fixture()
    def server(self):
        service = make_service(workers=2)
        server, _thread = start_server(service)
        yield server
        server.drain()
        server.server_close()

    def test_healthz_plan_stats_roundtrip(self, server):
        client = ServeClient(server.url)
        health = client.healthz()
        assert health["status"] == "ok"
        body = client.plan(**PLAN_PAYLOAD)
        assert body["feasible"]
        assert body["plan_digest"]
        stats = client.stats()
        assert stats["server"]["requests"] == 1
        assert stats["coalescing"]["flights"] == 1

    def test_error_statuses(self, server):
        client = ServeClient(server.url)
        with pytest.raises(ServeError) as exc:
            client.plan(model="nope")
        assert exc.value.status == 400
        with pytest.raises(ServeError) as exc:
            client._request("/plan", None)  # GET on a POST-only path
        assert exc.value.status == 404

    def test_draining_service_returns_503(self, server):
        client = ServeClient(server.url)
        server.service.close(drain=True)
        with pytest.raises(ServeError) as exc:
            client.plan(**PLAN_PAYLOAD)
        assert exc.value.status == 503
