"""Static program verification + whole-pipeline fuzzing on random models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.runner import run_policy
from repro.core.augment import augment_graph
from repro.core.plan import MemOption, Plan, TensorConfig
from repro.core.profiler import Profiler
from repro.core.verify import assert_valid_program, verify_program
from repro.errors import RuntimeExecutionError
from repro.models.random_net import build_random_cnn
from repro.runtime.instructions import ComputeInstr, TensorRef
from tests.conftest import BIG_GPU


def lower(graph, plan):
    profile = Profiler(BIG_GPU).profile(graph)
    return augment_graph(graph, plan, profile)


class TestVerifier:
    def test_clean_base_program(self, tiny_cnn):
        augmented = lower(tiny_cnn, Plan())
        assert verify_program(tiny_cnn, augmented) == []

    def test_clean_eviction_program(self, tiny_cnn):
        plan = Plan()
        for tensor in tiny_cnn.activations()[:4]:
            plan.set(tensor.tensor_id, TensorConfig(opt=MemOption.SWAP))
        augmented = lower(tiny_cnn, plan)
        assert_valid_program(tiny_cnn, augmented)

    def test_clean_split_program(self, tiny_cnn):
        plan = Plan()
        conv_out = next(
            t for t in tiny_cnn.activations() if t.name == "conv1/out"
        )
        plan.set(conv_out.tensor_id,
                 TensorConfig(opt=MemOption.SWAP, p_num=4, dim="sample"))
        augmented = lower(tiny_cnn, plan)
        assert verify_program(tiny_cnn, augmented) == []

    def test_corrupted_program_detected(self, tiny_cnn):
        augmented = lower(tiny_cnn, Plan())
        # Inject a use of a tensor that is never produced.
        bogus = ComputeInstr(
            "bogus", 1.0,
            inputs=(TensorRef(99_999, 1024, label="ghost"),),
        )
        augmented.program.instructions.insert(0, bogus)
        issues = verify_program(tiny_cnn, augmented)
        assert any("ghost" in issue for issue in issues)
        with pytest.raises(RuntimeExecutionError, match="verification"):
            assert_valid_program(tiny_cnn, augmented)

    def test_missing_op_detected(self, tiny_cnn):
        augmented = lower(tiny_cnn, Plan())
        # Drop the last compute instruction (trailing frees may follow).
        instructions = augmented.program.instructions
        last_compute = max(
            i for i, instr in enumerate(instructions)
            if isinstance(instr, ComputeInstr)
        )
        instructions.pop(last_compute)
        issues = verify_program(tiny_cnn, augmented)
        assert any("never computed" in issue for issue in issues)


class TestRandomModels:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_models_build_and_run(self, seed):
        graph = build_random_cnn(seed)
        graph.validate()
        result = run_policy(graph, "base", BIG_GPU)
        assert result.feasible, result.failure

    @pytest.mark.parametrize("seed", range(4))
    def test_random_models_verify_under_policies(self, seed):
        graph = build_random_cnn(seed, batch=8)
        for policy in ("vdnn_all", "checkpoints"):
            result = run_policy(graph, policy, BIG_GPU)
            assert result.feasible, (seed, policy, result.failure)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_fuzz_pipeline_end_to_end(seed):
    """Any random model must lower to a verifiable program and execute,
    under both the do-nothing plan and a swap-everything plan."""
    graph = build_random_cnn(seed, batch=4, max_blocks=4)
    profile = Profiler(BIG_GPU).profile(graph)
    base = augment_graph(graph, Plan(), profile)
    assert verify_program(graph, base) == []

    swap_all = Plan(policy="swap_all")
    for tensor in graph.activations():
        if tensor.producer is not None:
            swap_all.set(tensor.tensor_id, TensorConfig(opt=MemOption.SWAP))
    augmented = augment_graph(graph, swap_all, profile)
    assert verify_program(graph, augmented) == []
    result = run_policy(graph, "base", BIG_GPU)
    assert result.feasible
