"""Static program verification + whole-pipeline fuzzing on random models."""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.allocator_replay import chronological_peak
from repro.analysis.runner import run_policy
from repro.core.augment import augment_graph
from repro.core.plan import MemOption, Plan, TensorConfig
from repro.core.profiler import Profiler
from repro.core.verify import assert_valid_program, verify_program
from repro.errors import RuntimeExecutionError
from repro.faults import FaultConfig
from repro.models.random_net import build_random_cnn
from repro.pipeline.compile import compile_run
from repro.runtime.instructions import (
    ComputeInstr,
    FreeInstr,
    SwapInInstr,
    SwapOutInstr,
    TensorRef,
)
from tests.conftest import BIG_GPU


def lower(graph, plan):
    profile = Profiler(BIG_GPU).profile(graph)
    return augment_graph(graph, plan, profile)


class TestVerifier:
    def test_clean_base_program(self, tiny_cnn):
        augmented = lower(tiny_cnn, Plan())
        assert verify_program(tiny_cnn, augmented) == []

    def test_clean_eviction_program(self, tiny_cnn):
        plan = Plan()
        for tensor in tiny_cnn.activations()[:4]:
            plan.set(tensor.tensor_id, TensorConfig(opt=MemOption.SWAP))
        augmented = lower(tiny_cnn, plan)
        assert_valid_program(tiny_cnn, augmented)

    def test_clean_split_program(self, tiny_cnn):
        plan = Plan()
        conv_out = next(
            t for t in tiny_cnn.activations() if t.name == "conv1/out"
        )
        plan.set(conv_out.tensor_id,
                 TensorConfig(opt=MemOption.SWAP, p_num=4, dim="sample"))
        augmented = lower(tiny_cnn, plan)
        assert verify_program(tiny_cnn, augmented) == []

    def test_corrupted_program_detected(self, tiny_cnn):
        augmented = lower(tiny_cnn, Plan())
        # Inject a use of a tensor that is never produced.
        bogus = ComputeInstr(
            "bogus", 1.0,
            inputs=(TensorRef(99_999, 1024, label="ghost"),),
        )
        augmented.program.instructions.insert(0, bogus)
        issues = verify_program(tiny_cnn, augmented)
        assert any("ghost" in issue for issue in issues)
        with pytest.raises(RuntimeExecutionError, match="verification"):
            assert_valid_program(tiny_cnn, augmented)

    def test_missing_op_detected(self, tiny_cnn):
        augmented = lower(tiny_cnn, Plan())
        # Drop the last compute instruction (trailing frees may follow).
        instructions = augmented.program.instructions
        last_compute = max(
            i for i, instr in enumerate(instructions)
            if isinstance(instr, ComputeInstr)
        )
        instructions.pop(last_compute)
        issues = verify_program(tiny_cnn, augmented)
        assert any("never computed" in issue for issue in issues)


class TestRandomModels:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_models_build_and_run(self, seed):
        graph = build_random_cnn(seed)
        graph.validate()
        result = run_policy(graph, "base", BIG_GPU)
        assert result.feasible, result.failure

    @pytest.mark.parametrize("seed", range(4))
    def test_random_models_verify_under_policies(self, seed):
        graph = build_random_cnn(seed, batch=8)
        for policy in ("vdnn_all", "checkpoints"):
            result = run_policy(graph, policy, BIG_GPU)
            assert result.feasible, (seed, policy, result.failure)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_fuzz_pipeline_end_to_end(seed):
    """Any random model must lower to a verifiable program and execute,
    under both the do-nothing plan and a swap-everything plan."""
    graph = build_random_cnn(seed, batch=4, max_blocks=4)
    profile = Profiler(BIG_GPU).profile(graph)
    base = augment_graph(graph, Plan(), profile)
    assert verify_program(graph, base) == []

    swap_all = Plan(policy="swap_all")
    for tensor in graph.activations():
        if tensor.producer is not None:
            swap_all.set(tensor.tensor_id, TensorConfig(opt=MemOption.SWAP))
    augmented = augment_graph(graph, swap_all, profile)
    assert verify_program(graph, augmented) == []
    result = run_policy(graph, "base", BIG_GPU)
    assert result.feasible


def test_recompute_stepping_stones_do_not_leak():
    """A recompute chain may regenerate a tensor whose only scheduled
    use was in the forward pass (e.g. one feeding just a ReLU, whose
    backward reads the output). Under the speed-centric strategy such a
    stepping-stone has no later op to die at — the augmenter must free
    it at the end of the chain or it stays resident forever. Found by
    the policies x capacities x faults fuzz (seed 0, checkpoints)."""
    graph = build_random_cnn(0, batch=4, max_blocks=3)
    run = compile_run(graph, "checkpoints", BIG_GPU)
    assert run.result.feasible, run.result.failure
    assert verify_program(graph, run.lowered.program) == []


class TestVerifierNeverAllocated:
    """The two issue classes added with the fault layer: evictions and
    frees naming keys that never existed anywhere."""

    def test_swap_out_of_never_allocated_ref(self, tiny_cnn):
        augmented = lower(tiny_cnn, Plan())
        bogus = SwapOutInstr(TensorRef(88_888, 512, label="phantom"))
        augmented.program.instructions.insert(0, bogus)
        issues = verify_program(tiny_cnn, augmented)
        assert any("swap-out of never-allocated" in i and "phantom" in i
                   for i in issues)
        # The invented ref must not fabricate a host copy: a swap-in of
        # the same key stays flagged too.
        augmented.program.instructions.insert(
            1, SwapInInstr(TensorRef(88_888, 512, label="phantom")),
        )
        issues = verify_program(tiny_cnn, augmented)
        assert any("without a host copy" in i for i in issues)

    def test_swap_out_of_evicted_ref_is_distinct_class(self, tiny_cnn):
        plan = Plan()
        tensor = tiny_cnn.activations()[0]
        plan.set(tensor.tensor_id, TensorConfig(opt=MemOption.SWAP))
        augmented = lower(tiny_cnn, plan)
        instructions = augmented.program.instructions
        first_swap = next(
            i for i, instr in enumerate(instructions)
            if isinstance(instr, SwapOutInstr)
        )
        # A second eviction right after the first: the key existed, so
        # this is "non-resident", not "never-allocated".
        instructions.insert(
            first_swap + 1, instructions[first_swap],
        )
        issues = verify_program(tiny_cnn, augmented)
        assert any("swap-out of non-resident" in i for i in issues)
        assert not any("never-allocated" in i for i in issues)

    def test_free_of_never_allocated_ref(self, tiny_cnn):
        augmented = lower(tiny_cnn, Plan())
        bogus = FreeInstr(TensorRef(77_777, 64, label="ghost_free"),
                          missing_ok=False)
        augmented.program.instructions.insert(0, bogus)
        issues = verify_program(tiny_cnn, augmented)
        assert any("free of never-allocated" in i and "ghost_free" in i
                   for i in issues)

    def test_missing_ok_does_not_excuse_never_allocated(self, tiny_cnn):
        augmented = lower(tiny_cnn, Plan())
        bogus = FreeInstr(TensorRef(77_777, 64, label="ghost_free"),
                          missing_ok=True)
        augmented.program.instructions.insert(0, bogus)
        issues = verify_program(tiny_cnn, augmented)
        assert any("free of never-allocated" in i for i in issues)

    def test_missing_ok_free_of_once_allocated_stays_clean(self, tiny_cnn):
        augmented = lower(tiny_cnn, Plan())
        instructions = augmented.program.instructions
        last_free = max(
            i for i, instr in enumerate(instructions)
            if isinstance(instr, FreeInstr)
        )
        ref = instructions[last_free].ref
        instructions.insert(
            last_free + 1, FreeInstr(ref, missing_ok=True),
        )
        assert verify_program(tiny_cnn, augmented) == []


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    policy=st.sampled_from(
        ["base", "vdnn_all", "checkpoints", "zero_offload", "tsplit"],
    ),
    capacity_frac=st.sampled_from([1.0, 0.7, 0.45]),
    fault_seed=st.integers(min_value=0, max_value=1_000),
)
def test_fuzz_policies_capacities_faults(seed, policy, capacity_frac,
                                         fault_seed):
    """Policies x capacities x fault seeds: the pipeline either completes
    — with a verifier-clean program and engine-vs-replay peak agreement
    — or reports infeasible gracefully; it never raises.

    The offload policies additionally thread zero-byte "parameter
    updated" marker refs through the executed programs, covering the
    zero-byte-edge case the graph layer cannot express.
    """
    graph = build_random_cnn(seed, batch=4, max_blocks=3)
    clean = compile_run(graph, policy, BIG_GPU)
    if not clean.result.feasible:
        assert clean.result.failure
        return
    assert verify_program(graph, clean.lowered.program) == []
    clean_trace = clean.result.trace
    assert clean_trace.peak_memory == chronological_peak(clean_trace)
    assert clean_trace.recovery_actions == 0

    capacity = max(
        int(clean_trace.peak_memory * capacity_frac),
        clean_trace.persistent_bytes + 1,
    )
    gpu = replace(BIG_GPU, name="fuzz-gpu", memory_bytes=capacity)
    faults = FaultConfig(
        seed=fault_seed,
        kernel_noise=0.05,
        pcie_jitter=0.1,
        transfer_failure_rate=0.2,
    )
    run = compile_run(graph, policy, gpu, faults=faults)
    if not run.result.feasible:
        assert run.result.failure
        return
    assert verify_program(graph, run.lowered.program) == []
    trace = run.result.trace
    assert trace.peak_memory == chronological_peak(trace)
    assert trace.peak_memory <= capacity
