"""Memory over-subscription sweeps."""

import pytest

from repro.analysis.oversubscription import (
    oversubscription_sweep,
    survival_ratio,
)
from repro.graph.autodiff import build_training_graph
from repro.models.layers import ModelBuilder
from tests.conftest import BIG_GPU


def deep_chain_cnn(batch: int = 32, blocks: int = 8):
    """Deep enough that the activation sum dwarfs any one op's working
    set — the regime where eviction buys real over-subscription."""
    builder = ModelBuilder(f"chain[{blocks}]", batch)
    x = builder.input_image(3, 32, 32)
    for index in range(blocks):
        x = builder.conv2d(x, 16, 3, name=f"conv{index}")
        x = builder.relu(x, name=f"relu{index}")
    logits = builder.linear(builder.flatten(x), 10)
    loss = builder.cross_entropy_loss(logits)
    return build_training_graph(builder.graph, loss)


@pytest.fixture(scope="module")
def sweep():
    graph = deep_chain_cnn()
    return oversubscription_sweep(
        graph,
        ["base", "vdnn_all", "superneurons"],
        BIG_GPU,
        ratios=(1.0, 1.5, 2.0, 3.0),
    )


class TestSweep:
    def test_grid_complete(self, sweep):
        assert len(sweep) == 3 * 4

    def test_base_dies_first(self, sweep):
        """Base cannot survive any genuine over-subscription."""
        assert survival_ratio(sweep, "base") <= 1.0

    def test_eviction_policies_survive_deeper(self, sweep):
        assert survival_ratio(sweep, "vdnn_all") > survival_ratio(sweep, "base")

    def test_slowdown_grows_with_pressure(self, sweep):
        """Deeper over-subscription never speeds a policy up."""
        for policy in ("vdnn_all", "superneurons"):
            series = sorted(
                (p.ratio, p.slowdown_vs_full)
                for p in sweep if p.policy == policy and p.feasible
            )
            for (_, earlier), (_, later) in zip(series, series[1:]):
                assert later >= earlier * 0.999

    def test_infeasible_points_marked(self, sweep):
        deep_base = [
            p for p in sweep if p.policy == "base" and p.ratio >= 1.5
        ]
        assert all(not p.feasible for p in deep_base)

    def test_slowdown_reference_is_one(self, sweep):
        eligible = [
            p for p in sweep
            if p.policy == "superneurons" and p.ratio == 1.0 and p.feasible
        ]
        if eligible:
            assert eligible[0].slowdown_vs_full == pytest.approx(1.0, rel=0.05)
