"""Plan / TensorConfig data model and validation."""

import pytest

from repro.core.plan import MemOption, Plan, TensorConfig, validate_plan
from repro.errors import PolicyError
from repro.graph.tensor import TensorKind


class TestTensorConfig:
    def test_defaults_reside_unsplit(self):
        cfg = TensorConfig()
        assert cfg.opt is MemOption.RESIDE
        assert not cfg.is_split
        assert not cfg.evicts

    def test_swap_evicts(self):
        assert TensorConfig(opt=MemOption.SWAP).evicts
        assert TensorConfig(opt=MemOption.RECOMPUTE).evicts
        assert not TensorConfig(opt=MemOption.CPU).evicts

    def test_split_flag(self):
        assert TensorConfig(p_num=4).is_split

    def test_invalid_p_num(self):
        with pytest.raises(ValueError):
            TensorConfig(p_num=0)

    def test_describe(self):
        cfg = TensorConfig(opt=MemOption.SWAP, p_num=4, dim="sample")
        assert "swap" in cfg.describe()
        assert "p=4" in cfg.describe()

    def test_hashable_for_cycle_guard(self):
        a = TensorConfig(opt=MemOption.SWAP, p_num=4)
        b = TensorConfig(opt=MemOption.SWAP, p_num=4)
        assert a == b
        assert hash(a) == hash(b)


class TestPlan:
    def test_default_config_is_reside(self):
        assert Plan().config_for(7) == TensorConfig()

    def test_set_and_get(self):
        plan = Plan()
        cfg = TensorConfig(opt=MemOption.SWAP)
        plan.set(3, cfg)
        assert plan.config_for(3) == cfg

    def test_set_reside_removes_entry(self):
        plan = Plan()
        plan.set(3, TensorConfig(opt=MemOption.SWAP))
        plan.set(3, TensorConfig())
        assert 3 not in plan.configs

    def test_evicted_tensors(self):
        plan = Plan()
        plan.set(1, TensorConfig(opt=MemOption.SWAP))
        plan.set(2, TensorConfig(opt=MemOption.RECOMPUTE))
        plan.set(3, TensorConfig(opt=MemOption.CPU))
        assert sorted(plan.evicted_tensors()) == [1, 2]

    def test_copy_is_independent(self):
        plan = Plan()
        plan.set(1, TensorConfig(opt=MemOption.SWAP))
        clone = plan.copy()
        clone.set(2, TensorConfig(opt=MemOption.RECOMPUTE))
        assert 2 not in plan.configs

    def test_option_bytes(self, tiny_cnn):
        plan = Plan()
        act = tiny_cnn.activations()[0]
        plan.set(act.tensor_id, TensorConfig(opt=MemOption.SWAP))
        totals = plan.option_bytes(tiny_cnn)
        assert totals[MemOption.SWAP] == act.size_bytes
        assert totals[MemOption.RECOMPUTE] == 0

    def test_summary_mentions_policy(self, tiny_cnn):
        plan = Plan(policy="unittest")
        assert "unittest" in plan.summary(tiny_cnn)


class TestValidation:
    def test_valid_plan_passes(self, tiny_cnn):
        plan = Plan()
        act = tiny_cnn.activations()[0]
        plan.set(act.tensor_id, TensorConfig(opt=MemOption.SWAP))
        validate_plan(tiny_cnn, plan)

    def test_unknown_tensor_rejected(self, tiny_cnn):
        plan = Plan()
        plan.set(10_000, TensorConfig(opt=MemOption.SWAP))
        with pytest.raises(PolicyError):
            validate_plan(tiny_cnn, plan)

    def test_recompute_param_rejected(self, tiny_cnn):
        plan = Plan()
        param = tiny_cnn.parameters()[0]
        plan.set(param.tensor_id, TensorConfig(opt=MemOption.RECOMPUTE))
        with pytest.raises(PolicyError, match="recompute"):
            validate_plan(tiny_cnn, plan)

    def test_cpu_activation_rejected(self, tiny_cnn):
        plan = Plan()
        act = tiny_cnn.activations()[0]
        plan.set(act.tensor_id, TensorConfig(opt=MemOption.CPU))
        with pytest.raises(PolicyError, match="CPU"):
            validate_plan(tiny_cnn, plan)

    def test_swap_input_rejected(self, tiny_cnn):
        plan = Plan()
        graph_input = tiny_cnn.graph_inputs()[0]
        plan.set(graph_input.tensor_id, TensorConfig(opt=MemOption.SWAP))
        with pytest.raises(PolicyError, match="swapped"):
            validate_plan(tiny_cnn, plan)

    def test_split_unknown_dim_rejected(self, tiny_cnn):
        plan = Plan()
        act = tiny_cnn.activations()[0]
        plan.set(act.tensor_id, TensorConfig(p_num=2, dim="bogus"))
        with pytest.raises(PolicyError, match="split"):
            validate_plan(tiny_cnn, plan)

    def test_split_wider_than_extent_rejected(self, tiny_cnn):
        plan = Plan()
        act = tiny_cnn.activations()[0]
        plan.set(
            act.tensor_id,
            TensorConfig(p_num=100_000, dim="sample"),
        )
        with pytest.raises(PolicyError, match="cannot split"):
            validate_plan(tiny_cnn, plan)

    def test_cpu_optimizer_state_allowed(self, tiny_cnn):
        plan = Plan()
        state = tiny_cnn.tensors_of_kind(TensorKind.OPTIMIZER_STATE)[0]
        plan.set(state.tensor_id, TensorConfig(opt=MemOption.CPU))
        validate_plan(tiny_cnn, plan)
