"""Augmented-graph generation (Figure 10): lowering plans to programs."""

from repro.core.augment import AugmentOptions, augment_graph
from repro.core.plan import MemOption, Plan, TensorConfig
from repro.core.profiler import Profiler
from repro.core.recompute import RecomputeStrategy
from repro.graph.tensor import DIM_SAMPLE, TensorKind
from repro.runtime.instructions import (
    ComputeInstr,
    FreeInstr,
    SwapInInstr,
    SwapOutInstr,
    XferInstr,
)
from tests.conftest import BIG_GPU


def lower(graph, plan, options=None):
    profile = Profiler(BIG_GPU).profile(graph)
    return augment_graph(graph, plan, profile, options=options)


def find_tensor(graph, name):
    return next(t for t in graph.tensors.values() if t.name == name)


class TestBasePlan:
    def test_one_compute_per_op(self, tiny_cnn):
        augmented = lower(tiny_cnn, Plan())
        computes = [
            i for i in augmented.program.instructions
            if isinstance(i, ComputeInstr)
        ]
        assert len(computes) == len(tiny_cnn.ops)

    def test_no_transfers_without_eviction(self, tiny_cnn):
        augmented = lower(tiny_cnn, Plan())
        counts = augmented.program.counts()
        assert "SwapOutInstr" not in counts
        assert "SwapInInstr" not in counts

    def test_persistent_bytes_cover_params(self, tiny_cnn):
        augmented = lower(tiny_cnn, Plan())
        persistent = sum(
            t.size_bytes for t in tiny_cnn.tensors.values()
            if t.kind in (TensorKind.PARAM, TensorKind.INPUT,
                          TensorKind.OPTIMIZER_STATE)
        )
        assert augmented.program.persistent_bytes == persistent

    def test_batch_recorded(self, tiny_cnn):
        augmented = lower(tiny_cnn, Plan())
        assert augmented.program.batch == 8

    def test_every_transient_freed(self, tiny_cnn):
        """Every compute-produced whole tensor is eventually freed or
        swapped out: no leaks in the lowering."""
        augmented = lower(tiny_cnn, Plan())
        allocated: set = set()
        released: set = set()
        for instr in augmented.program.instructions:
            if isinstance(instr, ComputeInstr):
                for ref in list(instr.outputs) + list(instr.alloc_only):
                    if ref.nbytes > 0:
                        allocated.add(ref.key)
                if instr.tag == "merge":
                    for ref in instr.inputs:
                        released.add(ref.key)
            elif isinstance(instr, (FreeInstr, SwapOutInstr)):
                ref = instr.ref
                released.add(ref.key)
        assert allocated <= released


class TestSwapLowering:
    def test_swap_emits_out_and_in(self, tiny_cnn):
        tensor = find_tensor(tiny_cnn, "relu1/out")
        plan = Plan()
        plan.set(tensor.tensor_id, TensorConfig(opt=MemOption.SWAP))
        program = lower(tiny_cnn, plan).program
        outs = [i for i in program.instructions
                if isinstance(i, SwapOutInstr)
                and i.ref.tensor_id == tensor.tensor_id]
        ins = [i for i in program.instructions
               if isinstance(i, SwapInInstr)
               and i.ref.tensor_id == tensor.tensor_id]
        assert len(outs) == 1
        assert len(ins) >= 1

    def test_swap_out_after_last_forward_use(self, tiny_cnn):
        tensor = find_tensor(tiny_cnn, "relu1/out")
        plan = Plan()
        plan.set(tensor.tensor_id, TensorConfig(opt=MemOption.SWAP))
        program = lower(tiny_cnn, plan).program
        instructions = program.instructions
        swap_pos = next(
            i for i, ins in enumerate(instructions)
            if isinstance(ins, SwapOutInstr)
            and ins.ref.tensor_id == tensor.tensor_id
        )
        # conv2 (the last forward consumer) must be issued before.
        conv2_pos = next(
            i for i, ins in enumerate(instructions)
            if isinstance(ins, ComputeInstr) and ins.label == "conv2"
        )
        assert swap_pos > conv2_pos

    def test_swap_in_before_backward_consumer(self, tiny_cnn):
        tensor = find_tensor(tiny_cnn, "relu1/out")
        plan = Plan()
        plan.set(tensor.tensor_id, TensorConfig(opt=MemOption.SWAP))
        instructions = lower(tiny_cnn, plan).program.instructions
        in_pos = next(
            i for i, ins in enumerate(instructions)
            if isinstance(ins, SwapInInstr)
            and ins.ref.tensor_id == tensor.tensor_id
        )
        consumer_pos = next(
            i for i, ins in enumerate(instructions)
            if isinstance(ins, ComputeInstr) and ins.label == "d_relu1"
        )
        assert in_pos < consumer_pos


class TestRecomputeLowering:
    def test_recompute_chain_reruns_producer(self, tiny_cnn):
        tensor = find_tensor(tiny_cnn, "relu1/out")
        plan = Plan()
        plan.set(tensor.tensor_id, TensorConfig(opt=MemOption.RECOMPUTE))
        program = lower(tiny_cnn, plan).program
        recomputes = [
            i for i in program.instructions
            if isinstance(i, ComputeInstr) and i.tag == "recompute"
        ]
        assert any("relu1" in i.label for i in recomputes)

    def test_memory_centric_reruns_chain_per_consumer(self, tiny_cnn):
        """relu1/out feeds conv2 (fwd) and d_relu1; conv2's backward also
        needs it: memory-centric regenerates it once per consumer."""
        t1 = find_tensor(tiny_cnn, "relu1/out")
        plan = Plan()
        plan.set(t1.tensor_id, TensorConfig(opt=MemOption.RECOMPUTE))
        memory_program = lower(tiny_cnn, plan, AugmentOptions(
            recompute_strategy=RecomputeStrategy.MEMORY_CENTRIC,
        )).program
        speed_program = lower(tiny_cnn, plan, AugmentOptions(
            recompute_strategy=RecomputeStrategy.SPEED_CENTRIC,
        )).program

        def count(program):
            return sum(
                1 for i in program.instructions
                if isinstance(i, ComputeInstr) and i.tag == "recompute"
                and "relu1" in i.label
            )

        assert count(memory_program) >= count(speed_program)

    def test_lru_strategy_runs(self, tiny_cnn):
        tensor = find_tensor(tiny_cnn, "relu1/out")
        plan = Plan()
        plan.set(tensor.tensor_id, TensorConfig(opt=MemOption.RECOMPUTE))
        program = lower(tiny_cnn, plan, AugmentOptions(
            recompute_strategy=RecomputeStrategy.LRU,
            lru_budget_bytes=1,
        )).program
        assert program.counts().get("ComputeInstr", 0) > len(tiny_cnn.ops)


class TestSplitLowering:
    def split_plan(self, graph):
        conv_out = find_tensor(graph, "conv1/out")
        relu_out = find_tensor(graph, "relu1/out")
        plan = Plan()
        plan.set(conv_out.tensor_id,
                 TensorConfig(opt=MemOption.RESIDE, p_num=4, dim=DIM_SAMPLE))
        plan.set(relu_out.tensor_id,
                 TensorConfig(opt=MemOption.SWAP, p_num=4, dim=DIM_SAMPLE))
        return plan, conv_out, relu_out

    def test_micro_kernels_emitted(self, tiny_cnn):
        plan, conv_out, _ = self.split_plan(tiny_cnn)
        program = lower(tiny_cnn, plan).program
        micro = [
            i for i in program.instructions
            if isinstance(i, ComputeInstr) and i.label.startswith("conv1[")
        ]
        assert len(micro) == 4

    def test_region_interleaves_producer_consumer(self, tiny_cnn):
        """conv1 micro 1 must come after relu1 micro 0 — the
        software-pipelined streaming region."""
        plan, _, _ = self.split_plan(tiny_cnn)
        instructions = lower(tiny_cnn, plan).program.instructions
        labels = [
            i.label for i in instructions if isinstance(i, ComputeInstr)
        ]
        conv_second = labels.index("conv1[2/4]")
        relu_first = labels.index("relu1[1/4]")
        assert relu_first < conv_second

    def test_micro_swap_outs_emitted(self, tiny_cnn):
        plan, _, relu_out = self.split_plan(tiny_cnn)
        program = lower(tiny_cnn, plan).program
        outs = [
            i for i in program.instructions
            if isinstance(i, SwapOutInstr)
            and i.ref.tensor_id == relu_out.tensor_id
        ]
        assert len(outs) == 4
        assert all(i.ref.is_micro for i in outs)

    def test_applied_splits_recorded(self, tiny_cnn):
        plan, conv_out, relu_out = self.split_plan(tiny_cnn)
        augmented = lower(tiny_cnn, plan)
        assert augmented.applied_splits[conv_out.tensor_id] == (DIM_SAMPLE, 4)

    def test_micro_frees_interleaved_with_consumption(self, tiny_cnn):
        """conv1/out micro 0 (RESIDE, last use relu1) is freed before
        conv1 micro 4 is computed."""
        plan, conv_out, _ = self.split_plan(tiny_cnn)
        instructions = lower(tiny_cnn, plan).program.instructions
        free_pos = next(
            i for i, ins in enumerate(instructions)
            if isinstance(ins, FreeInstr)
            and ins.ref.tensor_id == conv_out.tensor_id
            and ins.ref.micro_index == 0
        )
        last_micro_pos = next(
            i for i, ins in enumerate(instructions)
            if isinstance(ins, ComputeInstr) and ins.label == "conv1[4/4]"
        )
        assert free_pos < last_micro_pos


class TestInPlaceMerge:
    def test_never_evicted_pieces_merge_in_place(self, tiny_cnn):
        """Section V-C: pieces still resident since production merge with
        zero copy time (pointer arithmetic)."""
        pool_in = find_tensor(tiny_cnn, "relu2/out")
        plan = Plan()
        # Split a tensor whose consumer (maxpool after relu2? use conv1
        # out feeding relu1, then flatten path forces a merge at fc).
        plan.set(pool_in.tensor_id,
                 TensorConfig(opt=MemOption.RESIDE, p_num=2, dim=DIM_SAMPLE))
        program = lower(tiny_cnn, plan).program
        merges = [
            i for i in program.instructions
            if isinstance(i, ComputeInstr) and i.tag == "merge"
        ]
        if merges:  # a consumer forced a merge
            assert all(m.duration == 0.0 for m in merges)

    def test_swapped_pieces_pay_real_copy(self, tiny_cnn):
        relu_out = find_tensor(tiny_cnn, "relu1/out")
        plan = Plan()
        plan.set(relu_out.tensor_id,
                 TensorConfig(opt=MemOption.SWAP, p_num=4, dim=DIM_SAMPLE))
        program = lower(tiny_cnn, plan).program
        merges = [
            i for i in program.instructions
            if isinstance(i, ComputeInstr) and i.tag == "merge"
            and relu_out.name in i.label
        ]
        for merge in merges:
            assert merge.duration > 0.0


class TestCpuUpdateLowering:
    def test_zero_offload_update_on_cpu(self, tiny_cnn):
        plan = Plan(policy="zero", cpu_update=True)
        for t in tiny_cnn.tensors.values():
            if t.kind is TensorKind.OPTIMIZER_STATE:
                plan.set(t.tensor_id, TensorConfig(opt=MemOption.CPU))
            elif t.kind is TensorKind.GRAD_PARAM:
                plan.set(t.tensor_id, TensorConfig(opt=MemOption.SWAP))
        program = lower(tiny_cnn, plan).program
        from repro.runtime.instructions import Device

        cpu_updates = [
            i for i in program.instructions
            if isinstance(i, ComputeInstr) and i.device is Device.CPU
        ]
        assert len(cpu_updates) == len(tiny_cnn.parameters())

    def test_param_write_back_transfer(self, tiny_cnn):
        plan = Plan(policy="zero", cpu_update=True)
        for t in tiny_cnn.tensors.values():
            if t.kind is TensorKind.GRAD_PARAM:
                plan.set(t.tensor_id, TensorConfig(opt=MemOption.SWAP))
        program = lower(tiny_cnn, plan).program
        write_backs = [
            i for i in program.instructions
            if isinstance(i, XferInstr) and "write_back" in i.label
        ]
        assert len(write_backs) == len(tiny_cnn.parameters())

    def test_sharded_params_start_on_host(self, tiny_cnn):
        plan = Plan(policy="fairscale", cpu_update=True)
        for t in tiny_cnn.parameters():
            plan.set(t.tensor_id, TensorConfig(opt=MemOption.SWAP))
        program = lower(tiny_cnn, plan).program
        host_ids = {ref.tensor_id for ref in program.initial_host}
        assert {t.tensor_id for t in tiny_cnn.parameters()} <= host_ids
        assert program.persistent_bytes < sum(
            t.size_bytes for t in tiny_cnn.tensors.values()
            if t.kind.is_persistent
        )
