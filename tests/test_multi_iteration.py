"""Multi-iteration (steady-state) execution."""

import pytest

from repro.core.augment import augment_graph
from repro.core.plan import Plan
from repro.core.profiler import Profiler
from repro.errors import RuntimeExecutionError
from repro.policies.base import get_policy
from repro.runtime.engine import Engine
from tests.conftest import BIG_GPU, build_tiny_cnn


def lowered(policy_name: str):
    graph = build_tiny_cnn(batch=16)
    profile = Profiler(BIG_GPU).profile(graph)
    if policy_name == "base":
        plan = Plan()
    else:
        plan = get_policy(policy_name).build_plan(graph, BIG_GPU)
    return augment_graph(graph, plan, profile)


class TestIterations:
    @pytest.mark.parametrize(
        "policy", ["base", "vdnn_all", "superneurons", "zero_offload",
                   "fairscale_offload"],
    )
    def test_iterations_reach_steady_state(self, policy):
        augmented = lowered(policy)
        durations, trace = Engine(BIG_GPU).execute_iterations(
            augmented.program, 4,
        )
        assert len(durations) == 4
        # Later iterations are identical (the workload is periodic).
        assert durations[2] == pytest.approx(durations[3], rel=1e-9)
        assert trace.iteration_time == pytest.approx(sum(durations))

    def test_aggregate_traffic_scales_with_iterations(self):
        augmented = lowered("vdnn_all")
        _, single = Engine(BIG_GPU).execute_iterations(augmented.program, 1)
        _, triple = Engine(BIG_GPU).execute_iterations(augmented.program, 3)
        assert triple.swapped_out_bytes == 3 * single.swapped_out_bytes

    def test_single_iteration_matches_execute(self):
        augmented = lowered("superneurons")
        durations, _ = Engine(BIG_GPU).execute_iterations(
            augmented.program, 1,
        )
        direct = Engine(BIG_GPU).execute(augmented.program)
        assert durations[0] == pytest.approx(direct.iteration_time)

    def test_invalid_count_rejected(self):
        augmented = lowered("base")
        with pytest.raises(RuntimeExecutionError):
            Engine(BIG_GPU).execute_iterations(augmented.program, 0)

    def test_host_memory_stable_across_iterations(self):
        """Host copies are reused, not duplicated, across iterations."""
        augmented = lowered("vdnn_all")
        _, single = Engine(BIG_GPU).execute_iterations(augmented.program, 1)
        _, many = Engine(BIG_GPU).execute_iterations(augmented.program, 3)
        assert many.host_peak_bytes == single.host_peak_bytes
