"""Shared split-capability rules."""

from repro.core.plan import Plan, TensorConfig
from repro.core.split_rules import (
    effective_split,
    op_exec_split,
    op_supports_split,
)
from repro.graph.ops import OpType
from repro.graph.tensor import DIM_ATTRIBUTE, DIM_PARAMETER, DIM_SAMPLE


class TestOpSupport:
    def test_conv_sample_splittable(self):
        assert op_supports_split(OpType.CONV2D, DIM_SAMPLE)

    def test_batchnorm_not_sample_splittable(self):
        """BN statistics couple samples: the paper's merge example."""
        assert not op_supports_split(OpType.BATCHNORM, DIM_SAMPLE)

    def test_batchnorm_parameter_splittable(self):
        assert op_supports_split(OpType.BATCHNORM, DIM_PARAMETER)

    def test_layernorm_not_parameter_splittable(self):
        """LayerNorm normalises over the hidden axis."""
        assert not op_supports_split(OpType.LAYERNORM, DIM_PARAMETER)

    def test_layernorm_attribute_splittable(self):
        assert op_supports_split(OpType.LAYERNORM, DIM_ATTRIBUTE)

    def test_unknown_dim(self):
        assert not op_supports_split(OpType.RELU, "bogus")

    def test_elementwise_splits_everywhere(self):
        for dim in (DIM_SAMPLE, DIM_PARAMETER, DIM_ATTRIBUTE):
            assert op_supports_split(OpType.RELU, dim)


class TestEffectiveSplit:
    def test_plain_config_effective(self, tiny_cnn):
        conv_out = next(
            t for t in tiny_cnn.activations() if t.name == "conv1/out"
        )
        plan = Plan()
        plan.set(conv_out.tensor_id, TensorConfig(p_num=4, dim=DIM_SAMPLE))
        assert effective_split(tiny_cnn, plan, conv_out) == (DIM_SAMPLE, 4)

    def test_unsplit_config_none(self, tiny_cnn):
        conv_out = next(
            t for t in tiny_cnn.activations() if t.name == "conv1/out"
        )
        assert effective_split(tiny_cnn, Plan(), conv_out) is None

    def test_extent_too_small_none(self, tiny_cnn):
        conv_out = next(
            t for t in tiny_cnn.activations() if t.name == "conv1/out"
        )
        plan = Plan()
        plan.set(
            conv_out.tensor_id,
            TensorConfig(p_num=conv_out.shape[0] + 1, dim=DIM_SAMPLE),
        )
        assert effective_split(tiny_cnn, plan, conv_out) is None

    def test_sourceless_tensor_none(self, tiny_cnn):
        param = tiny_cnn.parameters()[0]
        plan = Plan()
        plan.set(param.tensor_id, TensorConfig(p_num=2, dim="parameter"))
        assert effective_split(tiny_cnn, plan, param) is None


class TestOpExecSplit:
    def test_output_split_drives_op(self, tiny_cnn):
        conv = next(op for op in tiny_cnn.ops.values() if op.name == "conv1")
        out_id = conv.outputs[0]
        plan = Plan()
        plan.set(out_id, TensorConfig(p_num=2, dim=DIM_SAMPLE))
        assert op_exec_split(tiny_cnn, plan, conv) == (DIM_SAMPLE, 2)

    def test_input_split_drives_consumer(self, tiny_cnn):
        conv = next(op for op in tiny_cnn.ops.values() if op.name == "conv1")
        relu = next(op for op in tiny_cnn.ops.values() if op.name == "relu1")
        plan = Plan()
        plan.set(conv.outputs[0], TensorConfig(p_num=2, dim=DIM_SAMPLE))
        assert op_exec_split(tiny_cnn, plan, relu) == (DIM_SAMPLE, 2)

    def test_output_priority_over_input(self, tiny_cnn):
        conv = next(op for op in tiny_cnn.ops.values() if op.name == "conv1")
        relu = next(op for op in tiny_cnn.ops.values() if op.name == "relu1")
        plan = Plan()
        plan.set(conv.outputs[0], TensorConfig(p_num=2, dim=DIM_SAMPLE))
        plan.set(relu.outputs[0], TensorConfig(p_num=8, dim=DIM_SAMPLE))
        assert op_exec_split(tiny_cnn, plan, relu) == (DIM_SAMPLE, 8)

    def test_no_split_none(self, tiny_cnn):
        conv = next(op for op in tiny_cnn.ops.values() if op.name == "conv1")
        assert op_exec_split(tiny_cnn, Plan(), conv) is None
