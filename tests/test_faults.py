"""The fault-injection layer: determinism, recovery, zero overhead.

Covers the tentpole contracts of the ``repro.faults`` subsystem:

* config validation and the fault model's transient-failure guarantee;
* ``faults=None`` and the null (all-zero) config are byte-identical to
  clean runs;
* same seed => byte-identical traces and telemetry counters; different
  seeds => documented divergence;
* transient transfer failures are retried to completion; over-capacity
  allocations degrade gracefully via emergency eviction instead of
  aborting, and every recovered program still passes the verifier with
  engine-vs-replay peak agreement;
* the 50-seed chaos acceptance sweep on tiny_cnn + tiny_resnet.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import telemetry
from repro.analysis.allocator_replay import chronological_peak
from repro.core.verify import verify_program
from repro.errors import HardwareError
from repro.faults import (
    ChaosReport,
    FaultConfig,
    FaultModel,
    chaos_sweep,
    fault_signature,
    intensity_config,
)
from repro.hardware.pcie import PCIeModel
from repro.pipeline.compile import compile_run
from repro.pipeline.stages import PlanStage, ProfileStage
from repro.policies.base import get_policy
from repro.runtime.engine import Engine, EngineOptions
from tests.conftest import BIG_GPU, build_tiny_cnn, build_tiny_resnet

#: A hostile-but-recoverable config used across the recovery tests.
NOISY = FaultConfig(
    seed=7, kernel_noise=0.05, pcie_jitter=0.1,
    pcie_degradation=0.15, transfer_failure_rate=0.3,
)


def trace_fingerprint(trace) -> tuple:
    """Every observable field of a trace, for byte-identity assertions."""
    return (
        trace.iteration_time, trace.compute_busy, trace.cpu_busy,
        trace.d2h_busy, trace.h2d_busy, trace.memory_stall,
        trace.peak_memory, trace.persistent_bytes,
        trace.swapped_out_bytes, trace.swapped_in_bytes,
        trace.recompute_time, trace.recompute_ops, trace.split_kernels,
        trace.host_peak_bytes, trace.transfer_retries,
        trace.retry_backoff_time, trace.emergency_evictions,
        trace.emergency_evicted_bytes, trace.emergency_refetches,
        trace.recovered_skips, tuple(trace.records),
        tuple(trace.memory_samples), tuple(trace.alloc_events),
        tuple(trace.fault_events),
    )


def shrunk_gpu(peak: int, frac: float):
    """BIG_GPU with capacity at ``frac`` of a measured clean peak."""
    return replace(
        BIG_GPU, name="shrunk-gpu", memory_bytes=int(peak * frac),
    )


class TestFaultConfig:
    def test_defaults_are_null(self):
        config = FaultConfig()
        assert not config.perturbs_timing
        assert config.emergency_eviction

    @pytest.mark.parametrize("kwargs", [
        {"kernel_noise": -0.1},
        {"pcie_jitter": -1.0},
        {"pcie_degradation": 1.0},
        {"pcie_degradation": -0.1},
        {"transfer_failure_rate": 1.5},
        {"transfer_failure_rate": -0.5},
        {"max_transfer_retries": 0},
        {"retry_backoff": -1e-6},
        {"failed_fraction": 0.0},
        {"failed_fraction": 1.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(HardwareError):
            FaultConfig(**kwargs)

    def test_signature_round_trip(self):
        config = FaultConfig(seed=3, kernel_noise=0.05)
        assert fault_signature(config) == config.signature()
        assert fault_signature(None) is None
        assert config.signature()["seed"] == 3

    def test_intensity_zero_is_null(self):
        config = intensity_config(0.0, seed=9)
        assert not config.perturbs_timing
        assert config.seed == 9

    def test_intensity_saturates(self):
        config = intensity_config(100.0)
        assert 0.0 <= config.pcie_degradation < 1.0
        assert 0.0 <= config.transfer_failure_rate <= 1.0

    def test_negative_intensity_rejected(self):
        with pytest.raises(HardwareError):
            intensity_config(-1.0)


class TestFaultModel:
    def test_null_config_never_draws(self):
        model = FaultModel(FaultConfig())
        state = model._rng.getstate()
        assert model.kernel_scale() == 1.0
        assert model.transfer_rate_scale() == 1.0
        assert model.transfer_fails(0) is False
        assert model._rng.getstate() == state

    def test_transfer_failure_is_transient_by_contract(self):
        config = FaultConfig(transfer_failure_rate=1.0,
                             max_transfer_retries=4)
        model = FaultModel(config)
        for attempt in range(4):
            assert model.transfer_fails(attempt) is True
        assert model.transfer_fails(4) is False
        assert model.transfer_fails(100) is False

    def test_backoff_is_exponential(self):
        model = FaultModel(FaultConfig(retry_backoff=1e-4))
        assert model.backoff(0) == pytest.approx(1e-4)
        assert model.backoff(3) == pytest.approx(8e-4)

    def test_rate_scale_includes_degradation(self):
        model = FaultModel(FaultConfig(pcie_degradation=0.5))
        assert model.transfer_rate_scale() == pytest.approx(0.5)

    def test_pcie_rate_scale_parameter(self):
        pcie = PCIeModel(BIG_GPU)
        assert pcie.transfer_time(1 << 20, rate_scale=1.0) == \
            pcie.transfer_time(1 << 20)
        assert pcie.transfer_time(1 << 20, rate_scale=0.5) > \
            pcie.transfer_time(1 << 20)
        with pytest.raises(HardwareError):
            pcie.transfer_time(1 << 20, rate_scale=0.0)


def compile_swapping(graph, faults=None, gpu=BIG_GPU):
    """vdnn_all forces swaps on every conv activation — transfer-heavy."""
    return compile_run(graph, "vdnn_all", gpu, faults=faults)


class TestZeroOverheadIdentity:
    def test_faults_none_is_deterministic(self):
        graph = build_tiny_cnn()
        a = compile_swapping(graph).result.trace
        b = compile_swapping(graph).result.trace
        assert trace_fingerprint(a) == trace_fingerprint(b)

    def test_null_config_byte_identical_to_clean(self):
        """An attached all-zero FaultConfig must not change a single
        float: the fault model never draws, rate_scale 1.0 is exact."""
        graph = build_tiny_cnn()
        clean = compile_swapping(graph).result.trace
        null = compile_swapping(graph, faults=FaultConfig()).result.trace
        assert trace_fingerprint(clean) == trace_fingerprint(null)
        assert null.recovery_actions == 0
        assert null.fault_events == []

    def test_clean_runs_emit_no_fault_telemetry(self):
        graph = build_tiny_cnn()
        with telemetry.session() as tel:
            compile_swapping(graph)
            names = tel.metrics.snapshot().keys()
        assert not any(name.startswith("engine.faults.") for name in names)


class TestSeededDeterminism:
    def test_same_seed_byte_identical(self):
        graph = build_tiny_cnn()
        a = compile_swapping(graph, faults=NOISY).result.trace
        b = compile_swapping(graph, faults=NOISY).result.trace
        assert trace_fingerprint(a) == trace_fingerprint(b)

    def test_same_seed_identical_telemetry_counters(self):
        graph = build_tiny_cnn()
        snapshots = []
        for _ in range(2):
            with telemetry.session() as tel:
                compile_swapping(graph, faults=NOISY)
                snapshots.append({
                    name: value
                    for name, value in tel.metrics.snapshot().items()
                    if name.startswith("engine.faults.")
                })
        assert snapshots[0] == snapshots[1]
        assert snapshots[0], "noisy run recorded no fault counters"

    def test_different_seeds_diverge(self):
        """With non-zero noise, different seeds draw different
        perturbations — iteration times (and usually retry counts)
        diverge. This is the documented contract: divergence across
        seeds is expected, not a reproducibility bug."""
        graph = build_tiny_cnn()
        a = compile_swapping(graph, faults=NOISY).result.trace
        b = compile_swapping(
            graph, faults=replace(NOISY, seed=NOISY.seed + 1),
        ).result.trace
        assert trace_fingerprint(a) != trace_fingerprint(b)
        assert a.iteration_time != b.iteration_time


class TestTransferRetries:
    def test_failures_are_retried_to_completion(self):
        graph = build_tiny_cnn()
        run = compile_swapping(graph, faults=NOISY)
        assert run.result.feasible, run.result.failure
        trace = run.result.trace
        assert trace.transfer_retries > 0
        assert trace.retry_backoff_time > 0.0
        retry_events = [
            e for e in trace.fault_events if e[1] == "transfer_retry"
        ]
        assert len(retry_events) == trace.transfer_retries

    def test_retries_slow_the_run_down(self):
        graph = build_tiny_cnn()
        clean = compile_swapping(graph).result.trace
        config = FaultConfig(seed=1, transfer_failure_rate=0.5,
                             pcie_degradation=0.3)
        noisy = compile_swapping(graph, faults=config).result.trace
        assert noisy.iteration_time > clean.iteration_time

    def test_peak_agreement_under_retries(self):
        graph = build_tiny_cnn()
        trace = compile_swapping(graph, faults=NOISY).result.trace
        assert trace.peak_memory == chronological_peak(trace)


class TestEmergencyEviction:
    def setup_method(self):
        self.graph = build_tiny_cnn()
        clean = compile_run(self.graph, "base", BIG_GPU)
        assert clean.result.feasible
        self.clean_trace = clean.result.trace

    def test_oom_without_recovery(self):
        gpu = shrunk_gpu(self.clean_trace.peak_memory, 0.9)
        run = compile_run(self.graph, "base", gpu)
        assert not run.result.feasible
        assert "can ever free up" in run.result.failure

    def test_eviction_rescues_the_oom(self):
        gpu = shrunk_gpu(self.clean_trace.peak_memory, 0.9)
        run = compile_run(self.graph, "base", gpu,
                          faults=FaultConfig(seed=0))
        assert run.result.feasible, run.result.failure
        trace = run.result.trace
        assert trace.emergency_evictions > 0
        assert trace.emergency_evicted_bytes > 0
        assert trace.peak_memory <= gpu.memory_bytes
        assert trace.peak_memory == chronological_peak(trace)
        assert verify_program(self.graph, run.lowered.program) == []
        kinds = {e[1] for e in trace.fault_events}
        assert "emergency_evict" in kinds

    def test_eviction_disabled_stays_infeasible(self):
        gpu = shrunk_gpu(self.clean_trace.peak_memory, 0.9)
        run = compile_run(
            self.graph, "base", gpu,
            faults=FaultConfig(seed=0, emergency_eviction=False),
        )
        assert not run.result.feasible

    def test_recovered_run_is_seed_deterministic(self):
        gpu = shrunk_gpu(self.clean_trace.peak_memory, 0.9)
        faults = FaultConfig(seed=2, transfer_failure_rate=0.2)
        a = compile_run(self.graph, "base", gpu, faults=faults)
        b = compile_run(self.graph, "base", gpu, faults=faults)
        assert a.result.feasible
        assert trace_fingerprint(a.result.trace) == \
            trace_fingerprint(b.result.trace)


class TestPlannedSkips:
    def test_emergency_eviction_skips_planned_eviction(self):
        """When the emergency evicts a tensor the plan would later swap
        out or free, the planned instruction dispatches as a no-op and
        is counted — no double-free, no missing-tensor error."""
        graph = build_tiny_cnn()
        clean = compile_run(graph, "vdnn_all", BIG_GPU)
        assert clean.result.feasible
        gpu = shrunk_gpu(clean.result.trace.peak_memory, 0.85)
        run = compile_run(graph, "vdnn_all", gpu,
                          faults=FaultConfig(seed=0))
        if run.result.feasible and run.result.trace.emergency_evictions:
            trace = run.result.trace
            assert trace.peak_memory == chronological_peak(trace)


class TestPipelineIntegration:
    def test_engine_options_carry_faults(self):
        graph = build_tiny_cnn()
        engine = Engine(BIG_GPU, EngineOptions(faults=NOISY))
        run = compile_run(graph, "vdnn_all", BIG_GPU)
        trace = engine.execute(run.lowered.program.program)
        assert trace.transfer_retries > 0

    def test_plan_cache_key_separates_fault_signatures(self):
        graph = build_tiny_cnn()
        gpu = BIG_GPU
        stage = PlanStage(get_policy("base"))
        from repro.core.profiler import Profiler

        profile = ProfileStage(Profiler(gpu)).run(graph, gpu)
        profile = replace(profile, key="stable-profile-key")
        clean_key = stage.key(profile, gpu)
        assert stage.key(profile, gpu, None) == clean_key
        faulted = stage.key(profile, gpu, NOISY)
        assert faulted != clean_key
        assert stage.key(profile, gpu, replace(NOISY, seed=99)) != faulted
        assert stage.key(profile, gpu, NOISY) == faulted


class TestChaosSweep:
    def test_sweep_shape_and_survival(self):
        graph = build_tiny_cnn()
        report = chaos_sweep(
            graph, "vdnn_all", BIG_GPU,
            intensities=(0.0, 1.0), seeds=(0, 1),
        )
        assert isinstance(report, ChaosReport)
        assert report.clean_feasible
        assert len(report.points) == 4
        assert report.survived == 4
        zero = [p for p in report.points if p.intensity == 0.0]
        assert all(p.slowdown == pytest.approx(1.0) for p in zero)
        assert all(p.recovery_actions == 0 for p in zero)
        payload = report.to_dict()
        assert payload["survival_rate"] == 1.0
        assert len(payload["points"]) == 4
        assert report.describe()

    def test_sweep_on_infeasible_clean_run(self):
        graph = build_tiny_cnn()
        gpu = replace(BIG_GPU, memory_bytes=1 << 17)
        report = chaos_sweep(graph, "base", gpu, intensities=(1.0,),
                             seeds=(0,))
        assert not report.clean_feasible
        assert report.points == []
        assert "INFEASIBLE" in report.describe()


@pytest.mark.parametrize("build", [build_tiny_cnn, build_tiny_resnet],
                         ids=["tiny_cnn", "tiny_resnet"])
def test_chaos_acceptance_50_seeds(build):
    """The PR's acceptance sweep: 50 fault seeds on a capacity-squeezed
    device; every injected failure must be retried or degraded-around
    (no unhandled errors, every run feasible), and every recovered
    program still passes the verifier with exact peak agreement."""
    graph = build()
    clean = compile_run(graph, "base", BIG_GPU)
    assert clean.result.feasible
    gpu = shrunk_gpu(clean.result.trace.peak_memory, 0.92)
    for seed in range(50):
        faults = FaultConfig(
            seed=seed, kernel_noise=0.05, pcie_jitter=0.1,
            transfer_failure_rate=0.25,
        )
        run = compile_run(graph, "base", gpu, faults=faults)
        assert run.result.feasible, (seed, run.result.failure)
        trace = run.result.trace
        assert trace.peak_memory <= gpu.memory_bytes
        assert trace.peak_memory == chronological_peak(trace)
        assert verify_program(graph, run.lowered.program) == []
