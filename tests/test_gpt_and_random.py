"""GPT model and the random-model generator."""

import pytest

from repro.graph.scheduler import dfs_schedule
from repro.models import build_gpt, build_model
from repro.models.random_net import build_random_cnn
from repro.units import GB


class TestGPT:
    def test_structure(self):
        graph = build_gpt(2, layers=2, seq_len=64)
        graph.validate()
        assert not graph.has_conv()
        scores = [
            t for t in graph.tensors.values() if t.name.endswith("/scores")
        ]
        assert len(scores) == 2  # one attention per block

    def test_gpt2_small_parameter_count(self):
        """GPT-2 small is ~124M parameters (~0.5 GB fp32)."""
        graph = build_gpt(1)
        assert 0.3 * GB < graph.parameter_bytes() < 0.8 * GB

    def test_long_context_dominates_memory(self):
        short = build_gpt(2, layers=2, seq_len=128)
        long = build_gpt(2, layers=2, seq_len=1024)
        # Attention scores grow quadratically with sequence length.
        assert long.activation_bytes() > 8 * short.activation_bytes()

    def test_registered(self):
        graph = build_model("gpt", 2, layers=2, seq_len=64)
        assert graph.name.startswith("gpt")

    def test_param_scale_rounds_to_heads(self):
        graph = build_gpt(1, layers=1, seq_len=32, param_scale=1.05)
        table = next(
            t for t in graph.tensors.values() if t.name == "wte/table"
        )
        assert table.shape[1] % 12 == 0


class TestRandomNet:
    def test_seed_determinism(self):
        a = build_random_cnn(42)
        b = build_random_cnn(42)
        assert len(a.ops) == len(b.ops)
        assert [op.name for op in a] == [op.name for op in b]

    def test_seeds_differ(self):
        shapes = {
            tuple(sorted(op.name for op in build_random_cnn(seed)))
            for seed in range(6)
        }
        assert len(shapes) > 1

    @pytest.mark.parametrize("seed", range(10))
    def test_always_valid_and_schedulable(self, seed):
        graph = build_random_cnn(seed)
        graph.validate()
        assert len(dfs_schedule(graph)) == len(graph.ops)

    def test_batch_override(self):
        graph = build_random_cnn(7, batch=4)
        assert graph.graph_inputs()[0].shape[0] == 4

    def test_contains_training_phases(self):
        from repro.graph.ops import Phase

        graph = build_random_cnn(3)
        assert graph.ops_in_phase(Phase.BACKWARD)
        assert graph.ops_in_phase(Phase.UPDATE)
