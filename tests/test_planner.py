"""The model-guided planner (Algorithm 2)."""

import pytest

from repro.core.cost_model import CostModelOptions
from repro.core.plan import MemOption
from repro.core.planner import PlannerOptions, TsplitPlanner
from repro.core.simulate import simulate_memory
from repro.errors import PlanningError
from tests.conftest import BIG_GPU, build_tiny_cnn


def gpu_with(capacity: int):
    return BIG_GPU.with_memory(capacity)


def tight_options() -> PlannerOptions:
    return PlannerOptions(
        cost=CostModelOptions(min_split_bytes=0, min_evict_bytes=0),
    )


class TestNoPressure:
    def test_ample_memory_gives_empty_plan(self):
        graph = build_tiny_cnn(batch=4)
        result = TsplitPlanner(BIG_GPU).plan(graph)
        assert result.plan.configs == {}
        assert result.decisions == []
        assert result.estimated_time == pytest.approx(result.baseline_time)


class TestUnderPressure:
    def build(self, fraction: float):
        graph = build_tiny_cnn(batch=64, image=32)
        baseline = TsplitPlanner(BIG_GPU).plan(graph).baseline_peak
        gpu = gpu_with(int(baseline * fraction))
        planner = TsplitPlanner(gpu, tight_options())
        return graph, gpu, planner

    def test_plan_meets_budget(self):
        graph, gpu, planner = self.build(0.7)
        result = planner.plan(graph)
        assert result.peak_memory <= gpu.memory_bytes
        assert result.decisions

    def test_curve_verifies_independently(self):
        graph, gpu, planner = self.build(0.7)
        result = planner.plan(graph)
        curve = simulate_memory(graph, result.schedule, result.plan)
        assert curve.max() <= gpu.memory_bytes

    def test_extra_time_accumulates(self):
        graph, gpu, planner = self.build(0.6)
        result = planner.plan(graph)
        assert result.estimated_time >= result.baseline_time
        assert result.estimated_overhead >= 0

    def test_tighter_budget_needs_more_decisions(self):
        graph, _, loose_planner = self.build(0.85)
        loose = loose_planner.plan(graph)
        _, _, tight_planner = self.build(0.55)
        tight = tight_planner.plan(graph)
        assert len(tight.decisions) >= len(loose.decisions)

    def test_greedy_prefers_cheap_candidates(self):
        """First decision should be (near) zero-cost: plenty of idle PCIe
        exists in an un-swapped schedule."""
        graph, _, planner = self.build(0.8)
        result = planner.plan(graph)
        first = result.decisions[0]
        assert first.ratio <= min(d.ratio for d in result.decisions) + 1e-9

    def test_describe_mentions_peaks(self):
        graph, _, planner = self.build(0.7)
        text = planner.plan(graph).describe()
        assert "peak" in text
        assert "decisions" in text


class TestInfeasible:
    def test_hopeless_budget_raises(self):
        graph = build_tiny_cnn(batch=32)
        # Smaller than the persistent tensors: nothing can ever fit.
        gpu = gpu_with(64 * 1024)
        with pytest.raises(PlanningError):
            TsplitPlanner(gpu, tight_options()).plan(graph)

    def test_decision_cap_enforced(self):
        graph = build_tiny_cnn(batch=32)
        baseline = TsplitPlanner(BIG_GPU).plan(graph).baseline_peak
        gpu = gpu_with(int(baseline * 0.6))
        options = PlannerOptions(
            max_decisions=0,
            cost=CostModelOptions(min_split_bytes=0, min_evict_bytes=0),
        )
        with pytest.raises(PlanningError, match="0 planning decisions"):
            TsplitPlanner(gpu, options).plan(graph)


class TestAblation:
    def test_nosplit_planner_never_splits(self):
        graph = build_tiny_cnn(batch=64, image=32)
        baseline = TsplitPlanner(BIG_GPU).plan(graph).baseline_peak
        gpu = gpu_with(int(baseline * 0.9))
        options = PlannerOptions(cost=CostModelOptions(
            allow_split=False, min_split_bytes=0, min_evict_bytes=0,
        ))
        result = TsplitPlanner(gpu, options).plan(graph)
        assert all(not cfg.is_split for cfg in result.plan.configs.values())

    def test_split_extends_trainability(self):
        """There exists a budget feasible with split but not without —
        the Figure 14a ablation in miniature."""
        graph = build_tiny_cnn(batch=64, image=32)
        nosplit = PlannerOptions(cost=CostModelOptions(
            allow_split=False, min_split_bytes=0, min_evict_bytes=0,
        ))
        full = tight_options()
        baseline = TsplitPlanner(BIG_GPU).plan(graph).baseline_peak
        found = False
        for percent in range(80, 15, -5):
            gpu = gpu_with(int(baseline * percent / 100))
            try:
                TsplitPlanner(gpu, nosplit).plan(graph)
                continue  # nosplit still fine; go tighter
            except PlanningError:
                pass
            try:
                TsplitPlanner(gpu, full).plan(graph)
                found = True
                break
            except PlanningError:
                continue
        assert found, "split mechanism never extended trainability"

    def test_swap_only_planner(self):
        graph = build_tiny_cnn(batch=64, image=32)
        baseline = TsplitPlanner(BIG_GPU).plan(graph).baseline_peak
        gpu = gpu_with(int(baseline * 0.9))
        options = PlannerOptions(cost=CostModelOptions(
            allow_recompute=False, min_split_bytes=0, min_evict_bytes=0,
        ))
        result = TsplitPlanner(gpu, options).plan(graph)
        assert all(
            cfg.opt is not MemOption.RECOMPUTE
            for cfg in result.plan.configs.values()
        )

    def test_recompute_only_planner(self):
        graph = build_tiny_cnn(batch=64, image=32)
        baseline = TsplitPlanner(BIG_GPU).plan(graph).baseline_peak
        gpu = gpu_with(int(baseline * 0.9))
        options = PlannerOptions(cost=CostModelOptions(
            allow_swap=False, min_split_bytes=0, min_evict_bytes=0,
        ))
        result = TsplitPlanner(gpu, options).plan(graph)
        assert all(
            cfg.opt is not MemOption.SWAP
            for cfg in result.plan.configs.values()
        )
