"""The model-guided planner (Algorithm 2)."""

import pytest

from repro.core.cost_model import CostModelOptions
from repro.core.plan import MemOption
from repro.core.planner import PlannerOptions, TsplitPlanner
from repro.core.simulate import simulate_memory
from repro.errors import PlanningError
from tests.conftest import BIG_GPU, build_tiny_cnn


def gpu_with(capacity: int):
    return BIG_GPU.with_memory(capacity)


def tight_options() -> PlannerOptions:
    return PlannerOptions(
        cost=CostModelOptions(min_split_bytes=0, min_evict_bytes=0),
    )


class TestNoPressure:
    def test_ample_memory_gives_empty_plan(self):
        graph = build_tiny_cnn(batch=4)
        result = TsplitPlanner(BIG_GPU).plan(graph)
        assert result.plan.configs == {}
        assert result.decisions == []
        assert result.estimated_time == pytest.approx(result.baseline_time)


class TestUnderPressure:
    def build(self, fraction: float):
        graph = build_tiny_cnn(batch=64, image=32)
        baseline = TsplitPlanner(BIG_GPU).plan(graph).baseline_peak
        gpu = gpu_with(int(baseline * fraction))
        planner = TsplitPlanner(gpu, tight_options())
        return graph, gpu, planner

    def test_plan_meets_budget(self):
        graph, gpu, planner = self.build(0.7)
        result = planner.plan(graph)
        assert result.peak_memory <= gpu.memory_bytes
        assert result.decisions

    def test_curve_verifies_independently(self):
        graph, gpu, planner = self.build(0.7)
        result = planner.plan(graph)
        curve = simulate_memory(graph, result.schedule, result.plan)
        assert curve.max() <= gpu.memory_bytes

    def test_extra_time_accumulates(self):
        graph, gpu, planner = self.build(0.6)
        result = planner.plan(graph)
        assert result.estimated_time >= result.baseline_time
        assert result.estimated_overhead >= 0

    def test_tighter_budget_needs_more_decisions(self):
        graph, _, loose_planner = self.build(0.85)
        loose = loose_planner.plan(graph)
        _, _, tight_planner = self.build(0.55)
        tight = tight_planner.plan(graph)
        assert len(tight.decisions) >= len(loose.decisions)

    def test_greedy_prefers_cheap_candidates(self):
        """First decision should be (near) zero-cost: plenty of idle PCIe
        exists in an un-swapped schedule."""
        graph, _, planner = self.build(0.8)
        result = planner.plan(graph)
        first = result.decisions[0]
        assert first.ratio <= min(d.ratio for d in result.decisions) + 1e-9

    def test_describe_mentions_peaks(self):
        graph, _, planner = self.build(0.7)
        text = planner.plan(graph).describe()
        assert "peak" in text
        assert "decisions" in text


class TestInfeasible:
    def test_hopeless_budget_raises(self):
        graph = build_tiny_cnn(batch=32)
        # Smaller than the persistent tensors: nothing can ever fit.
        gpu = gpu_with(64 * 1024)
        with pytest.raises(PlanningError):
            TsplitPlanner(gpu, tight_options()).plan(graph)

    def test_decision_cap_enforced(self):
        graph = build_tiny_cnn(batch=32)
        baseline = TsplitPlanner(BIG_GPU).plan(graph).baseline_peak
        gpu = gpu_with(int(baseline * 0.6))
        options = PlannerOptions(
            max_decisions=0,
            cost=CostModelOptions(min_split_bytes=0, min_evict_bytes=0),
        )
        with pytest.raises(PlanningError, match="0 planning decisions"):
            TsplitPlanner(gpu, options).plan(graph)


class TestAblation:
    def test_nosplit_planner_never_splits(self):
        graph = build_tiny_cnn(batch=64, image=32)
        baseline = TsplitPlanner(BIG_GPU).plan(graph).baseline_peak
        gpu = gpu_with(int(baseline * 0.9))
        options = PlannerOptions(cost=CostModelOptions(
            allow_split=False, min_split_bytes=0, min_evict_bytes=0,
        ))
        result = TsplitPlanner(gpu, options).plan(graph)
        assert all(not cfg.is_split for cfg in result.plan.configs.values())

    def test_split_extends_trainability(self):
        """There exists a budget feasible with split but not without —
        the Figure 14a ablation in miniature."""
        graph = build_tiny_cnn(batch=64, image=32)
        nosplit = PlannerOptions(cost=CostModelOptions(
            allow_split=False, min_split_bytes=0, min_evict_bytes=0,
        ))
        full = tight_options()
        baseline = TsplitPlanner(BIG_GPU).plan(graph).baseline_peak
        found = False
        for percent in range(80, 15, -5):
            gpu = gpu_with(int(baseline * percent / 100))
            try:
                TsplitPlanner(gpu, nosplit).plan(graph)
                continue  # nosplit still fine; go tighter
            except PlanningError:
                pass
            try:
                TsplitPlanner(gpu, full).plan(graph)
                found = True
                break
            except PlanningError:
                continue
        assert found, "split mechanism never extended trainability"

    def test_swap_only_planner(self):
        graph = build_tiny_cnn(batch=64, image=32)
        baseline = TsplitPlanner(BIG_GPU).plan(graph).baseline_peak
        gpu = gpu_with(int(baseline * 0.9))
        options = PlannerOptions(cost=CostModelOptions(
            allow_recompute=False, min_split_bytes=0, min_evict_bytes=0,
        ))
        result = TsplitPlanner(gpu, options).plan(graph)
        assert all(
            cfg.opt is not MemOption.RECOMPUTE
            for cfg in result.plan.configs.values()
        )

    def test_recompute_only_planner(self):
        graph = build_tiny_cnn(batch=64, image=32)
        baseline = TsplitPlanner(BIG_GPU).plan(graph).baseline_peak
        gpu = gpu_with(int(baseline * 0.9))
        options = PlannerOptions(cost=CostModelOptions(
            allow_swap=False, min_split_bytes=0, min_evict_bytes=0,
        ))
        result = TsplitPlanner(gpu, options).plan(graph)
        assert all(
            cfg.opt is not MemOption.SWAP
            for cfg in result.plan.configs.values()
        )


class TestOrdering:
    """The ``PlannerOptions.ordering`` victim-selection rules."""

    @staticmethod
    def cand(tid, delta_m, delta_t):
        from repro.core.cost_model import Candidate
        from repro.core.plan import TensorConfig

        return Candidate(
            configs=((tid, TensorConfig(opt=MemOption.SWAP)),),
            delta_m=delta_m,
            delta_t=delta_t,
        )

    def test_ratio_prefers_cheaper_per_byte(self):
        from repro.core.planner import _better

        cheap = self.cand(1, delta_m=100.0, delta_t=1.0)
        dear = self.cand(2, delta_m=100.0, delta_t=5.0)
        assert _better(cheap, dear, "ratio")
        assert not _better(dear, cheap, "ratio")

    def test_ratio_tie_goes_to_larger_delta_m(self):
        from repro.core.planner import _better

        # Equal ratios (1/100 == 2/200): larger ΔM wins the tie.
        small = self.cand(1, delta_m=100.0, delta_t=1.0)
        large = self.cand(2, delta_m=200.0, delta_t=2.0)
        assert _better(large, small, "ratio")
        assert not _better(small, large, "ratio")

    def test_largest_prefers_bigger_delta_m(self):
        from repro.core.planner import _better

        big = self.cand(1, delta_m=500.0, delta_t=9.0)
        cheap = self.cand(2, delta_m=100.0, delta_t=0.1)
        assert _better(big, cheap, "largest")
        assert not _better(cheap, big, "largest")

    def test_largest_tie_goes_to_smaller_delta_t(self):
        from repro.core.planner import _better

        fast = self.cand(1, delta_m=100.0, delta_t=1.0)
        slow = self.cand(2, delta_m=100.0, delta_t=2.0)
        assert _better(fast, slow, "largest")
        assert not _better(slow, fast, "largest")

    def test_fifo_prefers_earlier_tensor(self):
        from repro.core.planner import _better

        early = self.cand(3, delta_m=1.0, delta_t=9.0)
        late = self.cand(7, delta_m=900.0, delta_t=0.1)
        assert _better(early, late, "fifo")
        assert not _better(late, early, "fifo")

    def test_fifo_tie_goes_to_better_ratio(self):
        from repro.core.planner import _better

        good = self.cand(3, delta_m=100.0, delta_t=1.0)
        bad = self.cand(3, delta_m=100.0, delta_t=5.0)
        assert _better(good, bad, "fifo")
        assert not _better(bad, good, "fifo")

    @pytest.mark.parametrize("ordering", ["ratio", "largest", "fifo"])
    def test_planner_meets_budget_under_every_ordering(self, ordering):
        graph = build_tiny_cnn(batch=64, image=32)
        baseline = TsplitPlanner(BIG_GPU).plan(graph).baseline_peak
        gpu = gpu_with(int(baseline * 0.7))
        options = PlannerOptions(
            ordering=ordering,
            cost=CostModelOptions(min_split_bytes=0, min_evict_bytes=0),
        )
        result = TsplitPlanner(gpu, options).plan(graph)
        assert result.peak_memory <= gpu.memory_bytes
        assert result.decisions

    def test_orderings_can_disagree(self):
        """The ablation is meaningful only if the rules actually pick
        different victims somewhere along the way."""
        graph = build_tiny_cnn(batch=64, image=32)
        baseline = TsplitPlanner(BIG_GPU).plan(graph).baseline_peak
        gpu = gpu_with(int(baseline * 0.7))
        plans = {}
        for ordering in ("ratio", "largest", "fifo"):
            options = PlannerOptions(
                ordering=ordering,
                cost=CostModelOptions(min_split_bytes=0, min_evict_bytes=0),
            )
            result = TsplitPlanner(gpu, options).plan(graph)
            plans[ordering] = [
                (tid, cfg) for d in result.decisions for tid, cfg in d.configs
            ]
        assert len({tuple(p) for p in plans.values()}) > 1
