"""The discrete-event core: chronological accounting, exact peaks/stalls.

These tests pin the behaviour the event-driven refactor exists for — the
cases issue-ordered accounting got wrong: a swap-out whose free lands
*after* a later-issued allocation must start, buffers that stay live
until their last consumer finishes, per-iteration durations read off the
event clock, and byte-for-byte agreement between the engine's peak and
the chronological peak re-derived from the allocation log.
"""

import pytest

from repro.analysis.allocator_replay import chronological_peak
from repro.analysis.runner import run_policy
from repro.hardware.gpu import GPUSpec
from repro.policies.base import get_policy
from repro.runtime.engine import Engine
from repro.runtime.instructions import (
    ComputeInstr,
    Program,
    SwapInInstr,
    SwapOutInstr,
    TensorRef,
)
from repro.units import MB, TFLOPS
from tests.conftest import (
    BIG_GPU,
    TINY_GPU,
    build_tiny_cnn,
    build_tiny_resnet,
    build_tiny_transformer,
)

#: PCIe so slow (1 MB/s, no setup latency) that transfer completions
#: land far in the future relative to compute — maximal cross-stream
#: time skew, the regime where issue-ordered accounting was wrong.
SLOW_PCIE_GPU = GPUSpec(
    name="slow-pcie",
    memory_bytes=8 * MB,
    peak_flops=1.0 * TFLOPS,
    mem_bandwidth=100e9,
    pcie_bandwidth=float(MB),
    pcie_latency=0.0,
)


class TestChronologicalStall:
    """The hand-built case issue-ordered accounting got wrong."""

    def build(self) -> Program:
        """Swap-out free lands after a later-issued allocation must start.

        C1 produces A (4 MB, done at t=1); its swap-out occupies D2H over
        [1, 5]. C2 (4 MB output) is ready to start at t=1, but with the
        4 MB swap-in of H landing at t=0 the device holds A + H = 8 MB —
        full — until A's bytes free at t=5. Issue-ordered accounting
        committed A's free while "at" instruction C2, so C2 started at
        t=1 with no stall and the true interleaving peaked at 12 MB on
        an 8 MB device. The event core must stall C2 until t=5 and peak
        at exactly 8 MB.
        """
        a = TensorRef(0, 4 * MB, label="a")
        b = TensorRef(1, 4 * MB, label="b")
        h = TensorRef(2, 4 * MB, label="h")
        return Program(
            instructions=[
                ComputeInstr("c1", 1.0, outputs=(a,)),
                SwapOutInstr(a),
                ComputeInstr("c2", 1.0, outputs=(b,)),
                SwapInInstr(h),
            ],
            initial_host=[h],
            batch=1,
            name="stall_case",
        )

    def test_stall_and_peak_are_exact(self):
        trace = Engine(SLOW_PCIE_GPU).execute(self.build())
        # C2 waits from t=1 until A's bytes land at t=5.
        assert trace.memory_stall == pytest.approx(4.0)
        # Exactly full, never oversubscribed: A+H, then (A replaced by B)+H.
        assert trace.peak_memory == 8 * MB
        assert chronological_peak(trace) == trace.peak_memory
        c2 = next(r for r in trace.records if r.label == "c2")
        assert c2.start == pytest.approx(5.0)
        assert c2.end == pytest.approx(6.0)
        assert trace.iteration_time == pytest.approx(6.0)

    def test_allocation_log_shows_the_wait(self):
        trace = Engine(SLOW_PCIE_GPU).execute(self.build())
        free_a = next(
            (t, n) for t, label, n in trace.alloc_events
            if label == "a" and n < 0
        )
        alloc_b = next(
            (t, n) for t, label, n in trace.alloc_events
            if label == "b" and n > 0
        )
        assert free_a[0] == pytest.approx(5.0)
        assert alloc_b[0] == pytest.approx(5.0)  # b starts the instant a dies


class TestReleaseAfterLastConsumer:
    def test_swap_out_free_waits_for_reader(self):
        """A buffer dies only when both its eviction transfer and every
        previously-issued consumer have finished (CUDA-event ordering);
        the old engine freed at transfer end, before the reader ran."""
        t = TensorRef(0, 2 * MB, label="t")
        marker = TensorRef(1, MB, label="m")
        program = Program(
            instructions=[
                ComputeInstr("produce", 1.0, outputs=(t,)),
                ComputeInstr("consume", 10.0, inputs=(t,), outputs=(marker,)),
                SwapOutInstr(t),
            ],
            batch=1,
            name="release_case",
        )
        trace = Engine(BIG_GPU).execute(program)
        free_t = next(
            time for time, label, n in trace.alloc_events
            if label == "t" and n < 0
        )
        consume = next(r for r in trace.records if r.label == "consume")
        xfer = next(r for r in trace.records if r.kind == "swap_out")
        # The transfer overlaps the consumer (it only reads), but the
        # bytes are not reclaimed until the consumer is done at t=11.
        assert xfer.end < consume.end
        assert free_t == pytest.approx(consume.end)


class TestEventClockIterations:
    def test_iteration_durations_sum_to_makespan(self):
        """Per-iteration durations come from the event clock and sum
        exactly to the aggregate makespan."""
        graph = build_tiny_cnn(batch=16)
        plan = get_policy("vdnn_all").build_plan(graph, BIG_GPU)
        from repro.core.augment import augment_graph
        from repro.core.profiler import Profiler

        augmented = augment_graph(graph, plan, Profiler(BIG_GPU).profile(graph))
        durations, trace = Engine(BIG_GPU).execute_iterations(
            augmented.program, 5,
        )
        assert len(durations) == 5
        assert all(d > 0 for d in durations)
        assert sum(durations) == pytest.approx(trace.iteration_time)

    def test_slow_pcie_durations_still_sum(self):
        """Even with transfers running far behind compute, the event
        clock keeps per-iteration splits consistent with the total."""
        program = TestChronologicalStall().build()
        durations, trace = Engine(SLOW_PCIE_GPU).execute_iterations(
            program, 1,
        )
        assert sum(durations) == pytest.approx(trace.iteration_time)


MODELS = {
    "tiny_cnn": lambda: build_tiny_cnn(batch=16),
    "tiny_resnet": lambda: build_tiny_resnet(batch=4),
    "tiny_transformer": lambda: build_tiny_transformer(batch=4),
}
POLICIES = [
    "base", "checkpoints", "vdnn_conv", "vdnn_all", "superneurons",
    "zero_offload", "fairscale_offload", "tsplit_nosplit", "tsplit",
]


class TestPeakMatchesReplayEverywhere:
    """Acceptance: engine peak == chronological peak, whole test matrix."""

    @pytest.mark.parametrize("model", sorted(MODELS))
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("gpu", [TINY_GPU, BIG_GPU],
                             ids=["tiny_gpu", "big_gpu"])
    def test_peak_equals_chronological_peak(self, model, policy, gpu):
        result = run_policy(MODELS[model](), policy, gpu)
        if not result.feasible:
            pytest.skip(f"{policy} infeasible on {model}/{gpu.name}")
        trace = result.trace
        assert chronological_peak(trace) == trace.peak_memory
