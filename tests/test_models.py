"""Model zoo: architecture shapes, scaling knobs, registry."""

import pytest

from repro.graph.liveness import peak_memory
from repro.graph.ops import OpType
from repro.graph.scheduler import dfs_schedule
from repro.models import (
    MODEL_REGISTRY,
    build_bert_large,
    build_inception_v4,
    build_model,
    build_resnet50,
    build_resnet101,
    build_transformer,
    build_vgg16,
    build_vgg19,
    model_names,
)
from repro.units import GB, MB


class TestVGG:
    def test_vgg16_conv_count(self):
        g = build_vgg16(2)
        convs = [op for op in g.ops.values()
                 if op.op_type is OpType.CONV2D and not op.is_backward]
        assert len(convs) == 13

    def test_vgg19_has_more_convs(self):
        g16 = build_vgg16(2)
        g19 = build_vgg19(2)
        def count(g):
            return sum(
                1 for op in g.ops.values()
                if op.op_type is OpType.CONV2D and not op.is_backward
            )
        assert count(g19) == 16
        assert count(g19) > count(g16)

    def test_param_bytes_near_reference(self):
        """VGG-16 has ~138M parameters (~528 MB fp32)."""
        g = build_vgg16(1)
        assert 450 * MB < g.parameter_bytes() < 600 * MB

    def test_param_scale_grows_channels(self):
        base = build_vgg16(2, param_scale=1.0)
        double = build_vgg16(2, param_scale=2.0)
        assert double.parameter_bytes() > 2 * base.parameter_bytes()

    def test_batch_scales_activations(self):
        small = build_vgg16(2)
        large = build_vgg16(8)
        assert large.activation_bytes() == pytest.approx(
            4 * small.activation_bytes(), rel=0.01,
        )


class TestResNet:
    def test_resnet50_conv_count(self):
        g = build_resnet50(2)
        convs = [op for op in g.ops.values()
                 if op.op_type is OpType.CONV2D and not op.is_backward]
        # 53 convolutions (1 stem + 16 blocks x 3 + 4 projections).
        assert len(convs) == 53

    def test_resnet101_deeper(self):
        assert len(build_resnet101(2)) > len(build_resnet50(2))

    def test_resnet50_param_bytes_near_reference(self):
        """ResNet-50 has ~25.6M parameters (~102 MB fp32)."""
        g = build_resnet50(1)
        assert 80 * MB < g.parameter_bytes() < 130 * MB

    def test_residual_adds_present(self):
        g = build_resnet50(2)
        adds = [op for op in g.ops.values()
                if op.op_type is OpType.ADD and not op.is_backward]
        assert len(adds) == 16  # one per bottleneck block


class TestInception:
    def test_branchy_structure(self):
        g = build_inception_v4(1, image_size=299)
        concats = [op for op in g.ops.values()
                   if op.op_type is OpType.CONCAT and not op.is_backward]
        assert len(concats) >= 17  # stem(3) + 4A + redA + 7B + redB + 3C

    def test_validates_and_schedules(self):
        g = build_inception_v4(1)
        g.validate()
        assert len(dfs_schedule(g)) == len(g.ops)


class TestTransformer:
    def test_no_convolutions(self):
        assert not build_transformer(2, seq_len=16).has_conv()

    def test_attention_scores_materialised(self):
        g = build_transformer(2, seq_len=16)
        scores = [t for t in g.tensors.values() if t.name.endswith("/scores")]
        assert len(scores) == 18  # 6 enc self + 6 dec self + 6 dec cross

    def test_param_scale_rounds_to_heads(self):
        g = build_transformer(2, param_scale=1.1, seq_len=16)
        embed = next(t for t in g.tensors.values()
                     if t.name == "src_embed/table")
        assert embed.shape[1] % 8 == 0

    def test_adam_default(self):
        from repro.graph.tensor import TensorKind

        g = build_transformer(2, seq_len=16)
        states = g.tensors_of_kind(TensorKind.OPTIMIZER_STATE)
        assert len(states) == 2 * len(g.parameters())


class TestBert:
    def test_bert_large_parameter_count(self):
        """BERT-Large is ~335M params (~1.3 GB fp32)."""
        g = build_bert_large(1)
        assert 1.0 * GB < g.parameter_bytes() < 1.8 * GB

    def test_hidden_must_divide_heads(self):
        with pytest.raises(ValueError):
            build_bert_large(1, hidden=1000)

    def test_layers_knob(self):
        small = build_bert_large(1, layers=2)
        assert len(small) < len(build_bert_large(1, layers=4))

    def test_memory_grows_with_hidden(self):
        a = peak_memory(build_bert_large(2, hidden=256, layers=2))
        b = peak_memory(build_bert_large(2, hidden=512, layers=2))
        assert b > a


class TestDenseNet:
    def test_parameter_count_near_reference(self):
        """DenseNet-121 has ~8M parameters (~32 MB fp32)."""
        from repro.models import build_densenet121

        g = build_densenet121(1)
        assert 25 * MB < g.parameter_bytes() < 45 * MB

    def test_dense_connectivity_concats(self):
        from repro.models import build_densenet121

        g = build_densenet121(2)
        concats = [op for op in g.ops.values()
                   if op.op_type is OpType.CONCAT and not op.is_backward]
        # Every layer past the first in each block concatenates, plus
        # block outputs: 5+11+23+15 + 4.
        assert len(concats) == 58

    def test_early_features_live_long(self):
        """The dense pattern keeps the stem output alive until the end
        of block 1 — the adversarial liveness DenseNet is known for."""
        from repro.graph.liveness import compute_liveness
        from repro.models import build_densenet121

        g = build_densenet121(2)
        schedule = dfs_schedule(g)
        liveness = compute_liveness(g, schedule)
        stem_pool = next(
            t for t in g.tensors.values() if t.name == "stem/pool/out"
        )
        alloc, free = liveness.interval(stem_pool.tensor_id)
        # It is consumed by every concat of block 1 and its backward.
        assert free - alloc > 50


class TestRegistry:
    def test_six_paper_models_registered(self):
        assert {"vgg16", "vgg19", "resnet50", "resnet101",
                "inception_v4", "transformer"} <= set(model_names())

    def test_build_model_dispatch(self):
        g = build_model("vgg16", 2)
        assert g.name.startswith("vgg16")

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError, match="unknown model"):
            build_model("alexnet", 2)

    def test_bert_param_scale_adapter(self):
        g = build_model("bert_large", 1, param_scale=0.5, layers=2)
        embed = next(t for t in g.tensors.values() if t.name == "embed/table")
        assert embed.shape[1] == 512

    def test_all_registered_models_build_and_validate(self):
        for name in MODEL_REGISTRY:
            kwargs = {"layers": 2} if "bert" in name else {}
            if name == "transformer":
                kwargs = {"seq_len": 16, "layers": 2}
            graph = build_model(name, 2, **kwargs)
            graph.validate()
            assert len(dfs_schedule(graph)) == len(graph.ops)
