"""Liveness intervals and memory curves (Figure 4)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph.autodiff import build_training_graph
from repro.graph.liveness import (
    compute_liveness,
    live_tensor_counts,
    memory_curve,
    peak_memory,
)
from repro.graph.scheduler import dfs_schedule
from repro.graph.tensor import TensorKind
from repro.models.layers import ModelBuilder
from tests.conftest import build_tiny_cnn


class TestIntervals:
    def test_persistent_tensors_live_whole_iteration(self, tiny_cnn_schedule):
        graph, schedule = tiny_cnn_schedule
        liveness = compute_liveness(graph, schedule)
        for param in graph.parameters():
            assert liveness.interval(param.tensor_id) == (0, len(schedule) - 1)

    def test_activation_lives_from_producer_to_last_use(self, tiny_cnn_schedule):
        graph, schedule = tiny_cnn_schedule
        liveness = compute_liveness(graph, schedule)
        for tensor in graph.activations():
            alloc, free = liveness.interval(tensor.tensor_id)
            assert alloc == liveness.position[tensor.producer]
            uses = [
                liveness.position[c] for c in tensor.consumers
                if c in liveness.position
            ]
            assert free == (max(uses) if uses else alloc)

    def test_is_live_at(self, tiny_cnn_schedule):
        graph, schedule = tiny_cnn_schedule
        liveness = compute_liveness(graph, schedule)
        some_act = graph.activations()[0]
        alloc, free = liveness.interval(some_act.tensor_id)
        assert liveness.is_live_at(some_act.tensor_id, alloc)
        assert liveness.is_live_at(some_act.tensor_id, free)
        assert not liveness.is_live_at(some_act.tensor_id, free + 1)

    def test_live_tensors_at_first_step(self, tiny_cnn_schedule):
        graph, schedule = tiny_cnn_schedule
        liveness = compute_liveness(graph, schedule)
        live0 = set(liveness.live_tensors_at(0))
        for param in graph.parameters():
            assert param.tensor_id in live0


class TestMemoryCurve:
    def test_curve_length_matches_schedule(self, tiny_cnn_schedule):
        graph, schedule = tiny_cnn_schedule
        assert len(memory_curve(graph, schedule)) == len(schedule)

    def test_curve_positive_everywhere(self, tiny_cnn_schedule):
        graph, schedule = tiny_cnn_schedule
        assert (memory_curve(graph, schedule) > 0).all()

    def test_initial_step_at_least_persistents(self, tiny_cnn_schedule):
        graph, schedule = tiny_cnn_schedule
        curve = memory_curve(graph, schedule)
        persistent = sum(
            t.size_bytes for t in graph.tensors.values()
            if t.kind in (TensorKind.PARAM, TensorKind.INPUT,
                          TensorKind.OPTIMIZER_STATE)
        )
        assert curve[0] >= persistent

    def test_peak_is_curve_max(self, tiny_cnn_schedule):
        graph, schedule = tiny_cnn_schedule
        assert peak_memory(graph, schedule) == int(
            memory_curve(graph, schedule).max()
        )

    def test_workspace_included_by_default(self, tiny_cnn_schedule):
        graph, schedule = tiny_cnn_schedule
        with_ws = memory_curve(graph, schedule, include_workspace=True)
        without = memory_curve(graph, schedule, include_workspace=False)
        assert with_ws.sum() > without.sum()

    def test_fig4_pattern_peak_in_middle(self, tiny_cnn_schedule):
        """The memory curve rises through forward and falls through
        backward: the peak is not at either end."""
        graph, schedule = tiny_cnn_schedule
        curve = memory_curve(graph, schedule)
        peak_at = int(np.argmax(curve))
        assert 0 < peak_at < len(curve) - 1

    def test_peak_scales_with_batch(self):
        small = build_tiny_cnn(batch=4)
        large = build_tiny_cnn(batch=16)
        assert peak_memory(large) > 2 * peak_memory(small)


class TestLiveCounts:
    def test_counts_positive(self, tiny_cnn_schedule):
        graph, schedule = tiny_cnn_schedule
        counts = live_tensor_counts(graph, schedule)
        assert (counts >= 1).all()

    def test_counts_bounded_by_tensor_total(self, tiny_cnn_schedule):
        graph, schedule = tiny_cnn_schedule
        counts = live_tensor_counts(graph, schedule)
        assert counts.max() <= len(graph.tensors)


@settings(max_examples=20, deadline=None)
@given(
    batch=st.integers(min_value=1, max_value=8),
    depth=st.integers(min_value=1, max_value=4),
)
def test_memory_conservation_property(batch, depth):
    """Sum of (curve deltas) returns to the persistent baseline: all
    transient tensors are freed by the end of the iteration."""
    builder = ModelBuilder("chain", batch)
    x = builder.input_image(2, 8, 8)
    for i in range(depth):
        x = builder.conv2d(x, 4, 3, name=f"conv{i}")
        x = builder.relu(x, name=f"relu{i}")
    loss = builder.cross_entropy_loss(builder.linear(builder.flatten(x), 4))
    graph = build_training_graph(builder.graph, loss)
    schedule = dfs_schedule(graph)
    curve = memory_curve(graph, schedule, include_workspace=False)
    persistent = sum(
        t.size_bytes for t in graph.tensors.values()
        if t.kind in (TensorKind.PARAM, TensorKind.INPUT,
                      TensorKind.OPTIMIZER_STATE)
    )
    # The final step holds the persistents plus at most the last op's
    # tensors (freed at step end by convention).
    last_op = graph.ops[schedule[-1]]
    slack = sum(
        graph.tensors[t].size_bytes
        for t in set(last_op.inputs) | set(last_op.outputs)
    )
    assert curve[-1] <= persistent + slack
    assert curve[-1] >= persistent
