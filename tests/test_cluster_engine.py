"""Cluster engine: N=1 byte-identity, rendezvous, wedging, DP runs."""

from __future__ import annotations

import dataclasses

import pytest

from repro.cluster import compile_cluster
from repro.core.profiler import Profiler
from repro.errors import RuntimeExecutionError
from repro.hardware.cluster import ClusterSpec, all_reduce_time
from repro.hardware.gpu import GPU_PRESETS, GPUSpec
from repro.pipeline.stages import (
    LowerStage,
    PlanStage,
    ProfileStage,
    default_augment_options,
    resolve_policy,
)
from repro.runtime.cluster_engine import ClusterEngine
from repro.runtime.engine import Engine
from repro.runtime.instructions import (
    CollectiveInstr,
    ComputeInstr,
    Program,
    TensorRef,
)
from repro.runtime.observers import TraceObserver
from repro.units import MB, TFLOPS

from tests.conftest import build_tiny_cnn

#: Sized so ``build_tiny_cnn(64, channels=16, image=32)`` OOMs under the
#: base policy but fits once TSPLIT splits and swaps — the single-rank
#: identity check below then covers real planner output, not a no-op plan.
NANO_GPU = GPUSpec(
    name="nano-24mb",
    memory_bytes=24 * MB,
    peak_flops=1.0 * TFLOPS,
    mem_bandwidth=100e9,
    pcie_bandwidth=4e9,
)

V100 = GPU_PRESETS["v100_16gb"]


def _single_gpu_program(graph, gpu, policy_name="tsplit"):
    """The seed pipeline's Profile → Plan → Lower, no cluster involved."""
    policy = resolve_policy(policy_name)
    profile = ProfileStage(Profiler(gpu)).run(graph, gpu)
    plan_art = PlanStage(policy).run(graph, gpu, profile)
    assert plan_art.plan is not None, plan_art.error
    options = default_augment_options(policy, None)
    return LowerStage(options).run(graph, plan_art.plan, profile).program.program


def _mini_rank(
    rank: int,
    world: int,
    produce_s: float,
    *,
    nbytes: int = 1 << 20,
    comm_id: int = 0,
    kind: str = "all_reduce",
) -> Program:
    """produce → collective → consume, the smallest rendezvous program."""
    grad = TensorRef(tensor_id=1, nbytes=nbytes, label="grad")
    program = Program(name=f"mini-r{rank}", batch=1)
    program.append(ComputeInstr("produce", produce_s, outputs=(grad,)))
    program.append(CollectiveInstr(
        kind, comm_id, tuple(range(world)), nbytes,
        label=f"{kind}#{comm_id}", inputs=(grad,),
    ))
    program.append(ComputeInstr("consume", 1e-3, inputs=(grad,)))
    return program


class TestSingleRankIdentity:
    def test_trace_is_byte_identical_to_the_seed_engine(self):
        graph = build_tiny_cnn(64, channels=16, image=32)
        cluster = ClusterSpec.homogeneous(NANO_GPU, 1)
        compiled = compile_cluster(graph, 64, "tsplit", cluster, mode="dp")
        assert compiled.feasible, compiled.failure
        cluster_trace = compiled.execute()

        reference = Engine(NANO_GPU).execute(
            _single_gpu_program(graph, NANO_GPU),
        )
        assert reference.split_kernels > 0
        assert reference.swapped_out_bytes > 0

        rank0 = cluster_trace.ranks[0]
        for field in dataclasses.fields(type(reference)):
            assert getattr(rank0, field.name) == getattr(
                reference, field.name,
            ), f"field {field.name} diverged"
        assert cluster_trace.makespan == reference.iteration_time
        assert cluster_trace.comm_busy == [0.0]
        assert cluster_trace.collective_bytes == [0]

    def test_single_rank_zero_shard_also_degenerates(self):
        graph = build_tiny_cnn(16)
        cluster = ClusterSpec.homogeneous(NANO_GPU, 1)
        compiled = compile_cluster(
            graph, 16, "tsplit", cluster, mode="zero_shard",
        )
        assert compiled.feasible, compiled.failure
        trace = compiled.execute()
        assert trace.collective_bytes == [0]


class TestRendezvous:
    def test_collective_waits_for_the_slowest_rank(self):
        cluster = ClusterSpec.homogeneous(V100, 2)
        observers = [[TraceObserver()], [TraceObserver()]]
        slow = 5e-3
        trace = ClusterEngine(cluster).execute(
            [_mini_rank(0, 2, 1e-3), _mini_rank(1, 2, slow)],
            observers=observers,
        )
        expected = all_reduce_time(cluster.intra_link, 1 << 20, 2)
        for rank_observers in observers:
            comm = [
                record for record in rank_observers[0].records
                if record.stream == "comm"
            ]
            assert len(comm) == 1
            assert comm[0].start == pytest.approx(slow)
            assert comm[0].duration == pytest.approx(expected)
        assert trace.comm_busy == pytest.approx([expected, expected])
        assert trace.collective_bytes == [1 << 20, 1 << 20]
        assert trace.makespan == pytest.approx(slow + expected + 1e-3)

    def test_consumer_waits_for_the_reduction(self):
        cluster = ClusterSpec.homogeneous(V100, 2)
        observers = [[TraceObserver()], [TraceObserver()]]
        ClusterEngine(cluster).execute(
            [_mini_rank(0, 2, 1e-3), _mini_rank(1, 2, 1e-3)],
            observers=observers,
        )
        records = observers[0][0].records
        comm_end = next(
            record.end for record in records if record.stream == "comm"
        )
        consume = next(
            record for record in records if record.label == "consume"
        )
        assert consume.start >= comm_end

    def test_world_size_program_count_must_match(self):
        cluster = ClusterSpec.homogeneous(V100, 2)
        with pytest.raises(RuntimeExecutionError, match="needs 2 programs"):
            ClusterEngine(cluster).execute([_mini_rank(0, 2, 1e-3)])


class TestWedging:
    def test_mismatched_comm_ids_wedge_the_dispatcher(self):
        cluster = ClusterSpec.homogeneous(V100, 2)
        programs = [
            _mini_rank(0, 2, 1e-3, comm_id=0),
            _mini_rank(1, 2, 1e-3, comm_id=7),
        ]
        # Depending on which side stalls first the engine reports either
        # a per-rank deadlock or a cluster-level wedge; both must raise.
        with pytest.raises(RuntimeExecutionError, match="deadlocked|wedged"):
            ClusterEngine(cluster).execute(programs)

    def test_mismatched_kinds_are_reported(self):
        cluster = ClusterSpec.homogeneous(V100, 2)
        programs = [
            _mini_rank(0, 2, 1e-3, kind="all_reduce"),
            _mini_rank(1, 2, 1e-3, kind="all_gather"),
        ]
        with pytest.raises(RuntimeExecutionError, match="inconsistently"):
            ClusterEngine(cluster).execute(programs)

    def test_single_engine_rejects_multi_rank_collectives(self):
        with pytest.raises(RuntimeExecutionError, match="ClusterEngine"):
            Engine(V100).execute(_mini_rank(0, 2, 1e-3))


class TestDataParallel:
    def test_replicas_rendezvous_and_sum_throughput(self):
        cluster = ClusterSpec.homogeneous(V100, 2)
        compiled = compile_cluster("bert_large", 8, "base", cluster, mode="dp")
        assert compiled.feasible, compiled.failure
        assert compiled.meta["per_rank_batch"] == 4
        trace = compiled.execute()
        assert trace.world_size == 2
        assert trace.per_rank_peak[0] == trace.per_rank_peak[1]
        assert trace.comm_busy[0] > 0
        assert trace.collective_bytes[0] == trace.collective_bytes[1] > 0
        assert trace.throughput == pytest.approx(8 / trace.makespan)

    def test_indivisible_batch_is_rejected(self):
        cluster = ClusterSpec.homogeneous(V100, 2)
        with pytest.raises(ValueError, match="divisible"):
            compile_cluster("bert_large", 7, "base", cluster, mode="dp")
