"""Mixed-precision (fp16 activations, fp32 master weights)."""

import pytest

from repro.analysis.runner import run_policy
from repro.analysis.scaling import max_sample_scale
from repro.graph.tensor import TensorKind
from repro.models import build_model, build_vgg16
from repro.models.layers import ModelBuilder
from tests.conftest import BIG_GPU


class TestDtypePropagation:
    def test_activations_halve(self):
        fp32 = build_vgg16(2, precision="fp32")
        fp16 = build_vgg16(2, precision="fp16")
        assert fp16.activation_bytes() == pytest.approx(
            fp32.activation_bytes() / 2, rel=0.01,
        )

    def test_master_weights_stay_fp32(self):
        fp16 = build_vgg16(2, precision="fp16")
        for param in fp16.parameters():
            assert param.dtype.nbytes == 4
        for state in fp16.tensors_of_kind(TensorKind.OPTIMIZER_STATE):
            assert state.dtype.nbytes == 4

    def test_gradients_follow_activations(self):
        fp16 = build_vgg16(2, precision="fp16")
        grads = fp16.tensors_of_kind(TensorKind.GRAD_ACTIVATION)
        assert grads
        assert all(g.dtype.nbytes == 2 for g in grads)

    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            ModelBuilder("m", 2, precision="fp8")

    def test_all_registry_models_accept_precision(self):
        for name in ("vgg16", "resnet50", "transformer", "gpt",
                     "densenet121", "bert_large"):
            kwargs = {"layers": 2} if name in ("bert_large", "gpt") else {}
            if name in ("transformer", "gpt"):
                kwargs["seq_len"] = 16
                kwargs.setdefault("layers", 2)
            graph = build_model(name, 2, precision="fp16", **kwargs)
            graph.validate()


def small_cnn(batch, *, param_scale=1.0, precision="fp32"):
    """Activation-dominated toy (tiny params) for precision scaling."""
    from repro.graph.autodiff import build_training_graph

    builder = ModelBuilder(f"pcnn[{precision}]", batch, precision=precision)
    x = builder.input_image(3, 32, 32)
    for i in range(4):
        x = builder.conv2d(x, 8, 3, name=f"conv{i}")
        x = builder.relu(x, name=f"relu{i}")
    logits = builder.linear(builder.flatten(x), 10)
    loss = builder.cross_entropy_loss(logits)
    return build_training_graph(builder.graph, loss)


class TestPrecisionScaling:
    def test_fp16_roughly_doubles_max_batch(self):
        gpu = BIG_GPU.with_memory(64 * 1024 * 1024)
        fp32_max = max_sample_scale(
            lambda b, param_scale=1.0: small_cnn(b, precision="fp32"),
            "base", gpu, cap=2048,
        )
        fp16_max = max_sample_scale(
            lambda b, param_scale=1.0: small_cnn(b, precision="fp16"),
            "base", gpu, cap=2048,
        )
        assert fp32_max > 0
        assert fp16_max > fp32_max * 1.5

    def test_fp16_executes_under_tsplit(self):
        graph = build_vgg16(8, image_size=64, precision="fp16")
        result = run_policy(graph, "tsplit", BIG_GPU)
        assert result.feasible
