"""1F1B pipeline schedule: per-stage work orders and bubble accounting."""

from __future__ import annotations

import pytest

from repro.cluster.schedule import (
    bubble_count,
    bubble_fraction,
    one_f_one_b_order,
)


@pytest.mark.parametrize("n_stages", [1, 2, 4])
@pytest.mark.parametrize("micros", [1, 4, 8])
def test_every_stage_runs_each_micro_once_each_way(n_stages, micros):
    for rank in range(n_stages):
        order = one_f_one_b_order(n_stages, rank, micros)
        forwards = [m for kind, m in order if kind == "F"]
        backwards = [m for kind, m in order if kind == "B"]
        assert forwards == list(range(micros))
        assert backwards == list(range(micros))
        assert len(order) == 2 * micros


@pytest.mark.parametrize("n_stages,micros", [(2, 4), (4, 8), (4, 2)])
def test_backward_never_precedes_its_forward(n_stages, micros):
    for rank in range(n_stages):
        order = one_f_one_b_order(n_stages, rank, micros)
        for micro in range(micros):
            assert order.index(("F", micro)) < order.index(("B", micro))


def test_warmup_depth_shrinks_toward_last_stage():
    n_stages, micros = 4, 8
    for rank in range(n_stages):
        order = one_f_one_b_order(n_stages, rank, micros)
        warmup = min(micros, n_stages - 1 - rank)
        assert all(kind == "F" for kind, _ in order[:warmup])
        if warmup < micros:
            # Steady state starts immediately after warm-up: F then B.
            assert order[warmup][0] == "F"
            assert order[warmup + 1][0] == "B"


def test_last_stage_alternates_from_the_first_micro():
    order = one_f_one_b_order(4, 3, 4)
    assert order == [
        ("F", 0), ("B", 0), ("F", 1), ("B", 1),
        ("F", 2), ("B", 2), ("F", 3), ("B", 3),
    ]


def test_validation_errors():
    with pytest.raises(ValueError, match="n_stages"):
        one_f_one_b_order(0, 0, 1)
    with pytest.raises(ValueError, match="out of range"):
        one_f_one_b_order(2, 2, 1)
    with pytest.raises(ValueError, match="micros"):
        one_f_one_b_order(2, 0, 0)
    with pytest.raises(ValueError, match="out of range"):
        bubble_count(4, 4, 1)
    with pytest.raises(ValueError, match="n_stages"):
        bubble_fraction(0, 4)


def test_bubble_count_is_the_fill_depth():
    assert [bubble_count(4, rank, 8) for rank in range(4)] == [0, 1, 2, 3]


def test_bubble_fraction_formula_and_limits():
    assert bubble_fraction(1, 4) == 0.0
    assert bubble_fraction(4, 4) == pytest.approx(3 / 7)
    # More micro-batches amortise the fixed fill/drain bubble.
    fractions = [bubble_fraction(4, m) for m in (1, 2, 8, 64)]
    assert fractions == sorted(fractions, reverse=True)
