"""The CompileCache's persistent disk tier."""

import pickle

import pytest

from repro.pipeline import compile_run
from repro.pipeline.cache import (
    CACHE_FORMAT_VERSION,
    CompileCache,
    default_cache_dir,
)
from tests.conftest import BIG_GPU, build_tiny_cnn


class TestDiskTier:
    def test_put_writes_content_addressed_file(self, tmp_path):
        cache = CompileCache(disk_dir=tmp_path)
        cache.put("k1", {"answer": 42}, kind="profile")
        files = list((tmp_path / f"v{CACHE_FORMAT_VERSION}").glob("*.pkl"))
        assert [f.name for f in files] == ["profile-k1.pkl"]

    def test_cross_instance_sharing(self, tmp_path):
        first = CompileCache(disk_dir=tmp_path)
        first.put("k1", {"answer": 42}, kind="profile")
        second = CompileCache(disk_dir=tmp_path)
        assert second.get("k1", kind="profile") == {"answer": 42}
        assert second.disk_hits == 1 and second.hits == 0

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        CompileCache(disk_dir=tmp_path).put("k1", "v", kind="plan")
        cache = CompileCache(disk_dir=tmp_path)
        assert cache.get("k1", kind="plan") == "v"
        assert cache.get("k1", kind="plan") == "v"
        stats = cache.cache_stats()
        assert stats["disk_hits"] == 1 and stats["hits"] == 1
        assert stats["kinds"]["plan"]["disk_hits"] == 1

    def test_full_miss_counts_both_tiers(self, tmp_path):
        cache = CompileCache(disk_dir=tmp_path)
        assert cache.get("absent", kind="profile") is None
        stats = cache.cache_stats()
        assert stats["misses"] == 1 and stats["disk_misses"] == 1
        assert stats["kinds"]["profile"] == {
            "hits": 0, "misses": 1, "evictions": 0,
            "disk_hits": 0, "disk_misses": 1,
        }

    def test_memory_only_cache_reports_no_disk_kind_keys(self):
        cache = CompileCache()
        cache.get("absent", kind="profile")
        stats = cache.cache_stats()
        assert stats["disk_hits"] == 0 and stats["disk_misses"] == 0
        assert stats["kinds"]["profile"] == \
            {"hits": 0, "misses": 1, "evictions": 0}

    def test_memory_eviction_keeps_disk_entry(self, tmp_path):
        cache = CompileCache(max_entries=1, disk_dir=tmp_path)
        cache.put("k1", "v1", kind="plan")
        cache.put("k2", "v2", kind="plan")  # evicts k1 from memory only
        assert cache.get("k1", kind="plan") == "v1"
        assert cache.disk_hits == 1

    def test_corrupt_file_is_a_miss_then_overwritten(self, tmp_path):
        cache = CompileCache(disk_dir=tmp_path)
        cache.put("k1", "good", kind="plan")
        path = tmp_path / f"v{CACHE_FORMAT_VERSION}" / "plan-k1.pkl"
        path.write_bytes(b"\x80\x04 this is not a pickle")
        fresh = CompileCache(disk_dir=tmp_path)
        assert fresh.get("k1", kind="plan") is None
        assert fresh.disk_misses == 1
        fresh.put("k1", "recomputed", kind="plan")
        assert CompileCache(disk_dir=tmp_path).get("k1", kind="plan") == \
            "recomputed"

    def test_truncated_file_is_a_miss(self, tmp_path):
        cache = CompileCache(disk_dir=tmp_path)
        cache.put("k1", list(range(1000)), kind="profile")
        path = tmp_path / f"v{CACHE_FORMAT_VERSION}" / "profile-k1.pkl"
        path.write_bytes(path.read_bytes()[:20])
        assert CompileCache(disk_dir=tmp_path).get("k1", "profile") is None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = CompileCache(disk_dir=tmp_path)
        path = cache._disk_path("k1", "plan")
        payload = {
            "version": CACHE_FORMAT_VERSION + 1,
            "kind": "plan", "key": "k1", "artifact": "future",
        }
        path.write_bytes(pickle.dumps(payload))
        assert cache.get("k1", kind="plan") is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = CompileCache(disk_dir=tmp_path)
        path = cache._disk_path("k1", "plan")
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "kind": "plan", "key": "other", "artifact": "misplaced",
        }
        path.write_bytes(pickle.dumps(payload))
        assert cache.get("k1", kind="plan") is None

    def test_no_temp_file_survivors(self, tmp_path):
        cache = CompileCache(disk_dir=tmp_path)
        for i in range(5):
            cache.put(f"k{i}", i, kind="profile")
        leftovers = list((tmp_path / f"v{CACHE_FORMAT_VERSION}").glob(".tmp-*"))
        assert leftovers == []


class TestAccountingInvariant:
    """Regression: every get resolves as exactly one of memory hit,
    disk hit or miss, so ``lookups == total_hits + misses`` always.

    Pre-fix, a disk-tier hit bumped ``disk_hits`` but not any aggregate
    hit total, so a warm-*disk* cache (every lookup served from files)
    reported a zero hit rate.
    """

    @staticmethod
    def _assert_coherent(stats):
        assert stats["total_hits"] == stats["hits"] + stats["disk_hits"]
        assert stats["lookups"] == stats["total_hits"] + stats["misses"]

    def test_all_three_paths_fold_coherently(self, tmp_path):
        CompileCache(disk_dir=tmp_path).put("k1", "v", kind="plan")
        cache = CompileCache(disk_dir=tmp_path)
        cache.get("absent", kind="plan")  # miss in both tiers
        cache.get("k1", kind="plan")      # disk hit (promotes to memory)
        cache.get("k1", kind="plan")      # memory hit
        stats = cache.cache_stats()
        assert (stats["hits"], stats["disk_hits"], stats["misses"]) == \
            (1, 1, 1)
        assert stats["lookups"] == 3
        assert stats["total_hits"] == 2
        assert stats["hit_rate"] == pytest.approx(2 / 3)
        self._assert_coherent(stats)

    def test_warm_disk_cache_reports_its_real_hit_rate(self, tmp_path):
        CompileCache(disk_dir=tmp_path).put("k1", "v", kind="profile")
        # Every "session" has a cold memory tier: all hits come from
        # disk, and the reported hit rate must say so.
        for _ in range(3):
            cache = CompileCache(disk_dir=tmp_path)
            assert cache.get("k1", kind="profile") == "v"
            stats = cache.stats()
            assert stats["hits"] == 0 and stats["disk_hits"] == 1
            assert stats["hit_rate"] == 1.0
            self._assert_coherent(stats)

    def test_memory_only_cache_folds_too(self):
        cache = CompileCache()
        cache.get("absent")
        cache.put("k", "v")
        cache.get("k")
        stats = cache.stats()
        assert stats["lookups"] == 2 and stats["total_hits"] == 1
        assert stats["hit_rate"] == 0.5
        self._assert_coherent(stats)

    def test_pipeline_stats_stay_coherent(self, tmp_path):
        graph = build_tiny_cnn(batch=8)
        shared_dir = tmp_path / "cache"
        for _ in range(2):
            cache = CompileCache(disk_dir=shared_dir)
            compile_run(graph, "tsplit", BIG_GPU, cache=cache)
            compile_run(graph, "tsplit", BIG_GPU, cache=cache)
            self._assert_coherent(cache.cache_stats())


class TestPipelineWarmStart:
    def test_second_session_recompiles_nothing(self, tmp_path):
        graph = build_tiny_cnn(batch=8)
        cold = CompileCache(disk_dir=tmp_path)
        first = compile_run(graph, "tsplit", BIG_GPU, cache=cold)
        # A "later session": fresh memory tier, same directory.
        warm = CompileCache(disk_dir=tmp_path)
        second = compile_run(graph, "tsplit", BIG_GPU, cache=warm)
        assert second.profile.cached and second.plan.cached
        assert warm.cache_stats()["disk_hits"] == 2
        assert warm.cache_stats()["disk_misses"] == 0
        assert second.result.trace.peak_memory == \
            first.result.trace.peak_memory
        assert second.plan.plan == first.plan.plan

    def test_planning_failure_survives_the_disk_roundtrip(self, tmp_path):
        graph = build_tiny_cnn(batch=8)
        tiny = BIG_GPU.with_memory(64 * 1024)
        cold = CompileCache(disk_dir=tmp_path)
        first = compile_run(graph, "tsplit", tiny, cache=cold)
        assert not first.result.feasible
        warm = CompileCache(disk_dir=tmp_path)
        second = compile_run(graph, "tsplit", tiny, cache=warm)
        assert second.plan.cached and not second.result.feasible
        assert second.result.failure == first.result.failure


class TestDefaultCacheDir:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro"

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        assert default_cache_dir().name == "repro"

    def test_bad_max_entries_still_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CompileCache(max_entries=0, disk_dir=tmp_path)
