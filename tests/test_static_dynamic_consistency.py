"""Property test: the static plan model bounds the engine's behaviour.

The planner trusts ``simulate_memory``; the engine executes the
augmented program. For random (valid) plans the engine must execute
without OOM whenever it is given comfortably more memory than the
static model predicts — otherwise the planner would emit plans that die
at runtime, which is exactly the class of bug this suite guards.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.augment import augment_graph
from repro.core.plan import MemOption, Plan, TensorConfig, validate_plan
from repro.core.profiler import Profiler
from repro.core.simulate import simulate_memory, tensor_timeline
from repro.errors import OutOfMemoryError, PolicyError
from repro.graph.liveness import compute_liveness
from repro.graph.scheduler import dfs_schedule
from repro.runtime.engine import Engine
from tests.conftest import BIG_GPU, build_tiny_cnn
from repro.units import MB

GRAPH = build_tiny_cnn(batch=32, image=32)
SCHEDULE = dfs_schedule(GRAPH)
LIVENESS = compute_liveness(GRAPH, SCHEDULE)
PROFILE = Profiler(BIG_GPU).profile(GRAPH)
CANDIDATE_TENSORS = [
    t for t in GRAPH.activations()
    if tensor_timeline(GRAPH, LIVENESS, t) is not None
]

OPTIONS = [MemOption.RESIDE, MemOption.SWAP, MemOption.RECOMPUTE]
P_NUMS = [1, 2, 4, 8]


@st.composite
def random_plans(draw):
    plan = Plan(policy="random")
    count = draw(st.integers(min_value=0, max_value=8))
    for _ in range(count):
        tensor = draw(st.sampled_from(CANDIDATE_TENSORS))
        option = draw(st.sampled_from(OPTIONS))
        p_num = draw(st.sampled_from(P_NUMS))
        dim = draw(st.sampled_from(["sample", "parameter"]))
        cfg = TensorConfig(opt=option, p_num=p_num, dim=dim)
        try:
            probe = plan.copy()
            probe.set(tensor.tensor_id, cfg)
            validate_plan(GRAPH, probe)
        except PolicyError:
            continue
        plan.set(tensor.tensor_id, cfg)
    return plan


@settings(max_examples=60, deadline=None)
@given(plan=random_plans())
def test_engine_fits_within_static_bound(plan):
    """With 1.5x the statically-predicted peak (+ slack), any valid plan
    executes without OOM — the planner's feasibility check is sound."""
    curve = simulate_memory(GRAPH, SCHEDULE, plan, LIVENESS)
    static_peak = int(curve.max())
    capacity = int(static_peak * 1.5) + 4 * MB
    gpu = BIG_GPU.with_memory(capacity)
    augmented = augment_graph(GRAPH, plan, PROFILE, schedule=SCHEDULE)
    engine = Engine(gpu)
    try:
        trace = engine.execute(augmented.program)
    except OutOfMemoryError as exc:  # pragma: no cover - the failure mode
        pytest.fail(
            f"engine OOM despite 1.5x static bound "
            f"(static {static_peak}, capacity {capacity}): {exc}\n"
            f"plan: {plan.configs}"
        )
    # And the run must be complete: compute happened, nothing negative.
    assert trace.iteration_time > 0
    assert trace.peak_memory <= capacity


@settings(max_examples=30, deadline=None)
@given(plan=random_plans())
def test_eviction_only_reduces_static_peak_vs_base(plan):
    """No plan should *raise* the forward-region requirement above the
    base curve by more than the streaming slack (regen tails may move
    memory later, but the pre-bottleneck region only loses tensors)."""
    from repro.graph.ops import Phase

    base = simulate_memory(GRAPH, SCHEDULE, Plan(), LIVENESS)
    curve = simulate_memory(GRAPH, SCHEDULE, plan, LIVENESS)
    # Strictly-forward region: before the first backward op (recompute
    # chain transients and regen windows only appear at backward uses).
    forward_end = next(
        i for i, op_id in enumerate(SCHEDULE)
        if GRAPH.ops[op_id].phase is not Phase.FORWARD
    )
    assert (curve[:forward_end] <= base[:forward_end] + 1.0).all()
