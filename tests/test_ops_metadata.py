"""Operator taxonomy metadata (the tables the policies depend on)."""

from repro.graph.ops import (
    ComputeClass,
    Operator,
    OpType,
    Phase,
    conv2d_flops,
    matmul_flops,
)


class TestEnumIntegrity:
    def test_all_members_distinct(self):
        """Equal-valued members would silently alias (a real bug we hit):
        every OpType must be its own member."""
        assert len(list(OpType)) == 26
        kernels = [m.value.kernel for m in OpType]
        assert len(set(kernels)) == len(kernels)

    def test_forward_backward_update_memory_phases(self):
        assert {p.value for p in Phase} == {
            "forward", "backward", "update", "memory",
        }


class TestClassification:
    def test_conv_flags(self):
        assert OpType.CONV2D.is_conv
        assert OpType.CONV2D.compute_class is ComputeClass.COMPUTE_BOUND
        assert not OpType.MATMUL.is_conv

    def test_superneurons_cheap_set(self):
        cheap = {m for m in OpType if m.cheap_to_recompute}
        assert OpType.POOL_MAX in cheap
        assert OpType.BATCHNORM in cheap
        assert OpType.RELU in cheap
        assert OpType.CONV2D not in cheap
        assert OpType.MATMUL not in cheap

    def test_transfer_ops(self):
        assert OpType.SWAP_OUT.compute_class is ComputeClass.TRANSFER
        assert OpType.SWAP_IN.compute_class is ComputeClass.TRANSFER

    def test_reshape_is_free(self):
        assert OpType.RESHAPE.compute_class is ComputeClass.FREE

    def test_saved_for_backward_conventions(self):
        assert OpType.CONV2D.saved_for_backward == frozenset({"inputs"})
        assert OpType.RELU.saved_for_backward == frozenset({"outputs"})
        assert OpType.POOL_MAX.saved_for_backward == frozenset(
            {"inputs", "outputs"},
        )
        assert OpType.ADD.saved_for_backward == frozenset()

    def test_batchnorm_not_sample_splittable(self):
        assert not OpType.BATCHNORM.info.sample_splittable
        assert OpType.CONV2D.info.sample_splittable


class TestFlopsFormulas:
    def test_conv2d_flops(self):
        # 2 * N * K * H * W * C * kh * kw
        assert conv2d_flops(2, 3, 4, 5, 5, 3, 3) == 2 * 2 * 4 * 5 * 5 * 3 * 9

    def test_matmul_flops(self):
        assert matmul_flops(4, 5, 6) == 2 * 4 * 5 * 6


class TestOperator:
    def test_backward_flag(self):
        op = Operator(op_id=0, name="d", op_type=OpType.CONV2D,
                      phase=Phase.BACKWARD)
        assert op.is_backward

    def test_forward_op_attr(self):
        op = Operator(op_id=0, name="d", op_type=OpType.CONV2D,
                      attrs={"forward_op": 7})
        assert op.forward_op == 7

    def test_forward_op_default_none(self):
        op = Operator(op_id=0, name="f", op_type=OpType.CONV2D)
        assert op.forward_op is None
