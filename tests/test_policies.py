"""Baseline policies: rule fidelity and applicability."""

import pytest

from repro.core.plan import MemOption
from repro.errors import PolicyError
from repro.graph.ops import OpType
from repro.graph.tensor import TensorKind
from repro.policies import (
    CheckpointsPolicy,
    FairscaleOffloadPolicy,
    SuperNeuronsPolicy,
    TsplitNoSplitPolicy,
    TsplitPolicy,
    VdnnAllPolicy,
    VdnnConvPolicy,
    ZeroOffloadPolicy,
)
from repro.policies.base import BasePolicy, get_policy
from tests.conftest import BIG_GPU


class TestRegistry:
    def test_all_paper_policies_available(self):
        for name in ("base", "vdnn_conv", "vdnn_all", "checkpoints",
                     "superneurons", "tsplit", "tsplit_nosplit",
                     "zero_offload", "fairscale_offload"):
            assert get_policy(name).name == name

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            get_policy("magic")


class TestBase:
    def test_empty_plan(self, tiny_cnn):
        plan = BasePolicy().build_plan(tiny_cnn, BIG_GPU)
        assert plan.configs == {}


class TestVdnn:
    def test_conv_swaps_only_conv_inputs(self, tiny_cnn):
        plan = VdnnConvPolicy().build_plan(tiny_cnn, BIG_GPU)
        conv_inputs = set()
        for op in tiny_cnn.ops.values():
            if op.op_type is OpType.CONV2D and not op.is_backward:
                conv_inputs.update(
                    t for t in op.inputs
                    if tiny_cnn.tensors[t].kind is TensorKind.ACTIVATION
                )
        assert set(plan.configs) == conv_inputs
        assert all(c.opt is MemOption.SWAP for c in plan.configs.values())

    def test_conv_rejects_transformer(self, tiny_transformer):
        with pytest.raises(PolicyError, match="no convolution"):
            VdnnConvPolicy().build_plan(tiny_transformer, BIG_GPU)

    def test_all_swaps_every_activation(self, tiny_cnn):
        plan = VdnnAllPolicy().build_plan(tiny_cnn, BIG_GPU)
        activations = {
            t.tensor_id for t in tiny_cnn.activations()
            if t.producer is not None
        }
        assert set(plan.configs) == activations

    def test_all_works_on_transformer(self, tiny_transformer):
        plan = VdnnAllPolicy().build_plan(tiny_transformer, BIG_GPU)
        assert plan.configs


class TestCheckpoints:
    def test_mixes_checkpoints_and_recompute(self, tiny_cnn):
        plan = CheckpointsPolicy().build_plan(tiny_cnn, BIG_GPU)
        recomputed = [
            c for c in plan.configs.values()
            if c.opt is MemOption.RECOMPUTE
        ]
        assert recomputed
        # Not everything is recomputed: checkpoints remain.
        backbone_size = len([
            t for t in tiny_cnn.activations() if t.producer is not None
        ])
        assert len(recomputed) < backbone_size

    def test_segment_scale_controls_density(self, tiny_cnn):
        """Larger segment_scale means more segments, hence more
        checkpoints and fewer recomputed tensors."""
        few_segments = CheckpointsPolicy(segment_scale=0.5).build_plan(
            tiny_cnn, BIG_GPU,
        )
        many_segments = CheckpointsPolicy(segment_scale=3.0).build_plan(
            tiny_cnn, BIG_GPU,
        )
        assert len(many_segments.configs) <= len(few_segments.configs)

    def test_speed_centric_strategy_declared(self):
        assert CheckpointsPolicy().recompute_strategy == "speed_centric"

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            CheckpointsPolicy(segment_scale=0)


class TestSuperNeurons:
    def test_conv_outputs_swapped_cheap_recomputed(self, tiny_cnn):
        plan = SuperNeuronsPolicy().build_plan(tiny_cnn, BIG_GPU)
        for op in tiny_cnn.ops.values():
            if op.is_backward:
                continue
            for tid in op.outputs:
                tensor = tiny_cnn.tensors[tid]
                if tensor.kind is not TensorKind.ACTIVATION:
                    continue
                cfg = plan.config_for(tid)
                if op.op_type.is_conv:
                    assert cfg.opt is MemOption.SWAP
                elif op.op_type.cheap_to_recompute:
                    assert cfg.opt is MemOption.RECOMPUTE

    def test_rejects_transformer(self, tiny_transformer):
        with pytest.raises(PolicyError):
            SuperNeuronsPolicy().build_plan(tiny_transformer, BIG_GPU)


class TestTsplitPolicies:
    def test_nosplit_variant_flag(self):
        assert TsplitPolicy.allow_split
        assert not TsplitNoSplitPolicy.allow_split

    def test_names(self):
        assert TsplitPolicy().name == "tsplit"
        assert TsplitNoSplitPolicy().name == "tsplit_nosplit"

    def test_no_pressure_empty_plan(self, tiny_cnn):
        plan = TsplitPolicy().build_plan(tiny_cnn, BIG_GPU)
        assert plan.configs == {}


class TestOffloadPolicies:
    def test_zero_offload_targets(self, tiny_cnn):
        plan = ZeroOffloadPolicy().build_plan(tiny_cnn, BIG_GPU)
        assert plan.cpu_update
        for t in tiny_cnn.tensors.values():
            cfg = plan.config_for(t.tensor_id)
            if t.kind is TensorKind.OPTIMIZER_STATE:
                assert cfg.opt is MemOption.CPU
            elif t.kind is TensorKind.GRAD_PARAM:
                assert cfg.opt is MemOption.SWAP
            elif t.kind is TensorKind.ACTIVATION:
                assert cfg.opt is MemOption.RESIDE

    def test_fairscale_shards_params_and_activations(self, tiny_cnn):
        plan = FairscaleOffloadPolicy().build_plan(tiny_cnn, BIG_GPU)
        assert plan.cpu_update
        for t in tiny_cnn.parameters():
            assert plan.config_for(t.tensor_id).opt is MemOption.SWAP
        swapped_acts = [
            t for t in tiny_cnn.activations()
            if plan.config_for(t.tensor_id).opt is MemOption.SWAP
        ]
        assert swapped_acts
