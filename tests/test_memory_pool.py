"""Best-fit memory pool: allocation, coalescing, fragmentation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError, OutOfMemoryError
from repro.hardware.memory_pool import (
    ALIGNMENT,
    SEGREGATION_THRESHOLD,
    MemoryPool,
    PoolRecorder,
    _align,
)
from repro.units import KB, MB


class TestBasics:
    def test_alloc_free_roundtrip(self):
        pool = MemoryPool(capacity=1 * MB)
        handle = pool.alloc(100 * KB)
        assert pool.used_bytes >= 100 * KB
        pool.free(handle)
        assert pool.used_bytes == 0

    def test_alignment(self):
        pool = MemoryPool(capacity=1 * MB)
        pool.alloc(1)
        assert pool.used_bytes == ALIGNMENT

    def test_oom_raises_with_context(self):
        pool = MemoryPool(capacity=64 * KB)
        with pytest.raises(OutOfMemoryError) as excinfo:
            pool.alloc(128 * KB)
        assert excinfo.value.capacity == 64 * KB

    def test_double_free_rejected(self):
        pool = MemoryPool(capacity=1 * MB)
        handle = pool.alloc(KB)
        pool.free(handle)
        with pytest.raises(AllocationError):
            pool.free(handle)

    def test_zero_alloc_rejected(self):
        pool = MemoryPool(capacity=1 * MB)
        with pytest.raises(AllocationError):
            pool.alloc(0)

    def test_bad_strategy_rejected(self):
        with pytest.raises(AllocationError):
            MemoryPool(capacity=1 * MB, strategy="wishful")

    def test_reset(self):
        pool = MemoryPool(capacity=1 * MB)
        pool.alloc(KB)
        pool.reset()
        assert pool.used_bytes == 0
        assert pool.largest_free_block == 1 * MB


class TestCoalescing:
    def test_free_neighbours_merge(self):
        pool = MemoryPool(capacity=1 * MB)
        handles = [pool.alloc(100 * KB) for _ in range(3)]
        for handle in handles:
            pool.free(handle)
        assert pool.largest_free_block == 1 * MB
        assert pool.fragmentation() == 0.0

    def test_hole_between_allocations(self):
        pool = MemoryPool(capacity=1 * MB)
        a = pool.alloc(100 * KB)
        b = pool.alloc(100 * KB)
        c = pool.alloc(100 * KB)
        pool.free(b)
        # A hole exists: total free larger than largest block.
        assert pool.fragmentation() > 0.0
        pool.free(a)
        pool.free(c)
        assert pool.fragmentation() == 0.0

    def test_external_fragmentation_blocks_alloc(self):
        pool = MemoryPool(capacity=400 * KB)
        handles = [pool.alloc(100 * KB) for _ in range(4)]
        pool.free(handles[0])
        pool.free(handles[2])
        # 200 KB free, but no 150 KB contiguous block.
        assert not pool.can_alloc(150 * KB)
        with pytest.raises(OutOfMemoryError):
            pool.alloc(150 * KB)


class TestStrategies:
    @staticmethod
    def _two_hole_pool(strategy: str) -> MemoryPool:
        """Fully-packed 200 KB pool with a 100 KB and a 30 KB hole."""
        pool = MemoryPool(capacity=200 * KB, strategy=strategy)
        a = pool.alloc(100 * KB)
        pool.alloc(10 * KB)  # pinned separator
        b = pool.alloc(30 * KB)
        pool.alloc(60 * KB)  # pinned tail
        pool.free(a)
        pool.free(b)
        return pool

    def test_best_fit_prefers_tight_hole(self):
        pool = self._two_hole_pool("best_fit")
        pool.alloc(30 * KB)  # exactly fills the 30 KB hole
        assert pool.largest_free_block == 100 * KB

    def test_first_fit_takes_earliest_hole(self):
        pool = self._two_hole_pool("first_fit")
        pool.alloc(30 * KB)  # lands at offset 0, fragmenting the big hole
        assert pool.largest_free_block == 70 * KB

    def test_worst_fit_takes_biggest_hole(self):
        pool = self._two_hole_pool("worst_fit")
        pool.alloc(10 * KB)
        assert pool.largest_free_block == 90 * KB

    def test_segregated_micro_allocs_carve_from_top(self):
        pool = MemoryPool(
            capacity=SEGREGATION_THRESHOLD * 4, strategy="segregated",
        )
        pool.alloc(KB)
        # The micro-tensor sits at the top: the single free block still
        # starts at offset 0.
        assert pool._free[0].offset == 0
        assert pool.largest_free_block == pool.capacity - KB

    def test_alloc_exactly_at_segregation_threshold_goes_bottom(self):
        """The threshold is exclusive: a request of exactly
        SEGREGATION_THRESHOLD bytes is a *large* buffer and must take
        the best-fit bottom path, not the top carve."""
        pool = MemoryPool(
            capacity=SEGREGATION_THRESHOLD * 4, strategy="segregated",
        )
        pool.alloc(SEGREGATION_THRESHOLD)
        assert pool._free[0].offset == SEGREGATION_THRESHOLD
        # One byte less is a micro-tensor and carves from the top.
        pool.alloc(SEGREGATION_THRESHOLD - ALIGNMENT)
        assert pool._free[0].offset == SEGREGATION_THRESHOLD
        assert len(pool._free) == 1

    def test_segregated_coalesces_top_carve_with_bottom_block(self):
        """Freeing a bottom (large) buffer adjacent to a freed top carve
        must merge back into one hole."""
        capacity = SEGREGATION_THRESHOLD * 2
        pool = MemoryPool(capacity=capacity, strategy="segregated")
        bottom = pool.alloc(SEGREGATION_THRESHOLD)        # [0, T)
        top = pool.alloc(capacity - SEGREGATION_THRESHOLD)  # [T, 2T)
        assert pool.free_bytes == 0
        pool.free(top)
        pool.free(bottom)
        assert pool.largest_free_block == capacity
        assert pool.fragmentation() == 0.0

    def test_segregated_micro_free_merges_with_neighbour_carves(self):
        pool = MemoryPool(
            capacity=SEGREGATION_THRESHOLD, strategy="segregated",
        )
        handles = [pool.alloc(4 * KB) for _ in range(3)]
        for handle in handles:
            pool.free(handle)
        assert pool.largest_free_block == pool.capacity
        assert pool.fragmentation() == 0.0

    def test_segregated_double_free_rejected(self):
        pool = MemoryPool(capacity=1 * MB, strategy="segregated")
        handle = pool.alloc(KB)
        pool.free(handle)
        with pytest.raises(AllocationError):
            pool.free(handle)

    def test_stats_accumulate(self):
        pool = MemoryPool(capacity=MB)
        handle = pool.alloc(KB)
        pool.free(handle)
        try:
            pool.alloc(2 * MB)
        except OutOfMemoryError:
            pass
        snap = pool.stats.snapshot()
        assert snap["alloc_count"] == 1
        assert snap["free_count"] == 1
        assert snap["failed_allocs"] == 1
        assert snap["peak_used"] >= KB


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=1, max_value=64 * KB)),
        min_size=1, max_size=60,
    ),
    strategy=st.sampled_from(
        ["best_fit", "first_fit", "worst_fit", "segregated"],
    ),
)
def test_pool_invariants_under_random_workload(ops, strategy):
    """Accounting invariants hold for any alloc/free sequence."""
    pool = MemoryPool(capacity=512 * KB, strategy=strategy)
    live: list[int] = []
    for is_alloc, size in ops:
        if is_alloc or not live:
            try:
                live.append(pool.alloc(size))
            except OutOfMemoryError:
                pass
        else:
            pool.free(live.pop(0))
    # Invariants: used + free == capacity; largest block <= free total.
    assert pool.used_bytes + pool.free_bytes == pool.capacity
    assert pool.largest_free_block <= pool.free_bytes
    assert 0.0 <= pool.fragmentation() <= 1.0
    # Free everything: pool returns to one block.
    for handle in live:
        pool.free(handle)
    assert pool.used_bytes == 0
    assert pool.largest_free_block == pool.capacity


class TestFreePathAccounting:
    """Regression coverage for the free-path / shape-stat audit."""

    def test_empty_pool_fragmentation_is_zero(self):
        pool = MemoryPool(capacity=MB)
        assert pool.fragmentation() == 0.0
        assert pool.largest_free_block == MB
        assert pool.free_bytes == MB

    def test_full_pool_fragmentation_is_zero(self):
        pool = MemoryPool(capacity=MB)
        pool.alloc(MB)
        assert pool.free_bytes == 0
        assert pool.largest_free_block == 0
        assert pool.fragmentation() == 0.0  # no holes, not a div-by-zero

    def test_free_list_sum_matches_free_bytes(self):
        pool = MemoryPool(capacity=MB)
        handles = [pool.alloc(50 * KB) for _ in range(6)]
        for handle in handles[::2]:
            pool.free(handle)
        assert sum(size for _, size in pool.free_blocks()) == pool.free_bytes
        assert pool.stats.largest_free_block == pool.largest_free_block
        assert pool.stats.free_block_count == len(pool.free_blocks())

    def test_segregated_threshold_boundary(self):
        # Exactly at the threshold an allocation is "large" (best fit,
        # low addresses); one byte below it is "small" (carved from the
        # top of the highest hole).
        pool = MemoryPool(
            capacity=SEGREGATION_THRESHOLD * 4, strategy="segregated",
        )
        large = pool.alloc(SEGREGATION_THRESHOLD)
        small = pool.alloc(SEGREGATION_THRESHOLD - ALIGNMENT)
        blocks = {h: (off, size) for off, size, h in pool.allocated_blocks()}
        assert blocks[large][0] == 0
        assert blocks[small][0] + blocks[small][1] == pool.capacity
        pool.free(large)
        pool.free(small)
        assert pool.largest_free_block == pool.capacity
        assert pool.fragmentation() == 0.0

    def test_shape_stats_track_failed_alloc(self):
        pool = MemoryPool(capacity=256 * KB)
        keep = pool.alloc(64 * KB)
        hole_maker = pool.alloc(64 * KB)
        pool.alloc(64 * KB)
        pool.free(hole_maker)
        with pytest.raises(OutOfMemoryError):
            pool.alloc(128 * KB)
        # Stats mirror the free-list shape at the failure instant.
        assert pool.stats.failed_allocs == 1
        assert pool.stats.largest_free_block == pool.largest_free_block
        assert pool.stats.free_block_count == len(pool.free_blocks())
        assert pool.stats.free_block_count == 2  # the hole + the tail
        pool.free(keep)

    def test_shape_stats_follow_reset(self):
        pool = MemoryPool(capacity=MB)
        pool.alloc(KB)
        pool.alloc(KB)
        pool.reset()
        assert pool.stats.largest_free_block == MB
        assert pool.stats.free_block_count == 1


class TestPoolRecorder:
    def test_records_and_death_stamping(self):
        pool = MemoryPool(capacity=MB)
        pool.recorder = PoolRecorder()
        a = pool.alloc(KB, label="a", time=1.0, instr="op1")
        b = pool.alloc(2 * KB, label="b", time=2.0)
        pool.free(a, time=3.0)
        records = pool.recorder.records
        assert [r.label for r in records] == ["a", "b"]
        assert records[0].death == 3.0
        assert records[0].instr == "op1"
        assert records[0].nbytes == KB
        assert records[0].size == _align(KB)
        assert [r.label for r in pool.recorder.live_records()] == ["b"]
        assert pool.recorder.record(b).live

    def test_failure_and_snapshot_stream(self):
        pool = MemoryPool(capacity=64 * KB)
        pool.recorder = PoolRecorder()
        pool.alloc(32 * KB, label="x", time=1.0)
        with pytest.raises(OutOfMemoryError):
            pool.alloc(MB, label="too-big", time=2.0)
        assert pool.recorder.failures == [(2.0, "too-big", MB)]
        # One snapshot per event: the alloc and the failure.
        assert len(pool.recorder.snapshots) == 2
        failure_snap = pool.recorder.snapshots[-1]
        assert failure_snap.largest_free_block == pool.largest_free_block
        assert failure_snap.free_block_count == len(pool.free_blocks())

    def test_snapshot_cadence_thins_stream(self):
        pool = MemoryPool(capacity=MB)
        pool.recorder = PoolRecorder(snapshot_every=3)
        handles = [pool.alloc(KB, time=float(i)) for i in range(6)]
        for i, handle in enumerate(handles):
            pool.free(handle, time=10.0 + i)
        # 12 events at cadence 3 -> 4 snapshots; records stay complete.
        assert len(pool.recorder.snapshots) == 4
        assert len(pool.recorder.records) == 6

    def test_reset_closes_live_records(self):
        pool = MemoryPool(capacity=MB)
        pool.recorder = PoolRecorder()
        pool.alloc(KB, label="a", time=1.0)
        pool.alloc(KB, label="b", time=2.0)
        pool.reset(time=5.0)
        assert pool.recorder.live_records() == []
        assert all(r.death == 5.0 for r in pool.recorder.records)
        assert pool.recorder.snapshots[-1].used_bytes == 0


class TestPlannedStrategy:
    """The ``"planned"`` strategy: O(1) plan-directed placement with a
    loud best-fit fallback for off-plan requests."""

    def plan(self, entries, loop_start=0, persistent=0):
        from repro.planner.address_plan import AddressPlan

        peak = max((e.offset + e.size for e in entries), default=0)
        return AddressPlan(
            name="unit", alignment=ALIGNMENT, persistent_size=persistent,
            packed_peak=peak, baseline_extent=peak, heuristic="bfd",
            end_time=1.0, entries=tuple(entries), loop_start=loop_start,
        )

    def entry(self, seq, label, nbytes, offset):
        from repro.planner.address_plan import PlannedAlloc

        return PlannedAlloc(
            seq=seq, label=label, nbytes=nbytes, size=_align(nbytes),
            offset=offset, birth=0.0,
        )

    def test_planned_without_plan_rejected(self):
        with pytest.raises(AllocationError, match="plan"):
            MemoryPool(capacity=MB, strategy="planned")

    def test_placements_follow_the_plan_exactly(self):
        # The plan deliberately inverts allocation order in address
        # space (first alloc at the higher offset) — only plan-directed
        # placement, not any online strategy, produces this layout.
        plan = self.plan([
            self.entry(0, "a", 256, 512),
            self.entry(1, "b", 512, 0),
        ])
        pool = MemoryPool(capacity=1024, strategy="planned", plan=plan)
        a = pool.alloc(256, label="a")
        b = pool.alloc(512, label="b")
        assert pool.block_offset(a) == 512
        assert pool.block_offset(b) == 0
        assert pool.stats.plan_hits == 2
        assert pool.stats.plan_misses == 0
        assert pool.stats.peak_extent == 768
        pool.free(a)
        pool.free(b)
        assert pool.used_bytes == 0

    def test_carve_splits_the_containing_free_block(self):
        plan = self.plan([self.entry(0, "mid", 256, 512)])
        pool = MemoryPool(capacity=1024, strategy="planned", plan=plan)
        pool.alloc(256, label="mid")
        # [0, 512) and [768, 1024) remain free around the carve.
        assert pool.free_blocks() == ((0, 512), (768, 256))

    def test_off_plan_request_falls_back_loudly(self):
        plan = self.plan([self.entry(0, "a", 256, 0)])
        pool = MemoryPool(capacity=1024, strategy="planned", plan=plan)
        with pytest.warns(RuntimeWarning, match="falling back"):
            # Size mismatch: not the planned next allocation. The
            # cursor must NOT advance — the slot is still a's.
            stray = pool.alloc(512, label="a")
        assert pool.stats.plan_misses == 1
        assert pool.plan_fallbacks == [(0.0, "a", 512)]
        assert pool.block_offset(stray) == 0  # best-fit placement
        # a's planned offset is now occupied by the fallback: the slot
        # is consumed (cursor advances) even though the carve fails.
        a = pool.alloc(256, label="a")
        assert pool.stats.plan_misses == 2
        assert pool.block_offset(a) == 512
        assert pool.stats.plan_hits == 0

    def test_label_mismatch_is_a_miss(self):
        plan = self.plan([self.entry(0, "a", 256, 0)])
        pool = MemoryPool(capacity=1024, strategy="planned", plan=plan)
        with pytest.warns(RuntimeWarning):
            pool.alloc(256, label="not-a")
        assert pool.stats.plan_misses == 1

    def test_empty_label_matches_anything(self):
        plan = self.plan([self.entry(0, "a", 256, 256)])
        pool = MemoryPool(capacity=1024, strategy="planned", plan=plan)
        handle = pool.alloc(256)  # unlabelled request
        assert pool.block_offset(handle) == 256
        assert pool.stats.plan_hits == 1

    def test_cursor_wraps_past_persistent_entry(self):
        from repro.hardware.memory_pool import PERSISTENT_LABEL

        plan = self.plan([
            self.entry(0, PERSISTENT_LABEL, 1024, 0),
            self.entry(1, "a", 256, 1024),
            self.entry(2, "b", 256, 1280),
        ], loop_start=1, persistent=1024)
        pool = MemoryPool(capacity=2048, strategy="planned", plan=plan)
        pool.alloc(1024, label=PERSISTENT_LABEL)
        for _ in range(3):  # three "iterations" over the loop body
            a = pool.alloc(256, label="a")
            b = pool.alloc(256, label="b")
            assert pool.block_offset(a) == 1024
            assert pool.block_offset(b) == 1280
            pool.free(a)
            pool.free(b)
        assert pool.stats.plan_hits == 7
        assert pool.stats.plan_misses == 0

    def test_reset_rewinds_the_cursor(self):
        plan = self.plan([
            self.entry(0, "a", 256, 0),
            self.entry(1, "b", 256, 256),
        ])
        pool = MemoryPool(capacity=1024, strategy="planned", plan=plan)
        pool.alloc(256, label="a")
        pool.reset()
        # After reset the next request matches entry 0 again.
        handle = pool.alloc(256, label="a")
        assert pool.block_offset(handle) == 0
        assert pool.stats.plan_misses == 0

    def test_block_offset_rejects_unknown_handle(self):
        pool = MemoryPool(capacity=1024)
        with pytest.raises(AllocationError, match="handle"):
            pool.block_offset(12345)
