"""Algorithm 1: DFS topological scheduling."""

import pytest

from repro.errors import SchedulingError
from repro.graph.graph import Graph
from repro.graph.liveness import memory_curve
from repro.graph.ops import OpType
from repro.graph.scheduler import dfs_schedule, memory_aware_schedule
from repro.graph.tensor import TensorKind
from tests.conftest import build_tiny_cnn, build_tiny_resnet


def diamond_graph() -> Graph:
    """x -> (a, b) -> join: two branches that must both precede the join."""
    g = Graph("diamond")
    x = g.add_tensor("x", (4,), kind=TensorKind.INPUT)
    a = g.add_tensor("a", (4,))
    b = g.add_tensor("b", (4,))
    j = g.add_tensor("j", (4,))
    g.add_op("left", OpType.RELU, inputs=[x], outputs=[a])
    g.add_op("right", OpType.GELU, inputs=[x], outputs=[b])
    g.add_op("join", OpType.ADD, inputs=[a, b], outputs=[j])
    return g


class TestTopologicalOrder:
    def test_all_ops_scheduled_once(self):
        g = build_tiny_cnn()
        schedule = dfs_schedule(g)
        assert sorted(schedule) == sorted(g.ops)

    def test_producers_precede_consumers(self):
        g = build_tiny_resnet()
        schedule = dfs_schedule(g)
        position = {op_id: i for i, op_id in enumerate(schedule)}
        for op in g.ops.values():
            for tid in op.inputs:
                producer = g.tensors[tid].producer
                if producer is not None:
                    assert position[producer] < position[op.op_id]

    def test_diamond_join_last(self):
        g = diamond_graph()
        schedule = dfs_schedule(g)
        names = [g.ops[i].name for i in schedule]
        assert names[-1] == "join"
        assert set(names[:2]) == {"left", "right"}

    def test_dfs_keeps_branches_contiguous(self):
        """In a 2-branch fork where each branch has 2 ops, DFS finishes
        one branch before starting the other."""
        g = Graph("fork")
        x = g.add_tensor("x", (4,), kind=TensorKind.INPUT)
        a1 = g.add_tensor("a1", (4,))
        a2 = g.add_tensor("a2", (4,))
        b1 = g.add_tensor("b1", (4,))
        b2 = g.add_tensor("b2", (4,))
        g.add_op("a_first", OpType.RELU, inputs=[x], outputs=[a1])
        g.add_op("b_first", OpType.RELU, inputs=[x], outputs=[b1])
        g.add_op("a_second", OpType.GELU, inputs=[a1], outputs=[a2])
        g.add_op("b_second", OpType.GELU, inputs=[b1], outputs=[b2])
        names = [g.ops[i].name for i in dfs_schedule(g)]
        a_positions = [names.index("a_first"), names.index("a_second")]
        b_positions = [names.index("b_first"), names.index("b_second")]
        # One branch's ops are adjacent.
        assert (
            a_positions[1] - a_positions[0] == 1
            or b_positions[1] - b_positions[0] == 1
        )

    def test_cycle_detected(self):
        g = Graph("cyclic")
        a = g.add_tensor("a", (2,))
        b = g.add_tensor("b", (2,))
        g.add_op("f", OpType.RELU, inputs=[b], outputs=[a])
        g.add_op("g", OpType.RELU, inputs=[a], outputs=[b])
        with pytest.raises(SchedulingError):
            dfs_schedule(g)

    def test_empty_graph(self):
        assert dfs_schedule(Graph("empty")) == []

    def test_deep_chain_no_recursion_error(self):
        g = Graph("deep")
        prev = g.add_tensor("x", (2,), kind=TensorKind.INPUT)
        for i in range(3000):
            nxt = g.add_tensor(f"t{i}", (2,))
            g.add_op(f"op{i}", OpType.RELU, inputs=[prev], outputs=[nxt])
            prev = nxt
        assert len(dfs_schedule(g)) == 3000

    def test_training_graph_forward_before_its_backward(self):
        g = build_tiny_cnn()
        schedule = dfs_schedule(g)
        position = {op_id: i for i, op_id in enumerate(schedule)}
        for op in g.ops.values():
            fwd = op.forward_op
            if fwd is not None:
                assert position[fwd] < position[op.op_id]


class TestMemoryAwareSchedule:
    def test_valid_topological_order(self):
        g = build_tiny_resnet()
        schedule = memory_aware_schedule(g)
        assert sorted(schedule) == sorted(g.ops)
        position = {op_id: i for i, op_id in enumerate(schedule)}
        for op in g.ops.values():
            for tid in op.inputs:
                producer = g.tensors[tid].producer
                if producer is not None:
                    assert position[producer] < position[op.op_id]

    def test_never_catastrophically_worse_than_dfs(self):
        for builder in (build_tiny_cnn, build_tiny_resnet):
            g = builder()
            dfs_peak = memory_curve(g, dfs_schedule(g)).max()
            aware_peak = memory_curve(g, memory_aware_schedule(g)).max()
            assert aware_peak <= dfs_peak * 1.05

    def test_improves_real_model(self):
        """On VGG-16 the free-early ordering measurably lowers the
        unoptimised peak versus plain DFS."""
        from repro.models import build_vgg16

        g = build_vgg16(8)
        aware_peak = memory_curve(g, memory_aware_schedule(g)).max()
        dfs_peak = memory_curve(g, dfs_schedule(g)).max()
        assert aware_peak < dfs_peak

    def test_deterministic(self):
        a = memory_aware_schedule(build_tiny_resnet())
        b = memory_aware_schedule(build_tiny_resnet())
        assert a == b

    def test_works_through_whole_pipeline(self):
        """The planner and runner accept the alternative schedule."""
        from tests.conftest import BIG_GPU

        g = build_tiny_cnn(batch=8)
        # run_policy uses dfs internally; drive planner directly instead.
        from repro.core.planner import TsplitPlanner

        schedule = memory_aware_schedule(g)
        result = TsplitPlanner(BIG_GPU).plan(g, schedule=schedule)
        assert result.schedule == schedule
