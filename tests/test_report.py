"""Text reporting: sparklines, timelines, gantt charts."""

import pytest

from repro.analysis.report import (
    comparison_table,
    memory_timeline,
    sparkline,
    stream_gantt,
    trace_report,
)
from repro.analysis.runner import run_policy
from tests.conftest import BIG_GPU, build_tiny_cnn


@pytest.fixture(scope="module")
def trace():
    graph = build_tiny_cnn(batch=32, image=32)
    result = run_policy(graph, "superneurons", BIG_GPU)
    assert result.feasible
    return result.trace


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_zero(self):
        assert set(sparkline([0, 0, 0])) == {" "}

    def test_peak_is_full_block(self):
        line = sparkline([1, 2, 8, 2, 1])
        assert "█" in line

    def test_downsampled_to_width(self):
        assert len(sparkline(range(1000), width=40)) == 40

    def test_short_series_kept(self):
        assert len(sparkline([1, 2, 3], width=40)) == 3


class TestTimeline:
    def test_mentions_peak(self, trace):
        text = memory_timeline(trace)
        assert "peak" in text

    def test_empty_trace_handled(self):
        from repro.runtime.trace import ExecutionTrace

        empty = ExecutionTrace(
            name="e", batch=1, iteration_time=0.0, compute_busy=0.0,
            cpu_busy=0.0, d2h_busy=0.0, h2d_busy=0.0, memory_stall=0.0,
            peak_memory=0, persistent_bytes=0, swapped_out_bytes=0,
            swapped_in_bytes=0, recompute_time=0.0, recompute_ops=0,
            split_kernels=0,
        )
        assert "no memory samples" in memory_timeline(empty)


class TestGantt:
    def test_compute_row_present(self, trace):
        text = stream_gantt(trace)
        assert "compute" in text

    def test_transfer_rows_for_swapping_policy(self, trace):
        text = stream_gantt(trace)
        assert "d2h" in text
        assert "h2d" in text

    def test_occupancy_percent_shown(self, trace):
        assert "%" in stream_gantt(trace)


class TestReports:
    def test_full_report_sections(self, trace):
        text = trace_report(trace)
        assert "device memory" in text
        assert "stream occupancy" in text

    def test_comparison_table(self, trace):
        table = comparison_table({"superneurons": trace, "broken": None})
        assert "superneurons" in table
        assert "infeasible" in table
