"""Units, dtypes and formatting helpers."""

import pytest

from repro.units import (
    DType,
    GB,
    KB,
    MB,
    format_bytes,
    format_time,
    numel,
    size_bytes,
)


class TestConstants:
    def test_scale_chain(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB


class TestDType:
    def test_float32_width(self):
        assert DType.FLOAT32.nbytes == 4

    def test_float16_width(self):
        assert DType.FLOAT16.nbytes == 2

    def test_int64_width(self):
        assert DType.INT64.nbytes == 8

    def test_names(self):
        assert DType.FLOAT32.type_name == "float32"


class TestNumel:
    def test_scalar_like(self):
        assert numel(()) == 1

    def test_vector(self):
        assert numel((7,)) == 7

    def test_nd(self):
        assert numel((2, 3, 4)) == 24

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            numel((2, -1))


class TestSizeBytes:
    def test_default_dtype(self):
        assert size_bytes((10, 10)) == 400

    def test_fp16(self):
        assert size_bytes((10, 10), DType.FLOAT16) == 200


class TestFormatting:
    def test_bytes_small(self):
        assert format_bytes(512) == "512.00 B"

    def test_bytes_mb(self):
        assert format_bytes(3 * MB) == "3.00 MB"

    def test_bytes_gb(self):
        assert format_bytes(int(2.5 * GB)) == "2.50 GB"

    def test_time_seconds(self):
        assert format_time(2.0) == "2.000 s"

    def test_time_millis(self):
        assert format_time(0.0123) == "12.300 ms"

    def test_time_micros(self):
        assert format_time(1e-5) == "10.000 us"

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            format_time(-1.0)
