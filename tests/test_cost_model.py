"""Cost models: ΔM / ΔT for swap, recompute and split (Eq. 2-6)."""

import pytest

from repro.core.cost_model import CostModel, CostModelOptions
from repro.core.plan import MemOption, Plan, TensorConfig
from repro.core.profiler import Profiler
from repro.core.simulate import simulate_memory, tensor_timeline
from repro.graph.liveness import compute_liveness
from repro.graph.scheduler import dfs_schedule
from repro.graph.tensor import DIM_SAMPLE
from tests.conftest import BIG_GPU, build_tiny_cnn


@pytest.fixture
def cm_setup():
    graph = build_tiny_cnn(batch=16)
    schedule = dfs_schedule(graph)
    profile = Profiler(BIG_GPU).profile(graph)
    options = CostModelOptions(min_split_bytes=0, min_evict_bytes=0)
    cm = CostModel(graph, schedule, profile, options)
    plan = Plan()
    cm.refresh(plan)
    return graph, schedule, cm, plan


def backward_bottleneck(graph, schedule):
    """A step in the backward region (last quarter of the schedule)."""
    return int(len(schedule) * 3 // 4)


class TestSwapCost:
    def test_delta_m_equals_size_mid_gap(self, cm_setup):
        """Equation 2: ΔM of swap on a live tensor is its full size."""
        graph, schedule, cm, plan = cm_setup
        liveness = cm.liveness
        tensor = next(
            t for t in graph.activations()
            if tensor_timeline(graph, liveness, t)
            and tensor_timeline(graph, liveness, t).bwd_uses
        )
        timeline = tensor_timeline(graph, liveness, tensor)
        step = timeline.fwd_end + 2
        if step >= timeline.bwd_uses[0] - cm.options.prefetch_ops:
            pytest.skip("gap too narrow in tiny model")
        probe = plan.copy()
        cfg = TensorConfig(opt=MemOption.SWAP)
        probe.set(tensor.tensor_id, cfg)
        dm = cm.group_delta_m([(tensor, cfg)], plan, probe, step)
        assert dm == pytest.approx(tensor.size_bytes)

    def test_swap_dt_nonnegative(self, cm_setup):
        graph, schedule, cm, plan = cm_setup
        for tensor in graph.activations():
            if cm.timeline(tensor.tensor_id) is None:
                continue
            assert cm.swap_delta_t(tensor, len(schedule) // 2) >= 0.0

    def test_swap_dt_shrinks_with_more_idle_pcie(self, cm_setup):
        """A later bottleneck gives the swap-out more window to hide in
        (Equation 3's idle-capacity sum grows)."""
        graph, schedule, cm, plan = cm_setup
        tensor = max(graph.activations(), key=lambda t: t.size_bytes)
        early = cm.swap_delta_t(tensor, cm.timeline(tensor.tensor_id).fwd_end + 1)
        late = cm.swap_delta_t(tensor, len(schedule) - 1)
        assert late <= early + 1e-12


class TestRecomputeCost:
    def test_recompute_dt_is_chain_time(self, cm_setup):
        graph, schedule, cm, plan = cm_setup
        relu_out = next(
            t for t in graph.activations() if t.name == "relu1/out"
        )
        dt = cm.recompute_delta_t(relu_out, plan)
        relu_op = graph.ops[relu_out.producer]
        assert dt >= cm.profile.op_time(relu_op.op_id)

    def test_recompute_dt_grows_with_evicted_ancestors(self, cm_setup):
        graph, schedule, cm, plan = cm_setup
        relu2 = next(t for t in graph.activations() if t.name == "relu2/out")
        conv2 = next(t for t in graph.activations() if t.name == "conv2/out")
        base_dt = cm.recompute_delta_t(relu2, plan)
        deeper = plan.copy()
        deeper.set(conv2.tensor_id, TensorConfig(opt=MemOption.RECOMPUTE))
        assert cm.recompute_delta_t(relu2, deeper) >= base_dt


class TestPcieSimulation:
    def test_idle_capacity_shrinks_with_swaps(self, cm_setup):
        graph, schedule, cm, plan = cm_setup
        full_idle = cm.idle_d2h(0, len(schedule) - 1)
        swapped = plan.copy()
        for t in graph.activations():
            timeline = cm.timeline(t.tensor_id)
            if timeline and timeline.bwd_uses:
                swapped.set(t.tensor_id, TensorConfig(opt=MemOption.SWAP))
        cm.refresh(swapped)
        assert cm.idle_d2h(0, len(schedule) - 1) < full_idle
        cm.refresh(plan)

    def test_idle_empty_range(self, cm_setup):
        _, _, cm, _ = cm_setup
        assert cm.idle_d2h(5, 4) == 0.0

    def test_refresh_updates_op_times_with_splits(self, cm_setup):
        graph, schedule, cm, plan = cm_setup
        base_total = cm.op_times.sum()
        conv = next(op for op in graph.ops.values() if op.name == "conv1")
        split_plan = plan.copy()
        split_plan.set(
            conv.outputs[0], TensorConfig(p_num=4, dim=DIM_SAMPLE),
        )
        cm.refresh(split_plan)
        assert cm.op_times.sum() > base_total
        cm.refresh(plan)


class TestCandidates:
    def test_nonsplit_candidates_exclude_op_locals(self, cm_setup):
        graph, schedule, cm, plan = cm_setup
        step = backward_bottleneck(graph, schedule)
        op = graph.ops[schedule[step]]
        local = set(op.inputs) | set(op.outputs)
        for cand in cm.nonsplit_candidates(step, plan):
            assert cand.configs[0][0] not in local

    def test_nonsplit_candidates_positive_dm(self, cm_setup):
        graph, schedule, cm, plan = cm_setup
        step = backward_bottleneck(graph, schedule)
        for cand in cm.nonsplit_candidates(step, plan):
            assert cand.delta_m > 0
            assert cand.delta_t >= 0

    def test_split_candidates_are_groups(self, cm_setup):
        graph, schedule, cm, plan = cm_setup
        found_group = False
        for step in range(len(schedule)):
            for cand in cm.split_candidates(step, plan):
                assert all(cfg.is_split or cfg.opt is MemOption.RESIDE
                           for _, cfg in cand.configs)
                if len(cand.configs) > 1:
                    found_group = True
        assert found_group

    def test_candidate_ratio_ordering(self, cm_setup):
        graph, schedule, cm, plan = cm_setup
        step = backward_bottleneck(graph, schedule)
        for cand in cm.nonsplit_candidates(step, plan):
            assert cand.ratio == pytest.approx(
                cand.delta_t / cand.delta_m,
            )

    def test_zero_dm_candidate_has_infinite_ratio(self):
        from repro.core.cost_model import Candidate

        cand = Candidate(((0, TensorConfig()),), delta_m=0.0, delta_t=1.0)
        assert cand.ratio == float("inf")

    def test_candidate_key_distinguishes_prior(self):
        from repro.core.cost_model import Candidate

        cfg = TensorConfig(opt=MemOption.SWAP)
        a = Candidate(((0, cfg),), 1.0, 1.0, prior=((0, TensorConfig()),))
        b = Candidate(((0, cfg),), 1.0, 1.0, prior=((0, cfg),))
        assert a.key != b.key


class TestConsistencyWithSimulate:
    def test_contribution_matches_curve_decomposition(self, cm_setup):
        """Summing per-tensor contributions reproduces the curve minus
        workspace — the invariant that keeps candidate scoring honest."""
        graph, schedule, cm, plan = cm_setup
        liveness = compute_liveness(graph, schedule)
        curve = simulate_memory(graph, schedule, plan, liveness)
        for step in (0, len(schedule) // 2, len(schedule) - 1):
            total = sum(
                cm.contribution(t, plan, step)
                for t in graph.tensors.values()
            )
            workspace = graph.ops[schedule[step]].workspace_bytes
            assert total + workspace == pytest.approx(curve[step])
