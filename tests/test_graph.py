"""Graph construction, wiring and validation."""

import pytest

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.graph.ops import OpType, Phase
from repro.graph.tensor import TensorKind


def two_op_graph() -> Graph:
    g = Graph("two")
    x = g.add_tensor("x", (4, 4), kind=TensorKind.INPUT)
    w = g.add_tensor("w", (4, 4), kind=TensorKind.PARAM)
    h = g.add_tensor("h", (4, 4))
    y = g.add_tensor("y", (4, 4))
    g.add_op("mm", OpType.MATMUL, inputs=[x, w], outputs=[h], flops=128)
    g.add_op("act", OpType.RELU, inputs=[h], outputs=[y], flops=16)
    return g


class TestConstruction:
    def test_tensor_ids_sequential(self):
        g = two_op_graph()
        assert sorted(g.tensors) == [0, 1, 2, 3]

    def test_producer_consumer_wiring(self):
        g = two_op_graph()
        h = g.tensors[2]
        assert h.producer == 0
        assert h.consumers == [1]

    def test_multiple_consumers_recorded(self):
        g = Graph()
        a = g.add_tensor("a", (2,), kind=TensorKind.INPUT)
        b = g.add_tensor("b", (2,))
        c = g.add_tensor("c", (2,))
        g.add_op("r1", OpType.RELU, inputs=[a], outputs=[b])
        g.add_op("r2", OpType.GELU, inputs=[a], outputs=[c])
        assert a.consumers == [0, 1]

    def test_double_producer_rejected(self):
        g = Graph()
        a = g.add_tensor("a", (2,), kind=TensorKind.INPUT)
        b = g.add_tensor("b", (2,))
        g.add_op("r1", OpType.RELU, inputs=[a], outputs=[b])
        with pytest.raises(GraphError):
            g.add_op("r2", OpType.GELU, inputs=[a], outputs=[b])

    def test_unknown_tensor_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_op("bad", OpType.RELU, inputs=[42], outputs=[])

    def test_default_bytes_accessed(self):
        g = two_op_graph()
        mm = g.ops[0]
        assert mm.bytes_accessed == 3 * 4 * 4 * 4  # x + w + h


class TestQueries:
    def test_parameter_bytes(self):
        g = two_op_graph()
        assert g.parameter_bytes() == 64

    def test_activation_bytes(self):
        g = two_op_graph()
        assert g.activation_bytes() == 128

    def test_total_flops(self):
        assert two_op_graph().total_flops() == 144

    def test_has_conv_false(self):
        assert not two_op_graph().has_conv()

    def test_ops_in_phase(self):
        g = two_op_graph()
        assert len(g.ops_in_phase(Phase.FORWARD)) == 2
        assert g.ops_in_phase(Phase.BACKWARD) == []

    def test_len_and_iter(self):
        g = two_op_graph()
        assert len(g) == 2
        assert [op.name for op in g] == ["mm", "act"]

    def test_consumers_of(self):
        g = two_op_graph()
        assert [op.name for op in g.consumers_of(2)] == ["act"]

    def test_producer_of_source_is_none(self):
        g = two_op_graph()
        assert g.producer_of(0) is None


class TestValidation:
    def test_valid_graph_passes(self):
        two_op_graph().validate()

    def test_consumed_but_never_produced(self):
        g = Graph()
        orphan = g.add_tensor("orphan", (2,))  # ACTIVATION, no producer
        out = g.add_tensor("out", (2,))
        g.add_op("r", OpType.RELU, inputs=[orphan], outputs=[out])
        with pytest.raises(GraphError, match="never produced"):
            g.validate()

    def test_input_output_overlap_rejected(self):
        g = Graph()
        a = g.add_tensor("a", (2,), kind=TensorKind.INPUT)
        b = g.add_tensor("b", (2,))
        g.add_op("r", OpType.RELU, inputs=[a], outputs=[b])
        op = g.ops[0]
        op.inputs.append(b.tensor_id)
        with pytest.raises(GraphError, match="both input"):
            g.validate()

    def test_update_op_may_alias(self):
        g = Graph()
        w = g.add_tensor("w", (2,), kind=TensorKind.PARAM)
        seed = g.add_tensor("seed", (2,), kind=TensorKind.INPUT)
        gw = g.add_tensor("gw", (2,), kind=TensorKind.GRAD_PARAM)
        g.add_op("produce_grad", OpType.RELU, inputs=[seed], outputs=[gw])
        up = g.add_op(
            "upd", OpType.SGD_UPDATE, inputs=[w, gw], outputs=[],
            phase=Phase.UPDATE,
        )
        up.outputs.append(w.tensor_id)
        g.validate()  # exemption for update ops

    def test_summary_mentions_counts(self):
        text = two_op_graph().summary()
        assert "2 ops" in text
        assert "4 tensors" in text
