"""ExecutionTrace metrics and derived quantities."""

import pytest

from repro.runtime.trace import ExecutionTrace, InstrRecord, MemorySample


def make_trace(**overrides) -> ExecutionTrace:
    defaults = dict(
        name="t",
        batch=10,
        iteration_time=2.0,
        compute_busy=1.5,
        cpu_busy=0.0,
        d2h_busy=0.5,
        h2d_busy=0.3,
        memory_stall=0.1,
        peak_memory=1000,
        persistent_bytes=100,
        swapped_out_bytes=400,
        swapped_in_bytes=300,
        recompute_time=0.2,
        recompute_ops=3,
        split_kernels=8,
    )
    defaults.update(overrides)
    return ExecutionTrace(**defaults)


class TestDerivedMetrics:
    def test_throughput(self):
        assert make_trace().throughput == pytest.approx(5.0)

    def test_throughput_zero_time(self):
        assert make_trace(iteration_time=0.0).throughput == 0.0

    def test_pcie_utilization_full_duplex(self):
        trace = make_trace()
        assert trace.pcie_utilization == pytest.approx((0.5 + 0.3) / 4.0)

    def test_pcie_utilization_capped(self):
        trace = make_trace(d2h_busy=10.0, h2d_busy=10.0)
        assert trace.pcie_utilization == 1.0

    def test_compute_utilization(self):
        assert make_trace().compute_utilization == pytest.approx(0.75)

    def test_overhead_vs_compute(self):
        assert make_trace().overhead_vs_compute == pytest.approx(
            2.0 / 1.5 - 1.0,
        )

    def test_overhead_zero_compute(self):
        assert make_trace(compute_busy=0.0).overhead_vs_compute == 0.0


class TestMemoryCurve:
    def test_empty(self):
        assert make_trace().memory_curve().shape == (0, 2)

    def test_samples_roundtrip(self):
        trace = make_trace(memory_samples=[
            MemorySample(0.0, 100), MemorySample(1.0, 250),
        ])
        curve = trace.memory_curve()
        assert curve.shape == (2, 2)
        assert curve[1, 1] == 250


class TestInstrRecord:
    def test_duration(self):
        record = InstrRecord("x", "compute", "compute", 1.0, 3.5)
        assert record.duration == 2.5


class TestDescribe:
    def test_mentions_key_numbers(self):
        text = make_trace().describe()
        assert "samples/s" in text
        assert "peak" in text
        assert "recompute" in text
