"""Profiling-based estimation (Section V-B)."""

import pytest

from repro.core.profiler import Profiler
from repro.errors import ProfilingError
from repro.graph.ops import ComputeClass
from repro.hardware.kernels import KernelModel


class TestProfile:
    def test_every_compute_op_profiled(self, tiny_cnn, big_gpu):
        profile = Profiler(big_gpu).profile(tiny_cnn)
        for op in tiny_cnn.ops.values():
            if op.op_type.compute_class is not ComputeClass.TRANSFER:
                assert op.op_id in profile.op_times

    def test_noiseless_profile_matches_model(self, tiny_cnn, big_gpu):
        profile = Profiler(big_gpu, noise_sigma=0.0).profile(tiny_cnn)
        model = KernelModel(big_gpu)
        for op in tiny_cnn.ops.values():
            if op.op_id in profile.op_times:
                assert profile.op_times[op.op_id] == pytest.approx(
                    model.op_time(op),
                )

    def test_noise_is_deterministic_per_seed(self, tiny_cnn, big_gpu):
        a = Profiler(big_gpu, noise_sigma=0.05, seed=7).profile(tiny_cnn)
        b = Profiler(big_gpu, noise_sigma=0.05, seed=7).profile(tiny_cnn)
        assert a.op_times == b.op_times

    def test_noise_changes_with_seed(self, tiny_cnn, big_gpu):
        a = Profiler(big_gpu, noise_sigma=0.05, seed=1).profile(tiny_cnn)
        b = Profiler(big_gpu, noise_sigma=0.05, seed=2).profile(tiny_cnn)
        assert a.op_times != b.op_times

    def test_noisy_mean_close_to_truth(self, tiny_cnn, big_gpu):
        truth = Profiler(big_gpu).profile(tiny_cnn)
        noisy = Profiler(
            big_gpu, noise_sigma=0.03, samples=20, seed=0,
        ).profile(tiny_cnn)
        for op_id, t in truth.op_times.items():
            if t > 0:
                assert noisy.op_times[op_id] == pytest.approx(t, rel=0.1)

    def test_invalid_options(self, big_gpu):
        with pytest.raises(ProfilingError):
            Profiler(big_gpu, noise_sigma=-1)
        with pytest.raises(ProfilingError):
            Profiler(big_gpu, samples=0)


class TestProfileData:
    def test_unknown_op_rejected(self, tiny_cnn, big_gpu):
        profile = Profiler(big_gpu).profile(tiny_cnn)
        with pytest.raises(ProfilingError):
            profile.op_time(99_999)

    def test_split_time_at_least_whole(self, tiny_cnn, big_gpu):
        profile = Profiler(big_gpu).profile(tiny_cnn)
        conv = next(op for op in tiny_cnn.ops.values() if op.name == "conv1")
        assert profile.split_op_time(conv.op_id, 4) >= profile.op_time(conv.op_id)

    def test_split_time_cached(self, tiny_cnn, big_gpu):
        profile = Profiler(big_gpu).profile(tiny_cnn)
        conv = next(op for op in tiny_cnn.ops.values() if op.name == "conv1")
        first = profile.split_op_time(conv.op_id, 4)
        assert profile.split_op_time(conv.op_id, 4) == first
        assert (conv.op_id, 4) in profile._split_cache

    def test_split_overhead_nonnegative(self, tiny_cnn, big_gpu):
        profile = Profiler(big_gpu).profile(tiny_cnn)
        for op in tiny_cnn.ops.values():
            if op.op_id in profile.op_times:
                assert profile.split_overhead(op.op_id, 2) >= 0

    def test_transfer_time_uses_pcie(self, tiny_cnn, big_gpu):
        profile = Profiler(big_gpu).profile(tiny_cnn)
        assert profile.transfer_time(big_gpu.pcie_bandwidth) == pytest.approx(
            1.0, rel=0.01,
        )

    def test_total_compute_time_sums_schedule(
        self, tiny_cnn_schedule, big_gpu,
    ):
        graph, schedule = tiny_cnn_schedule
        profile = Profiler(big_gpu).profile(graph)
        total = profile.total_compute_time(schedule)
        assert total == pytest.approx(sum(profile.op_times.values()))

    def test_bandwidth_property(self, tiny_cnn, big_gpu):
        profile = Profiler(big_gpu).profile(tiny_cnn)
        assert profile.bandwidth == big_gpu.pcie_bandwidth
