"""Static plan-memory simulation: the planner's M_i."""

import numpy as np
import pytest

from repro.core.plan import MemOption, Plan, TensorConfig
from repro.core.simulate import (
    PREFETCH_OPS,
    plan_peak_memory,
    simulate_memory,
    tensor_timeline,
)
from repro.graph.liveness import compute_liveness, memory_curve
from repro.graph.tensor import DIM_SAMPLE, TensorKind


def biggest_activation(graph, liveness):
    """Largest activation with a backward use."""
    best = None
    for t in graph.activations():
        timeline = tensor_timeline(graph, liveness, t)
        if timeline and timeline.bwd_uses:
            if best is None or t.size_bytes > best.size_bytes:
                best = t
    assert best is not None
    return best


class TestBasePlan:
    def test_empty_plan_matches_liveness_curve(self, tiny_cnn_schedule):
        graph, schedule = tiny_cnn_schedule
        base = memory_curve(graph, schedule)
        sim = simulate_memory(graph, schedule, Plan())
        assert np.allclose(base, sim)

    def test_peak_helper(self, tiny_cnn_schedule):
        graph, schedule = tiny_cnn_schedule
        assert plan_peak_memory(graph, schedule, Plan()) == int(
            simulate_memory(graph, schedule, Plan()).max()
        )


class TestSwap:
    def test_swap_reduces_memory_between_uses(self, tiny_cnn_schedule):
        graph, schedule = tiny_cnn_schedule
        liveness = compute_liveness(graph, schedule)
        tensor = biggest_activation(graph, liveness)
        timeline = tensor_timeline(graph, liveness, tensor)
        plan = Plan()
        plan.set(tensor.tensor_id, TensorConfig(opt=MemOption.SWAP))
        base = simulate_memory(graph, schedule, Plan())
        swapped = simulate_memory(graph, schedule, plan)
        # In the gap between eviction and prefetch, memory is lower.
        gap_lo = timeline.fwd_end + 1
        gap_hi = timeline.bwd_uses[0] - PREFETCH_OPS - 1
        if gap_hi >= gap_lo:
            assert (swapped[gap_lo:gap_hi + 1]
                    <= base[gap_lo:gap_hi + 1] - tensor.size_bytes + 1).all()

    def test_swap_prefetch_window_restores_memory(self, tiny_cnn_schedule):
        graph, schedule = tiny_cnn_schedule
        liveness = compute_liveness(graph, schedule)
        tensor = biggest_activation(graph, liveness)
        timeline = tensor_timeline(graph, liveness, tensor)
        plan = Plan()
        plan.set(tensor.tensor_id, TensorConfig(opt=MemOption.SWAP))
        swapped = simulate_memory(graph, schedule, plan)
        base = simulate_memory(graph, schedule, Plan())
        # At the backward use itself, the tensor is resident again.
        q = timeline.bwd_uses[0]
        assert swapped[q] == pytest.approx(base[q])


class TestRecompute:
    def test_recompute_frees_gap_and_charges_chain(self, tiny_cnn_schedule):
        graph, schedule = tiny_cnn_schedule
        liveness = compute_liveness(graph, schedule)
        tensor = biggest_activation(graph, liveness)
        timeline = tensor_timeline(graph, liveness, tensor)
        plan = Plan()
        plan.set(tensor.tensor_id, TensorConfig(opt=MemOption.RECOMPUTE))
        sim = simulate_memory(graph, schedule, plan)
        base = simulate_memory(graph, schedule, Plan())
        mid = (timeline.fwd_end + 1 + timeline.bwd_uses[0] - 1) // 2
        if timeline.fwd_end + 1 <= mid < timeline.bwd_uses[0]:
            assert sim[mid] < base[mid]

    def test_chain_extra_appears_at_regen(self, tiny_cnn_schedule):
        """Evicting a tensor whose chain needs a dead ancestor charges the
        ancestor's regeneration at the backward step."""
        graph, schedule = tiny_cnn_schedule
        liveness = compute_liveness(graph, schedule)
        # relu2 output saves via RELU (output); conv2 out is a dead RESIDE
        # ancestor once relu2 out is evicted... pick relu outputs.
        relu_out = next(
            t for t in graph.activations() if t.name.startswith("relu2")
        )
        plan = Plan()
        plan.set(relu_out.tensor_id, TensorConfig(opt=MemOption.RECOMPUTE))
        timeline = tensor_timeline(graph, liveness, relu_out)
        sim = simulate_memory(graph, schedule, plan)
        base = simulate_memory(graph, schedule, Plan())
        q = timeline.bwd_uses[0]
        # At the regen step the requirement is at least the base (tensor
        # resident again) and may exceed it by the chain transient.
        assert sim[q] >= base[q] - 1


class TestCpuOption:
    def test_cpu_tensor_never_counted(self, tiny_cnn_schedule):
        graph, schedule = tiny_cnn_schedule
        state = graph.tensors_of_kind(TensorKind.OPTIMIZER_STATE)[0]
        plan = Plan()
        plan.set(state.tensor_id, TensorConfig(opt=MemOption.CPU))
        sim = simulate_memory(graph, schedule, plan)
        base = simulate_memory(graph, schedule, Plan())
        assert (sim <= base - state.size_bytes + 1).all()


class TestSplit:
    def test_ineffective_split_treated_as_unsplit(self, tiny_cnn_schedule):
        graph, schedule = tiny_cnn_schedule
        # BATCHNORM-free graph: pick a tensor and give it a bogus split
        # config on a dim its producer cannot stream; the curve must
        # equal the unsplit eviction curve.
        liveness = compute_liveness(graph, schedule)
        tensor = biggest_activation(graph, liveness)
        huge_p = TensorConfig(
            opt=MemOption.SWAP, p_num=10_000_000, dim=DIM_SAMPLE,
        )
        plan_bad = Plan()
        plan_bad.set(tensor.tensor_id, huge_p)
        plan_plain = Plan()
        plan_plain.set(tensor.tensor_id, TensorConfig(opt=MemOption.SWAP))
        assert np.allclose(
            simulate_memory(graph, schedule, plan_bad),
            simulate_memory(graph, schedule, plan_plain),
        )

    def test_aligned_split_reduces_peak(self, tiny_cnn_schedule):
        """Splitting conv1 out + relu1 out together on the sample dim
        lowers the forward peak (streaming region forms)."""
        graph, schedule = tiny_cnn_schedule
        conv_out = next(t for t in graph.activations() if t.name == "conv1/out")
        relu_out = next(t for t in graph.activations() if t.name == "relu1/out")
        plan = Plan()
        plan.set(conv_out.tensor_id,
                 TensorConfig(opt=MemOption.RESIDE, p_num=4, dim=DIM_SAMPLE))
        plan.set(relu_out.tensor_id,
                 TensorConfig(opt=MemOption.SWAP, p_num=4, dim=DIM_SAMPLE))
        pos = compute_liveness(graph, schedule).position[conv_out.producer]
        split_curve = simulate_memory(graph, schedule, plan)
        base_curve = simulate_memory(graph, schedule, Plan())
        assert split_curve[pos] < base_curve[pos]


class TestTimeline:
    def test_forward_end_before_backward_uses(self, tiny_cnn_schedule):
        graph, schedule = tiny_cnn_schedule
        liveness = compute_liveness(graph, schedule)
        for tensor in graph.activations():
            timeline = tensor_timeline(graph, liveness, tensor)
            if timeline is None or not timeline.bwd_uses:
                continue
            assert timeline.fwd_end < timeline.bwd_uses[0]

    def test_dead_tensor_returns_none(self, tiny_cnn_schedule):
        graph, schedule = tiny_cnn_schedule
        orphan = graph.add_tensor("orphan", (4,))
        liveness = compute_liveness(graph, schedule)
        assert tensor_timeline(graph, liveness, orphan) is None
