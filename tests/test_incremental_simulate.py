"""Incremental memory-curve maintenance vs from-scratch simulation.

The planner's greedy loop maintains a :class:`MemoryCurve` across
decisions instead of re-simulating after each one. Its correctness
contract is *exact* equality — every interval is integer bytes, so the
difference-array update must reproduce :func:`simulate_memory` bit for
bit, not approximately.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.plan import MemOption, Plan, TensorConfig
from repro.core.planner import PlannerOptions, TsplitPlanner
from repro.core.simulate import MemoryCurve, simulate_memory
from repro.graph.scheduler import dfs_schedule
from repro.hardware.gpu import GPU_PRESETS
from repro.models.random_net import build_random_cnn
from repro.models.registry import build_model


def replay_decisions(model: str, batch: int, gpu_name: str) -> int:
    """Re-apply a planned decision sequence, checking the curve after
    every decision against a from-scratch simulation."""
    graph = build_model(model, batch)
    gpu = GPU_PRESETS[gpu_name]
    result = TsplitPlanner(gpu).plan(graph)
    assert result.decisions, "planner made no decisions; test is vacuous"

    schedule = result.schedule
    plan = Plan(policy="replay")
    curve = MemoryCurve(graph, schedule, plan)
    np.testing.assert_array_equal(
        curve.values, simulate_memory(graph, schedule, plan),
    )
    for decision in result.decisions:
        old = {tid: plan.config_for(tid) for tid, _ in decision.configs}
        for tid, config in decision.configs:
            plan.set(tid, config)
        for tid, config in decision.configs:
            curve.apply(tid, old[tid], config)
        expected = simulate_memory(graph, schedule, plan)
        np.testing.assert_array_equal(curve.values, expected)
    assert curve.peak() == result.peak_memory
    return len(result.decisions)


class TestDecisionReplay:
    def test_vgg16(self):
        assert replay_decisions("vgg16", 512, "gtx_1080ti") > 0

    def test_bert_large(self):
        assert replay_decisions("bert_large", 64, "gtx_1080ti") > 0


class TestRandomPlans:
    """Property test: arbitrary config mutations on random graphs."""

    OPTIONS = [
        TensorConfig(opt=MemOption.RESIDE),
        TensorConfig(opt=MemOption.SWAP),
        TensorConfig(opt=MemOption.RECOMPUTE),
        TensorConfig(opt=MemOption.RESIDE, p_num=2, dim="sample"),
        TensorConfig(opt=MemOption.SWAP, p_num=4, dim="sample"),
        TensorConfig(opt=MemOption.RECOMPUTE, p_num=2, dim="sample"),
        TensorConfig(opt=MemOption.RESIDE, p_num=2, dim="parameter"),
    ]

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_random_mutation_sequence(self, seed):
        rng = random.Random(seed)
        graph = build_random_cnn(seed)
        schedule = dfs_schedule(graph)
        plan = Plan(policy="fuzz")
        curve = MemoryCurve(graph, schedule, plan)
        tensor_ids = sorted(graph.tensors)
        for _ in range(30):
            tid = rng.choice(tensor_ids)
            old = plan.config_for(tid)
            new = rng.choice(self.OPTIONS)
            plan.set(tid, new)
            curve.apply(tid, old, new)
            np.testing.assert_array_equal(
                curve.values, simulate_memory(graph, schedule, plan),
            )

    def test_noop_apply_keeps_curve(self):
        graph = build_random_cnn(7)
        schedule = dfs_schedule(graph)
        plan = Plan(policy="fuzz")
        curve = MemoryCurve(graph, schedule, plan)
        before = curve.values.copy()
        tid = sorted(graph.tensors)[0]
        cfg = plan.config_for(tid)
        curve.apply(tid, cfg, cfg)
        np.testing.assert_array_equal(curve.values, before)


class TestPlannerModesAgree:
    """incremental=True and the reference mode must produce identical
    plans: same decision sequence, same configs, same peak."""

    MATRIX = [
        ("vgg16", 512, "gtx_1080ti"),
        ("resnet50", 256, "v100_16gb"),
        ("bert_large", 64, "gtx_1080ti"),
    ]

    @pytest.mark.parametrize("model,batch,gpu_name", MATRIX)
    def test_byte_identical_plans(self, model, batch, gpu_name):
        graph = build_model(model, batch)
        gpu = GPU_PRESETS[gpu_name]
        outcomes = {}
        for incremental in (True, False):
            result = TsplitPlanner(
                gpu, PlannerOptions(incremental=incremental),
            ).plan(graph)
            outcomes[incremental] = (
                [
                    (tid, cfg)
                    for d in result.decisions
                    for tid, cfg in d.configs
                ],
                dict(result.plan.configs),
                result.peak_memory,
            )
        assert outcomes[True] == outcomes[False]
