"""Graph / plan JSON serialization round trips."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.plan import MemOption, Plan, TensorConfig
from repro.errors import GraphError
from repro.graph.liveness import memory_curve
from repro.graph.scheduler import dfs_schedule
from repro.graph.serialize import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_graph,
    save_plan,
)
from tests.conftest import build_tiny_cnn, build_tiny_resnet


class TestGraphRoundTrip:
    def test_structure_preserved(self):
        graph = build_tiny_cnn(batch=4)
        clone = graph_from_dict(graph_to_dict(graph))
        assert len(clone.ops) == len(graph.ops)
        assert len(clone.tensors) == len(graph.tensors)
        clone.validate()

    def test_schedule_identical(self):
        graph = build_tiny_resnet()
        clone = graph_from_dict(graph_to_dict(graph))
        assert dfs_schedule(clone) == dfs_schedule(graph)

    def test_memory_curve_identical(self):
        graph = build_tiny_cnn(batch=4)
        clone = graph_from_dict(graph_to_dict(graph))
        schedule = dfs_schedule(graph)
        assert (
            memory_curve(graph, schedule) == memory_curve(clone, schedule)
        ).all()

    def test_json_serializable(self):
        graph = build_tiny_cnn(batch=2)
        text = json.dumps(graph_to_dict(graph))
        clone = graph_from_dict(json.loads(text))
        assert clone.name == graph.name

    def test_file_round_trip(self, tmp_path):
        graph = build_tiny_cnn(batch=2)
        path = tmp_path / "graph.json"
        save_graph(graph, str(path))
        clone = load_graph(str(path))
        assert clone.total_flops() == graph.total_flops()

    def test_unknown_op_type_rejected(self):
        data = graph_to_dict(build_tiny_cnn(batch=2))
        data["ops"][0]["type"] = "QUANTUM_CONV"
        with pytest.raises(GraphError, match="unknown op type"):
            graph_from_dict(data)

    def test_unknown_dtype_rejected(self):
        data = graph_to_dict(build_tiny_cnn(batch=2))
        data["tensors"][0]["dtype"] = "float128"
        with pytest.raises(GraphError, match="unknown dtype"):
            graph_from_dict(data)


class TestPlanRoundTrip:
    def test_configs_preserved(self):
        plan = Plan(policy="test", cpu_update=True)
        plan.set(3, TensorConfig(opt=MemOption.SWAP, p_num=4, dim="sample"))
        plan.set(7, TensorConfig(opt=MemOption.RECOMPUTE))
        clone = plan_from_dict(plan_to_dict(plan))
        assert clone.policy == "test"
        assert clone.cpu_update
        assert clone.config_for(3) == plan.config_for(3)
        assert clone.config_for(7) == plan.config_for(7)

    def test_file_round_trip(self, tmp_path):
        plan = Plan(policy="disk")
        plan.set(1, TensorConfig(opt=MemOption.SWAP))
        path = tmp_path / "plan.json"
        save_plan(plan, str(path))
        assert load_plan(str(path)).configs == plan.configs


@settings(max_examples=25, deadline=None)
@given(
    entries=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=50),
            st.sampled_from(list(MemOption)),
            st.integers(min_value=1, max_value=16),
            st.sampled_from(["sample", "parameter", "attribute"]),
        ),
        max_size=12,
    ),
)
def test_plan_round_trip_property(entries):
    plan = Plan(policy="prop")
    for tid, opt, p_num, dim in entries:
        plan.set(tid, TensorConfig(opt=opt, p_num=p_num, dim=dim))
    clone = plan_from_dict(plan_to_dict(plan))
    assert clone.configs == plan.configs
