"""End-to-end integration: plan -> augment -> execute across policies.

These tests assert *cross-component invariants*: whatever the policy,
the engine's accounting must close, evicted bytes must round-trip, and
the paper's qualitative relationships must emerge.
"""

import pytest

from repro.analysis.runner import run_policy
from repro.analysis.scaling import max_sample_scale
from repro.core.plan import MemOption
from tests.conftest import BIG_GPU, build_tiny_cnn, build_tiny_transformer

ALL_POLICIES = [
    "base", "vdnn_conv", "vdnn_all", "checkpoints", "superneurons",
    "tsplit_nosplit", "tsplit", "zero_offload", "fairscale_offload",
]


class TestEveryPolicyRuns:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_cnn_executes(self, policy):
        graph = build_tiny_cnn(batch=16)
        result = run_policy(graph, policy, BIG_GPU)
        assert result.feasible, result.failure
        trace = result.trace
        assert trace.iteration_time > 0
        assert trace.peak_memory <= BIG_GPU.memory_bytes
        assert trace.compute_busy > 0

    @pytest.mark.parametrize(
        "policy",
        [p for p in ALL_POLICIES if p not in ("vdnn_conv", "superneurons")],
    )
    def test_transformer_executes(self, policy):
        graph = build_tiny_transformer(batch=8)
        result = run_policy(graph, policy, BIG_GPU)
        assert result.feasible, result.failure


class TestAccountingInvariants:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_swap_traffic_provenance(self, policy):
        """Swap-in traffic requires a host-side source: outbound
        transfers, host-resident shards, or CPU write-backs. (The engine
        rejects swap-ins without a host copy; here we check the
        aggregate story is coherent.) A tensor may be swapped in several
        times — memory-centric chains re-fetch checkpoints — so inbound
        bytes may exceed outbound, but never from nothing."""
        graph = build_tiny_cnn(batch=16)
        result = run_policy(graph, policy, BIG_GPU)
        assert result.feasible, result.failure
        trace = result.trace
        has_host_source = (
            trace.swapped_out_bytes > 0
            or result.plan.cpu_update
            or any(
                result.plan.config_for(t.tensor_id).opt is MemOption.SWAP
                for t in graph.parameters()
            )
        )
        if trace.swapped_in_bytes > 0:
            assert has_host_source

    @pytest.mark.parametrize("policy", ["vdnn_all", "superneurons", "checkpoints"])
    def test_eviction_reduces_peak(self, policy):
        graph = build_tiny_cnn(batch=64, image=32)
        base = run_policy(graph, "base", BIG_GPU).trace.peak_memory
        optimized = run_policy(graph, policy, BIG_GPU).trace.peak_memory
        # The forward peak must shrink (backward regeneration may keep
        # the overall peak close, but not above base + one tensor).
        assert optimized <= base * 1.25

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_slower_or_equal_to_base(self, policy):
        """No memory-management policy is faster than Base (it only adds
        transfers/recompute/stalls)."""
        graph = build_tiny_cnn(batch=16)
        base_time = run_policy(graph, "base", BIG_GPU).iteration_time
        policy_time = run_policy(graph, policy, BIG_GPU).iteration_time
        assert policy_time >= base_time * 0.999


class TestPaperShape:
    """The paper's qualitative results, at laptop scale."""

    def test_tsplit_matches_base_without_pressure(self):
        graph = build_tiny_cnn(batch=16)
        base = run_policy(graph, "base", BIG_GPU)
        tsplit = run_policy(graph, "tsplit", BIG_GPU)
        assert tsplit.iteration_time == pytest.approx(
            base.iteration_time, rel=1e-6,
        )

    @staticmethod
    def _tsplit_for_tiny_tensors(split: bool):
        """TSPLIT tuned for toy-scale tensors (the default size floors
        target real-GPU workloads)."""
        from repro.core.cost_model import CostModelOptions
        from repro.core.planner import PlannerOptions
        from repro.policies import TsplitNoSplitPolicy, TsplitPolicy

        options = PlannerOptions(
            cost=CostModelOptions(min_split_bytes=0, min_evict_bytes=0),
        )
        cls = TsplitPolicy if split else TsplitNoSplitPolicy
        return cls(options)

    def test_tsplit_scales_furthest(self):
        """Table IV in miniature: TSPLIT reaches the largest batch."""
        gpu = BIG_GPU.with_memory(16 * 1024 * 1024)
        scales = {
            policy: max_sample_scale(
                build_tiny_cnn, policy, gpu, cap=2048,
            )
            for policy in ("base", "vdnn_all", "superneurons")
        }
        scales["tsplit"] = max_sample_scale(
            build_tiny_cnn, self._tsplit_for_tiny_tensors(True), gpu,
            cap=2048,
        )
        assert scales["tsplit"] >= scales["superneurons"]
        assert scales["tsplit"] >= scales["vdnn_all"]
        assert scales["tsplit"] > scales["base"]

    def test_split_beats_nosplit(self):
        """Figure 14a in miniature."""
        gpu = BIG_GPU.with_memory(16 * 1024 * 1024)
        with_split = max_sample_scale(
            build_tiny_cnn, self._tsplit_for_tiny_tensors(True), gpu,
            cap=2048,
        )
        without = max_sample_scale(
            build_tiny_cnn, self._tsplit_for_tiny_tensors(False), gpu,
            cap=2048,
        )
        assert with_split >= without

    def test_transformer_baselines_inapplicable(self):
        """Tables IV/V "x" entries."""
        graph = build_tiny_transformer(batch=8)
        for policy in ("vdnn_conv", "superneurons"):
            result = run_policy(graph, policy, BIG_GPU)
            assert not result.feasible

    def test_vdnn_all_uses_pcie_heavily(self):
        graph = build_tiny_cnn(batch=64, image=32)
        vdnn = run_policy(graph, "vdnn_all", BIG_GPU)
        base = run_policy(graph, "base", BIG_GPU)
        assert vdnn.trace.pcie_utilization > base.trace.pcie_utilization

    def test_checkpoints_uses_no_pcie(self):
        graph = build_tiny_cnn(batch=64, image=32)
        result = run_policy(graph, "checkpoints", BIG_GPU)
        assert result.trace.swapped_out_bytes == 0
        assert result.trace.recompute_time > 0

    def test_zero_offload_moves_gradients(self):
        graph = build_tiny_cnn(batch=16)
        result = run_policy(graph, "zero_offload", BIG_GPU)
        grad_bytes = sum(
            t.size_bytes for t in graph.tensors.values()
            if t.kind.value == "grad_param"
        )
        assert result.trace.swapped_out_bytes >= grad_bytes
        assert result.trace.cpu_busy > 0
