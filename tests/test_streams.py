"""Stream timelines and event-based synchronisation."""

import pytest

from repro.hardware.streams import Stream, StreamSet


class TestStream:
    def test_serial_scheduling(self):
        s = Stream("compute")
        first = s.schedule(1.0)
        second = s.schedule(2.0)
        assert first.time == 1.0
        assert second.time == 3.0

    def test_after_constraint_delays_start(self):
        s = Stream("compute")
        event = s.schedule(1.0, after=5.0)
        assert event.time == 6.0

    def test_after_in_past_ignored(self):
        s = Stream("compute")
        s.schedule(3.0)
        event = s.schedule(1.0, after=1.0)
        assert event.time == 4.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Stream("s").schedule(-1.0)

    def test_busy_time(self):
        s = Stream("s")
        s.schedule(1.0)
        s.schedule(2.0, after=5.0)  # idle gap from 1 to 5
        assert s.busy_time() == pytest.approx(3.0)

    def test_busy_time_clipped(self):
        s = Stream("s")
        s.schedule(4.0)
        assert s.busy_time(until=2.0) == pytest.approx(2.0)

    def test_utilization(self):
        s = Stream("s")
        s.schedule(1.0)
        assert s.utilization(4.0) == pytest.approx(0.25)

    def test_utilization_zero_horizon(self):
        assert Stream("s").utilization(0.0) == 0.0


class TestStreamSet:
    def test_makespan_is_latest_clock(self):
        streams = StreamSet()
        streams.compute.schedule(3.0)
        streams.d2h.schedule(5.0)
        assert streams.makespan == 5.0

    def test_pcie_utilization_counts_both_directions(self):
        streams = StreamSet()
        streams.compute.schedule(10.0)
        streams.d2h.schedule(4.0)
        streams.h2d.schedule(6.0)
        # (4 + 6) / (2 * 10)
        assert streams.pcie_utilization() == pytest.approx(0.5)

    def test_pcie_utilization_empty(self):
        assert StreamSet().pcie_utilization() == 0.0

    def test_overlap_model(self):
        """Transfers scheduled behind compute overlap for free — the key
        property swap relies on."""
        streams = StreamSet()
        compute_done = streams.compute.schedule(2.0)
        xfer = streams.d2h.schedule(1.0)  # concurrent with compute
        assert xfer.time < compute_done.time
        assert streams.makespan == 2.0
