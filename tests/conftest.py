"""Shared fixtures: small models and small GPUs for fast tests."""

from __future__ import annotations

import pytest

from repro.graph.autodiff import build_training_graph
from repro.graph.graph import Graph
from repro.graph.scheduler import dfs_schedule
from repro.hardware.gpu import GPUSpec
from repro.models.layers import ModelBuilder
from repro.units import GB, MB, TFLOPS


def build_tiny_cnn(
    batch: int = 8, *, channels: int = 8, image: int = 16,
    optimizer: str = "sgd_momentum", param_scale: float = 1.0,
) -> Graph:
    """conv-relu-conv-relu-pool-fc: the smallest interesting CNN."""
    channels = max(1, round(channels * param_scale))
    builder = ModelBuilder(f"tiny_cnn[b={batch}]", batch)
    x = builder.input_image(3, image, image)
    x = builder.conv2d(x, channels, 3, name="conv1")
    x = builder.relu(x, name="relu1")
    x = builder.conv2d(x, channels * 2, 3, name="conv2")
    x = builder.relu(x, name="relu2")
    x = builder.maxpool(x, 2, name="pool")
    x = builder.flatten(x)
    logits = builder.linear(x, 10, name="fc")
    loss = builder.cross_entropy_loss(logits)
    return build_training_graph(builder.graph, loss, optimizer=optimizer)


def build_tiny_resnet(batch: int = 4) -> Graph:
    """One residual block: exercises gradient accumulation."""
    builder = ModelBuilder(f"tiny_resnet[b={batch}]", batch)
    x = builder.input_image(3, 8, 8)
    x = builder.conv2d(x, 4, 3, name="stem")
    y = builder.conv2d(x, 4, 3, name="branch1")
    y = builder.relu(y, name="branch_relu")
    y = builder.conv2d(y, 4, 3, name="branch2")
    x = builder.add(x, y, name="residual")
    x = builder.relu(x, name="out_relu")
    x = builder.global_avgpool(x)
    logits = builder.linear(x, 10, name="fc")
    loss = builder.cross_entropy_loss(logits)
    return build_training_graph(builder.graph, loss)


def build_tiny_transformer(batch: int = 4) -> Graph:
    """A 2-layer encoder at toy sizes."""
    from repro.models.transformer import _encoder_layer

    builder = ModelBuilder(f"tiny_tf[b={batch}]", batch)
    tokens = builder.input_tokens(8)
    x = builder.embedding(tokens, 50, 16, name="embed")
    for i in range(2):
        x = _encoder_layer(builder, x, heads=2, ffn=32, name=f"layer{i}")
    from repro.graph.ops import OpType

    loss = builder.graph.add_tensor("loss", (batch,), split_axes={"sample": 0})
    labels = builder.input_tokens(8, name="gold")
    builder.graph.add_op(
        "loss_op", OpType.CROSS_ENTROPY, inputs=[x, labels], outputs=[loss],
        flops=float(x.numel),
    )
    return build_training_graph(builder.graph, loss, optimizer="adam")


#: A deliberately small GPU so tiny models hit memory pressure.
TINY_GPU = GPUSpec(
    name="tiny-gpu",
    memory_bytes=8 * MB,
    peak_flops=1.0 * TFLOPS,
    mem_bandwidth=100e9,
    pcie_bandwidth=4e9,
)

BIG_GPU = GPUSpec(
    name="big-gpu",
    memory_bytes=4 * GB,
    peak_flops=10.0 * TFLOPS,
    mem_bandwidth=500e9,
    pcie_bandwidth=12e9,
)


@pytest.fixture
def tiny_cnn() -> Graph:
    return build_tiny_cnn()


@pytest.fixture
def tiny_resnet() -> Graph:
    return build_tiny_resnet()


@pytest.fixture
def tiny_transformer() -> Graph:
    return build_tiny_transformer()


@pytest.fixture
def tiny_cnn_schedule(tiny_cnn) -> tuple[Graph, list[int]]:
    return tiny_cnn, dfs_schedule(tiny_cnn)


@pytest.fixture
def tiny_gpu() -> GPUSpec:
    return TINY_GPU


@pytest.fixture
def big_gpu() -> GPUSpec:
    return BIG_GPU
