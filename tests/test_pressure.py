"""The pressure monitor: signals, thresholds, and observation purity.

Covers the sensing half of the dynamic-replanning feedback loop:

* window accounting and the latency-corrected bandwidth estimate;
* threshold crossings emit the right typed events, clean windows none;
* the never-triggers-clean contract on a real engine run;
* quantisation snapping (grid steps, headroom snap-to-1.0, float dust);
* mid-run observer attach/detach through the engine's ``_Run`` API.
"""

from __future__ import annotations

import pytest

from repro.faults.model import FaultConfig
from repro.hardware.gpu import GPUSpec
from repro.pipeline.cache import CompileCache
from repro.pipeline.compile import compile_run
from repro.runtime.engine import Engine, EngineOptions
from repro.runtime.observers import EngineObserver
from repro.runtime.pressure import (
    PressureMonitor,
    PressureThresholds,
    WindowStats,
)
from repro.units import MB, TFLOPS
from tests.conftest import build_tiny_cnn

#: A device whose tsplit plan swaps (capacity below the tiny CNN's
#: peak, compute slow enough that swapping beats recomputing).
SWAPPY_GPU = GPUSpec(
    name="swappy-gpu",
    memory_bytes=28 * MB,
    peak_flops=0.05 * TFLOPS,
    mem_bandwidth=100e9,
    pcie_bandwidth=12e9,
)


def swappy_graph():
    return build_tiny_cnn(32, image=64)


def feed_window(
    monitor: PressureMonitor,
    *,
    index: int = 0,
    start: float = 0.0,
    end: float = 1.0,
    transfers: list[tuple[int, float]] = (),
    stalls: list[float] = (),
    retries: int = 0,
    evictions: int = 0,
    refetches: int = 0,
) -> None:
    """Drive one iteration window through the observer callbacks."""
    clock = start
    for nbytes, busy in transfers:
        monitor.on_instr_end(
            "t", "swap_out", "d2h", clock, clock + busy, nbytes=nbytes,
        )
        clock += busy
    for stalled in stalls:
        monitor.on_stall_end(clock, "alloc", stalled)
    for _ in range(retries):
        monitor.on_fault(clock, "transfer_retry", "t")
    for _ in range(evictions):
        monitor.on_fault(clock, "emergency_evict", "t")
    for _ in range(refetches):
        monitor.on_fault(clock, "refetch", "t")
    monitor.on_iteration_end(index, start, end)


def transfer(gpu: GPUSpec, nbytes: int, ratio: float = 1.0):
    """A (bytes, busy) pair priced at ``ratio`` of nominal bandwidth."""
    return (nbytes, gpu.pcie_latency + nbytes / (gpu.pcie_bandwidth * ratio))


class TestWindowAccounting:
    def test_windows_close_on_iteration_end(self):
        monitor = PressureMonitor(gpu=SWAPPY_GPU)
        feed_window(monitor, index=0, end=1.0,
                    transfers=[transfer(SWAPPY_GPU, 4 * MB)])
        feed_window(monitor, index=1, start=1.0, end=2.5)
        assert len(monitor.history) == 2
        first, second = monitor.history
        assert first.transfer_bytes == 4 * MB
        assert first.transfer_count == 1
        assert second.transfer_bytes == 0
        assert second.duration == pytest.approx(1.5)
        assert monitor.last_window() is second

    def test_stall_and_recovery_accumulation(self):
        monitor = PressureMonitor(gpu=SWAPPY_GPU)
        feed_window(monitor, stalls=[0.1, 0.15], retries=3,
                    evictions=2, refetches=1)
        window = monitor.last_window()
        assert window.stall_time == pytest.approx(0.25)
        assert window.stall_fraction == pytest.approx(0.25)
        assert (window.retries, window.evictions, window.refetches) == (3, 2, 1)

    def test_non_transfer_instructions_ignored(self):
        monitor = PressureMonitor(gpu=SWAPPY_GPU)
        monitor.on_instr_end("k", "compute", "compute", 0.0, 1.0, nbytes=0)
        monitor.on_instr_end("r", "recompute", "compute", 1.0, 2.0,
                             nbytes=4 * MB)
        monitor.on_iteration_end(0, 0.0, 2.0)
        assert monitor.last_window().transfer_bytes == 0

    def test_degenerate_window_fractions(self):
        stats = WindowStats(
            index=0, start=1.0, end=1.0, transfer_bytes=0,
            transfer_busy=0.0, transfer_count=0, stall_time=0.5,
            retries=0, evictions=0, refetches=0,
        )
        assert stats.stall_fraction == 0.0
        assert stats.swap_lane_utilization == 0.0

    def test_window_pooling(self):
        monitor = PressureMonitor(gpu=SWAPPY_GPU, window=2)
        feed_window(monitor, index=0, end=1.0,
                    transfers=[transfer(SWAPPY_GPU, 2 * MB)])
        feed_window(monitor, index=1, start=1.0, end=2.0,
                    transfers=[transfer(SWAPPY_GPU, 2 * MB)])
        pooled = monitor._pooled()
        assert pooled.transfer_bytes == 4 * MB
        assert pooled.transfer_count == 2
        assert pooled.duration == pytest.approx(2.0)

    def test_bad_window_size_rejected(self):
        with pytest.raises(ValueError):
            PressureMonitor(window=0)


class TestBandwidthSignal:
    def test_clean_transfers_recover_nominal_exactly_enough(self):
        monitor = PressureMonitor(gpu=SWAPPY_GPU)
        feed_window(monitor, transfers=[
            transfer(SWAPPY_GPU, 4 * MB), transfer(SWAPPY_GPU, 2 * MB),
        ])
        assert monitor.observed_bandwidth_ratio() == pytest.approx(1.0)
        assert monitor.quantized_bandwidth_ratio() == 1.0
        assert monitor.take_events() == []

    def test_degraded_link_observed(self):
        monitor = PressureMonitor(gpu=SWAPPY_GPU)
        feed_window(monitor, transfers=[
            transfer(SWAPPY_GPU, 4 * MB, ratio=0.4),
            transfer(SWAPPY_GPU, 4 * MB, ratio=0.4),
        ])
        assert monitor.observed_bandwidth_ratio() == pytest.approx(0.4)
        # Float dust must not drop the ratio one grid step low.
        assert monitor.quantized_bandwidth_ratio() == pytest.approx(0.4)
        events = monitor.take_events()
        assert [e.kind for e in events] == ["bandwidth_degraded"]
        assert events[0].bandwidth_ratio == pytest.approx(0.4)
        assert events[0].severity == pytest.approx(0.6)

    def test_tiny_windows_carry_no_bandwidth_signal(self):
        monitor = PressureMonitor(gpu=SWAPPY_GPU)
        feed_window(monitor, transfers=[
            transfer(SWAPPY_GPU, 64 * 1024, ratio=0.1),
        ])
        assert monitor.observed_bandwidth_ratio() == 1.0
        assert monitor.take_events() == []

    def test_no_gpu_bound_means_no_signal(self):
        monitor = PressureMonitor()
        feed_window(monitor, transfers=[(4 * MB, 1.0)])
        assert monitor.observed_bandwidth_ratio() == 1.0

    def test_quantisation_snaps_near_nominal_to_one(self):
        monitor = PressureMonitor(gpu=SWAPPY_GPU)
        feed_window(monitor, transfers=[transfer(SWAPPY_GPU, 8 * MB, 0.98)])
        assert monitor.quantized_bandwidth_ratio() == 1.0


class TestThresholdEvents:
    def test_thrash_and_flaky_and_stall(self):
        monitor = PressureMonitor(gpu=SWAPPY_GPU)
        feed_window(monitor, index=0, end=1.0)          # clean baseline
        feed_window(monitor, index=1, start=1.0, end=2.0,
                    stalls=[0.5], retries=3, evictions=1, refetches=1)
        kinds = {e.kind for e in monitor.take_events()}
        assert kinds == {"thrash", "flaky_link", "stall"}

    def test_headroom_emitted_only_after_degradation(self):
        monitor = PressureMonitor(gpu=SWAPPY_GPU)
        feed_window(monitor, index=0, end=1.0,
                    transfers=[transfer(SWAPPY_GPU, 4 * MB)])
        assert monitor.take_events() == []  # clean: no headroom either
        feed_window(monitor, index=1, start=1.0, end=2.0,
                    transfers=[transfer(SWAPPY_GPU, 4 * MB, 0.5)])
        assert [e.kind for e in monitor.take_events()] == [
            "bandwidth_degraded",
        ]
        feed_window(monitor, index=2, start=2.0, end=3.0,
                    transfers=[transfer(SWAPPY_GPU, 4 * MB)])
        events = monitor.take_events()
        assert [e.kind for e in events] == ["headroom"]
        # Recovered: further clean windows emit nothing more.
        feed_window(monitor, index=3, start=3.0, end=4.0,
                    transfers=[transfer(SWAPPY_GPU, 4 * MB)])
        assert monitor.take_events() == []

    def test_event_log_keeps_drained_events(self):
        monitor = PressureMonitor(gpu=SWAPPY_GPU)
        feed_window(monitor, transfers=[transfer(SWAPPY_GPU, 4 * MB, 0.5)])
        drained = monitor.take_events()
        assert drained and monitor.events == []
        assert monitor.event_log == drained

    def test_custom_thresholds(self):
        monitor = PressureMonitor(
            PressureThresholds(bandwidth_ratio=0.5), gpu=SWAPPY_GPU,
        )
        feed_window(monitor, transfers=[transfer(SWAPPY_GPU, 4 * MB, 0.6)])
        assert monitor.take_events() == []


class TestOnRealRuns:
    def test_clean_run_observes_but_never_triggers(self):
        cache = CompileCache()
        monitor = PressureMonitor()
        run = compile_run(
            swappy_graph(), "tsplit", SWAPPY_GPU, cache=cache,
            iterations=3, observers=(monitor,),
        )
        assert run.result.feasible
        assert len(monitor.history) == 3
        assert monitor.last_window().transfer_bytes > 0
        assert monitor.observed_bandwidth_ratio() == pytest.approx(1.0)
        assert monitor.event_log == []

    def test_degraded_run_triggers(self):
        cache = CompileCache()
        monitor = PressureMonitor()
        run = compile_run(
            swappy_graph(), "tsplit", SWAPPY_GPU, cache=cache,
            iterations=2, observers=(monitor,),
            faults=FaultConfig(seed=1, pcie_degradation=0.5),
        )
        assert run.result.feasible
        assert monitor.observed_bandwidth_ratio() == pytest.approx(0.5)
        assert any(
            e.kind == "bandwidth_degraded" for e in monitor.event_log
        )

    def test_monitor_attached_run_is_byte_identical(self):
        cache = CompileCache()
        bare = compile_run(
            swappy_graph(), "tsplit", SWAPPY_GPU, cache=cache, iterations=2,
        )
        monitored = compile_run(
            swappy_graph(), "tsplit", SWAPPY_GPU, cache=cache, iterations=2,
            observers=(PressureMonitor(),),
        )
        assert bare.result.trace.records == monitored.result.trace.records
        assert bare.executed.durations == monitored.executed.durations


class _Counter(EngineObserver):
    """Counts instruction completions (for attach/detach tests)."""

    def __init__(self):
        self.seen = 0

    def on_instr_end(self, *args, **kwargs):
        self.seen += 1


class TestMidRunAttachDetach:
    def make_hook(self, actions: dict[int, tuple[str, EngineObserver]]):
        def hook(index, run):
            action = actions.get(index)
            if action is not None:
                verb, observer = action
                if verb == "attach":
                    run.attach_observer(observer)
                else:
                    run.detach_observer(observer)
            return None
        return hook

    def lowered_program(self, cache):
        run = compile_run(swappy_graph(), "tsplit", SWAPPY_GPU, cache=cache)
        return run.lowered.program.program

    def test_attach_mid_run_sees_only_later_windows(self):
        cache = CompileCache()
        program = self.lowered_program(cache)
        engine = Engine(SWAPPY_GPU, EngineOptions())
        late = PressureMonitor(gpu=SWAPPY_GPU)
        durations, trace = engine.execute_iterations(
            program, 4,
            boundary_hook=self.make_hook({1: ("attach", late)}),
        )
        # Attached at the boundary after iteration 1: sees windows 2, 3.
        assert [w.index for w in late.history] == [2, 3]
        assert late.history[0].transfer_bytes > 0
        assert late.observed_bandwidth_ratio() == pytest.approx(1.0)

    def test_detach_mid_run_stops_observation(self):
        cache = CompileCache()
        program = self.lowered_program(cache)
        engine = Engine(SWAPPY_GPU, EngineOptions())
        counter = _Counter()
        durations, trace = engine.execute_iterations(
            program, 4, observers=(counter,),
            boundary_hook=self.make_hook({0: ("detach", counter)}),
        )
        per_iteration = counter.seen  # only iteration 0 was observed
        assert 0 < per_iteration < len(trace.records)
        assert len(trace.records) == 4 * per_iteration

    def test_attach_detach_does_not_perturb_execution(self):
        cache = CompileCache()
        program = self.lowered_program(cache)
        plain, trace_plain = Engine(SWAPPY_GPU).execute_iterations(program, 4)
        observer = _Counter()
        hooked, trace_hooked = Engine(SWAPPY_GPU).execute_iterations(
            program, 4,
            boundary_hook=self.make_hook({
                0: ("attach", observer), 2: ("detach", observer),
            }),
        )
        assert plain == hooked
        assert trace_plain.records == trace_hooked.records

    def test_detach_unknown_observer_is_noop(self):
        cache = CompileCache()
        program = self.lowered_program(cache)
        engine = Engine(SWAPPY_GPU)
        stranger = _Counter()
        durations, trace = engine.execute_iterations(
            program, 2,
            boundary_hook=self.make_hook({0: ("detach", stranger)}),
        )
        assert stranger.seen == 0
        assert len(durations) == 2
