"""Pipeline-parallel compilation: 1F1B stage programs end to end."""

from __future__ import annotations

import pytest

from repro.cluster import compile_cluster
from repro.core.plan import MemOption
from repro.graph.tensor import TensorKind
from repro.hardware.cluster import ClusterSpec
from repro.hardware.gpu import GPU_PRESETS
from repro.models.registry import build_model
from repro.runtime.instructions import CollectiveInstr

V100 = GPU_PRESETS["v100_16gb"]


def _compile_pp(batch=8, world=2, micros=4, policy="base", model="transformer"):
    cluster = ClusterSpec.homogeneous(V100, world)
    return compile_cluster(
        model, batch, policy, cluster, mode="pp", micros=micros,
    )


def test_two_stage_pipeline_runs():
    compiled = _compile_pp()
    assert compiled.feasible, compiled.failure
    assert compiled.meta["micros"] == 4
    trace = compiled.execute()
    assert trace.makespan > 0
    # Stage 0 holds the embedding side of the model: strictly heavier.
    assert trace.per_rank_peak[0] > trace.per_rank_peak[1]
    # Boundary activations and gradients cross in both directions.
    assert trace.collective_bytes[0] == trace.collective_bytes[1] > 0
    # The global batch is charged once, not once per stage.
    assert trace.throughput == pytest.approx(8 / trace.makespan)


def test_send_recv_pairs_are_balanced():
    compiled = _compile_pp()
    sends = []
    recvs = []
    for program in compiled.programs:
        for instr in program.instructions:
            if isinstance(instr, CollectiveInstr):
                (sends if instr.kind == "send" else recvs).append(instr)
    assert len(sends) == len(recvs) > 0
    assert sorted(i.comm_id for i in sends) == sorted(
        i.comm_id for i in recvs
    )
    for instr in sends + recvs:
        assert instr.lane.startswith(("send:", "recv:"))


def test_more_micro_batches_shrink_the_bubble():
    fat = _compile_pp(batch=16, micros=2).execute()
    thin = _compile_pp(batch=16, micros=8).execute()
    assert thin.makespan < fat.makespan


def test_batch_must_divide_into_micros():
    with pytest.raises(ValueError, match="divisible"):
        _compile_pp(batch=6, micros=4)


def test_tsplit_coplans_each_stage():
    from repro.cluster.compiler import _assign_stages, _stage_subgraph
    from repro.core.profiler import Profiler
    from repro.pipeline.stages import ProfileStage

    compiled = _compile_pp(policy="tsplit")
    assert compiled.feasible, compiled.failure
    # Rebuild the per-stage subgraphs the compiler planned against, so
    # plan tensor ids resolve to the right kinds.
    graph = build_model("transformer", 2)  # per-micro batch: 8 / 4
    profile = ProfileStage(Profiler(V100)).run(graph, V100)
    stage_of = _assign_stages(graph, 2, profile)
    kinds = (
        TensorKind.PARAM, TensorKind.OPTIMIZER_STATE, TensorKind.GRAD_PARAM,
    )
    for rank, plan_art in enumerate(compiled.plans):
        plan = plan_art.plan
        assert plan is not None
        assert not plan.cpu_update
        sub, _ = _stage_subgraph(graph, stage_of, rank)
        for tid, config in plan.configs.items():
            if sub.tensors[tid].kind in kinds:
                # Cluster transforms own these lifecycles; the per-rank
                # planner must leave them resident and unsplit.
                assert config.opt is MemOption.RESIDE
                assert not config.is_split
    trace = compiled.execute()
    assert trace.makespan > 0


def test_pipeline_is_deterministic():
    first = _compile_pp().execute()
    second = _compile_pp().execute()
    assert first.makespan == second.makespan
    assert first.per_rank_peak == second.per_rank_peak
    assert first.comm_busy == second.comm_busy
