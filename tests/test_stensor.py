"""The sTensor abstraction (Figure 9 interfaces)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.plan import MemOption, TensorConfig
from repro.core.stensor import STensor, SplitError
from repro.graph.tensor import DIM_PARAMETER, DIM_SAMPLE, TensorSpec


def spec(shape=(8, 4), axes=None) -> TensorSpec:
    return TensorSpec(
        tensor_id=0, name="t", shape=shape,
        split_axes=axes if axes is not None else {DIM_SAMPLE: 0, DIM_PARAMETER: 1},
    )


class TestSplitInterface:
    def test_split_returns_p_num_micros(self):
        micros = STensor(spec()).split(DIM_SAMPLE, 4)
        assert len(micros) == 4

    def test_micro_sizes_tile_tensor(self):
        s = STensor(spec(shape=(10, 4)))
        micros = s.split(DIM_SAMPLE, 3)
        assert sum(m.nbytes for m in micros) == s.total_bytes()

    def test_micro_keys_unique(self):
        micros = STensor(spec()).split(DIM_SAMPLE, 4)
        assert len({m.key for m in micros}) == 4

    def test_unknown_dim_rejected(self):
        with pytest.raises(SplitError):
            STensor(spec(axes={DIM_SAMPLE: 0})).split(DIM_PARAMETER, 2)

    def test_oversplit_rejected(self):
        with pytest.raises(SplitError):
            STensor(spec(shape=(2, 4))).split(DIM_SAMPLE, 5)

    def test_p1_is_whole_tensor(self):
        micros = STensor(spec()).split(DIM_SAMPLE, 1)
        assert len(micros) == 1
        assert micros[0].nbytes == spec().size_bytes


class TestMergeInterface:
    def test_merge_after_split(self):
        s = STensor(spec())
        s.split(DIM_SAMPLE, 4)
        merged = s.merge(DIM_SAMPLE)
        assert merged.shape == (8, 4)
        assert not s.is_split or s.cfg.p_num == 1

    def test_merge_without_split_rejected(self):
        with pytest.raises(SplitError):
            STensor(spec()).merge(DIM_SAMPLE)

    def test_elementwise_merge_requires_equal_shapes(self):
        s = STensor(spec(shape=(9, 4)))
        s.split(DIM_SAMPLE, 2)  # 5 + 4: unequal
        with pytest.raises(SplitError):
            s.merge(DIM_SAMPLE, reduce=True)

    def test_elementwise_merge_equal_shapes_ok(self):
        s = STensor(spec(shape=(8, 4)))
        s.split(DIM_SAMPLE, 2)
        s.merge(DIM_SAMPLE, reduce=True)


class TestConfig:
    def test_set_config_drops_stale_micros(self):
        s = STensor(spec())
        s.split(DIM_SAMPLE, 4)
        s.set_config(TensorConfig(opt=MemOption.SWAP, p_num=2, dim=DIM_SAMPLE))
        assert len(s.micros) == 2

    def test_micros_follow_config(self):
        s = STensor(spec())
        s.set_config(TensorConfig(p_num=4, dim=DIM_SAMPLE))
        assert len(s.micros) == 4
        assert s.is_split

    def test_micro_bytes(self):
        s = STensor(spec())
        s.set_config(TensorConfig(p_num=2, dim=DIM_SAMPLE))
        assert s.micro_bytes() == [64, 64]


class TestInPlaceResplit:
    def test_nested_counts_share_storage(self):
        s = STensor(spec(shape=(8, 4)))
        s.set_config(TensorConfig(p_num=2, dim=DIM_SAMPLE))
        assert s.resplit_in_place_ok(4)  # 2 -> 4 nests on extent 8

    def test_same_count_trivially_ok(self):
        s = STensor(spec())
        assert s.resplit_in_place_ok(1)

    def test_non_nesting_counts_need_copy(self):
        s = STensor(spec(shape=(12, 4)))
        s.set_config(TensorConfig(p_num=2, dim=DIM_SAMPLE))
        assert not s.resplit_in_place_ok(3)

    def test_uneven_extent_needs_copy(self):
        s = STensor(spec(shape=(6, 4)))
        s.set_config(TensorConfig(p_num=2, dim=DIM_SAMPLE))
        assert not s.resplit_in_place_ok(4)  # 6 % 4 != 0


@settings(max_examples=40, deadline=None)
@given(
    extent=st.integers(min_value=1, max_value=128),
    p_num=st.integers(min_value=1, max_value=128),
)
def test_split_merge_roundtrip_property(extent, p_num):
    """Any legal split merges back to the exact original tensor."""
    s = STensor(spec(shape=(extent, 3), axes={DIM_SAMPLE: 0}))
    if p_num > extent:
        with pytest.raises(SplitError):
            s.split(DIM_SAMPLE, p_num)
        return
    micros = s.split(DIM_SAMPLE, p_num)
    assert sum(m.shape[0] for m in micros) == extent
    merged = s.merge(DIM_SAMPLE)
    assert merged.shape == (extent, 3)
