"""The spatio-temporal address planner: the property suite IS the spec.

Covers the tentpole contracts of ``repro.planner.address_plan``:

* hypothesis-generated allocation streams and random nets x policies x
  capacities: no two placements overlap in address x event-time,
  alignment and the pinned persistent region are respected, and a
  planned replay never exceeds the capacity it was admitted against;
* ``packed_peak <= baseline_extent`` (the online best-fit replay) by
  construction — the suite deliberately does NOT require the packed
  peak to be at least the ledger's chronological peak;
* cross-check: replaying the planned strategy through the *real*
  :class:`MemoryPool` reproduces the packer's predicted peak
  byte-for-byte on every registry model, and the memscope shadow pool
  agrees at every event;
* plan invalidation: replan hot-swaps and fault-triggered emergency
  evictions mark the artifact stale, and a planned pool fed a deviated
  stream falls back to best-fit loudly without corrupting itself;
* ``address_plan=True`` is purely additive — plans and traces are
  byte-identical with the stage off.
"""

from __future__ import annotations

import dataclasses
import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.allocator_replay import (
    chronological_peak,
    replay_allocations,
)
from repro.analysis.memscope import AddressSpaceTimeline, MemscopeObserver
from repro.faults.model import FaultConfig
from repro.hardware.gpu import GPUSpec
from repro.hardware.memory_pool import (
    ALIGNMENT,
    PERSISTENT_LABEL,
    _align,
)
from repro.models.random_net import build_random_cnn
from repro.models.registry import build_model, model_names
from repro.pipeline.cache import CompileCache
from repro.pipeline.compile import compile_run
from repro.planner.address_plan import (
    best_fit_extent,
    extract_intervals,
    packed_feasible,
    plan_addresses,
    plan_stale_reasons,
)
from repro.runtime.trace import ExecutionTrace
from repro.units import MB, TFLOPS
from tests.conftest import BIG_GPU, build_tiny_cnn

POLICIES = ("base", "vdnn_all", "checkpoints", "zero_offload", "tsplit")

#: The replan-win configuration from test_replan.py: a capacity squeeze
#: plus a deterministically degraded link makes the dynamic loop
#: hot-swap plans mid-run — exactly the deviation that must invalidate
#: an address plan.
WIN_GPU = GPUSpec(
    name="replan-win-gpu",
    memory_bytes=28 * MB,
    peak_flops=0.2 * TFLOPS,
    mem_bandwidth=100e9,
    pcie_bandwidth=12e9,
)
DEGRADED = FaultConfig(seed=3, pcie_degradation=0.6)


def synthetic_trace(events, persistent=0):
    """A minimal trace carrying only an allocation event stream."""
    return ExecutionTrace(
        name="synthetic", batch=1, iteration_time=1.0, compute_busy=1.0,
        cpu_busy=0.0, d2h_busy=0.0, h2d_busy=0.0, memory_stall=0.0,
        peak_memory=0, persistent_bytes=persistent, swapped_out_bytes=0,
        swapped_in_bytes=0, recompute_time=0.0, recompute_ops=0,
        split_kernels=0, alloc_events=list(events),
    )


@st.composite
def alloc_streams(draw):
    """A random well-formed alloc/free stream plus a persistent region.

    Timestamps deliberately collide (several events at the same
    instant) — interference must be decided by *event order*, not time,
    or same-instant placements overlap.
    """
    count = draw(st.integers(min_value=1, max_value=40))
    events = []
    live = []
    time = 0.0
    for _ in range(count):
        time += draw(st.sampled_from([0.0, 0.0, 0.5]))
        if live and not draw(st.booleans()):
            index = draw(st.integers(min_value=0, max_value=len(live) - 1))
            label, nbytes = live.pop(index)
            events.append((time, label, -nbytes))
        else:
            nbytes = draw(st.integers(min_value=1, max_value=64 * 1024))
            label = f"t{draw(st.integers(min_value=0, max_value=7))}"
            events.append((time, label, nbytes))
            live.append((label, nbytes))
    persistent = draw(st.sampled_from([0, 1, 4096, 100_000]))
    return events, persistent


def assert_plan_invariants(trace, plan):
    """The packing's safety contract, checked exhaustively (O(n^2))."""
    intervals, _ = extract_intervals(trace)
    assert len(plan.entries) == len(intervals)
    for entry in plan.entries:
        assert entry.offset % ALIGNMENT == 0
        assert entry.size == _align(entry.nbytes)
    if trace.persistent_bytes:
        assert plan.entries[0].label == PERSISTENT_LABEL
        assert plan.entries[0].offset == 0
        assert plan.persistent_size == _align(trace.persistent_bytes)
        assert plan.loop_start == 1
    # No two allocations whose event-index lifetimes overlap may share
    # addresses — the spatio-temporal exclusion property.
    for i, a in enumerate(intervals):
        ea = plan.entries[i]
        for j in range(i + 1, len(intervals)):
            b = intervals[j]
            if a.start < b.end and b.start < a.end:
                eb = plan.entries[j]
                assert (ea.offset + ea.size <= eb.offset
                        or eb.offset + eb.size <= ea.offset), (i, j)
    peak = max(
        (entry.offset + entry.size for entry in plan.entries), default=0,
    )
    assert plan.packed_peak == peak


class TestSyntheticStreams:
    @settings(max_examples=60, deadline=None)
    @given(stream=alloc_streams())
    def test_packing_is_safe_and_never_worse_than_best_fit(self, stream):
        events, persistent = stream
        trace = synthetic_trace(events, persistent=persistent)
        plan = plan_addresses(trace)
        assert_plan_invariants(trace, plan)
        # The admission contract: packed never needs more address space
        # than the online best-fit replay. (The suite does NOT require
        # packed_peak >= the ledger's chronological peak — alignment
        # aside, packing is free to beat byte accounting's assumptions.)
        assert plan.baseline_extent == best_fit_extent(trace)
        assert plan.packed_peak <= plan.baseline_extent
        assert plan.feasible(plan.packed_peak)
        assert not plan.feasible(plan.packed_peak - 1)

    @settings(max_examples=40, deadline=None)
    @given(stream=alloc_streams())
    def test_planned_replay_reproduces_packed_peak(self, stream):
        events, persistent = stream
        trace = synthetic_trace(events, persistent=persistent)
        plan = plan_addresses(trace)
        result = replay_allocations(
            trace, plan.packed_peak, strategy="planned", plan=plan,
        )
        assert result.succeeded, result.failed_at
        assert result.plan_misses == 0
        assert result.peak_extent == plan.packed_peak
        # Never exceed capacity: the pool's high-watermark is bounded
        # by exactly the capacity the plan was admitted against.
        assert result.peak_extent <= plan.packed_peak

    @settings(max_examples=20, deadline=None)
    @given(stream=alloc_streams())
    def test_planning_is_deterministic(self, stream):
        events, persistent = stream
        trace = synthetic_trace(events, persistent=persistent)
        again = synthetic_trace(list(events), persistent=persistent)
        assert plan_addresses(trace).digest() == \
            plan_addresses(again).digest()


class TestRandomNets:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        policy=st.sampled_from(POLICIES),
        frac=st.sampled_from([1.0, 0.6, 0.3]),
    )
    def test_random_pipelines_pack_safely(self, seed, policy, frac):
        """Random nets x policies x capacities: every feasible run's
        stream packs without overlap and replays to the packed peak."""
        graph = build_random_cnn(seed, batch=4, max_blocks=3)
        gpu = dataclasses.replace(
            BIG_GPU, name="fuzz-gpu",
            memory_bytes=int(BIG_GPU.memory_bytes * frac),
        )
        run = compile_run(graph, policy, gpu, address_plan=True)
        if not run.result.feasible:
            assert run.result.failure
            return
        artifact = run.address_plan
        assert artifact is not None and artifact.feasible, artifact.error
        plan = artifact.plan
        trace = run.result.trace
        assert_plan_invariants(trace, plan)
        assert plan.packed_peak <= plan.baseline_extent
        assert packed_feasible(trace, gpu.memory_bytes, plan=plan)
        result = replay_allocations(
            trace, plan.packed_peak, strategy="planned", plan=plan,
        )
        assert result.succeeded, result.failed_at
        assert result.plan_misses == 0
        assert result.peak_extent == plan.packed_peak


#: Model-specific shrink knobs keep the registry sweep fast without
#: changing any allocator-relevant semantics.
MODEL_KWARGS = {
    "bert_large": {"layers": 2},
    "transformer": {"seq_len": 16, "layers": 2},
    "gpt": {"layers": 2, "seq_len": 32},
}


class TestRegistryCrossCheck:
    @pytest.mark.parametrize("name", model_names())
    def test_planned_replay_matches_prediction(self, name):
        """The packer's predicted peak is exact: the real pool under
        the planned strategy reproduces it byte-for-byte."""
        graph = build_model(name, 2, **MODEL_KWARGS.get(name, {}))
        run = compile_run(graph, "base", BIG_GPU, address_plan=True)
        assert run.result.feasible, run.result.failure
        artifact = run.address_plan
        assert artifact is not None and artifact.feasible, artifact.error
        plan = artifact.plan
        trace = run.result.trace
        result = replay_allocations(
            trace, plan.packed_peak, strategy="planned", plan=plan,
        )
        assert result.succeeded, (name, result.failed_at)
        assert result.plan_misses == 0
        assert result.peak_extent == plan.packed_peak
        # Peak-used (byte accounting) still agrees with the ledger.
        assert result.peak_used >= chronological_peak(trace) \
            - trace.persistent_bytes + _align(trace.persistent_bytes)

    def test_memscope_shadow_pool_agrees_at_every_event(self):
        cache = CompileCache()
        graph = build_tiny_cnn()
        run = compile_run(
            graph, "tsplit", BIG_GPU, cache=cache, address_plan=True,
        )
        assert run.result.feasible
        plan = run.address_plan.plan
        trace = run.result.trace
        timeline = AddressSpaceTimeline.from_trace(
            trace, plan.packed_peak, strategy="planned", plan=plan,
        )
        assert len(timeline.records) == len(plan.entries)
        for record, entry in zip(timeline.records, plan.entries):
            assert record.offset == entry.offset, record.label
            assert record.size == entry.size, record.label

    def test_memscope_observer_audits_live_run(self):
        cache = CompileCache()
        first = compile_run(
            build_tiny_cnn(), "tsplit", BIG_GPU,
            cache=cache, address_plan=True,
        )
        plan = first.address_plan.plan
        observer = MemscopeObserver(
            capacity=plan.packed_peak, strategy="planned", plan=plan,
        )
        audited = compile_run(
            build_tiny_cnn(), "tsplit", BIG_GPU,
            cache=cache, address_plan=True, observers=(observer,),
        )
        assert audited.result.feasible
        assert audited.address_plan.cached
        assert observer.placement_failures == []
        assert observer.pool.stats.plan_misses == 0
        assert observer.pool.stats.peak_extent == plan.packed_peak


class TestPlanInvalidation:
    def clean_run(self, cache=None):
        return compile_run(
            build_tiny_cnn(), "base", BIG_GPU,
            cache=cache, address_plan=True,
        )

    def shrunk(self, peak, frac):
        return dataclasses.replace(
            BIG_GPU, name="shrunk-gpu", memory_bytes=int(peak * frac),
        )

    def test_clean_artifact_is_not_stale(self):
        run = self.clean_run()
        assert run.address_plan.feasible
        assert not run.address_plan.stale
        assert run.address_plan.stale_reason == ""
        assert plan_stale_reasons(run.result.trace) == []

    def test_emergency_eviction_marks_artifact_stale(self):
        clean = self.clean_run()
        gpu = self.shrunk(clean.result.trace.peak_memory, 0.9)
        run = compile_run(
            build_tiny_cnn(), "base", gpu,
            faults=FaultConfig(seed=0), address_plan=True,
        )
        assert run.result.feasible, run.result.failure
        assert run.result.trace.emergency_evictions > 0
        assert run.address_plan is not None
        assert run.address_plan.stale
        assert "emergency eviction" in run.address_plan.stale_reason

    def test_replan_hot_swap_marks_artifact_stale(self):
        cache = CompileCache()
        graph = build_tiny_cnn(32, image=64)
        run = compile_run(
            graph, "tsplit", WIN_GPU, cache=cache,
            iterations=5, faults=DEGRADED, replan=True,
            address_plan=True,
        )
        assert run.result.feasible, run.result.failure
        assert run.result.trace.plan_swaps >= 1
        artifact = run.address_plan
        assert artifact is not None and artifact.feasible
        assert artifact.stale
        assert "hot-swap" in artifact.stale_reason

    def test_static_clean_replan_stays_fresh(self):
        cache = CompileCache()
        graph = build_tiny_cnn(32, image=64)
        run = compile_run(
            graph, "tsplit", WIN_GPU, cache=cache,
            iterations=4, replan=True, address_plan=True,
        )
        assert run.result.feasible
        assert run.result.trace.plan_swaps == 0
        assert run.address_plan is not None
        assert not run.address_plan.stale

    def test_deviated_stream_falls_back_without_corruption(self):
        """A stale plan fed the faulty (evicted) stream must degrade to
        best-fit loudly — extra frees and refetch allocs miss the plan —
        and the pool must stay consistent to the end of the replay."""
        clean = self.clean_run()
        plan = clean.address_plan.plan
        gpu = self.shrunk(clean.result.trace.peak_memory, 0.9)
        faulty = compile_run(
            build_tiny_cnn(), "base", gpu, faults=FaultConfig(seed=0),
        )
        assert faulty.result.feasible
        trace = faulty.result.trace
        assert plan_stale_reasons(trace)
        generous = 2 * clean.result.trace.peak_memory
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = replay_allocations(
                trace, generous, strategy="planned", plan=plan,
            )
        assert result.succeeded, result.failed_at
        assert result.plan_misses > 0
        assert result.alloc_count == result.plan_hits + result.plan_misses
        assert any(
            issubclass(w.category, RuntimeWarning) and "falling back"
            in str(w.message) for w in caught
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_chaos_seeds_never_corrupt_planned_replay(self, seed):
        """Chaos-seed fallback: whatever a seeded fault run did to the
        stream, a planned replay of it either succeeds or fails as a
        clean OOM — never an internal pool error."""
        clean = self.clean_run()
        plan = clean.address_plan.plan
        gpu = self.shrunk(clean.result.trace.peak_memory, 0.9)
        faulty = compile_run(
            build_tiny_cnn(), "base", gpu,
            faults=FaultConfig(seed=seed, transfer_failure_rate=0.2),
        )
        if not faulty.result.feasible:
            return
        trace = faulty.result.trace
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for capacity in (plan.packed_peak, 2 * plan.baseline_extent):
                result = replay_allocations(
                    trace, capacity, strategy="planned", plan=plan,
                )
                if result.succeeded:
                    assert result.peak_extent <= capacity
                else:
                    assert result.failed_at


class TestByteIdentity:
    def test_stage_off_yields_no_artifact_and_same_trace(self):
        on = compile_run(
            build_tiny_cnn(), "tsplit", BIG_GPU, address_plan=True,
        )
        off = compile_run(build_tiny_cnn(), "tsplit", BIG_GPU)
        assert off.address_plan is None
        assert on.address_plan is not None and on.address_plan.feasible
        a, b = on.result.trace, off.result.trace
        assert a.alloc_events == b.alloc_events
        assert a.records == b.records
        assert a.iteration_time == b.iteration_time
        assert a.peak_memory == b.peak_memory

    def test_artifact_is_content_cached(self):
        cache = CompileCache()
        first = compile_run(
            build_tiny_cnn(), "tsplit", BIG_GPU,
            cache=cache, address_plan=True,
        )
        second = compile_run(
            build_tiny_cnn(), "tsplit", BIG_GPU,
            cache=cache, address_plan=True,
        )
        assert not first.address_plan.cached
        assert second.address_plan.cached
        assert first.address_plan.key == second.address_plan.key
        assert first.address_plan.plan.digest() == \
            second.address_plan.plan.digest()
