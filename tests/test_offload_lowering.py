"""Offload-policy lowering details: parameter windows, LRU budgets."""

import pytest

from repro.analysis.runner import run_policy
from repro.core.augment import AugmentOptions, augment_graph
from repro.core.plan import MemOption, Plan, TensorConfig
from repro.core.profiler import Profiler
from repro.core.recompute import RecomputeStrategy
from repro.policies.base import get_policy
from repro.runtime.engine import Engine
from repro.runtime.instructions import ComputeInstr, SwapInInstr, SwapOutInstr
from tests.conftest import BIG_GPU, build_tiny_cnn


class TestFairscaleWindows:
    @pytest.fixture(scope="class")
    def program(self):
        graph = build_tiny_cnn(batch=8)
        plan = get_policy("fairscale_offload").build_plan(graph, BIG_GPU)
        profile = Profiler(BIG_GPU).profile(graph)
        return graph, augment_graph(graph, plan, profile).program

    def test_params_swap_in_per_use_window(self, program):
        """Each sharded parameter is fetched before its forward use and
        again for its backward use."""
        graph, prog = program
        conv1_weight = next(
            t for t in graph.tensors.values() if t.name == "conv1/weight"
        )
        fetches = [
            i for i in prog.instructions
            if isinstance(i, SwapInInstr)
            and i.ref.tensor_id == conv1_weight.tensor_id
        ]
        assert len(fetches) >= 2

    def test_params_swap_out_between_windows(self, program):
        graph, prog = program
        conv1_weight = next(
            t for t in graph.tensors.values() if t.name == "conv1/weight"
        )
        evictions = [
            i for i in prog.instructions
            if isinstance(i, SwapOutInstr)
            and i.ref.tensor_id == conv1_weight.tensor_id
        ]
        assert evictions, "sharded weight must leave between uses"

    def test_executes_with_bounded_device_use(self):
        graph = build_tiny_cnn(batch=8)
        result = run_policy(graph, "fairscale_offload", BIG_GPU)
        assert result.feasible
        base = run_policy(graph, "base", BIG_GPU)
        # Sharding strictly reduces the device peak.
        assert result.trace.peak_memory < base.trace.peak_memory


class TestLruBudget:
    def counts_for_budget(self, budget: int) -> int:
        graph = build_tiny_cnn(batch=8)
        plan = Plan()
        for tensor in graph.activations():
            if tensor.producer is not None and tensor.consumers:
                plan.set(tensor.tensor_id,
                         TensorConfig(opt=MemOption.RECOMPUTE))
        profile = Profiler(BIG_GPU).profile(graph)
        program = augment_graph(graph, plan, profile, options=AugmentOptions(
            recompute_strategy=RecomputeStrategy.LRU,
            lru_budget_bytes=budget,
        )).program
        return sum(
            1 for i in program.instructions
            if isinstance(i, ComputeInstr) and i.tag == "recompute"
        )

    def test_larger_budget_recomputes_less(self):
        tight = self.counts_for_budget(1)
        roomy = self.counts_for_budget(1 << 40)
        assert roomy <= tight

    def test_roomy_lru_matches_speed_centric(self):
        """With an unbounded cache, LRU degenerates to speed-centric."""
        graph = build_tiny_cnn(batch=8)
        plan = Plan()
        for tensor in graph.activations():
            if tensor.producer is not None and tensor.consumers:
                plan.set(tensor.tensor_id,
                         TensorConfig(opt=MemOption.RECOMPUTE))
        profile = Profiler(BIG_GPU).profile(graph)

        def count(strategy, budget=1 << 40):
            program = augment_graph(
                graph, plan, profile, options=AugmentOptions(
                    recompute_strategy=strategy, lru_budget_bytes=budget,
                ),
            ).program
            return sum(
                1 for i in program.instructions
                if isinstance(i, ComputeInstr) and i.tag == "recompute"
            )

        assert count(RecomputeStrategy.LRU) == count(
            RecomputeStrategy.SPEED_CENTRIC,
        )

    def test_lru_programs_execute(self):
        graph = build_tiny_cnn(batch=8)
        plan = Plan()
        for tensor in graph.activations():
            if tensor.producer is not None and tensor.consumers:
                plan.set(tensor.tensor_id,
                         TensorConfig(opt=MemOption.RECOMPUTE))
        profile = Profiler(BIG_GPU).profile(graph)
        for budget in (1, 64 * 1024, 1 << 40):
            program = augment_graph(
                graph, plan, profile, options=AugmentOptions(
                    recompute_strategy=RecomputeStrategy.LRU,
                    lru_budget_bytes=budget,
                ),
            ).program
            trace = Engine(BIG_GPU).execute(program)
            assert trace.iteration_time > 0
