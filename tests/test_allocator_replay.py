"""Allocator replay: pool placement effects on real traces."""

import pytest

from repro.analysis.allocator_replay import (
    chronological_peak,
    replay_allocations,
)
from repro.analysis.runner import run_policy
from repro.runtime.trace import ExecutionTrace
from repro.units import GB
from tests.conftest import BIG_GPU, build_tiny_cnn

#: Every pool placement strategy the replay accepts.
STRATEGIES = ("best_fit", "first_fit", "worst_fit", "segregated")


def swap_heavy_trace():
    graph = build_tiny_cnn(batch=32, image=32)
    result = run_policy(graph, "vdnn_all", BIG_GPU)
    assert result.feasible
    return result.trace


def synthetic_trace(events, persistent=0):
    """A minimal trace carrying only an allocation event stream."""
    return ExecutionTrace(
        name="synthetic", batch=1, iteration_time=1.0, compute_busy=1.0,
        cpu_busy=0.0, d2h_busy=0.0, h2d_busy=0.0, memory_stall=0.0,
        peak_memory=0, persistent_bytes=persistent, swapped_out_bytes=0,
        swapped_in_bytes=0, recompute_time=0.0, recompute_ops=0,
        split_kernels=0, alloc_events=list(events),
    )


class TestReplay:
    def test_best_fit_succeeds_on_feasible_trace(self):
        trace = swap_heavy_trace()
        result = replay_allocations(trace, BIG_GPU.memory_bytes)
        assert result.succeeded
        assert result.alloc_count > 0

    def test_peak_bounded_by_capacity(self):
        trace = swap_heavy_trace()
        result = replay_allocations(trace, BIG_GPU.memory_bytes)
        assert result.peak_used <= BIG_GPU.memory_bytes

    def test_fragmentation_reported(self):
        trace = swap_heavy_trace()
        result = replay_allocations(trace, BIG_GPU.memory_bytes)
        assert 0.0 <= result.max_fragmentation <= 1.0

    def test_strategies_comparable(self):
        trace = swap_heavy_trace()
        best = replay_allocations(trace, 2 * GB, strategy="best_fit")
        first = replay_allocations(trace, 2 * GB, strategy="first_fit")
        worst = replay_allocations(trace, 2 * GB, strategy="worst_fit")
        assert best.succeeded and first.succeeded and worst.succeeded

    def test_tiny_capacity_fails_gracefully(self):
        trace = swap_heavy_trace()
        result = replay_allocations(trace, 64 * 1024)
        assert not result.succeeded
        assert result.failed_at

    def test_base_trace_replays_compute_allocations(self):
        graph = build_tiny_cnn(batch=4)
        trace = run_policy(graph, "base", BIG_GPU).trace
        result = replay_allocations(trace, BIG_GPU.memory_bytes)
        assert result.succeeded
        # Base has no transfers but every compute output is allocated.
        assert result.alloc_count > 0


class TestSizeMatchedFrees:
    """Regression: a release must free the same-size live handle for its
    label, not whichever was allocated first."""

    def test_free_matches_event_size_not_fifo_order(self):
        # "x" has two live allocations of different sizes; the -512
        # release refers to the second. Freeing per-label FIFO would
        # release the 256 B block instead, leaving [0, 256) free and
        # [256, 768) occupied — and the 768 B allocation below would
        # spuriously OOM in a 1024 B pool.
        trace = synthetic_trace([
            (0.0, "x", 256),
            (1.0, "x", 512),
            (2.0, "x", -512),
            (3.0, "y", 768),
        ])
        result = replay_allocations(trace, 1024)
        assert result.succeeded
        assert result.peak_used == 1024

    def test_same_size_duplicates_free_oldest_first(self):
        trace = synthetic_trace([
            (0.0, "x", 256),
            (1.0, "x", 256),
            (2.0, "x", -256),
            (3.0, "x", -256),
        ])
        result = replay_allocations(trace, 1024)
        assert result.succeeded
        assert result.alloc_count == 2

    def test_unmatched_size_falls_back_to_fifo(self):
        # A release whose size matches no live handle (e.g. the matching
        # allocation was trimmed from the trace) still frees something
        # rather than leaking the label's oldest block.
        trace = synthetic_trace([
            (0.0, "x", 256),
            (1.0, "x", -512),
            (2.0, "y", 1024),
        ])
        result = replay_allocations(trace, 1024)
        assert result.succeeded

    def test_release_without_live_handle_ignored(self):
        trace = synthetic_trace([(0.0, "ghost", -256)])
        assert replay_allocations(trace, 1024).succeeded


class TestFailureReporting:
    def test_fragmentation_reported_at_failure_instant(self):
        # Alternating frees leave 512 B free in two 256 B holes; the
        # 512 B request OOMs purely from external fragmentation, and the
        # result must report that state (1 - 256/512), not understate it.
        trace = synthetic_trace([
            (0.0, "a", 256),
            (1.0, "b", 256),
            (2.0, "c", 256),
            (3.0, "d", 256),
            (4.0, "a", -256),
            (5.0, "c", -256),
            (6.0, "big", 512),
        ])
        result = replay_allocations(trace, 1024)
        assert not result.succeeded
        assert result.failed_at == "big"
        assert result.max_fragmentation == pytest.approx(0.5)
        assert result.peak_used == 1024

    def test_persistent_region_failure(self):
        trace = synthetic_trace([], persistent=2048)
        result = replay_allocations(trace, 1024)
        assert not result.succeeded
        assert result.failed_at == "<persistent region>"

    def test_shape_stats_at_fragmentation_failure(self):
        # Same alternating-free layout as above: at the failure instant
        # the pool holds two 256 B holes, and the result must carry that
        # exact free-list shape (not the post-mortem or initial one).
        trace = synthetic_trace([
            (0.0, "a", 256),
            (1.0, "b", 256),
            (2.0, "c", 256),
            (3.0, "d", 256),
            (4.0, "a", -256),
            (5.0, "c", -256),
            (6.0, "big", 512),
        ])
        result = replay_allocations(trace, 1024)
        assert not result.succeeded
        assert result.largest_free_block == 256
        assert result.free_block_count == 2

    def test_shape_stats_at_persistent_failure(self):
        trace = synthetic_trace([], persistent=2048)
        result = replay_allocations(trace, 1024)
        assert not result.succeeded
        # The whole (untouched) pool is one capacity-sized block.
        assert result.largest_free_block == 1024
        assert result.free_block_count == 1

    def test_same_instant_alloc_before_free_counts_both(self):
        # A zero-duration op allocates its output at the same instant
        # its input's release lands, with the alloc recorded first —
        # both buffers are resident while the kernel runs, so the
        # replayed peak must count them together. A frees-first re-sort
        # at equal timestamps would understate this (the bug hypothesis
        # found on a fault-recovery trace).
        trace = synthetic_trace([
            (0.0, "in", 512),
            (1.0, "out", 512),
            (1.0, "in", -512),
        ])
        assert chronological_peak(trace) == 1024
        result = replay_allocations(trace, 1024)
        assert result.succeeded
        assert result.peak_used == 1024

    def test_shape_stats_on_success(self):
        trace = synthetic_trace([
            (0.0, "a", 256),
            (1.0, "a", -256),
        ])
        result = replay_allocations(trace, 1024)
        assert result.succeeded
        # Final state: everything freed and coalesced back to one block.
        assert result.largest_free_block == 1024
        assert result.free_block_count == 1


class TestReplayVsLedger:
    def test_replay_peak_bounds_ledger_peak_every_strategy(self):
        """Placement can only add overhead on top of byte accounting:
        the pool's peak (alignment + persistent region included) is
        never below the engine ledger's chronological peak."""
        trace = swap_heavy_trace()
        ledger_peak = chronological_peak(trace)
        assert ledger_peak == trace.peak_memory
        for strategy in STRATEGIES:
            result = replay_allocations(
                trace, BIG_GPU.memory_bytes, strategy=strategy,
            )
            assert result.succeeded, strategy
            assert result.peak_used >= ledger_peak, strategy


class TestMaxFragmentationSnapshot:
    """Regression: the time-of-max-fragmentation snapshot must be
    surfaced for *non-failing* replays too (it used to exist only as a
    side effect of the failure path), so strategies that survived can
    still be compared forensically."""

    def fragmented_events(self):
        # Alternating frees: two 256 B holes at t=5.0 is the worst
        # free-space shape this stream ever reaches (frag = 0.5).
        return [
            (0.0, "a", 256),
            (1.0, "b", 256),
            (2.0, "c", 256),
            (3.0, "d", 256),
            (4.0, "a", -256),
            (5.0, "c", -256),
        ]

    def test_snapshot_surfaced_on_success(self):
        trace = synthetic_trace(self.fragmented_events())
        result = replay_allocations(trace, 1024)
        assert result.succeeded
        assert result.max_fragmentation == pytest.approx(0.5)
        assert result.max_fragmentation_time == 5.0
        assert result.frag_largest_free_block == 256
        assert result.frag_free_block_count == 2
        assert result.frag_free_bytes == 512

    def test_snapshot_frozen_at_failure_instant_too(self):
        trace = synthetic_trace(
            self.fragmented_events() + [(6.0, "big", 512)],
        )
        result = replay_allocations(trace, 1024)
        assert not result.succeeded
        assert result.max_fragmentation_time == 5.0
        assert result.frag_largest_free_block == 256
        assert result.frag_free_block_count == 2
        assert result.frag_free_bytes == 512

    def test_unfragmented_run_reports_zero_time(self):
        trace = synthetic_trace([(1.0, "a", 256), (2.0, "a", -256)])
        result = replay_allocations(trace, 1024)
        assert result.succeeded
        assert result.max_fragmentation == 0.0
        assert result.max_fragmentation_time == 0.0

    def test_peak_extent_and_plan_counters_default(self):
        trace = synthetic_trace([(0.0, "a", 256), (1.0, "b", 512)])
        result = replay_allocations(trace, 4096)
        assert result.succeeded
        assert result.peak_extent == 768
        assert result.plan_hits == 0 and result.plan_misses == 0
