"""Allocator replay: pool placement effects on real traces."""

from repro.analysis.allocator_replay import replay_allocations
from repro.analysis.runner import run_policy
from repro.units import GB
from tests.conftest import BIG_GPU, build_tiny_cnn


def swap_heavy_trace():
    graph = build_tiny_cnn(batch=32, image=32)
    result = run_policy(graph, "vdnn_all", BIG_GPU)
    assert result.feasible
    return result.trace


class TestReplay:
    def test_best_fit_succeeds_on_feasible_trace(self):
        trace = swap_heavy_trace()
        result = replay_allocations(trace, BIG_GPU.memory_bytes)
        assert result.succeeded
        assert result.alloc_count > 0

    def test_peak_bounded_by_capacity(self):
        trace = swap_heavy_trace()
        result = replay_allocations(trace, BIG_GPU.memory_bytes)
        assert result.peak_used <= BIG_GPU.memory_bytes

    def test_fragmentation_reported(self):
        trace = swap_heavy_trace()
        result = replay_allocations(trace, BIG_GPU.memory_bytes)
        assert 0.0 <= result.max_fragmentation <= 1.0

    def test_strategies_comparable(self):
        trace = swap_heavy_trace()
        best = replay_allocations(trace, 2 * GB, strategy="best_fit")
        first = replay_allocations(trace, 2 * GB, strategy="first_fit")
        worst = replay_allocations(trace, 2 * GB, strategy="worst_fit")
        assert best.succeeded and first.succeeded and worst.succeeded

    def test_tiny_capacity_fails_gracefully(self):
        trace = swap_heavy_trace()
        result = replay_allocations(trace, 64 * 1024)
        assert not result.succeeded
        assert result.failed_at

    def test_base_trace_replays_compute_allocations(self):
        graph = build_tiny_cnn(batch=4)
        trace = run_policy(graph, "base", BIG_GPU).trace
        result = replay_allocations(trace, BIG_GPU.memory_bytes)
        assert result.succeeded
        # Base has no transfers but every compute output is allocated.
        assert result.alloc_count > 0
