"""Engine edge cases not covered by the happy-path suites."""

import pytest

from repro.errors import RuntimeExecutionError
from repro.runtime.engine import Engine
from repro.runtime.instructions import (
    ComputeInstr,
    Device,
    Program,
    SwapOutInstr,
    TensorRef,
    XferInstr,
)
from repro.units import MB
from tests.conftest import BIG_GPU


def run(instructions, **program_kwargs):
    program = Program(
        instructions=list(instructions), batch=1, name="edge",
        **program_kwargs,
    )
    return Engine(BIG_GPU).execute(program)


class TestDependencies:
    def test_cpu_dependency_nowhere_raises(self):
        instr = ComputeInstr(
            "upd", 1.0, device=Device.CPU,
            inputs=(TensorRef(9, MB, label="ghost"),),
        )
        with pytest.raises(RuntimeExecutionError, match="exists nowhere"):
            run([instr])

    def test_xfer_waits_on_host_copy(self):
        trace = run([
            ComputeInstr("a", 1.0, outputs=(TensorRef(0, MB, label="t"),)),
            SwapOutInstr(TensorRef(0, MB, label="t")),
            XferInstr(nbytes=MB, direction="d2h", label="extra",
                      after=(TensorRef(0, MB, label="t"),)),
        ])
        swap = next(r for r in trace.records if r.kind == "swap_out")
        xfer = next(r for r in trace.records if r.label == "extra")
        assert xfer.start >= swap.end - 1e-12

    def test_d2h_xfer_counts_outbound(self):
        trace = run([XferInstr(nbytes=2 * MB, direction="d2h", label="x")])
        assert trace.swapped_out_bytes == 2 * MB


class TestZeroWork:
    def test_zero_duration_compute(self):
        trace = run([ComputeInstr("free_op", 0.0)])
        assert trace.iteration_time == 0.0

    def test_empty_program(self):
        trace = run([])
        assert trace.iteration_time == 0.0
        assert trace.peak_memory == 0

    def test_zero_byte_marker_outputs(self):
        marker = TensorRef(1, 0, -2, label="done")
        trace = run([
            ComputeInstr("upd", 1.0, device=Device.CPU, outputs=(marker,)),
            XferInstr(nbytes=MB, direction="h2d", label="wb",
                      after=(marker,)),
        ])
        wb = next(r for r in trace.records if r.label == "wb")
        assert wb.start >= 1.0 - 1e-12


class TestStallAccounting:
    def test_dependency_wait_is_not_memory_stall(self):
        """Waiting on a transfer dependency is overlap, not a memory
        stall; the stall counter only covers allocation waits."""
        trace = run([
            ComputeInstr("a", 0.001, outputs=(TensorRef(0, MB, label="t"),)),
            SwapOutInstr(TensorRef(0, MB, label="t")),
            ComputeInstr("b", 0.001),  # independent: no stall
        ])
        assert trace.memory_stall == 0.0

    def test_compute_packs_streams_back_to_back(self):
        trace = run([
            ComputeInstr("a", 0.5),
            ComputeInstr("b", 0.25),
        ])
        records = {r.label: r for r in trace.records}
        assert records["b"].start == pytest.approx(records["a"].end)
