"""The `python -m repro` command-line driver."""

import json

import pytest

from repro.__main__ import main


class TestRun:
    def test_run_feasible(self, capsys):
        main(["run", "--model", "vgg16", "--policy", "base",
              "--batch", "2"])
        out = capsys.readouterr().out
        assert "iter" in out
        assert "compute busy" in out

    def test_run_infeasible_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--model", "vgg16", "--policy", "base",
                  "--batch", "4096"])
        assert excinfo.value.code == 1
        assert "INFEASIBLE" in capsys.readouterr().out

    def test_unknown_gpu_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--gpu", "quantum9000", "--batch", "2"])


class TestScale:
    def test_sample_axis(self, capsys):
        main(["scale", "--model", "vgg16", "--policy", "base",
              "--cap", "8"])
        out = capsys.readouterr().out
        assert "max batch" in out

    def test_inapplicable_reports_x(self, capsys):
        main(["scale", "--model", "transformer", "--policy", "vdnn_conv",
              "--cap", "8"])
        out = capsys.readouterr().out
        assert "x (inapplicable)" in out


class TestSweep:
    def test_sweep_table(self, capsys):
        main(["sweep", "--model", "vgg16",
              "--policies", "base,vdnn_all", "--batches", "2,4"])
        out = capsys.readouterr().out
        assert "base" in out and "vdnn_all" in out
        assert "/s" in out

    def test_bad_policy_fails_fast(self):
        with pytest.raises(KeyError):
            main(["sweep", "--policies", "base,nonsense", "--batches", "2"])

    def test_sweep_process_backend(self, capsys):
        main(["sweep", "--model", "vgg16", "--policies", "base",
              "--batches", "2,4", "--parallel", "2",
              "--backend", "process"])
        out = capsys.readouterr().out
        assert "base" in out and "/s" in out

    def test_sweep_warm_cache_dir_hits_disk(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        stats_path = tmp_path / "stats.json"
        argv = ["sweep", "--model", "vgg16", "--policies", "base",
                "--batches", "2", "--cache-dir", str(cache_dir),
                "--cache-stats", str(stats_path)]
        main(argv)
        cold = json.loads(stats_path.read_text())
        assert cold["disk_hits"] == 0 and cold["misses"] > 0
        capsys.readouterr()
        main(argv)  # same process, but a fresh driver cache per run
        warm = json.loads(stats_path.read_text())
        assert warm["disk_hits"] > 0
        assert warm["disk_misses"] == 0
        err = capsys.readouterr().err
        assert "disk hits" in err

    def test_sweep_cache_stats_rejected_for_process_backend(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--model", "vgg16", "--policies", "base",
                  "--batches", "2", "--backend", "process",
                  "--cache-stats", str(tmp_path / "stats.json")])
        assert "cache" in str(excinfo.value)

    def test_sweep_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--model", "vgg16", "--policies", "base",
                  "--batches", "2", "--backend", "fiber"])


class TestTrace:
    def test_trace_writes_chrome_json(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        main(["trace", "vgg16", "base", "--batch", "2",
              "--out", str(out_path)])
        out = capsys.readouterr().out
        assert "trace events" in out
        import json

        data = json.loads(out_path.read_text())
        events = data["traceEvents"]
        assert any(e["ph"] == "X" for e in events)  # instruction slices
        assert any(e["ph"] == "C" for e in events)  # memory counter
        assert any(e["ph"] == "M" for e in events)  # track names

    def test_trace_infeasible_exits_nonzero(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "vgg16", "base", "--batch", "4096",
                  "--out", str(tmp_path / "t.json")])
        assert excinfo.value.code == 1
        assert not (tmp_path / "t.json").exists()


class TestPlan:
    def test_plan_listing(self, capsys):
        main(["plan", "--model", "vgg16", "--batch", "512", "--top", "3"])
        out = capsys.readouterr().out
        assert "configured tensors" in out
        assert "plan[tsplit]" in out


class TestExplain:
    def test_explain_report(self, capsys, tmp_path):
        trace_path = tmp_path / "merged.json"
        metrics_path = tmp_path / "metrics.jsonl"
        main(["explain", "vgg16", "--batch-size", "256",
              "--gpu", "gtx_1080ti",
              "--trace", str(trace_path), "--metrics", str(metrics_path)])
        out = capsys.readouterr().out
        assert "Plan explanation" in out
        assert "## Decisions" in out
        assert "peak memory" in out
        assert "Runtime stall attribution" in out
        import json

        merged = json.loads(trace_path.read_text())
        names = {e["args"]["name"] for e in merged["traceEvents"]
                 if e.get("name") == "process_name"}
        assert "compiler pipeline" in names
        assert "engine execution" in names
        assert metrics_path.read_text().strip()

    def test_explain_json(self, capsys):
        main(["explain", "vgg16", "--batch", "256",
              "--gpu", "gtx_1080ti", "--json"])
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["explanation"]["decisions"]
        assert "kind_counts" in payload

    def test_explain_non_tsplit_policy(self, capsys):
        main(["explain", "vgg16", "--batch-size", "2",
              "--policy", "base"])
        out = capsys.readouterr().out
        assert "no decision provenance" in out

    def test_explain_infeasible_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["explain", "vgg16", "--batch-size", "4096",
                  "--policy", "base"])
        assert excinfo.value.code == 1
        assert "INFEASIBLE" in capsys.readouterr().out


class TestChaos:
    def test_chaos_smoke_report(self, capsys):
        main(["chaos", "vgg16", "--batch", "2", "--policy", "base",
              "--smoke"])
        out = capsys.readouterr().out
        assert "intensity" in out
        assert "survived" in out
        assert "clean: iter" in out

    def test_chaos_json_artifact(self, capsys, tmp_path):
        report_path = tmp_path / "chaos.json"
        main(["chaos", "vgg16", "--batch", "2", "--policy", "base",
              "--smoke", "--json", str(report_path)])
        import json

        payload = json.loads(report_path.read_text())
        assert payload["report"] == "chaos_sweep"
        assert payload["clean"]["feasible"] is True
        assert payload["survival_rate"] == 1.0
        # --smoke runs 2 intensities x 2 seeds.
        assert len(payload["points"]) == 4
        zero = [p for p in payload["points"] if p["intensity"] == 0.0]
        assert all(p["recovery_actions"] == 0 for p in zero)

    def test_chaos_intensity_list(self, capsys):
        main(["chaos", "vgg16", "--batch", "2", "--policy", "base",
              "--intensities", "0,1", "--seeds", "1"])
        out = capsys.readouterr().out
        assert "survived 2/2" in out

    def test_chaos_bad_intensities_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "vgg16", "--batch", "2",
                  "--intensities", "0,potato"])

    def test_chaos_infeasible_clean_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["chaos", "vgg16", "--batch", "4096", "--policy", "base",
                  "--smoke"])
        assert excinfo.value.code == 1
        assert "INFEASIBLE" in capsys.readouterr().out


class TestCluster:
    def test_dp_run_prints_per_rank_lines(self, capsys):
        main(["cluster", "transformer", "--policy", "base", "--batch", "8",
              "--world", "2", "--gpu", "v100_16gb"])
        out = capsys.readouterr().out
        assert "2x V100 16GB" in out
        assert "rank 0:" in out and "rank 1:" in out
        assert "makespan" in out and "throughput" in out

    def test_pp_reports_bubble_fraction(self, capsys):
        main(["cluster", "transformer", "--policy", "base", "--batch", "8",
              "--world", "2", "--mode", "pp", "--micros", "4",
              "--gpu", "v100_16gb"])
        out = capsys.readouterr().out
        assert "2 stages x 4 micros" in out
        assert "bubble fraction" in out

    def test_trace_artifact_names_ranks(self, capsys, tmp_path):
        path = tmp_path / "cluster.json"
        main(["cluster", "transformer", "--policy", "base", "--batch", "8",
              "--world", "2", "--gpu", "v100_16gb",
              "--trace", str(path)])
        capsys.readouterr()
        payload = json.loads(path.read_text())
        names = {
            event["args"]["name"]
            for event in payload["traceEvents"]
            if event.get("ph") == "M" and event["name"] == "process_name"
        }
        assert names == {"rank 0 (V100 16GB)", "rank 1 (V100 16GB)"}

    def test_unknown_link_rejected(self):
        with pytest.raises(SystemExit):
            main(["cluster", "transformer", "--link", "carrier-pigeon"])

    def test_infeasible_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["cluster", "vgg16", "--policy", "tsplit",
                  "--batch", "8192", "--world", "2", "--gpu", "gtx_1080ti"])
        assert excinfo.value.code == 1
        assert "INFEASIBLE" in capsys.readouterr().out
