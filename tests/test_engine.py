"""The discrete-event execution engine."""

import pytest

from repro.errors import OutOfMemoryError, RuntimeExecutionError
from repro.runtime.engine import Engine
from repro.runtime.instructions import (
    ComputeInstr,
    Device,
    FreeInstr,
    Program,
    SwapInInstr,
    SwapOutInstr,
    TensorRef,
    XferInstr,
)
from repro.units import MB
from tests.conftest import TINY_GPU


def ref(tid: int, nbytes: int = MB, micro: int = -1) -> TensorRef:
    return TensorRef(tid, nbytes, micro, label=f"t{tid}")


def run(instructions, gpu=TINY_GPU, persistent=0, initial_host=()):
    program = Program(
        instructions=list(instructions),
        persistent_bytes=persistent,
        batch=1,
        name="test",
        initial_host=list(initial_host),
    )
    return Engine(gpu).execute(program)


class TestCompute:
    def test_durations_accumulate(self):
        trace = run([
            ComputeInstr("a", 1.0, outputs=(ref(0),)),
            ComputeInstr("b", 2.0, inputs=(ref(0),)),
        ])
        assert trace.iteration_time == pytest.approx(3.0)
        assert trace.compute_busy == pytest.approx(3.0)

    def test_dependency_must_be_resident(self):
        with pytest.raises(RuntimeExecutionError, match="not resident"):
            run([ComputeInstr("a", 1.0, inputs=(ref(0),))])

    def test_double_allocation_rejected(self):
        with pytest.raises(RuntimeExecutionError, match="re-allocates"):
            run([
                ComputeInstr("a", 1.0, outputs=(ref(0),)),
                ComputeInstr("b", 1.0, outputs=(ref(0),)),
            ])

    def test_peak_memory_tracked(self):
        trace = run([
            ComputeInstr("a", 1.0, outputs=(ref(0, 2 * MB),)),
            ComputeInstr("b", 1.0, outputs=(ref(1, 3 * MB),)),
        ])
        assert trace.peak_memory == 5 * MB

    def test_transient_workspace_released(self):
        trace = run([
            ComputeInstr("a", 1.0, outputs=(ref(0, MB),),
                         transient_bytes=4 * MB),
            ComputeInstr("b", 1.0, outputs=(ref(1, 3 * MB),)),
        ])
        # 1 + 4 transient during a, then 1 + 3 during b: peak 5 MB.
        assert trace.peak_memory == 5 * MB

    def test_oom_when_never_fits(self):
        with pytest.raises(OutOfMemoryError):
            run([ComputeInstr("a", 1.0, outputs=(ref(0, 100 * MB),))])

    def test_persistent_bytes_oom(self):
        with pytest.raises(OutOfMemoryError, match="persistent"):
            run([], persistent=TINY_GPU.memory_bytes + 1)

    def test_alloc_only_and_finishes(self):
        trace = run([
            ComputeInstr("m0", 1.0, alloc_only=(ref(0, 2 * MB),)),
            ComputeInstr("m1", 1.0, finishes=(ref(0, 2 * MB),)),
            ComputeInstr("use", 1.0, inputs=(ref(0, 2 * MB),)),
        ])
        records = {r.label: r for r in trace.records}
        assert records["use"].start >= records["m1"].end

    def test_finish_unallocated_rejected(self):
        with pytest.raises(RuntimeExecutionError, match="finishes"):
            run([ComputeInstr("m", 1.0, finishes=(ref(0),))])


class TestSwap:
    def test_round_trip(self):
        trace = run([
            ComputeInstr("a", 1.0, outputs=(ref(0, 2 * MB),)),
            SwapOutInstr(ref(0, 2 * MB)),
            SwapInInstr(ref(0, 2 * MB)),
            ComputeInstr("b", 1.0, inputs=(ref(0, 2 * MB),)),
        ])
        assert trace.swapped_out_bytes == 2 * MB
        assert trace.swapped_in_bytes == 2 * MB

    def test_swap_out_frees_memory(self):
        trace = run([
            ComputeInstr("a", 0.1, outputs=(ref(0, 5 * MB),)),
            SwapOutInstr(ref(0, 5 * MB)),
            ComputeInstr("b", 0.1, outputs=(ref(1, 5 * MB),)),
        ])
        # 8 MB device: b fits only after the swap-out completes.
        assert trace.peak_memory <= TINY_GPU.memory_bytes

    def test_compute_waits_for_pending_free(self):
        trace = run([
            ComputeInstr("a", 0.001, outputs=(ref(0, 5 * MB),)),
            SwapOutInstr(ref(0, 5 * MB)),
            ComputeInstr("b", 0.001, outputs=(ref(1, 5 * MB),)),
        ])
        records = {r.label: r for r in trace.records}
        swap = next(r for r in trace.records if r.kind == "swap_out")
        assert records["b"].start >= swap.end - 1e-12
        assert trace.memory_stall > 0

    def test_swap_in_without_host_copy_rejected(self):
        with pytest.raises(RuntimeExecutionError, match="host copy"):
            run([SwapInInstr(ref(0))])

    def test_swap_in_of_resident_rejected(self):
        with pytest.raises(RuntimeExecutionError, match="already-resident"):
            run([
                ComputeInstr("a", 1.0, outputs=(ref(0),)),
                SwapOutInstr(ref(0)),
                SwapInInstr(ref(0)),
                SwapInInstr(ref(0)),
            ])

    def test_initial_host_enables_swap_in(self):
        trace = run(
            [SwapInInstr(ref(0, MB)),
             ComputeInstr("use", 1.0, inputs=(ref(0, MB),))],
            initial_host=[ref(0, MB)],
        )
        assert trace.swapped_in_bytes == MB

    def test_transfers_overlap_compute(self):
        """A swap-out behind a long kernel adds no iteration time."""
        trace = run([
            ComputeInstr("a", 0.001, outputs=(ref(0, MB),)),
            SwapOutInstr(ref(0, MB)),
            ComputeInstr("b", 10.0, outputs=(ref(1, MB),)),
        ])
        assert trace.iteration_time == pytest.approx(10.001, rel=1e-3)


class TestFree:
    def test_free_releases(self):
        trace = run([
            ComputeInstr("a", 1.0, outputs=(ref(0, 5 * MB),)),
            FreeInstr(ref(0, 5 * MB)),
            ComputeInstr("b", 1.0, outputs=(ref(1, 5 * MB),)),
        ])
        assert trace.peak_memory <= TINY_GPU.memory_bytes

    def test_double_free_rejected(self):
        with pytest.raises(RuntimeExecutionError):
            run([
                ComputeInstr("a", 1.0, outputs=(ref(0),)),
                FreeInstr(ref(0)),
                FreeInstr(ref(0)),
            ])

    def test_missing_ok_tolerated(self):
        run([FreeInstr(ref(0), missing_ok=True)])


class TestCpuAndXfer:
    def test_cpu_compute_does_not_use_gpu_stream(self):
        trace = run([
            ComputeInstr("upd", 2.0, device=Device.CPU, tag="update"),
        ])
        assert trace.compute_busy == 0.0
        assert trace.cpu_busy == pytest.approx(2.0)

    def test_cpu_waits_on_host_copy(self):
        trace = run([
            ComputeInstr("a", 1.0, outputs=(ref(0, MB),)),
            SwapOutInstr(ref(0, MB)),
            ComputeInstr("upd", 1.0, device=Device.CPU,
                         inputs=(ref(0, MB),), tag="update"),
        ])
        swap = next(r for r in trace.records if r.kind == "swap_out")
        upd = next(r for r in trace.records if r.label == "upd")
        assert upd.start >= swap.end - 1e-12

    def test_xfer_counts_bytes(self):
        trace = run([XferInstr(nbytes=MB, direction="h2d", label="wb")])
        assert trace.swapped_in_bytes == MB

    def test_merge_aliases_pieces(self):
        """Merging micros into a whole adds only the size delta."""
        trace = run([
            ComputeInstr("a0", 0.1, outputs=(ref(0, 3 * MB, micro=0),)),
            ComputeInstr("a1", 0.1, outputs=(ref(0, 3 * MB, micro=1),)),
            ComputeInstr(
                "merge", 0.1,
                inputs=(ref(0, 3 * MB, micro=0), ref(0, 3 * MB, micro=1)),
                outputs=(ref(0, 6 * MB),),
                tag="merge",
            ),
        ])
        assert trace.peak_memory <= 7 * MB


class TestTraceMetrics:
    def test_throughput(self):
        program = Program(
            instructions=[ComputeInstr("a", 2.0)],
            batch=10, name="t",
        )
        trace = Engine(TINY_GPU).execute(program)
        assert trace.throughput == pytest.approx(5.0)

    def test_pcie_utilization_bounded(self):
        trace = run([
            ComputeInstr("a", 0.5, outputs=(ref(0, MB),)),
            SwapOutInstr(ref(0, MB)),
        ])
        assert 0.0 <= trace.pcie_utilization <= 1.0

    def test_describe_runs(self):
        trace = run([ComputeInstr("a", 1.0)])
        assert "iter" in trace.describe()
