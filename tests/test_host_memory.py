"""Host (CPU) memory accounting for swapped tensors."""

import pytest

from repro.analysis.runner import run_policy
from repro.errors import OutOfMemoryError
from repro.runtime.engine import Engine
from repro.runtime.instructions import (
    ComputeInstr,
    Program,
    SwapOutInstr,
    TensorRef,
)
from repro.units import MB
from tests.conftest import BIG_GPU, build_tiny_cnn


class TestHostAccounting:
    def test_swap_heavy_run_reports_host_peak(self):
        graph = build_tiny_cnn(batch=32, image=32)
        result = run_policy(graph, "vdnn_all", BIG_GPU)
        assert result.feasible
        trace = result.trace
        assert trace.host_peak_bytes > 0
        assert trace.host_peak_bytes <= BIG_GPU.host_memory_bytes

    def test_base_run_uses_no_host(self):
        graph = build_tiny_cnn(batch=8)
        trace = run_policy(graph, "base", BIG_GPU).trace
        assert trace.host_peak_bytes == 0

    def test_host_oom_raised(self):
        gpu = BIG_GPU
        import dataclasses

        tiny_host = dataclasses.replace(gpu, host_memory_bytes=1 * MB)
        program = Program(
            instructions=[
                ComputeInstr("a", 0.1, outputs=(TensorRef(0, 4 * MB, label="t"),)),
                SwapOutInstr(TensorRef(0, 4 * MB, label="t")),
            ],
            batch=1, name="t",
        )
        with pytest.raises(OutOfMemoryError, match="host memory"):
            Engine(tiny_host).execute(program)

    def test_repeated_swap_of_same_tensor_counts_once(self):
        """Re-swapping a tensor whose host copy already exists reuses it."""
        program = Program(
            instructions=[
                ComputeInstr("a", 0.1, outputs=(TensorRef(0, 4 * MB, label="t"),)),
                SwapOutInstr(TensorRef(0, 4 * MB, label="t")),
            ],
            batch=1, name="t",
        )
        trace = Engine(BIG_GPU).execute(program)
        assert trace.host_peak_bytes == 4 * MB

    def test_paper_machine_host_sizes(self):
        from repro.hardware.gpu import GTX_1080TI, RTX_TITAN
        from repro.units import GB

        assert RTX_TITAN.host_memory_bytes == 256 * GB
        assert GTX_1080TI.host_memory_bytes == 128 * GB
