"""Numeric validation: split execution == whole execution."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.split_rules import op_supports_split
from repro.errors import NumericsError
from repro.graph.ops import OpType, Phase
from repro.graph.tensor import DIM_ATTRIBUTE, DIM_PARAMETER, DIM_SAMPLE
from repro.models.layers import ModelBuilder
from repro.numerics import (
    ReferenceExecutor,
    random_inputs,
    run_split_op,
    split_equivalence_error,
)


def small_cnn_forward():
    builder = ModelBuilder("numcnn", 8)
    x = builder.input_image(3, 12, 12)
    x = builder.conv2d(x, 6, 3, name="c1")
    x = builder.relu(x, name="r1")
    x = builder.maxpool(x, 2, name="p1")
    x = builder.conv2d(x, 8, 3, stride=2, name="c2")
    x = builder.gelu(x, name="g1")
    return builder.graph


class TestReferenceExecutor:
    def test_forward_produces_all_activations(self):
        graph = small_cnn_forward()
        values = ReferenceExecutor(graph).run_forward(random_inputs(graph))
        for tensor in graph.activations():
            assert tensor.tensor_id in values
            assert values[tensor.tensor_id].shape == tensor.shape

    def test_conv_matches_brute_force(self):
        graph = small_cnn_forward()
        values = random_inputs(graph, seed=3)
        executor = ReferenceExecutor(graph)
        conv = next(op for op in graph.ops.values() if op.name == "c1")
        executor.run_op(conv, values)
        x = values[conv.inputs[0]]
        w = values[conv.inputs[1]]
        out = values[conv.outputs[0]]
        # Spot-check one output element by direct summation.
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        expected = float(
            (padded[0, :, 0:3, 0:3] * w[2]).sum()
        )
        assert out[0, 2, 0, 0] == pytest.approx(expected)

    def test_relu_nonnegative(self):
        graph = small_cnn_forward()
        values = ReferenceExecutor(graph).run_forward(random_inputs(graph))
        relu = next(op for op in graph.ops.values() if op.name == "r1")
        assert (values[relu.outputs[0]] >= 0).all()

    def test_softmax_rows_sum_to_one(self):
        builder = ModelBuilder("soft", 4)
        tokens = builder.input_tokens(6)
        x = builder.embedding(tokens, 11, 8)
        y = builder.softmax(x)
        graph = builder.graph
        values = ReferenceExecutor(graph).run_forward(random_inputs(graph))
        out = values[y.tensor_id]
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_missing_input_rejected(self):
        graph = small_cnn_forward()
        conv = next(op for op in graph.ops.values() if op.name == "c1")
        with pytest.raises(NumericsError):
            ReferenceExecutor(graph).run_op(conv, {})


class TestSplitEquivalence:
    @pytest.fixture(scope="class")
    def forward_values(self):
        graph = small_cnn_forward()
        values = ReferenceExecutor(graph).run_forward(random_inputs(graph, 7))
        return graph, values

    @pytest.mark.parametrize("op_name", ["c1", "r1", "p1", "c2", "g1"])
    def test_sample_split_equivalent(self, forward_values, op_name):
        graph, values = forward_values
        op = next(o for o in graph.ops.values() if o.name == op_name)
        err = split_equivalence_error(graph, op, values, DIM_SAMPLE, p_num=4)
        assert err < 1e-9

    @pytest.mark.parametrize("op_name", ["c1", "r1", "c2"])
    def test_parameter_split_equivalent(self, forward_values, op_name):
        graph, values = forward_values
        op = next(o for o in graph.ops.values() if o.name == op_name)
        err = split_equivalence_error(graph, op, values, DIM_PARAMETER, p_num=3)
        assert err < 1e-9

    def test_uneven_split_equivalent(self, forward_values):
        graph, values = forward_values
        op = next(o for o in graph.ops.values() if o.name == "c1")
        err = split_equivalence_error(graph, op, values, DIM_SAMPLE, p_num=3)
        assert err < 1e-9

    def test_unsupported_dim_rejected(self, forward_values):
        graph, values = forward_values
        # BN is not sample-splittable; build one to check the guard.
        builder = ModelBuilder("bn", 4)
        x = builder.input_image(2, 6, 6)
        builder.batchnorm(x)
        bn_graph = builder.graph
        bn = next(op for op in bn_graph.ops.values())
        with pytest.raises(NumericsError, match="does not support"):
            run_split_op(bn_graph, bn, {}, DIM_SAMPLE, 2)

    def test_layernorm_attribute_split_equivalent(self):
        builder = ModelBuilder("ln", 4)
        tokens = builder.input_tokens(8)
        x = builder.embedding(tokens, 13, 6)
        builder.layernorm(x)
        graph = builder.graph
        values = ReferenceExecutor(graph).run_forward(random_inputs(graph, 2))
        ln = next(op for op in graph.ops.values()
                  if op.op_type is OpType.LAYERNORM)
        err = split_equivalence_error(graph, ln, values, DIM_ATTRIBUTE, 4)
        assert err < 1e-9

    def test_batchnorm_sample_split_actually_diverges(self):
        """Sanity of the capability table itself: BN run per-sample-group
        produces different statistics, so the merge rule is required."""
        builder = ModelBuilder("bn2", 8)
        x = builder.input_image(2, 6, 6)
        y = builder.batchnorm(x)
        graph = builder.graph
        values = ReferenceExecutor(graph).run_forward(random_inputs(graph, 5))
        bn = next(op for op in graph.ops.values())
        # Bypass the guard to demonstrate the divergence it protects from.
        executor = ReferenceExecutor(graph)
        whole = dict(values)
        x_val = values[bn.inputs[0]]
        halves = np.array_split(x_val, 2, axis=0)
        pieces = []
        for half in halves:
            scope = dict(values)
            scope[bn.inputs[0]] = half
            pieces.append(executor._dispatch(bn, [half, values[bn.inputs[1]]])[0])
        split_result = np.concatenate(pieces, axis=0)
        assert not np.allclose(split_result, whole[y.tensor_id] if y.tensor_id in whole else executor._dispatch(bn, [x_val, values[bn.inputs[1]]])[0])


@settings(max_examples=15, deadline=None)
@given(
    batch=st.integers(min_value=2, max_value=10),
    p_num=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=100),
)
def test_elementwise_sample_split_property(batch, p_num, seed):
    """For any batch size and part count, relu splits losslessly."""
    if p_num > batch:
        return
    builder = ModelBuilder("prop", batch)
    x = builder.input_image(2, 5, 5)
    builder.relu(x)
    graph = builder.graph
    values = ReferenceExecutor(graph).run_forward(random_inputs(graph, seed))
    relu = next(op for op in graph.ops.values())
    err = split_equivalence_error(graph, relu, values, DIM_SAMPLE, p_num)
    assert err == 0.0


def test_capability_table_consistent_with_numerics():
    """Every (op in the toy CNN, dim) pair the capability table blesses
    passes numeric equivalence."""
    graph = small_cnn_forward()
    values = ReferenceExecutor(graph).run_forward(random_inputs(graph, 11))
    for op in graph.ops.values():
        if op.phase is not Phase.FORWARD:
            continue
        for dim in (DIM_SAMPLE, DIM_PARAMETER):
            if not op_supports_split(op.op_type, dim):
                continue
            out = graph.tensors[op.outputs[0]]
            if dim not in out.split_axes:
                continue
            axis = out.split_axes[dim]
            if out.shape[axis] < 2:
                continue
            err = split_equivalence_error(graph, op, values, dim, 2)
            assert err < 1e-9, f"{op.name} diverges on {dim}"
