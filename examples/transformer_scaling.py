"""Scenario: scaling a Transformer past device memory.

Transformers have no convolution layers, so the layer-type-driven
baselines (vDNN-conv, SuperNeurons) simply do not apply — the "x"
entries of the paper's tables. TSPLIT splits the giant attention-score
tensors instead. This script sweeps the hidden size at a fixed batch and
shows who can still train at each scale.

Run:  python examples/transformer_scaling.py
"""

from __future__ import annotations

from repro import RTX_TITAN
from repro.analysis.runner import evaluate
from repro.graph import peak_memory
from repro.models import build_transformer
from repro.units import format_bytes

BATCH = 48
SCALES = [1.0, 2.0, 3.0, 4.0, 6.0]
POLICIES = ["base", "vdnn_conv", "superneurons", "vdnn_all", "tsplit"]


def main() -> None:
    print(f"Transformer (6+6 layers), batch {BATCH}, "
          f"GPU {RTX_TITAN.name}\n")
    header = f"{'hidden x':>9s} {'requirement':>12s} " + "".join(
        f"{p:>14s}" for p in POLICIES
    )
    print(header)
    for scale in SCALES:
        graph = build_transformer(BATCH, param_scale=scale)
        requirement = peak_memory(graph)
        cells = []
        for policy in POLICIES:
            result = evaluate(
                "transformer", policy, RTX_TITAN, BATCH, param_scale=scale,
            )
            if not result.feasible:
                reason = result.failure
                cells.append("n/a" if "convolution" in reason else "OOM")
            else:
                cells.append(f"{result.throughput:.1f}/s")
        row = f"{scale:>9.1f} {format_bytes(requirement):>12s} " + "".join(
            f"{c:>14s}" for c in cells
        )
        print(row)
    print("\nn/a: policy inapplicable (no convolution layers) — the "
          "paper's 'x' entries.")
    print("Note how TSPLIT keeps training after every baseline stops.")


if __name__ == "__main__":
    main()
