"""Quickstart: train a model that does not fit in GPU memory.

Builds VGG-16 at a batch size whose training footprint exceeds a TITAN
RTX's 24 GB, shows that the Base policy fails, then lets TSPLIT plan a
joint split + swap + recompute strategy and executes it on the simulated
GPU.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import RTX_TITAN, build_model, run_policy
from repro.graph import dfs_schedule, peak_memory
from repro.units import format_bytes

BATCH = 640  # ~32 GB unoptimised: 1.4x over-subscription on 24 GB


def main() -> None:
    graph = build_model("vgg16", BATCH)
    schedule = dfs_schedule(graph)
    requirement = peak_memory(graph, schedule)
    print(graph.summary())
    print(f"unoptimised peak requirement: {format_bytes(requirement)} "
          f"on a {format_bytes(RTX_TITAN.memory_bytes)} GPU")
    print()

    base = run_policy(graph, "base", RTX_TITAN)
    print(f"base:   {'feasible' if base.feasible else 'OUT OF MEMORY'}")
    if not base.feasible:
        print(f"        {base.failure.splitlines()[0][:100]}")

    tsplit = run_policy(graph, "tsplit", RTX_TITAN)
    if not tsplit.feasible:
        raise SystemExit(f"tsplit failed: {tsplit.failure}")
    trace = tsplit.trace
    print(f"tsplit: feasible — {trace.describe()}")
    print()
    print("plan summary: ", tsplit.plan.summary(graph))
    split_tensors = tsplit.plan.split_tensors()
    print(f"split tensors: {len(split_tensors)}")
    for tid in split_tensors[:8]:
        tensor = graph.tensors[tid]
        cfg = tsplit.plan.config_for(tid)
        print(f"  {tensor.name:28s} {format_bytes(tensor.size_bytes):>10s} "
              f"-> {cfg.describe()}")
    print()
    print(f"throughput:       {trace.throughput:8.1f} samples/s")
    print(f"peak memory:      {format_bytes(trace.peak_memory)}")
    print(f"PCIe utilisation: {trace.pcie_utilization:.1%}")
    print(f"recompute time:   {trace.recompute_time * 1e3:.1f} ms "
          f"({trace.recompute_ops} chain ops)")


if __name__ == "__main__":
    main()
