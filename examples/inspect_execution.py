"""Scenario: inspect an execution — memory timeline and stream overlap.

Renders the text reports (`repro.analysis.report`) for a GPT-style model
under three policies, making the core TSPLIT claim visible in a
terminal: the memory sparkline flattens while the D2H/H2D rows fill in
*behind* a still-solid compute row.

Run:  python examples/inspect_execution.py
"""

from __future__ import annotations

from repro import RTX_TITAN, run_policy
from repro.analysis.report import comparison_table, trace_report
from repro.models import build_gpt


def main() -> None:
    graph = build_gpt(24, layers=12, seq_len=1024)
    print(graph.summary())
    print()

    traces = {}
    for policy in ("base", "vdnn_all", "tsplit"):
        result = run_policy(graph, policy, RTX_TITAN)
        traces[policy] = result.trace if result.feasible else None
        if result.feasible:
            print(f"===== {policy} =====")
            print(trace_report(result.trace))
            print()
        else:
            print(f"===== {policy}: infeasible =====")
            print(f"  {result.failure.splitlines()[0][:100]}")
            print()

    print("===== summary =====")
    print(comparison_table(traces))


if __name__ == "__main__":
    main()
