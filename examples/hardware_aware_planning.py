"""Scenario: the same model planned for different GPUs.

TSPLIT profiles the target hardware before planning, so the chosen
strategy mix changes with the device (Figure 14b): on a slower GPU,
recomputation costs relatively more compute time and the planner leans
toward swapping; on a faster GPU with the same PCIe link, transfers are
harder to hide and recomputation gains ground.

Run:  python examples/hardware_aware_planning.py
"""

from __future__ import annotations

from repro import GTX_1080TI, RTX_TITAN, TsplitPlanner, build_model
from repro.analysis.breakdown import strategy_breakdown
from repro.analysis.runner import run_policy
from repro.graph import dfs_schedule
from repro.units import format_bytes


def main() -> None:
    for gpu, batch in ((RTX_TITAN, 640), (GTX_1080TI, 320)):
        graph = build_model("vgg16", batch)
        planner = TsplitPlanner(gpu)
        result = planner.plan(graph, schedule=dfs_schedule(graph))
        mix = strategy_breakdown(graph, result.plan)
        total = mix["swap"] + mix["recompute"]
        print(f"{gpu.name} ({gpu.memory_bytes // 2**30} GB, "
              f"{gpu.peak_flops / 1e12:.1f} TFLOPS), vgg16 b={batch}:")
        print(f"  {result.describe()}")
        if total:
            print(f"  swap:      {format_bytes(mix['swap']):>10s} "
                  f"({mix['swap'] / total:5.1%})")
            print(f"  recompute: {format_bytes(mix['recompute']):>10s} "
                  f"({mix['recompute'] / total:5.1%})")
        else:
            print("  no evictions needed")

        executed = run_policy(graph, "tsplit", gpu)
        if executed.feasible:
            print(f"  executed:  {executed.trace.describe()}")
        print()


if __name__ == "__main__":
    main()
