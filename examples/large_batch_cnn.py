"""Scenario: how large a batch can each memory policy train?

The paper's Table IV question, as a script: for a CNN on a 24 GB TITAN
RTX, search the maximum trainable batch under every policy and report
the throughput at a shared over-subscribed batch.

Run:  python examples/large_batch_cnn.py [model]
      (model defaults to resnet50; any registry name works)
"""

from __future__ import annotations

import sys

from repro import RTX_TITAN
from repro.analysis.runner import evaluate
from repro.analysis.scaling import max_sample_scale
from repro.errors import ReproError

POLICIES = [
    "base", "vdnn_conv", "vdnn_all", "checkpoints",
    "superneurons", "tsplit_nosplit", "tsplit",
]


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "resnet50"
    print(f"model: {model}  GPU: {RTX_TITAN.name} "
          f"({RTX_TITAN.memory_bytes // 2**30} GB)\n")

    print(f"{'policy':18s} {'max batch':>10s}")
    scales: dict[str, int] = {}
    for policy in POLICIES:
        try:
            scales[policy] = max_sample_scale(
                model, policy, RTX_TITAN, start=32, cap=4096,
            )
        except ReproError as exc:  # pragma: no cover - defensive
            print(f"{policy:18s} error: {exc}")
            continue
        shown = scales[policy] if scales[policy] else "x"
        print(f"{policy:18s} {shown!s:>10s}")

    base_max = scales.get("base", 0)
    probe = max(base_max + base_max // 2, 2)  # 1.5x over-subscription
    print(f"\nthroughput at batch {probe} "
          f"(~1.5x the Base limit of {base_max}):")
    print(f"{'policy':18s} {'samples/s':>10s} {'pcie':>7s} {'peak GB':>8s}")
    for policy in POLICIES:
        result = evaluate(model, policy, RTX_TITAN, probe)
        if not result.feasible:
            print(f"{policy:18s} {'OOM':>10s}")
            continue
        trace = result.trace
        print(f"{policy:18s} {trace.throughput:10.1f} "
              f"{trace.pcie_utilization:7.1%} "
              f"{trace.peak_memory / 2**30:8.2f}")


if __name__ == "__main__":
    main()
