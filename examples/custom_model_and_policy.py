"""Scenario: bring your own model and your own memory policy.

The library is not limited to the paper's six models or policies:
``ModelBuilder`` assembles arbitrary dataflow graphs, and any
``MemoryPolicy`` subclass can emit plans for the shared runtime. This
example defines a small U-Net-ish segmentation network and a naive
"swap the K largest activations" policy, then compares it against
TSPLIT.

Run:  python examples/custom_model_and_policy.py
"""

from __future__ import annotations

from repro import RTX_TITAN, run_policy
from repro.core.plan import MemOption, Plan, TensorConfig
from repro.graph import build_training_graph
from repro.models import ModelBuilder
from repro.policies.base import MemoryPolicy
from repro.units import format_bytes


def build_segnet(batch: int = 96):
    """Encoder-decoder CNN with a skip connection (U-Net flavour)."""
    builder = ModelBuilder(f"segnet[b={batch}]", batch)
    x = builder.input_image(3, 128, 128)
    enc1 = builder.conv_bn_relu(x, 32, 3, name="enc1")
    down = builder.maxpool(enc1, 2, name="down1")
    enc2 = builder.conv_bn_relu(down, 64, 3, name="enc2")
    bottleneck = builder.conv_bn_relu(enc2, 64, 3, name="bottleneck")
    dec2 = builder.conv_bn_relu(bottleneck, 32, 3, name="dec2")
    skip = builder.maxpool(enc1, 2, name="skip_pool")  # match resolution
    merged = builder.concat([dec2, skip], name="skip_cat")
    head = builder.conv2d(merged, 8, 1, padding=0, name="head")
    pooled = builder.global_avgpool(head)
    logits = builder.linear(pooled, 4, name="classifier")
    loss = builder.cross_entropy_loss(logits)
    return build_training_graph(builder.graph, loss)


class SwapTopK(MemoryPolicy):
    """Naive baseline: swap the K largest feature maps, nothing else."""

    name = "swap_top_k"

    def __init__(self, k: int = 8) -> None:
        self.k = k

    def _build(self, graph, gpu, *, schedule, profile):
        plan = Plan(policy=self.name)
        biggest = sorted(
            (t for t in graph.activations() if t.producer is not None),
            key=lambda t: t.size_bytes,
            reverse=True,
        )[: self.k]
        for tensor in biggest:
            plan.set(tensor.tensor_id, TensorConfig(opt=MemOption.SWAP))
        return plan


def main() -> None:
    graph = build_segnet()
    print(graph.summary())
    print()
    gpu = RTX_TITAN.with_memory(RTX_TITAN.memory_bytes // 4)  # 6 GB budget
    print(f"GPU budget: {format_bytes(gpu.memory_bytes)}\n")
    for policy in ("base", SwapTopK(k=8), "tsplit"):
        result = run_policy(graph, policy, gpu)
        name = policy if isinstance(policy, str) else policy.name
        if result.feasible:
            print(f"{name:12s} {result.trace.describe()}")
        else:
            print(f"{name:12s} infeasible: "
                  f"{result.failure.splitlines()[0][:90]}")


if __name__ == "__main__":
    main()
