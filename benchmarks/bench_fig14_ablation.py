"""Figure 14: (a) the tensor-split ablation; (b) hardware-dependent
strategy selection.

(a) Max trainable sample size while sustaining x% of the Base
throughput: TSPLIT > TSPLIT w/o Split > SuperNeurons.
(b) The planner's swap-vs-recompute byte mix on the RTX vs the 1080Ti:
the slower card makes recomputation relatively costlier, shifting bytes
toward swap.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, render_table
from repro.analysis.breakdown import (
    max_scale_under_throughput,
    reference_throughput,
    strategy_breakdown,
)
from repro.core.planner import TsplitPlanner
from repro.graph.scheduler import dfs_schedule
from repro.models.registry import build_model
from repro.units import MB

ABLATION_MODELS = ["vgg16", "resnet101"]
FRACTIONS = [0.6, 0.5]
POLICIES_14A = ["superneurons", "tsplit_nosplit", "tsplit"]


@pytest.fixture(scope="module")
def fig14a(rtx):
    table: dict[tuple[str, float, str], int] = {}
    for model in ABLATION_MODELS:
        _, reference = reference_throughput(model, rtx)
        for fraction in FRACTIONS:
            for policy in POLICIES_14A:
                table[(model, fraction, policy)] = max_scale_under_throughput(
                    model, policy, rtx,
                    fraction=fraction, reference=reference, cap=4096,
                )
    return table


def test_fig14a_split_ablation(benchmark, rtx, fig14a):
    benchmark.pedantic(lambda: fig14a, rounds=1, iterations=1)
    rows = []
    for model in ABLATION_MODELS:
        for fraction in FRACTIONS:
            rows.append(
                [model, f"{fraction:.0%}"]
                + [fig14a[(model, fraction, p)] for p in POLICIES_14A]
            )
    emit(
        "Figure 14a - max sample size at x% of Base throughput",
        render_table(["model", "x"] + POLICIES_14A, rows),
    )
    for model in ABLATION_MODELS:
        for fraction in FRACTIONS:
            tsplit = fig14a[(model, fraction, "tsplit")]
            nosplit = fig14a[(model, fraction, "tsplit_nosplit")]
            superneurons = fig14a[(model, fraction, "superneurons")]
            assert tsplit >= nosplit, (model, fraction)
            assert tsplit >= superneurons, (model, fraction)


def test_fig14b_strategy_mix_by_hardware(benchmark, rtx, gtx_1080ti):
    """The profiling-driven cost model prefers different strategies on
    different hardware (the mechanism behind the paper's Figure 14b).

    On our substrate both cards share the PCIe link but the 1080Ti's
    kernels run ~40% slower, so recomputation chains cost relatively
    more there: per candidate tensor, the cost model should prefer swap
    on the 1080Ti at least as often as on the RTX. We report both the
    per-tensor preference fractions and the bytes the full planner
    actually assigned on each card at an over-subscribed batch.
    """
    from repro.core.cost_model import CostModel
    from repro.core.plan import Plan
    from repro.core.profiler import Profiler
    from repro.core.simulate import tensor_timeline
    from repro.errors import PlanningError
    from repro.graph.tensor import TensorKind

    def preference_fraction(gpu, batch):
        graph = build_model("vgg16", batch)
        schedule = dfs_schedule(graph)
        profile = Profiler(gpu).profile(graph)
        cost_model = CostModel(graph, schedule, profile)
        plan = Plan()
        cost_model.refresh(plan)
        prefer_swap = total = 0
        for tensor in graph.tensors.values():
            if tensor.kind is not TensorKind.ACTIVATION:
                continue
            timeline = tensor_timeline(
                graph, cost_model.liveness, tensor,
            )
            if timeline is None or not timeline.bwd_uses:
                continue
            probe = min(
                timeline.fwd_end + 2, timeline.bwd_uses[0] - 1,
            )
            try:
                swap_dt = cost_model.swap_delta_t(tensor, probe)
                rec_dt = cost_model.recompute_delta_t(tensor, plan)
            except PlanningError:
                continue
            total += 1
            if swap_dt <= rec_dt:
                prefer_swap += 1
        return prefer_swap / total if total else 0.0

    def measure():
        prefs = {
            rtx.name: preference_fraction(rtx, 640),
            gtx_1080ti.name: preference_fraction(gtx_1080ti, 320),
        }
        mixes = {}
        for gpu, batch in ((rtx, 640), (gtx_1080ti, 320)):
            graph = build_model("vgg16", batch)
            planner = TsplitPlanner(gpu)
            result = planner.plan(graph, schedule=dfs_schedule(graph))
            mixes[gpu.name] = strategy_breakdown(graph, result.plan)
        return prefs, mixes

    prefs, mixes = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [
            name,
            f"{prefs[name]:.1%}",
            f"{mix['swap'] / MB:.0f}",
            f"{mix['recompute'] / MB:.0f}",
        ]
        for name, mix in mixes.items()
    ]
    emit(
        "Figure 14b - hardware-dependent strategy choice (VGG-16)",
        render_table(
            ["gpu", "swap-preferred", "swap MB", "recompute MB"], rows,
        ),
    )
    # The slower card prefers swap at least as often (recompute is
    # relatively costlier there).
    assert prefs[gtx_1080ti.name] >= prefs[rtx.name] - 1e-9
    for mix in mixes.values():
        assert mix["swap"] + mix["recompute"] > 0
