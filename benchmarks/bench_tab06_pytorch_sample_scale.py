"""Table VI: max sample scale vs the PyTorch-ecosystem baselines
(ZeRO-Offload, FairScale-Offload) — Section VI-D.

Expected shape: ZeRO-Offload barely helps CNNs (their footprint is
feature maps, not parameters); FairScale scales further by paying heavy
PCIe traffic; TSPLIT largest everywhere.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, render_table
from repro.analysis.scaling import max_sample_scale

MODELS = [
    ("vgg16", 4096), ("vgg19", 4096), ("resnet50", 4096),
    ("resnet101", 4096), ("inception_v4", 2048), ("transformer", 2048),
]

POLICIES = ["base", "zero_offload", "fairscale_offload", "tsplit"]


@pytest.fixture(scope="module")
def table(rtx):
    return {
        model: {
            policy: max_sample_scale(model, policy, rtx, start=32, cap=cap)
            for policy in POLICIES
        }
        for model, cap in MODELS
    }


def test_tab06_pytorch_sample_scale(benchmark, rtx, table):
    benchmark.pedantic(lambda: table, rounds=1, iterations=1)
    rows = [
        [model] + [table[model][p] or "x" for p in POLICIES]
        for model, _ in MODELS
    ]
    emit(
        "Table VI - max sample scale vs PyTorch offload baselines",
        render_table(["model"] + POLICIES, rows),
    )
    for model, _ in MODELS:
        row = table[model]
        assert row["tsplit"] >= row["zero_offload"], model
        assert row["tsplit"] >= row["fairscale_offload"], model
    # ZeRO-Offload ~ Base on CNNs (activations dominate, Section VI-D).
    for model in ("vgg16", "resnet50", "inception_v4"):
        assert table[model]["zero_offload"] <= int(
            table[model]["fairscale_offload"] * 1.2,
        ) or table[model]["fairscale_offload"] == 0
        assert table[model]["zero_offload"] < table[model]["tsplit"]
