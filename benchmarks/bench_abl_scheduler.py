"""Ablation: execution-schedule choice (Algorithm 1 vs memory-aware).

The paper schedules with plain DFS (Algorithm 1). A greedy free-early
topological order lowers the *unoptimised* peak a few percent on the
evaluation models — headroom the planner gets for free before a single
eviction. This bench compares the two schedulers' peaks and verifies
both feed the planner interchangeably.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, render_table
from repro.core.planner import TsplitPlanner
from repro.graph.liveness import memory_curve
from repro.graph.scheduler import dfs_schedule, memory_aware_schedule
from repro.models.registry import build_model

MODELS = [
    ("vgg16", 64), ("resnet50", 64), ("resnet101", 48),
    ("inception_v4", 32), ("transformer", 32), ("densenet121", 32),
]


@pytest.fixture(scope="module")
def peaks():
    results = {}
    for model, batch in MODELS:
        graph = build_model(model, batch)
        dfs_peak = int(memory_curve(graph, dfs_schedule(graph)).max())
        aware_peak = int(
            memory_curve(graph, memory_aware_schedule(graph)).max()
        )
        results[model] = (dfs_peak, aware_peak)
    return results


def test_abl_scheduler_peaks(benchmark, rtx, peaks):
    benchmark.pedantic(lambda: peaks, rounds=1, iterations=1)
    rows = [
        [
            model,
            f"{dfs_peak / 2**30:7.2f}",
            f"{aware_peak / 2**30:7.2f}",
            f"{aware_peak / dfs_peak:6.3f}",
        ]
        for model, (dfs_peak, aware_peak) in peaks.items()
    ]
    emit(
        "Ablation - schedule choice: unoptimised peak (GB)",
        render_table(["model", "DFS (Alg.1)", "mem-aware", "ratio"], rows),
    )
    # The free-early order never hurts materially and helps somewhere.
    for model, (dfs_peak, aware_peak) in peaks.items():
        assert aware_peak <= dfs_peak * 1.02, model
    assert any(
        aware_peak < dfs_peak * 0.99
        for dfs_peak, aware_peak in peaks.values()
    )


def test_abl_scheduler_feeds_planner(benchmark, rtx):
    """The planner accepts either schedule and still meets its budget."""
    def plan_both():
        graph = build_model("vgg16", 512)
        out = {}
        for name, scheduler in (
            ("dfs", dfs_schedule), ("memory_aware", memory_aware_schedule),
        ):
            result = TsplitPlanner(rtx).plan(
                graph, schedule=scheduler(graph),
            )
            out[name] = result.peak_memory
        return out

    planned = benchmark.pedantic(plan_both, rounds=1, iterations=1)
    emit("Ablation - schedule choice feeding the planner", [
        f"  {name}: planned peak {peak / 2**30:.2f} GB"
        for name, peak in planned.items()
    ])
    for peak in planned.values():
        assert peak <= rtx.memory_bytes
