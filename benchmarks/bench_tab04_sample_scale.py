"""Table IV: maximum sample scale (batch size) per model and policy on a
TITAN RTX (24 GB).

Expected shape (paper): TSPLIT largest everywhere; SuperNeurons the best
prior design on most models; vDNN-conv and SuperNeurons inapplicable
("x", reported as 0) on the Transformer; Base smallest.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, render_table
from repro.analysis.scaling import max_sample_scale

MODELS = [
    # (name, search start, cap) — caps keep the bench bounded.
    ("vgg16", 64, 4096),
    ("vgg19", 64, 4096),
    ("resnet50", 64, 4096),
    ("resnet101", 64, 4096),
    ("inception_v4", 32, 2048),
    ("transformer", 32, 2048),
]

POLICIES = [
    "base", "vdnn_conv", "vdnn_all", "checkpoints",
    "superneurons", "tsplit",
]


@pytest.fixture(scope="module")
def table(rtx):
    result: dict[str, dict[str, int]] = {}
    for model, start, cap in MODELS:
        result[model] = {
            policy: max_sample_scale(
                model, policy, rtx, start=start, cap=cap,
            )
            for policy in POLICIES
        }
    return result


def test_tab04_max_sample_scale(benchmark, rtx, table):
    benchmark.pedantic(lambda: table, rounds=1, iterations=1)
    rows = [
        [model] + [table[model][p] or "x" for p in POLICIES]
        for model, _, _ in MODELS
    ]
    emit(
        "Table IV - max sample scale on TITAN RTX (24 GB)",
        render_table(["model"] + POLICIES, rows),
    )

    for model, _, _ in MODELS:
        row = table[model]
        # TSPLIT reaches the largest batch on every model. On the most
        # branch-heavy graph (Inception-V4) we allow a 10% slack: our
        # planner proves feasibility against a conservative static model
        # while the rule-based baselines are validated empirically by
        # the engine alone, which lets them ride slightly closer to the
        # physical wall (documented in EXPERIMENTS.md).
        best_prior = max(
            row[p] for p in POLICIES if p not in ("tsplit",)
        )
        assert row["tsplit"] >= best_prior * 0.9, model
        assert row["tsplit"] > row["base"], model
    # Inapplicability on the Transformer (the paper's "x" entries).
    assert table["transformer"]["vdnn_conv"] == 0
    assert table["transformer"]["superneurons"] == 0
    # vDNN-all never scales below vDNN-conv.
    for model, _, _ in MODELS:
        assert table[model]["vdnn_all"] >= table[model]["vdnn_conv"]
