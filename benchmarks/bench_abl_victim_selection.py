"""Ablation: the planner's greedy ΔT/ΔM victim selection.

Algorithm 2 eliminates each bottleneck by evicting the tensor with the
best time-per-byte ratio. We compare against two naive orderings —
largest-ΔM-first and earliest-generated-first (FIFO) — on the planner's
own estimated iteration time and on the executed result.

The paper's "swap out an earlier generated tensor first" observation is
implicit in the ratio: early tensors have longer eviction windows, hence
cheaper swaps, so the greedy usually picks them anyway.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, render_table
from repro.analysis.runner import run_policy
from repro.core.planner import PlannerOptions, TsplitPlanner
from repro.errors import PlanningError
from repro.graph.scheduler import dfs_schedule
from repro.models.registry import build_model
from repro.policies.tsplit_policy import TsplitPolicy

ORDERINGS = ["ratio", "largest", "fifo"]


class _OrderedTsplit(TsplitPolicy):
    def __init__(self, ordering: str) -> None:
        super().__init__(PlannerOptions(ordering=ordering))
        self.name = f"tsplit[{ordering}]"


@pytest.fixture(scope="module")
def results(rtx):
    graph = build_model("vgg16", 640)
    out = {}
    for ordering in ORDERINGS:
        try:
            result = run_policy(graph, _OrderedTsplit(ordering), rtx)
        except PlanningError:  # pragma: no cover - defensive
            result = None
        out[ordering] = result
    return out


def test_abl_victim_selection(benchmark, rtx, results):
    benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    rows = []
    for ordering in ORDERINGS:
        result = results[ordering]
        if result is None or not result.feasible:
            rows.append([ordering, "infeasible", "-", "-"])
            continue
        trace = result.trace
        rows.append([
            ordering,
            f"{trace.iteration_time * 1e3:9.1f}",
            f"{trace.throughput:7.1f}",
            f"{trace.pcie_utilization:6.1%}",
        ])
    emit(
        "Ablation - victim selection ordering (VGG-16 b=640, RTX)",
        render_table(["ordering", "iter_ms", "samples/s", "pcie"], rows),
    )
    ratio = results["ratio"]
    assert ratio is not None and ratio.feasible
    # The paper's greedy stays within a few percent of any naive
    # ordering that also found a feasible plan. (FIFO — evict the
    # earliest-generated tensor first — is precisely the paper's
    # Section IV-C observation, so it is *expected* to be competitive;
    # the ratio ordering generalises it by weighing actual costs.)
    for other in ("largest", "fifo"):
        result = results[other]
        if result is not None and result.feasible:
            assert ratio.iteration_time <= result.iteration_time * 1.10
