"""Extension bench: mixed-precision training (fp16 activations).

The paper's introduction frames its problem against ever-growing models
trained with mixed precision. Halving activation bytes (master weights
stay fp32) roughly doubles every policy's sample-scale frontier — and
TSPLIT's *relative* advantage survives, since splitting is orthogonal to
element width.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, render_table
from repro.analysis.scaling import max_sample_scale

POLICIES = ["base", "superneurons", "tsplit"]
MODEL = "resnet50"


@pytest.fixture(scope="module")
def frontiers(rtx):
    results = {}
    for precision in ("fp32", "fp16"):
        for policy in POLICIES:
            results[(policy, precision)] = max_sample_scale(
                MODEL, policy, rtx, start=64, cap=4096,
                precision=precision,
            )
    return results


def test_ext_mixed_precision_frontier(benchmark, rtx, frontiers):
    benchmark.pedantic(lambda: frontiers, rounds=1, iterations=1)
    rows = []
    for policy in POLICIES:
        fp32 = frontiers[(policy, "fp32")]
        fp16 = frontiers[(policy, "fp16")]
        gain = fp16 / fp32 if fp32 else float("nan")
        rows.append([policy, fp32 or "x", fp16 or "x", f"{gain:4.2f}x"])
    emit(
        f"Extension - mixed precision max batch ({MODEL}, TITAN RTX)",
        render_table(["policy", "fp32", "fp16", "gain"], rows),
    )
    for policy in POLICIES:
        fp32 = frontiers[(policy, "fp32")]
        fp16 = frontiers[(policy, "fp16")]
        # Activations halve; parameters (fp32 masters) don't, so the
        # gain is below 2x but well above 1.5x on this model.
        assert fp16 > fp32 * 1.4, policy
    # TSPLIT leads in both precisions.
    for precision in ("fp32", "fp16"):
        assert frontiers[("tsplit", precision)] >= max(
            frontiers[(p, precision)] for p in POLICIES
        ) * 0.9
