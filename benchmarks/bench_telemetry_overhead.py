"""Disabled-telemetry overhead benchmark for the plan+run pipeline.

An infrastructure extension rather than a paper table: it guards the
observability layer's zero-overhead-when-disabled contract.

The telemetry layer's contract is that instrumentation left in hot
paths costs (almost) nothing while disabled: every hook degrades to a
null-object method call or a single ``is not None`` check. This
benchmark verifies the contract two ways:

1. **Microbenchmark bound** — times each disabled hook primitive in a
   tight loop (null counter inc, disabled span enter/exit, disabled
   timer context, ``get_telemetry()``), multiplies by a generous
   estimate of how many hooks one compile+run executes, and asserts the
   estimated overhead is **under 2 %** of the measured plan+run wall
   time. This is the stable, load-insensitive assertion CI enforces.
2. **End-to-end comparison** — wall-times ``compile_run`` with
   telemetry disabled vs fully enabled, reported informationally (the
   delta of two noisy multi-second runs is not assertable in CI).

It also writes the artifacts CI uploads: ``BENCH_telemetry.json``, a
merged Chrome trace (pipeline spans + engine events) and the metrics
JSONL from the enabled run.

Usage::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py          # full
    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import telemetry  # noqa: E402
from repro.hardware.gpu import GPU_PRESETS  # noqa: E402
from repro.models.registry import build_model  # noqa: E402
from repro.pipeline.cache import CompileCache  # noqa: E402
from repro.pipeline.compile import compile_run  # noqa: E402
from repro.runtime.observers import ChromeTraceObserver  # noqa: E402
from repro.telemetry.metrics import MetricsRegistry  # noqa: E402
from repro.telemetry.spans import SpanTracer  # noqa: E402

#: CI-enforced ceiling on the estimated disabled-hook overhead.
MAX_DISABLED_OVERHEAD = 0.02

FULL_CONFIG = ("vgg16", 512, "gtx_1080ti")
SMOKE_CONFIG = ("vgg16", 256, "gtx_1080ti")


def _time_loop(fn, n: int = 100_000) -> float:
    """Per-call seconds of ``fn`` over ``n`` iterations."""
    start = time.perf_counter()
    for _ in range(n):
        fn()
    return (time.perf_counter() - start) / n


def microbench_disabled_hooks() -> dict:
    """Per-call cost of every disabled telemetry primitive."""
    registry = MetricsRegistry(enabled=False)
    tracer = SpanTracer(enabled=False)

    def null_counter_inc():
        registry.counter("x").inc()

    def null_timer_context():
        with registry.timer("x").time():
            pass

    def disabled_span():
        with tracer.span("x"):
            pass

    return {
        "get_telemetry_s": _time_loop(telemetry.get_telemetry),
        "null_counter_inc_s": _time_loop(null_counter_inc),
        "null_timer_context_s": _time_loop(null_timer_context),
        "disabled_span_s": _time_loop(disabled_span),
    }


def estimate_overhead(hooks: dict, decisions: int) -> float:
    """Upper-bound seconds of disabled-hook work in one compile+run.

    Hook census for one pipeline pass: 4 stage spans, ~6 cache lookups /
    inserts (each one ``get_telemetry()`` + a timer or counter), a
    handful of stage counters, plus one ``get_telemetry()`` read and a
    ``recorder is None`` check per planner decision — the per-decision
    branch costs strictly less than a null counter inc, so it is
    over-counted as one.
    """
    per_lookup = hooks["get_telemetry_s"] + hooks["null_counter_inc_s"]
    return (
        4 * hooks["disabled_span_s"]
        + 6 * (hooks["get_telemetry_s"] + hooks["null_timer_context_s"])
        + 10 * per_lookup
        + decisions * per_lookup
    )


def run_pipeline(model: str, batch: int, gpu_name: str, *, enabled: bool,
                 trace_out: str = "", metrics_out: str = "") -> dict:
    """One timed compile_run; optionally under a full telemetry session."""
    graph = build_model(model, batch)
    gpu = GPU_PRESETS[gpu_name]
    observer = ChromeTraceObserver()
    if enabled:
        with telemetry.session() as tel:
            start = time.perf_counter()
            run = compile_run(graph, "tsplit", gpu, cache=CompileCache(),
                              observers=(observer,))
            elapsed = time.perf_counter() - start
            if trace_out:
                merged = telemetry.merge_traces(
                    tel.tracer, observer,
                    names=("compiler pipeline", "engine execution"),
                )
                telemetry.write_trace(trace_out, merged)
            if metrics_out:
                tel.metrics.write_jsonl(metrics_out)
    else:
        start = time.perf_counter()
        run = compile_run(graph, "tsplit", gpu, cache=CompileCache(),
                          observers=(observer,))
        elapsed = time.perf_counter() - start
    if not run.result.feasible:
        raise AssertionError(f"{model} b={batch} {gpu_name}: infeasible")
    explanation = run.plan.plan.explanation
    return {
        "elapsed_s": elapsed,
        "decisions": len(explanation.decisions) if explanation else
        len(run.plan.plan.configs),
        "explained": explanation is not None,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="smaller batch for CI")
    parser.add_argument("--out", default="BENCH_telemetry.json")
    parser.add_argument("--trace-out", default="telemetry_trace.json")
    parser.add_argument("--metrics-out", default="telemetry_metrics.jsonl")
    args = parser.parse_args(argv)

    model, batch, gpu_name = SMOKE_CONFIG if args.smoke else FULL_CONFIG

    hooks = microbench_disabled_hooks()
    for name, per_call in sorted(hooks.items()):
        print(f"{name:24s} {per_call * 1e9:8.1f} ns/call", flush=True)

    disabled = run_pipeline(model, batch, gpu_name, enabled=False)
    enabled = run_pipeline(
        model, batch, gpu_name, enabled=True,
        trace_out=args.trace_out, metrics_out=args.metrics_out,
    )

    estimated = estimate_overhead(hooks, disabled["decisions"])
    ratio = estimated / disabled["elapsed_s"]
    e2e_delta = (
        (enabled["elapsed_s"] - disabled["elapsed_s"])
        / disabled["elapsed_s"]
    )
    print(
        f"\n{model} b={batch} {gpu_name}: plan+run "
        f"{disabled['elapsed_s']:.2f}s disabled, "
        f"{enabled['elapsed_s']:.2f}s enabled "
        f"(e2e delta {e2e_delta:+.1%}, informational)"
    )
    print(
        f"estimated disabled-hook overhead: {estimated * 1e3:.3f} ms "
        f"= {ratio:.4%} of plan+run (limit {MAX_DISABLED_OVERHEAD:.0%})"
    )

    payload = {
        "benchmark": "telemetry_overhead",
        "mode": "smoke" if args.smoke else "full",
        "config": {"model": model, "batch": batch, "gpu": gpu_name},
        "hooks_ns": {k: v * 1e9 for k, v in hooks.items()},
        "disabled": disabled,
        "enabled": enabled,
        "estimated_overhead_s": estimated,
        "estimated_overhead_ratio": ratio,
        "e2e_delta_ratio": e2e_delta,
        "limit": MAX_DISABLED_OVERHEAD,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}, {args.trace_out}, {args.metrics_out}")

    assert ratio < MAX_DISABLED_OVERHEAD, (
        f"disabled telemetry overhead {ratio:.4%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%} of plan+run time"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
