"""Table V: maximum parameter scale (channel/hidden multiplier k) per
model and policy, at batch 16 on a TITAN RTX.

Channels of convolution kernels (CNNs) / hidden size (Transformer) are
multiplied by an integer k; the table reports the largest trainable k.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, render_table
from repro.analysis.scaling import max_param_scale

MODELS = [
    ("vgg16", 64), ("vgg19", 64), ("resnet50", 64),
    ("resnet101", 64), ("inception_v4", 32), ("transformer", 48),
]

POLICIES = [
    "base", "vdnn_conv", "vdnn_all", "checkpoints",
    "superneurons", "tsplit",
]


@pytest.fixture(scope="module")
def table(rtx):
    result: dict[str, dict[str, int]] = {}
    for model, cap in MODELS:
        result[model] = {
            policy: max_param_scale(model, policy, rtx, cap=cap)
            for policy in POLICIES
        }
    return result


def test_tab05_max_parameter_scale(benchmark, rtx, table):
    benchmark.pedantic(lambda: table, rounds=1, iterations=1)
    rows = [
        [model] + [table[model][p] or "x" for p in POLICIES]
        for model, _ in MODELS
    ]
    emit(
        "Table V - max parameter scale at batch 16 on TITAN RTX",
        render_table(["model"] + POLICIES, rows),
    )

    for model, _ in MODELS:
        row = table[model]
        best_prior = max(row[p] for p in POLICIES if p != "tsplit")
        assert row["tsplit"] >= best_prior, model
        assert row["tsplit"] >= row["base"] > 0, model
    assert table["transformer"]["vdnn_conv"] == 0
    assert table["transformer"]["superneurons"] == 0
