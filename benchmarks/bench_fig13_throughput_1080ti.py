"""Figure 13: throughput on the GTX 1080Ti (11 GB, ~70% of the RTX's
FP32 throughput).

The slower card lengthens kernel times, which *improves* the overlap
between computation and PCIe transfers: vDNN's relative performance loss
shrinks compared to the RTX, while TSPLIT stays best overall.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, render_series
from repro.analysis.throughput import throughput_sweep

POLICIES = ["base", "vdnn_all", "superneurons", "tsplit"]

SWEEPS = [
    ("vgg16", [32, 64, 128, 192]),
    ("resnet50", [32, 64, 128, 192]),
    ("inception_v4", [16, 32, 48, 64]),
    ("transformer", [8, 16, 32, 48]),
]


@pytest.fixture(scope="module")
def sweeps(gtx_1080ti):
    return {
        model: throughput_sweep(model, POLICIES, batches, gtx_1080ti)
        for model, batches in SWEEPS
    }


def test_fig13_throughput_on_1080ti(benchmark, rtx, gtx_1080ti, sweeps):
    benchmark.pedantic(lambda: sweeps, rounds=1, iterations=1)
    for model, batches in SWEEPS:
        points = sweeps[model]
        series = {
            policy: [
                next((p.throughput for p in points
                      if p.policy == policy and p.batch == b), 0.0)
                for b in batches
            ]
            for policy in POLICIES
        }
        emit(f"Figure 13 - throughput on GTX 1080Ti: {model}",
             render_series("batch", batches, series))

    # Shape: TSPLIT best-or-equal at every feasible point on the slower
    # card too.
    for model, batches in SWEEPS:
        points = {(p.policy, p.batch): p for p in sweeps[model]}
        for batch in batches:
            tsplit = points[("tsplit", batch)]
            if not tsplit.feasible:
                continue
            for rival in ("vdnn_all", "superneurons"):
                rival_point = points.get((rival, batch))
                if rival_point and rival_point.feasible:
                    assert tsplit.throughput >= rival_point.throughput * 0.95


def test_fig13_overlap_improves_on_slower_gpu(benchmark, rtx, gtx_1080ti):
    """vDNN's relative loss vs Base is smaller on the 1080Ti than on the
    RTX: slower compute hides transfers better (Section VI-C)."""
    def measure():
        from repro.analysis.runner import evaluate

        losses = {}
        for gpu in (rtx, gtx_1080ti):
            base = evaluate("vgg16", "base", gpu, 64)
            vdnn = evaluate("vgg16", "vdnn_all", gpu, 64)
            losses[gpu.name] = (
                vdnn.iteration_time / base.iteration_time
            )
        return losses

    losses = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("Figure 13 - vDNN-all slowdown factor vs Base", [
        f"  {name}: {value:.3f}x" for name, value in losses.items()
    ])
    assert losses[gtx_1080ti.name] <= losses[rtx.name] + 1e-9
