"""Extension bench: throughput under matched memory over-subscription.

The paper's abstract frames its throughput gains "under the same memory
over-subscription". This bench makes that framing explicit: fix a
workload, shrink the device in steps, and compare each policy's
throughput and survival depth at identical requirement/capacity ratios.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, render_table
from repro.analysis.oversubscription import (
    oversubscription_sweep,
    survival_ratio,
)
from repro.models.registry import build_model

POLICIES = ["base", "vdnn_all", "checkpoints", "superneurons", "tsplit"]
RATIOS = (1.0, 1.25, 1.5, 2.0, 2.5)


@pytest.fixture(scope="module")
def sweep(rtx):
    graph = build_model("vgg16", 256)
    return oversubscription_sweep(graph, POLICIES, rtx, ratios=RATIOS)


def test_ext_oversubscription(benchmark, rtx, sweep):
    benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    rows = []
    for policy in POLICIES:
        cells = [policy]
        for ratio in RATIOS:
            point = next(
                p for p in sweep if p.policy == policy and p.ratio == ratio
            )
            cells.append(
                f"{point.throughput:.0f}/s" if point.feasible else "OOM"
            )
        rows.append(cells)
    lines = render_table(
        ["policy"] + [f"{r:.2f}x" for r in RATIOS], rows,
    )
    lines.append("(VGG-16 b=256; columns are requirement/capacity ratios)")
    emit("Extension - throughput under memory over-subscription", lines)

    # TSPLIT survives at least as deep as every baseline, and at every
    # commonly-feasible ratio it is at least as fast.
    tsplit_depth = survival_ratio(sweep, "tsplit")
    for policy in POLICIES:
        assert tsplit_depth >= survival_ratio(sweep, policy), policy
    for ratio in RATIOS:
        tsplit = next(
            p for p in sweep if p.policy == "tsplit" and p.ratio == ratio
        )
        if not tsplit.feasible:
            continue
        for policy in ("vdnn_all", "checkpoints", "superneurons"):
            rival = next(
                p for p in sweep if p.policy == policy and p.ratio == ratio
            )
            if rival.feasible:
                assert tsplit.throughput >= rival.throughput * 0.95
