"""Figure 5: operator execution time vs partition number.

Different operators exhibit different split-degradation patterns —
compute-bound convolutions tolerate high part counts, memory-bound
kernels pay mostly launch overhead, and small kernels degrade fastest.
"""

from __future__ import annotations

from benchmarks.conftest import emit, render_series
from repro.graph.ops import Operator, OpType, conv2d_flops
from repro.hardware.kernels import KernelModel
from repro.units import MB

P_NUMS = [1, 2, 4, 8, 16, 32]


def operators() -> list[Operator]:
    big_conv = Operator(
        op_id=0, name="conv 64x224x224", op_type=OpType.CONV2D,
        flops=conv2d_flops(32, 64, 64, 224, 224, 3, 3),
        bytes_accessed=2 * 32 * 64 * 224 * 224 * 4,
    )
    small_conv = Operator(
        op_id=1, name="conv 512x14x14", op_type=OpType.CONV2D,
        flops=conv2d_flops(32, 512, 512, 14, 14, 3, 3),
        bytes_accessed=2 * 32 * 512 * 14 * 14 * 4,
    )
    matmul = Operator(
        op_id=2, name="matmul 4kx4k", op_type=OpType.MATMUL,
        flops=2.0 * 4096 * 4096 * 4096,
        bytes_accessed=3 * 4096 * 4096 * 4,
    )
    bn = Operator(
        op_id=3, name="batchnorm 100MB", op_type=OpType.BATCHNORM,
        flops=5 * 25 * 2**20, bytes_accessed=200 * MB,
    )
    pool = Operator(
        op_id=4, name="pool 100MB", op_type=OpType.POOL_MAX,
        flops=4 * 25 * 2**20, bytes_accessed=125 * MB,
    )
    return [big_conv, small_conv, matmul, bn, pool]


def sweep(kernel_model: KernelModel):
    results: dict[str, list[float]] = {}
    for op in operators():
        base = kernel_model.op_time(op)
        results[op.name] = [
            kernel_model.split_kernel_time(op, p) / base for p in P_NUMS
        ]
    return results


def test_fig05_partition_time_patterns(benchmark, rtx):
    kernel_model = KernelModel(rtx)
    results = benchmark.pedantic(
        sweep, args=(kernel_model,), rounds=1, iterations=1,
    )
    lines = render_series(
        "p_num", P_NUMS, results, fmt="{:8.3f}",
    )
    lines.append("(values are time relative to the unsplit kernel)")
    emit("Figure 5 - split execution time by partition count", lines)

    # Shape assertions.
    for series in results.values():
        assert series[0] == 1.0
        # Monotone non-decreasing in partition count.
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))
    # Big compute-bound ops tolerate splitting better than small ones.
    assert results["conv 64x224x224"][-1] < results["conv 512x14x14"][-1]
    # Patterns genuinely differ between operator families.
    finals = sorted(series[-1] for series in results.values())
    assert finals[-1] / finals[0] > 1.01
