"""Ablation: recomputation strategy (Section V-D).

Memory-centric recomputation re-runs chains per backward layer (O(N^2)
compute, O(1) memory); speed-centric runs each chain once and keeps its
intermediates (O(N) compute, O(N) memory); the LRU hybrid interpolates.
We measure all three on a recompute-heavy plan.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, render_table
from repro.analysis.runner import run_policy
from repro.core.augment import AugmentOptions
from repro.core.recompute import RecomputeStrategy
from repro.models.registry import build_model
from repro.units import MB

STRATEGIES = [
    RecomputeStrategy.MEMORY_CENTRIC,
    RecomputeStrategy.SPEED_CENTRIC,
    RecomputeStrategy.LRU,
]


@pytest.fixture(scope="module")
def results(rtx):
    graph = build_model("resnet101", 48)
    out = {}
    for strategy in STRATEGIES:
        result = run_policy(
            graph, "checkpoints", rtx,
            augment_options=AugmentOptions(
                recompute_strategy=strategy,
                lru_budget_bytes=256 * MB,
            ),
        )
        assert result.feasible, result.failure
        out[strategy] = result.trace
    return out


def test_abl_recompute_strategy(benchmark, rtx, results):
    benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    rows = [
        [
            strategy.value,
            f"{trace.iteration_time * 1e3:9.1f}",
            f"{trace.recompute_time * 1e3:9.1f}",
            trace.recompute_ops,
            f"{trace.peak_memory / 2**30:6.2f}",
        ]
        for strategy, trace in results.items()
    ]
    emit(
        "Ablation - recomputation strategy (ResNet-101, checkpoints plan)",
        render_table(
            ["strategy", "iter_ms", "recompute_ms", "chain_ops", "peak_GB"],
            rows,
        ),
    )
    memory = results[RecomputeStrategy.MEMORY_CENTRIC]
    speed = results[RecomputeStrategy.SPEED_CENTRIC]
    lru = results[RecomputeStrategy.LRU]
    # Speed-centric does strictly less recompute work...
    assert speed.recompute_ops <= memory.recompute_ops
    assert speed.recompute_time <= memory.recompute_time + 1e-9
    # ...at a higher (or equal) memory peak.
    assert speed.peak_memory >= memory.peak_memory
    # LRU interpolates in compute work.
    assert speed.recompute_ops <= lru.recompute_ops <= memory.recompute_ops
