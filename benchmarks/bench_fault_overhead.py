"""Disabled-fault-injection overhead benchmark for the plan+run pipeline.

An infrastructure extension rather than a paper table: it guards the
fault layer's zero-overhead-when-off contract, the same way
``bench_telemetry_overhead.py`` guards telemetry's: with ``faults=None``
every fault-path hook in the engine degrades to a single attribute read
or ``is None`` check — no RNG draws, no retry loops, no recovery
bookkeeping — and the traces are byte-identical to a build without the
fault layer at all.

Two checks:

1. **Microbenchmark bound** — times each disabled fault primitive in a
   tight loop (the ``faults is None`` branch, the ``cand.skip`` read,
   the ``self._recovery`` guard, ``pcie.transfer_time`` with its default
   ``rate_scale``), multiplies by a generous census of how many times
   one compile+run executes each, and asserts the estimated overhead is
   **under 2 %** of the measured plan+run wall time. CI enforces this.
2. **End-to-end comparison** — wall-times ``compile_run`` with
   ``faults=None`` vs an attached noisy :class:`FaultConfig`, reported
   informationally, and asserts the ``faults=None`` trace is identical
   across repeated runs (determinism spot-check).

Writes ``BENCH_faults.json`` for the CI artifact upload.

Usage::

    PYTHONPATH=src python benchmarks/bench_fault_overhead.py          # full
    PYTHONPATH=src python benchmarks/bench_fault_overhead.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.faults import FaultConfig  # noqa: E402
from repro.hardware.gpu import GPU_PRESETS  # noqa: E402
from repro.hardware.pcie import PCIeModel  # noqa: E402
from repro.models.registry import build_model  # noqa: E402
from repro.pipeline.cache import CompileCache  # noqa: E402
from repro.pipeline.compile import compile_run  # noqa: E402

#: CI-enforced ceiling on the estimated disabled-fault overhead.
MAX_DISABLED_OVERHEAD = 0.02

FULL_CONFIG = ("vgg16", 512, "gtx_1080ti")
SMOKE_CONFIG = ("vgg16", 256, "gtx_1080ti")

NOISY = FaultConfig(
    seed=0, kernel_noise=0.05, pcie_jitter=0.1,
    pcie_degradation=0.2, transfer_failure_rate=0.2,
)


def _time_loop(fn, n: int = 100_000) -> float:
    """Per-call seconds of ``fn`` over ``n`` iterations."""
    start = time.perf_counter()
    for _ in range(n):
        fn()
    return (time.perf_counter() - start) / n


def microbench_disabled_primitives() -> dict:
    """Per-call cost of every fault primitive on the ``faults=None`` path."""

    class _Carrier:
        __slots__ = ("faults", "skip", "_recovery")

        def __init__(self):
            self.faults = None
            self.skip = False
            self._recovery = False

    carrier = _Carrier()
    pcie = PCIeModel(GPU_PRESETS["gtx_1080ti"])

    def none_check():
        if carrier.faults is not None:  # pragma: no cover - never taken
            raise AssertionError

    def skip_read():
        if carrier.skip:  # pragma: no cover - never taken
            raise AssertionError

    def recovery_guard():
        if carrier._recovery:  # pragma: no cover - never taken
            raise AssertionError

    def clean_transfer_time():
        pcie.transfer_time(1 << 20)

    return {
        "faults_is_none_s": _time_loop(none_check),
        "cand_skip_read_s": _time_loop(skip_read),
        "recovery_guard_s": _time_loop(recovery_guard),
        "clean_transfer_time_s": _time_loop(clean_transfer_time),
    }


def estimate_overhead(hooks: dict, instructions: int) -> float:
    """Upper-bound seconds of disabled-fault work in one compile+run.

    Census per executed instruction: one ``cand.skip`` read at dispatch,
    one ``faults is None`` check (compute duration or PCIe schedule),
    and at most two ``self._recovery`` guards (free + release paths).
    ``transfer_time`` itself predates the fault layer; only the default
    ``rate_scale=1.0`` keyword is new, and its cost is already inside
    the measured per-call time, so counting one full call per
    instruction over-counts safely.
    """
    per_instr = (
        hooks["cand_skip_read_s"]
        + hooks["faults_is_none_s"]
        + 2 * hooks["recovery_guard_s"]
        + hooks["clean_transfer_time_s"]
    )
    return instructions * per_instr


def run_pipeline(model: str, batch: int, gpu_name: str,
                 faults: FaultConfig | None) -> dict:
    """One timed compile_run with or without an attached fault config."""
    graph = build_model(model, batch)
    gpu = GPU_PRESETS[gpu_name]
    start = time.perf_counter()
    run = compile_run(graph, "tsplit", gpu, cache=CompileCache(),
                      faults=faults)
    elapsed = time.perf_counter() - start
    if not run.result.feasible:
        raise AssertionError(f"{model} b={batch} {gpu_name}: infeasible")
    trace = run.result.trace
    return {
        "elapsed_s": elapsed,
        "instructions": len(trace.records),
        "iteration_time_s": trace.iteration_time,
        "recovery_actions": trace.recovery_actions,
        "fingerprint": (
            trace.iteration_time, trace.peak_memory,
            len(trace.records), len(trace.alloc_events),
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="smaller batch for CI")
    parser.add_argument("--out", default="BENCH_faults.json")
    args = parser.parse_args(argv)

    model, batch, gpu_name = SMOKE_CONFIG if args.smoke else FULL_CONFIG

    hooks = microbench_disabled_primitives()
    for name, per_call in sorted(hooks.items()):
        print(f"{name:24s} {per_call * 1e9:8.1f} ns/call", flush=True)

    clean_a = run_pipeline(model, batch, gpu_name, faults=None)
    clean_b = run_pipeline(model, batch, gpu_name, faults=None)
    assert clean_a["fingerprint"] == clean_b["fingerprint"], (
        "faults=None runs are not deterministic"
    )
    assert clean_a["recovery_actions"] == 0
    noisy = run_pipeline(model, batch, gpu_name, faults=NOISY)

    estimated = estimate_overhead(hooks, clean_a["instructions"])
    ratio = estimated / clean_a["elapsed_s"]
    e2e_delta = (
        (noisy["elapsed_s"] - clean_a["elapsed_s"]) / clean_a["elapsed_s"]
    )
    print(
        f"\n{model} b={batch} {gpu_name}: plan+run "
        f"{clean_a['elapsed_s']:.2f}s clean, "
        f"{noisy['elapsed_s']:.2f}s with faults attached "
        f"({noisy['recovery_actions']} recovery actions, "
        f"e2e delta {e2e_delta:+.1%}, informational)"
    )
    print(
        f"estimated disabled-fault overhead: {estimated * 1e3:.3f} ms "
        f"= {ratio:.4%} of plan+run (limit {MAX_DISABLED_OVERHEAD:.0%})"
    )

    payload = {
        "benchmark": "fault_overhead",
        "mode": "smoke" if args.smoke else "full",
        "config": {"model": model, "batch": batch, "gpu": gpu_name},
        "hooks_ns": {k: v * 1e9 for k, v in hooks.items()},
        "clean": {k: v for k, v in clean_a.items() if k != "fingerprint"},
        "noisy": {k: v for k, v in noisy.items() if k != "fingerprint"},
        "estimated_overhead_s": estimated,
        "estimated_overhead_ratio": ratio,
        "e2e_delta_ratio": e2e_delta,
        "limit": MAX_DISABLED_OVERHEAD,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    assert ratio < MAX_DISABLED_OVERHEAD, (
        f"disabled fault-injection overhead {ratio:.4%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%} of plan+run time"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
