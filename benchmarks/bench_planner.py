"""Planner wall-time benchmark: incremental vs reference cost model.

An infrastructure extension rather than a paper table: it tracks the
planning cost that bounds every sweep in EXPERIMENTS.md.

Runs the TSPLIT greedy planner twice per (model, batch, GPU)
configuration — once with the incremental memory-curve / cost-model
caching (``PlannerOptions(incremental=True)``, the default) and once
with the reference implementation that recomputes curves from scratch —
and verifies the two produce byte-identical plans before reporting the
speedup. Results land in ``BENCH_planner.json``.

Two sweep-infrastructure sections ride along:

* **serial vs process** — the same 8-point multi-model throughput sweep
  through the serial backend and a ``ProcessPoolExecutor`` (the planner
  and engine are pure Python, so this, not threads, is where sweep
  overlap comes from), asserting the point lists are byte-identical;
* **cold vs warm disk cache** — the sweep against a fresh persistent
  cache directory, then again with a new (empty-memory) cache on the
  same directory, proving via ``disk_hit``/``disk_miss`` counters that
  the warm run recomputed no profile or plan.

Usage::

    PYTHONPATH=src python benchmarks/bench_planner.py            # full matrix
    PYTHONPATH=src python benchmarks/bench_planner.py --smoke    # CI-sized

Not a pytest benchmark: the point is a machine-readable artifact CI can
upload and compare across commits.
"""

from __future__ import annotations

import argparse
import functools
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.parallel import parallel_map  # noqa: E402
from repro.analysis.sweep_tasks import (  # noqa: E402
    ThroughputTaskSpec,
    canonical_point_bytes,
    run_throughput_point,
)
from repro.core.planner import PlannerOptions, TsplitPlanner  # noqa: E402
from repro.hardware.gpu import GPU_PRESETS  # noqa: E402
from repro.models.registry import build_model  # noqa: E402
from repro.pipeline import CompileCache  # noqa: E402

#: (model, batch, GPU preset). Batches are chosen so the raw graph
#: over-subscribes the device and the planner has real work to do.
FULL_MATRIX = [
    ("vgg16", 2048, "rtx_titan"),
    ("resnet50", 256, "v100_16gb"),
    ("resnet101", 512, "gtx_1080ti"),
    ("gpt", 64, "v100_16gb"),
    ("bert_large", 256, "v100_16gb"),
    ("inception_v4", 256, "v100_16gb"),
]

SMOKE_MATRIX = [
    ("vgg16", 512, "gtx_1080ti"),
    ("resnet50", 256, "v100_16gb"),
]

#: The 8-point multi-model sweep for the backend and disk-cache
#: sections: every point is feasible and compute-bound (profile + plan
#: + simulated execution), so the process backend has real work to
#: overlap and the warm disk-cache run has real work to skip.
SWEEP_POINTS = [
    ("resnet101", 128, "gtx_1080ti"),
    ("resnet101", 192, "gtx_1080ti"),
    ("resnet101", 256, "gtx_1080ti"),
    ("resnet152", 64, "v100_16gb"),
    ("resnet152", 128, "v100_16gb"),
    ("inception_v4", 64, "v100_16gb"),
    ("bert_large", 64, "v100_16gb"),
    ("bert_large", 128, "v100_16gb"),
]


def _sweep_specs(cache_dir: str | None = None) -> list[ThroughputTaskSpec]:
    return [
        ThroughputTaskSpec(
            model=model, policy="tsplit", batch=batch,
            gpu=GPU_PRESETS[gpu], cache_dir=cache_dir,
        )
        for model, batch, gpu in SWEEP_POINTS
    ]


def bench_sweep_backends(workers: int) -> dict:
    """Serial vs process backend over the 8-point sweep.

    Both runs start cold (fresh caches); the speedup therefore measures
    pure GIL-sidestepping overlap, bounded above by the CPU count —
    expect ~1x on a single-core container and >= 2x from 4 cores up.
    """
    specs = _sweep_specs()
    serial_fn = functools.partial(run_throughput_point, cache=CompileCache())
    start = time.perf_counter()
    serial_points = parallel_map(serial_fn, specs, None, backend="serial")
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    process_points = parallel_map(
        run_throughput_point, specs, workers, backend="process",
    )
    process_s = time.perf_counter() - start

    identical = (
        canonical_point_bytes(serial_points)
        == canonical_point_bytes(process_points)
    )
    if not identical:
        raise AssertionError(
            "process-backend sweep diverged from the serial point list"
        )
    return {
        "points": len(specs),
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "serial_s": serial_s,
        "process_s": process_s,
        "process_speedup": serial_s / process_s if process_s > 0 else 0.0,
        "identical_across_backends": identical,
        "feasible_points": sum(p.feasible for p in serial_points),
    }


def bench_disk_cache() -> dict:
    """Cold vs warm persistent-cache run over the 8-point sweep.

    The warm run uses a fresh in-memory cache on the same directory, so
    every profile/plan lookup must come from disk: ``disk_misses == 0``
    proves no profile or plan was recomputed.
    """
    cache_dir = tempfile.mkdtemp(prefix="bench-planner-cache-")
    try:
        specs = _sweep_specs()
        cold_cache = CompileCache(disk_dir=cache_dir)
        start = time.perf_counter()
        cold_points = [run_throughput_point(s, cache=cold_cache) for s in specs]
        cold_s = time.perf_counter() - start

        warm_cache = CompileCache(disk_dir=cache_dir)
        start = time.perf_counter()
        warm_points = [run_throughput_point(s, cache=warm_cache) for s in specs]
        warm_s = time.perf_counter() - start

        stats = warm_cache.cache_stats()
        if stats["disk_misses"] != 0 or stats["disk_hits"] < 2 * len(specs):
            raise AssertionError(
                f"warm run was expected to serve every profile/plan from "
                f"disk, got {stats}"
            )
        if canonical_point_bytes(cold_points) != canonical_point_bytes(
            warm_points
        ):
            raise AssertionError("warm sweep diverged from the cold run")
        return {
            "points": len(specs),
            "cold_s": cold_s,
            "warm_s": warm_s,
            "warm_speedup": cold_s / warm_s if warm_s > 0 else 0.0,
            "warm_disk_hits": stats["disk_hits"],
            "warm_disk_misses": stats["disk_misses"],
            "all_profile_plan_from_disk": True,
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def bench_curve_vectorization(
    model: str = "bert_large", batch: int = 256, gpu_name: str = "v100_16gb",
) -> dict:
    """Batched ``np.add.at`` delta updates vs the former per-window loop.

    Curve updates are a few percent of total planning time, so an
    end-to-end comparison would drown the effect in noise. Instead this
    records every ``MemoryCurve._bump`` call a real planning run makes,
    checks the shipped hybrid and the former all-scalar loop produce
    decision-for-decision identical plans (interval bytes are exact
    integers in float64, so accumulation order cannot matter), then
    replays the recorded call stream in isolation under both
    implementations.
    """
    import numpy as np

    from repro.core.simulate import MemoryCurve

    graph = build_model(model, batch)
    gpu = GPU_PRESETS[gpu_name]

    calls: list[tuple[int, list, float]] = []
    hybrid_bump = MemoryCurve._bump

    def recording_bump(self, windows, sign):
        calls.append((self.steps, windows, sign))
        hybrid_bump(self, windows, sign)

    def scalar_bump(self, windows, sign):
        for start, end, nbytes in windows:
            value = sign * nbytes
            self._delta[start] += value
            self._delta[min(end + 1, self.steps)] -= value

    MemoryCurve._bump = recording_bump
    try:
        _, decisions, peak = _plan_once(graph, gpu, True)
    finally:
        MemoryCurve._bump = hybrid_bump
    MemoryCurve._bump = scalar_bump
    try:
        _, scalar_decisions, scalar_peak = _plan_once(graph, gpu, True)
    finally:
        MemoryCurve._bump = hybrid_bump
    if (decisions, peak) != (scalar_decisions, scalar_peak):
        raise AssertionError(
            "vectorised curve updates diverged from the scalar loop"
        )

    shell = MemoryCurve.__new__(MemoryCurve)
    shell._delta = np.zeros(max(steps for steps, _, _ in calls) + 1)
    repeats = 20

    def replay(bump) -> float:
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(repeats):
                for steps, windows, sign in calls:
                    shell.steps = steps
                    bump(shell, windows, sign)
            best = min(best, (time.perf_counter() - start) / repeats)
        return best

    hybrid_s = replay(hybrid_bump)
    scalar_s = replay(scalar_bump)
    return {
        "model": model,
        "batch": batch,
        "gpu": gpu_name,
        "decisions": len(decisions),
        "bump_calls": len(calls),
        "vectorized_s": hybrid_s,
        "scalar_s": scalar_s,
        "speedup": scalar_s / hybrid_s if hybrid_s > 0 else 0.0,
        "identical_decisions": True,
    }


def _plan_once(graph, gpu, incremental: bool):
    """One timed planning run; returns (seconds, flat decisions, peak)."""
    planner = TsplitPlanner(gpu, PlannerOptions(incremental=incremental))
    start = time.perf_counter()
    result = planner.plan(graph)
    elapsed = time.perf_counter() - start
    decisions = [
        (tid, (cfg.opt.value, cfg.p_num, cfg.dim))
        for decision in result.decisions
        for tid, cfg in decision.configs
    ]
    return elapsed, decisions, result.peak_memory


def bench_config(model: str, batch: int, gpu_name: str, repeats: int) -> dict:
    """Benchmark one configuration in both planner modes.

    Takes the best of ``repeats`` runs per mode (standard wall-time
    practice: the minimum is the least load-contaminated sample) and
    asserts the modes agree decision for decision.
    """
    graph = build_model(model, batch)
    gpu = GPU_PRESETS[gpu_name]
    times: dict[bool, float] = {}
    plans: dict[bool, tuple] = {}
    for incremental in (True, False):
        best = float("inf")
        for _ in range(repeats):
            elapsed, decisions, peak = _plan_once(graph, gpu, incremental)
            best = min(best, elapsed)
        times[incremental] = best
        plans[incremental] = (decisions, peak)

    identical = plans[True] == plans[False]
    if not identical:
        raise AssertionError(
            f"{model} b={batch} {gpu_name}: incremental planner diverged "
            f"from the reference implementation"
        )
    decisions, peak = plans[True]
    n = len(decisions)
    return {
        "model": model,
        "batch": batch,
        "gpu": gpu_name,
        "ops": len(graph.ops),
        "decisions": n,
        "peak_memory": peak,
        "identical": identical,
        "incremental_s": times[True],
        "reference_s": times[False],
        "speedup": times[False] / times[True] if times[True] > 0 else 0.0,
        "decisions_per_sec_incremental": n / times[True] if times[True] else 0.0,
        "decisions_per_sec_reference": n / times[False] if times[False] else 0.0,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fast matrix for CI (seconds, not minutes)")
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing runs per mode (default: 1 for --smoke, 2 otherwise)")
    parser.add_argument("--out", default="BENCH_planner.json")
    parser.add_argument(
        "--sweep-workers", type=int, default=0, metavar="N",
        help="process-pool size for the sweep section "
             "(default: min(8, cpu count))")
    parser.add_argument(
        "--skip-sweep", action="store_true",
        help="planner matrix only; skip the backend + disk-cache sections")
    args = parser.parse_args(argv)

    matrix = SMOKE_MATRIX if args.smoke else FULL_MATRIX
    repeats = args.repeats or (1 if args.smoke else 2)

    results = []
    for model, batch, gpu_name in matrix:
        entry = bench_config(model, batch, gpu_name, repeats)
        results.append(entry)
        print(
            f"{model:14s} b={batch:<5d} {gpu_name:12s} "
            f"decisions={entry['decisions']:4d} "
            f"inc={entry['incremental_s']:.2f}s "
            f"ref={entry['reference_s']:.2f}s "
            f"speedup={entry['speedup']:.2f}x",
            flush=True,
        )

    largest = max(results, key=lambda e: e["ops"])
    payload = {
        "benchmark": "planner",
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "results": results,
        "summary": {
            "largest_model": largest["model"],
            "largest_model_speedup": largest["speedup"],
            "all_identical": all(e["identical"] for e in results),
        },
    }

    curve = bench_curve_vectorization(
        *(("vgg16", 512, "gtx_1080ti") if args.smoke
          else ("bert_large", 256, "v100_16gb")),
    )
    payload["curve_vectorization"] = curve
    print(
        f"\ncurve updates:  {curve['bump_calls']} calls replayed, "
        f"hybrid {curve['vectorized_s'] * 1e3:.1f}ms, "
        f"scalar loop {curve['scalar_s'] * 1e3:.1f}ms "
        f"({curve['speedup']:.2f}x, identical decisions)",
        flush=True,
    )

    if not args.skip_sweep:
        workers = args.sweep_workers or min(8, os.cpu_count() or 1)
        backends = bench_sweep_backends(workers)
        print(
            f"\nsweep backends: {backends['points']} points, "
            f"serial {backends['serial_s']:.2f}s, "
            f"process[{workers}] {backends['process_s']:.2f}s "
            f"({backends['process_speedup']:.2f}x, "
            f"{backends['cpu_count']} cpus), identical point lists",
            flush=True,
        )
        disk = bench_disk_cache()
        print(
            f"disk cache:     cold {disk['cold_s']:.2f}s, "
            f"warm {disk['warm_s']:.2f}s "
            f"({disk['warm_speedup']:.2f}x; {disk['warm_disk_hits']} disk "
            f"hits, {disk['warm_disk_misses']} disk misses — every "
            f"profile/plan served from disk)",
            flush=True,
        )
        payload["sweep"] = {"backends": backends, "disk_cache": disk}

    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}: largest model {largest['model']} "
          f"speedup {largest['speedup']:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
