"""Planner wall-time benchmark: incremental vs reference cost model.

An infrastructure extension rather than a paper table: it tracks the
planning cost that bounds every sweep in EXPERIMENTS.md.

Runs the TSPLIT greedy planner twice per (model, batch, GPU)
configuration — once with the incremental memory-curve / cost-model
caching (``PlannerOptions(incremental=True)``, the default) and once
with the reference implementation that recomputes curves from scratch —
and verifies the two produce byte-identical plans before reporting the
speedup. Results land in ``BENCH_planner.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_planner.py            # full matrix
    PYTHONPATH=src python benchmarks/bench_planner.py --smoke    # CI-sized

Not a pytest benchmark: the point is a machine-readable artifact CI can
upload and compare across commits.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.planner import PlannerOptions, TsplitPlanner  # noqa: E402
from repro.hardware.gpu import GPU_PRESETS  # noqa: E402
from repro.models.registry import build_model  # noqa: E402

#: (model, batch, GPU preset). Batches are chosen so the raw graph
#: over-subscribes the device and the planner has real work to do.
FULL_MATRIX = [
    ("vgg16", 2048, "rtx_titan"),
    ("resnet50", 256, "v100_16gb"),
    ("resnet101", 512, "gtx_1080ti"),
    ("gpt", 64, "v100_16gb"),
    ("bert_large", 256, "v100_16gb"),
    ("inception_v4", 256, "v100_16gb"),
]

SMOKE_MATRIX = [
    ("vgg16", 512, "gtx_1080ti"),
    ("resnet50", 256, "v100_16gb"),
]


def _plan_once(graph, gpu, incremental: bool):
    """One timed planning run; returns (seconds, flat decisions, peak)."""
    planner = TsplitPlanner(gpu, PlannerOptions(incremental=incremental))
    start = time.perf_counter()
    result = planner.plan(graph)
    elapsed = time.perf_counter() - start
    decisions = [
        (tid, (cfg.opt.value, cfg.p_num, cfg.dim))
        for decision in result.decisions
        for tid, cfg in decision.configs
    ]
    return elapsed, decisions, result.peak_memory


def bench_config(model: str, batch: int, gpu_name: str, repeats: int) -> dict:
    """Benchmark one configuration in both planner modes.

    Takes the best of ``repeats`` runs per mode (standard wall-time
    practice: the minimum is the least load-contaminated sample) and
    asserts the modes agree decision for decision.
    """
    graph = build_model(model, batch)
    gpu = GPU_PRESETS[gpu_name]
    times: dict[bool, float] = {}
    plans: dict[bool, tuple] = {}
    for incremental in (True, False):
        best = float("inf")
        for _ in range(repeats):
            elapsed, decisions, peak = _plan_once(graph, gpu, incremental)
            best = min(best, elapsed)
        times[incremental] = best
        plans[incremental] = (decisions, peak)

    identical = plans[True] == plans[False]
    if not identical:
        raise AssertionError(
            f"{model} b={batch} {gpu_name}: incremental planner diverged "
            f"from the reference implementation"
        )
    decisions, peak = plans[True]
    n = len(decisions)
    return {
        "model": model,
        "batch": batch,
        "gpu": gpu_name,
        "ops": len(graph.ops),
        "decisions": n,
        "peak_memory": peak,
        "identical": identical,
        "incremental_s": times[True],
        "reference_s": times[False],
        "speedup": times[False] / times[True] if times[True] > 0 else 0.0,
        "decisions_per_sec_incremental": n / times[True] if times[True] else 0.0,
        "decisions_per_sec_reference": n / times[False] if times[False] else 0.0,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fast matrix for CI (seconds, not minutes)")
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing runs per mode (default: 1 for --smoke, 2 otherwise)")
    parser.add_argument("--out", default="BENCH_planner.json")
    args = parser.parse_args(argv)

    matrix = SMOKE_MATRIX if args.smoke else FULL_MATRIX
    repeats = args.repeats or (1 if args.smoke else 2)

    results = []
    for model, batch, gpu_name in matrix:
        entry = bench_config(model, batch, gpu_name, repeats)
        results.append(entry)
        print(
            f"{model:14s} b={batch:<5d} {gpu_name:12s} "
            f"decisions={entry['decisions']:4d} "
            f"inc={entry['incremental_s']:.2f}s "
            f"ref={entry['reference_s']:.2f}s "
            f"speedup={entry['speedup']:.2f}x",
            flush=True,
        )

    largest = max(results, key=lambda e: e["ops"])
    payload = {
        "benchmark": "planner",
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "results": results,
        "summary": {
            "largest_model": largest["model"],
            "largest_model_speedup": largest["speedup"],
            "all_identical": all(e["identical"] for e in results),
        },
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}: largest model {largest['model']} "
          f"speedup {largest['speedup']:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
