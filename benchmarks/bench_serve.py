"""Load benchmark for the plan-serving daemon (``repro serve``).

An infrastructure benchmark rather than a paper figure: it drives a
mixed request stream against one daemon and checks the serving layer's
four contracts under load:

1. **Coalescing** — a burst of identical cold requests shares one
   in-flight compile (coalescing ratio > 1, exactly one plan compile
   per unique configuration);
2. **Warm cache** — after the cold phase, the shared
   :class:`~repro.pipeline.CompileCache` serves repeat configurations
   without recompiling (high folded hit rate, coherent counters);
3. **Availability** — zero failed requests across the whole run
   (admission limits are sized above the client concurrency, so any
   rejection is a bug);
4. **Fidelity** — served plan digests are byte-identical to a direct
   in-process :func:`~repro.pipeline.compile.compile_run` of the same
   configuration.

Two phases: a **cold burst** fires ``BURST`` concurrent duplicates of
each configuration at an empty daemon (this is where coalescing must
show), then a **warm mixed** phase spreads the remaining requests
round-robin over every configuration from a client thread pool (this is
where latency and plans/sec are measured).

By default the benchmark boots an in-process daemon on an ephemeral
port; ``--url`` points it at an externally-started daemon instead (the
CI smoke job boots ``python -m repro serve`` and targets it). All
daemon-side counters are read as before/after *deltas* of ``/stats``,
so a pre-warmed external daemon does not skew the assertions.

Writes ``BENCH_serve.json`` and exits nonzero when any contract is
violated.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # 10k requests
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke    # ~600, CI
    PYTHONPATH=src python benchmarks/bench_serve.py --url http://127.0.0.1:8757
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.hardware.gpu import GPU_PRESETS  # noqa: E402
from repro.models.registry import build_model  # noqa: E402
from repro.pipeline.compile import compile_run  # noqa: E402
from repro.serve import (  # noqa: E402
    PlanService,
    ServeConfig,
    plan_digest,
    start_server,
)
from repro.serve.client import ServeClient, ServeError  # noqa: E402

#: Concurrent duplicates per configuration in the cold burst phase.
BURST = 8
SMOKE_BURST = 4

#: Client-side request concurrency in the warm mixed phase (kept well
#: under the daemon's admission limits so rejections count as bugs).
CLIENT_WORKERS = 12
SMOKE_CLIENT_WORKERS = 8

#: Tenants cycled through the request stream (exercises per-tenant
#: accounting without ever approaching the per-tenant quota).
TENANTS = ("alice", "bob", "carol", "dave")


def full_configs() -> list[dict]:
    """The ~20-configuration full-mode mix: several models, batch
    sizes, devices, policies, capacity fractions, and a couple of
    run-mode entries."""
    configs = []
    for batch in (8, 16, 32, 48, 64):
        configs.append({
            "model": "vgg16", "policy": "tsplit",
            "gpu": "rtx_titan", "batch": batch,
        })
    for batch in (8, 16, 32):
        configs.append({
            "model": "vgg16", "policy": "base",
            "gpu": "gtx_1080ti", "batch": batch,
        })
    for batch in (8, 16, 32):
        configs.append({
            "model": "resnet50", "policy": "tsplit",
            "gpu": "rtx_titan", "batch": batch,
        })
    for batch in (8, 16):
        configs.append({
            "model": "resnet50", "policy": "superneurons",
            "gpu": "gtx_1080ti", "batch": batch,
        })
    for batch in (8, 16):
        configs.append({
            "model": "transformer", "policy": "tsplit",
            "gpu": "rtx_titan", "batch": batch,
        })
    for frac in (0.75, 0.5):
        configs.append({
            "model": "vgg16", "policy": "tsplit", "gpu": "rtx_titan",
            "batch": 32, "capacity_frac": frac,
        })
    configs.append({
        "model": "vgg16", "policy": "tsplit", "gpu": "rtx_titan",
        "batch": 16, "mode": "run",
    })
    configs.append({
        "model": "vgg16", "policy": "base", "gpu": "gtx_1080ti",
        "batch": 16, "mode": "run",
    })
    return configs


def smoke_configs() -> list[dict]:
    """The 6-configuration smoke mix (plan mode only, small batches)."""
    return [
        {"model": "vgg16", "policy": "tsplit", "gpu": "rtx_titan",
         "batch": 8},
        {"model": "vgg16", "policy": "tsplit", "gpu": "rtx_titan",
         "batch": 16},
        {"model": "vgg16", "policy": "base", "gpu": "gtx_1080ti",
         "batch": 8},
        {"model": "vgg16", "policy": "tsplit", "gpu": "gtx_1080ti",
         "batch": 16},
        {"model": "resnet50", "policy": "tsplit", "gpu": "rtx_titan",
         "batch": 8},
        {"model": "vgg16", "policy": "tsplit", "gpu": "rtx_titan",
         "batch": 16, "capacity_frac": 0.5},
    ]


def percentile(sorted_values: list[float], q: float) -> float:
    """The ``q``-quantile of an ascending list (nearest-rank)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[rank]


def direct_digest(config: dict) -> str:
    """The reference plan digest: a direct in-process compile."""
    graph = build_model(config["model"], config["batch"])
    gpu = GPU_PRESETS[config["gpu"]]
    frac = config.get("capacity_frac", 1.0)
    if frac != 1.0:
        gpu = gpu.with_memory(int(gpu.memory_bytes * frac))
    run = compile_run(graph, config["policy"], gpu)
    return plan_digest(run.plan.plan)


class LoadStats:
    """Accumulates per-request outcomes across both phases."""

    def __init__(self) -> None:
        self.latencies_ms: list[float] = []
        self.coalesced = 0
        self.failures: list[str] = []
        self.digests: dict[str, set] = {}

    def record(self, config_key: str, body: dict, elapsed_ms: float) -> None:
        """Count one completed request."""
        self.latencies_ms.append(elapsed_ms)
        if body.get("coalesced"):
            self.coalesced += 1
        if not body.get("feasible"):
            self.failures.append(
                f"{config_key}: infeasible: {body.get('failure')}"
            )
        self.digests.setdefault(config_key, set()).add(
            body.get("plan_digest", ""),
        )


def fire(client: ServeClient, config: dict, tenant: str,
         stats: LoadStats) -> None:
    """One timed request; failures are recorded, never raised."""
    key = json.dumps(config, sort_keys=True)
    payload = {**config, "tenant": tenant}
    start = time.perf_counter()
    try:
        body = client.plan(**payload)
    except (ServeError, OSError) as exc:
        stats.failures.append(f"{key}: {exc}")
        return
    stats.record(key, body, (time.perf_counter() - start) * 1e3)


def run_load(client: ServeClient, configs: list[dict], total: int,
             burst: int, workers: int) -> tuple[LoadStats, dict]:
    """Both phases against one daemon; returns stats + phase timings."""
    stats = LoadStats()

    cold_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=burst) as pool:
        for config in configs:
            futures = [
                pool.submit(fire, client, config, TENANTS[i % len(TENANTS)],
                            stats)
                for i in range(burst)
            ]
            for future in futures:
                future.result()
    cold_s = time.perf_counter() - cold_start

    warm_total = max(0, total - len(configs) * burst)
    warm_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(
                fire, client, configs[i % len(configs)],
                TENANTS[i % len(TENANTS)], stats,
            )
            for i in range(warm_total)
        ]
        for future in futures:
            future.result()
    warm_s = time.perf_counter() - warm_start

    return stats, {
        "cold_requests": len(configs) * burst,
        "cold_s": cold_s,
        "warm_requests": warm_total,
        "warm_s": warm_s,
        "warm_plans_per_sec": warm_total / warm_s if warm_s else 0.0,
    }


def stats_delta(before: dict, after: dict) -> dict:
    """Daemon-side counter deltas between two ``/stats`` snapshots."""
    flights = after["coalescing"]["flights"] - before["coalescing"]["flights"]
    joins = after["coalescing"]["joins"] - before["coalescing"]["joins"]
    lookups = after["cache"]["lookups"] - before["cache"]["lookups"]
    hits = after["cache"]["total_hits"] - before["cache"]["total_hits"]
    plan_kinds = after["cache"].get("kinds", {}).get("plan", {})
    plan_kinds_before = before["cache"].get("kinds", {}).get("plan", {})
    return {
        "flights": flights,
        "joins": joins,
        "coalescing_ratio": (
            (flights + joins) / flights if flights else 0.0
        ),
        "cache_lookups": lookups,
        "cache_hits": hits,
        "cache_hit_rate": hits / lookups if lookups else 0.0,
        "plan_compiles": (
            plan_kinds.get("misses", 0) - plan_kinds_before.get("misses", 0)
        ),
    }


def main(argv: list[str] | None = None) -> int:
    """Run the load benchmark; returns a process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="~600 requests over 6 configs for CI")
    parser.add_argument("--url", default="",
                        help="target a running daemon instead of booting "
                             "one in-process")
    parser.add_argument("--requests", type=int, default=0,
                        help="override the total request count")
    parser.add_argument("--out", default="BENCH_serve.json")
    args = parser.parse_args(argv)

    configs = smoke_configs() if args.smoke else full_configs()
    total = args.requests or (600 if args.smoke else 10_000)
    burst = SMOKE_BURST if args.smoke else BURST
    workers = SMOKE_CLIENT_WORKERS if args.smoke else CLIENT_WORKERS

    server = None
    if args.url:
        client = ServeClient(args.url)
    else:
        service = PlanService(ServeConfig(
            workers=4, max_inflight=128, tenant_quota=64,
        ))
        server, _thread = start_server(service)
        client = ServeClient(server.url)
    print(
        f"target {client.url} | {len(configs)} configs, {total} requests "
        f"(burst {burst}, {workers} client workers)", flush=True,
    )

    try:
        before = client.stats()
        load, phases = run_load(client, configs, total, burst, workers)
        after = client.stats()
    finally:
        if server is not None:
            server.drain()
            server.server_close()

    delta = stats_delta(before, after)
    latencies = sorted(load.latencies_ms)
    summary = {
        "p50_ms": percentile(latencies, 0.50),
        "p90_ms": percentile(latencies, 0.90),
        "p99_ms": percentile(latencies, 0.99),
        "completed": len(latencies),
        "coalesced_responses": load.coalesced,
        "failed": len(load.failures),
    }
    print(
        f"cold burst: {phases['cold_requests']} requests in "
        f"{phases['cold_s']:.2f}s | warm: {phases['warm_requests']} in "
        f"{phases['warm_s']:.2f}s = "
        f"{phases['warm_plans_per_sec']:.0f} plans/sec"
    )
    print(
        f"latency p50 {summary['p50_ms']:.2f} ms, "
        f"p99 {summary['p99_ms']:.2f} ms | coalescing ratio "
        f"{delta['coalescing_ratio']:.2f} | cache hit rate "
        f"{delta['cache_hit_rate']:.1%} | plan compiles "
        f"{delta['plan_compiles']} for {len(configs)} configs"
    )

    violations = []
    if load.failures:
        violations.append(
            f"{len(load.failures)} failed requests "
            f"(first: {load.failures[0]})"
        )
    if summary["completed"] != total:
        violations.append(
            f"completed {summary['completed']} of {total} requests"
        )
    if delta["coalescing_ratio"] <= 1.0:
        violations.append(
            f"coalescing ratio {delta['coalescing_ratio']:.2f} <= 1 "
            "(cold bursts never shared a flight)"
        )
    if delta["plan_compiles"] > len(configs):
        violations.append(
            f"{delta['plan_compiles']} plan compiles for "
            f"{len(configs)} unique configs (duplicated work)"
        )
    for key, digests in sorted(load.digests.items()):
        if len(digests) != 1:
            violations.append(f"{key}: inconsistent digests {digests}")
    for config in configs:
        key = json.dumps(config, sort_keys=True)
        served = load.digests.get(key, set())
        expected = direct_digest(config)
        if served != {expected}:
            violations.append(
                f"{key}: served digest {served} != direct "
                f"compile_run digest {expected!r}"
            )
    print(
        "byte-identity: every served digest matches direct compile_run"
        if not any("digest" in v for v in violations)
        else "byte-identity check FAILED"
    )

    payload = {
        "benchmark": "serve",
        "mode": "smoke" if args.smoke else "full",
        "target": "external" if args.url else "in-process",
        "configs": configs,
        "total_requests": total,
        "phases": phases,
        "latency": summary,
        "daemon_delta": delta,
        "violations": violations,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if violations:
        for violation in violations:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        return 1
    print("all serve contracts held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
