"""Table VII: max parameter scale vs ZeRO-Offload / FairScale-Offload
at batch 16 (Section VI-D).

On the parameter axis the offload baselines fare better (that is what
they offload), but TSPLIT still leads by also attacking activations.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, render_table
from repro.analysis.scaling import max_param_scale

MODELS = [
    ("vgg16", 64), ("resnet50", 64), ("resnet101", 64), ("transformer", 48),
]

POLICIES = ["base", "zero_offload", "fairscale_offload", "tsplit"]


@pytest.fixture(scope="module")
def table(rtx):
    return {
        model: {
            policy: max_param_scale(model, policy, rtx, cap=cap)
            for policy in POLICIES
        }
        for model, cap in MODELS
    }


def test_tab07_pytorch_param_scale(benchmark, rtx, table):
    benchmark.pedantic(lambda: table, rounds=1, iterations=1)
    rows = [
        [model] + [table[model][p] or "x" for p in POLICIES]
        for model, _ in MODELS
    ]
    emit(
        "Table VII - max parameter scale vs PyTorch offload baselines",
        render_table(["model"] + POLICIES, rows),
    )
    for model, _ in MODELS:
        row = table[model]
        assert row["tsplit"] >= row["base"] > 0, model
        assert row["tsplit"] >= row["zero_offload"], model
        assert row["tsplit"] >= row["fairscale_offload"], model
    # Offloading parameters helps the parameter axis somewhere.
    assert any(
        table[m]["fairscale_offload"] > table[m]["base"]
        or table[m]["zero_offload"] > table[m]["base"]
        for m, _ in MODELS
    )
