"""Figure 15: throughput vs ZeRO-Offload and FairScale-Offload.

Expected shape: TSPLIT >= ZeRO-Offload >= FairScale-Offload at common
feasible batch sizes (FairScale's blanket parameter+activation motion is
PCIe-bound; ZeRO-Offload's CPU update path costs less but still trails a
plan that moves only what the memory budget requires).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, render_series
from repro.analysis.throughput import throughput_sweep

POLICIES = ["base", "zero_offload", "fairscale_offload", "tsplit"]

SWEEPS = [
    ("vgg16", [64, 128, 256]),
    ("resnet50", [64, 128, 256]),
    ("inception_v4", [32, 64, 96]),
    ("transformer", [16, 32, 64]),
]


@pytest.fixture(scope="module")
def sweeps(rtx):
    return {
        model: throughput_sweep(model, POLICIES, batches, rtx)
        for model, batches in SWEEPS
    }


def test_fig15_pytorch_throughput(benchmark, rtx, sweeps):
    benchmark.pedantic(lambda: sweeps, rounds=1, iterations=1)
    for model, batches in SWEEPS:
        points = sweeps[model]
        series = {
            policy: [
                next((p.throughput for p in points
                      if p.policy == policy and p.batch == b), 0.0)
                for b in batches
            ]
            for policy in POLICIES
        }
        emit(f"Figure 15 - throughput vs offload baselines: {model}",
             render_series("batch", batches, series))

    for model, batches in SWEEPS:
        points = {(p.policy, p.batch): p for p in sweeps[model]}
        for batch in batches:
            tsplit = points[("tsplit", batch)]
            zero = points[("zero_offload", batch)]
            fairscale = points[("fairscale_offload", batch)]
            if tsplit.feasible and zero.feasible:
                assert tsplit.throughput >= zero.throughput * 0.95
            if zero.feasible and fairscale.feasible:
                assert zero.throughput >= fairscale.throughput * 0.95
