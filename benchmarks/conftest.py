"""Shared benchmark fixtures and table-rendering helpers.

Every benchmark regenerates one of the paper's tables or figures and
prints it; the ``benchmark`` fixture times the headline computation so
``pytest benchmarks/ --benchmark-only`` reports a per-experiment cost.
"""

from __future__ import annotations

import sys

import pytest

from repro.hardware.gpu import GTX_1080TI, RTX_TITAN


@pytest.fixture(scope="session")
def rtx():
    return RTX_TITAN


@pytest.fixture(scope="session")
def gtx_1080ti():
    return GTX_1080TI


def emit(title: str, lines: list[str]) -> None:
    """Print a rendered table/figure to the real stdout (past capture)."""
    out = sys.__stdout__
    print(f"\n=== {title} ===", file=out)
    for line in lines:
        print(line, file=out)
    out.flush()


def render_table(
    header: list[str], rows: list[list], widths: list[int] | None = None,
) -> list[str]:
    """Fixed-width text table."""
    if widths is None:
        widths = [
            max(len(str(header[i])),
                max((len(str(r[i])) for r in rows), default=0)) + 2
            for i in range(len(header))
        ]
    def fmt(cells):
        return "".join(str(c).rjust(w) for c, w in zip(cells, widths))
    lines = [fmt(header), fmt(["-" * (w - 1) for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return lines


def render_series(
    title_x: str, xs: list, series: dict[str, list], fmt: str = "{:8.1f}",
) -> list[str]:
    """Multi-series table: one row per x value, one column per series."""
    header = [title_x] + list(series)
    rows = []
    for idx, x in enumerate(xs):
        row = [x]
        for name in series:
            value = series[name][idx]
            row.append(fmt.format(value) if isinstance(value, float) else value)
        rows.append(row)
    return render_table(header, rows)
