"""Ablation: best-fit pooled allocation (Section V-C/V-D).

TSPLIT's fine-grained scheduling allocates and frees micro-tensors
intensively; the paper uses a pre-allocated pool with best-fit placement
to keep micro-tensors contiguous. We replay a split-heavy execution's
full allocation stream through the pool under the three placement
strategies and report the *placement overhead*: the smallest pool
headroom (capacity beyond the byte-accurate peak) each strategy needs to
survive external fragmentation. Best-fit should need the least.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, render_table
from repro.analysis.allocator_replay import replay_allocations
from repro.analysis.runner import run_policy
from repro.models.registry import build_model

STRATEGIES = ["best_fit", "first_fit", "worst_fit", "segregated"]
HEADROOMS = [1.00, 1.02, 1.05, 1.10, 1.15, 1.20, 1.30, 1.50, 2.00]


@pytest.fixture(scope="module")
def trace(rtx):
    graph = build_model("vgg16", 640)  # over-subscribed: split-heavy plan
    result = run_policy(graph, "tsplit", rtx)
    assert result.feasible, result.failure
    return result.trace


def chronological_peak(trace) -> int:
    """True time-ordered peak of the allocation stream.

    The engine accounts memory in instruction-issue order (a documented
    simplification); the pool replay is strictly chronological, so its
    baseline is the time-ordered peak, which can exceed the engine's.
    """
    current = trace.persistent_bytes
    peak = current
    for _, _, nbytes in sorted(
        trace.alloc_events, key=lambda e: (e[0], 0 if e[2] < 0 else 1),
    ):
        current += nbytes
        peak = max(peak, current)
    return peak


@pytest.fixture(scope="module")
def required_headroom(rtx, trace):
    """Per strategy: the smallest capacity multiplier that replays OK."""
    base = chronological_peak(trace)
    needed: dict[str, tuple[float, object]] = {}
    for strategy in STRATEGIES:
        for multiplier in HEADROOMS:
            result = replay_allocations(
                trace, int(base * multiplier), strategy=strategy,
            )
            if result.succeeded:
                needed[strategy] = (multiplier, result)
                break
        else:
            needed[strategy] = (float("inf"), result)
    return needed


def test_abl_allocator_strategies(benchmark, rtx, trace, required_headroom):
    benchmark.pedantic(lambda: required_headroom, rounds=1, iterations=1)
    rows = []
    for strategy in STRATEGIES:
        multiplier, result = required_headroom[strategy]
        rows.append([
            strategy,
            f"{multiplier:.2f}x" if multiplier != float("inf") else ">2x",
            result.alloc_count,
            f"{result.max_fragmentation:6.2%}",
        ])
    lines = render_table(
        ["strategy", "needed headroom", "allocs", "max_frag"], rows,
    )
    lines.append(
        f"(chronological byte peak of the stream: "
        f"{chronological_peak(trace) / 2**30:.2f} GB; the headroom is "
        f"purely placement overhead)"
    )
    emit("Ablation - pool placement strategy (TSPLIT VGG-16 b=640)", lines)

    best, _ = required_headroom["best_fit"]
    first, _ = required_headroom["first_fit"]
    worst, _ = required_headroom["worst_fit"]
    # Best-fit survives with no more headroom than the naive placements.
    assert best <= first
    assert best <= worst
    # Measured finding (documented in EXPERIMENTS.md): even best-fit
    # needs ~1.5x the byte-accurate peak on this fine-grained stream — a
    # single pooled arena fragments badly when multi-GB long-lived
    # buffers interleave with thousands of micro-tensors. This
    # *qualifies* the paper's Section V-C contiguity claim rather than
    # contradicting it: their runtime plans to ~90% of capacity, leaving
    # exactly this kind of slack.
    assert best <= 2.0
    # The stream is genuinely micro-tensor intensive.
    assert required_headroom["best_fit"][1].alloc_count > 500
