"""Ablation: pool placement strategies vs the offline address plan.

TSPLIT's fine-grained scheduling allocates and frees micro-tensors
intensively; the paper uses a pre-allocated pool with best-fit placement
to keep micro-tensors contiguous (Section V-C/V-D). We replay a
split-heavy execution's full allocation stream through the pool under
every online placement strategy and report the *placement overhead*: the
smallest pool headroom (capacity beyond the chronological byte peak)
each strategy needs to survive external fragmentation.

The ``planned`` row is the point of the exercise: the offline
spatio-temporal address plan (:mod:`repro.planner.address_plan`) packs
the same stream into a pre-computed layout whose extent is *exact* — the
row reports ``packed_peak / byte_peak`` directly, verified by replaying
the stream through the real pool under the ``"planned"`` strategy at
exactly that capacity (zero fallbacks, extent reproduced
byte-for-byte). Two contracts are CI-enforced:

1. **Planned beats best-fit** — the planned multiplier is strictly
   below the headroom online best-fit needs on the split-heavy stream.
2. **Feasibility feedback admits real points** — on a batch ladder at
   device capacity, at least one engine-feasible (model, batch) point
   whose best-fit replay *spuriously* OOMs from fragmentation is
   admitted by :func:`packed_feasible` and survives a planned replay at
   device capacity.

Writes ``BENCH_address_plan.json`` for the CI artifact upload.

Usage::

    PYTHONPATH=src python benchmarks/bench_abl_allocator.py          # full
    PYTHONPATH=src python benchmarks/bench_abl_allocator.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import pytest  # noqa: E402

from repro.analysis.allocator_replay import (  # noqa: E402
    chronological_peak,
    replay_allocations,
)
from repro.analysis.runner import run_policy  # noqa: E402
from repro.hardware.gpu import GTX_1080TI  # noqa: E402
from repro.models.registry import build_model  # noqa: E402
from repro.planner.address_plan import (  # noqa: E402
    packed_feasible,
    plan_addresses,
)

STRATEGIES = ["best_fit", "first_fit", "worst_fit", "segregated"]
HEADROOMS = [1.00, 1.02, 1.05, 1.10, 1.15, 1.20, 1.30, 1.50, 2.00]

#: The split-heavy replay subject: vgg16 under TSPLIT at a batch that
#: over-subscribes the 11 GB card, so the plan splits hundreds of
#: kernels and the stream interleaves micro-tensors with GB buffers.
REPLAY_MODEL, REPLAY_BATCH = "vgg16", 256

#: Batch ladder for the admission sweep (engine-feasible points whose
#: best-fit replay may still OOM at device capacity).
FULL_BATCHES = [96, 128, 160, 176, 192]
SMOKE_BATCHES = [128, 160]


def split_heavy_trace():
    graph = build_model(REPLAY_MODEL, REPLAY_BATCH)
    result = run_policy(graph, "tsplit", GTX_1080TI)
    assert result.feasible, result.failure
    assert result.trace.split_kernels > 0, "stream is not split-heavy"
    return result.trace


def required_headroom(trace):
    """Per online strategy: the smallest multiplier over the
    chronological byte peak whose replay survives."""
    base = chronological_peak(trace)
    needed: dict[str, tuple[float, object]] = {}
    for strategy in STRATEGIES:
        for multiplier in HEADROOMS:
            result = replay_allocations(
                trace, int(base * multiplier), strategy=strategy,
            )
            if result.succeeded:
                needed[strategy] = (multiplier, result)
                break
        else:
            needed[strategy] = (float("inf"), result)
    return needed


def planned_row(trace):
    """The exact planned multiplier, proven by a real-pool replay.

    Unlike the online strategies the plan's requirement is not probed
    on a grid — ``packed_peak`` *is* the requirement, and the replay at
    exactly that capacity must place every allocation on its planned
    offset (zero fallbacks) and reproduce the extent byte-for-byte.
    """
    base = chronological_peak(trace)
    plan = plan_addresses(trace)
    result = replay_allocations(
        trace, plan.packed_peak, strategy="planned", plan=plan,
    )
    failures = []
    if not result.succeeded:
        failures.append(f"planned replay OOMed at {result.failed_at!r}")
    if result.plan_misses:
        failures.append(f"{result.plan_misses} plan fallbacks on replay")
    if result.peak_extent != plan.packed_peak:
        failures.append(
            f"extent {result.peak_extent} != packed {plan.packed_peak}",
        )
    if plan.packed_peak > plan.baseline_extent:
        failures.append("packed peak above the best-fit baseline")
    return plan, plan.packed_peak / base, result, failures


def admission_sweep(batches):
    """Batch ladder at device capacity: who admits which points?

    Returns per-point dicts and the contract failures. The interesting
    points are engine-feasible runs whose best-fit replay OOMs at the
    device's real capacity purely from placement — the packed-peak
    feedback must admit at least one of them, and the planned replay
    must then actually survive at that capacity.
    """
    capacity = GTX_1080TI.memory_bytes
    points: list[dict] = []
    for batch in batches:
        graph = build_model(REPLAY_MODEL, batch)
        result = run_policy(graph, "tsplit", GTX_1080TI)
        point = {
            "model": REPLAY_MODEL,
            "batch": batch,
            "engine_feasible": result.feasible,
            "best_fit_ok": None,
            "packed_admitted": None,
            "planned_ok": None,
            "packed_peak": None,
        }
        if result.feasible:
            trace = result.trace
            plan = plan_addresses(trace)
            best_fit = replay_allocations(
                trace, capacity, strategy="best_fit",
            )
            point["best_fit_ok"] = best_fit.succeeded
            point["packed_admitted"] = packed_feasible(
                trace, capacity, plan=plan,
            )
            point["packed_peak"] = plan.packed_peak
            if point["packed_admitted"]:
                planned = replay_allocations(
                    trace, capacity, strategy="planned", plan=plan,
                )
                point["planned_ok"] = (
                    planned.succeeded and planned.plan_misses == 0
                )
        points.append(point)
    failures: list[str] = []
    rescued = [
        p for p in points
        if p["engine_feasible"] and p["best_fit_ok"] is False
        and p["packed_admitted"] and p["planned_ok"]
    ]
    if not rescued:
        failures.append(
            "admission sweep found no point where the packed-peak "
            "feedback rescues a spurious best-fit OOM"
        )
    for point in points:
        if point["packed_admitted"] and point["planned_ok"] is False:
            failures.append(
                f"b={point['batch']}: admitted by packed peak but the "
                f"planned replay failed at device capacity"
            )
    return points, failures


def headroom_failures(needed, planned_mult):
    failures: list[str] = []
    best, _ = needed["best_fit"]
    if not planned_mult < best:
        failures.append(
            f"planned needs {planned_mult:.4f}x, not strictly below "
            f"best-fit's {best:.2f}x"
        )
    if needed["best_fit"][0] > needed["first_fit"][0]:
        failures.append("best-fit needs more headroom than first-fit")
    if needed["best_fit"][0] > needed["worst_fit"][0]:
        failures.append("best-fit needs more headroom than worst-fit")
    if best > 2.0:
        failures.append("best-fit needs more than 2x headroom")
    if needed["best_fit"][1].alloc_count <= 500:
        failures.append("stream is not micro-tensor intensive")
    return failures


def headroom_rows(needed, planned_mult, planned_result):
    rows = []
    for strategy in STRATEGIES:
        multiplier, result = needed[strategy]
        rows.append([
            strategy,
            f"{multiplier:.2f}x" if multiplier != float("inf") else ">2x",
            result.alloc_count,
            f"{result.max_fragmentation:6.2%}",
        ])
    rows.append([
        "planned",
        f"{planned_mult:.4f}x",
        planned_result.alloc_count,
        f"{planned_result.max_fragmentation:6.2%}",
    ])
    return rows


# -- pytest entry point ------------------------------------------------------


@pytest.fixture(scope="module")
def trace():
    return split_heavy_trace()


def test_abl_allocator_strategies(benchmark, trace):
    from benchmarks.conftest import emit, render_table

    needed = required_headroom(trace)
    benchmark.pedantic(lambda: needed, rounds=1, iterations=1)
    plan, planned_mult, planned_result, plan_fails = planned_row(trace)
    rows = headroom_rows(needed, planned_mult, planned_result)
    lines = render_table(
        ["strategy", "needed headroom", "allocs", "max_frag"], rows,
    )
    lines.append(
        f"(chronological byte peak of the stream: "
        f"{chronological_peak(trace) / 2**30:.2f} GB; split kernels: "
        f"{trace.split_kernels}; the planned row is exact, not a grid "
        f"probe)"
    )
    emit(
        f"Ablation - pool placement strategy "
        f"(TSPLIT {REPLAY_MODEL} b={REPLAY_BATCH}, GTX 1080 Ti)",
        lines,
    )
    failures = plan_fails + headroom_failures(needed, planned_mult)
    assert failures == []


def test_abl_allocator_admission_feedback(benchmark):
    from benchmarks.conftest import emit, render_table

    points, failures = admission_sweep(SMOKE_BATCHES)
    benchmark.pedantic(lambda: points, rounds=1, iterations=1)
    rows = [
        [
            f"b={p['batch']}",
            "yes" if p["engine_feasible"] else "no",
            {True: "yes", False: "OOM", None: "-"}[p["best_fit_ok"]],
            {True: "yes", False: "no", None: "-"}[p["packed_admitted"]],
            {True: "yes", False: "FAIL", None: "-"}[p["planned_ok"]],
        ]
        for p in points
    ]
    emit(
        "Admission feedback - packed peak vs best-fit at device capacity",
        render_table(
            ["point", "engine", "best-fit", "admitted", "planned"], rows,
        ),
    )
    assert failures == []


# -- standalone entry point (CI artifact) ------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short admission ladder for CI")
    parser.add_argument("--out", default="BENCH_address_plan.json")
    args = parser.parse_args(argv)

    trace = split_heavy_trace()
    base = chronological_peak(trace)
    needed = required_headroom(trace)
    plan, planned_mult, planned_result, failures = planned_row(trace)
    failures += headroom_failures(needed, planned_mult)

    print(f"split-heavy stream: {REPLAY_MODEL} b={REPLAY_BATCH} tsplit "
          f"on GTX 1080 Ti — {trace.split_kernels} split kernels, "
          f"{planned_result.alloc_count} allocations, byte peak "
          f"{base / 2**30:.2f} GB")
    for strategy in STRATEGIES:
        multiplier, _ = needed[strategy]
        shown = f"{multiplier:.2f}x" if multiplier != float("inf") else ">2x"
        print(f"  {strategy:<12} {shown}")
    print(f"  {'planned':<12} {planned_mult:.4f}x  (exact, replay-verified)")

    batches = SMOKE_BATCHES if args.smoke else FULL_BATCHES
    points, admission_fails = admission_sweep(batches)
    failures += admission_fails
    for point in points:
        print(f"  admission b={point['batch']}: "
              f"engine={point['engine_feasible']} "
              f"best_fit={point['best_fit_ok']} "
              f"admitted={point['packed_admitted']} "
              f"planned={point['planned_ok']}")

    payload = {
        "benchmark": "address_plan",
        "mode": "smoke" if args.smoke else "full",
        "model": REPLAY_MODEL,
        "batch": REPLAY_BATCH,
        "gpu": GTX_1080TI.name,
        "split_kernels": trace.split_kernels,
        "byte_peak": base,
        "packed_peak": plan.packed_peak,
        "baseline_extent": plan.baseline_extent,
        "heuristic": plan.heuristic,
        "plan_digest": plan.digest(),
        "planned_multiplier": planned_mult,
        "online_headroom": {
            strategy: needed[strategy][0] for strategy in STRATEGIES
        },
        "planned_beats_best_fit": planned_mult < needed["best_fit"][0],
        "admission_points": points,
        "admission_rescues": sum(
            1 for p in points
            if p["engine_feasible"] and p["best_fit_ok"] is False
            and p["packed_admitted"] and p["planned_ok"]
        ),
        "failures": failures,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"planned packing needs {planned_mult:.4f}x vs best-fit's "
        f"{needed['best_fit'][0]:.2f}x; {payload['admission_rescues']} "
        f"ladder point(s) rescued from spurious best-fit OOM"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
