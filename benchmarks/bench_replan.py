"""Static plans vs the DELTA-style dynamic replanning feedback loop.

An infrastructure extension, not a paper artifact: a benchmark for the
``compile_run(replan=...)`` loop
(:mod:`repro.pipeline.replan`): chaos sweeps compare every point run
twice under the *same* seeded fault schedule — once on the compile-time
plan, once with the pressure monitor + replanner attached — across
isolated fault classes. Three contracts are CI-enforced:

1. **Never loses** — on every comparable point of every fault class the
   dynamic run ends no slower than the static run beyond the measured
   trial's revert tolerance. The controller's trial-and-revert protocol
   guarantees this by construction; the sweep checks the construction.
2. **Clean byte-identity** — at intensity 0 (and generally whenever the
   monitor stays quiet) the dynamic run is *exactly* the static run:
   zero replans and identical end-to-end time.
3. **Degraded-PCIe wins** — on the fault class replanning is built for
   (persistent link bandwidth loss) the mean end-to-end speedup is
   strictly positive: re-planning against the observed bandwidth trades
   swap traffic for recompute and beats the stale static plan.

Writes ``BENCH_replan.json`` for the CI artifact upload.

Usage::

    PYTHONPATH=src python benchmarks/bench_replan.py          # full
    PYTHONPATH=src python benchmarks/bench_replan.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.faults.chaos import replan_chaos_sweep  # noqa: E402
from repro.hardware.gpu import GPU_PRESETS  # noqa: E402
from repro.models.registry import build_model  # noqa: E402
from repro.pipeline.cache import CompileCache  # noqa: E402

#: Tolerance on "never loses": one reverted trial iteration of overhead.
REVERT_TOLERANCE = 0.02

#: Swap-heavy configurations — replanning can only react when the plan
#: actually moves bytes over the link. (model, batch, gpu, capacity
#: fraction, policy.)
FULL_CONFIGS = [
    ("bert_large", 32, "gtx_1080ti", 0.5, "tsplit"),
    ("resnet152", 64, "gtx_1080ti", 0.5, "tsplit"),
]
SMOKE_CONFIGS = [
    ("bert_large", 32, "gtx_1080ti", 0.5, "tsplit"),
    ("resnet152", 64, "gtx_1080ti", 0.5, "tsplit"),
]

FAULT_CLASSES = ["degraded_pcie", "flaky_link", "noisy", "mixed"]

#: degraded_pcie gets the deep seed ladder (>= 50 points — the paper
#: claim the acceptance criteria pin); the other classes guard the
#: never-loses contract with a lighter ladder.
FULL_INTENSITIES = (0.0, 0.5, 1.0, 2.0)
FULL_DEEP_SEEDS = 13   # x4 intensities = 52 points
FULL_LIGHT_SEEDS = 3
SMOKE_INTENSITIES = (0.0, 1.0)
SMOKE_SEEDS = 2
FULL_ITERATIONS = 4
SMOKE_ITERATIONS = 3


def run_config(
    model: str, batch: int, gpu_name: str, frac: float, policy: str,
    *, smoke: bool,
) -> tuple[list[dict], list[str]]:
    """All fault-class sweeps for one configuration."""
    graph = build_model(model, batch)
    gpu = GPU_PRESETS[gpu_name]
    if frac != 1.0:
        gpu = gpu.with_memory(int(gpu.memory_bytes * frac))
    cache = CompileCache()
    intensities = SMOKE_INTENSITIES if smoke else FULL_INTENSITIES
    iterations = SMOKE_ITERATIONS if smoke else FULL_ITERATIONS
    classes = ["degraded_pcie", "mixed"] if smoke else FAULT_CLASSES
    payloads: list[dict] = []
    failures: list[str] = []
    for fault_class in classes:
        if smoke:
            seed_count = SMOKE_SEEDS
        else:
            seed_count = (
                FULL_DEEP_SEEDS if fault_class == "degraded_pcie"
                else FULL_LIGHT_SEEDS
            )
        start = time.perf_counter()
        report = replan_chaos_sweep(
            graph, policy, gpu,
            intensities=intensities, seeds=tuple(range(seed_count)),
            iterations=iterations, fault_class=fault_class, cache=cache,
        )
        elapsed = time.perf_counter() - start
        label = f"{model} b={batch} {policy} @{frac:g}x {fault_class}"
        print(report.describe(), flush=True)
        print(f"[{label}: {len(report.points)} points in {elapsed:.1f}s]\n",
              flush=True)
        failures.extend(check_report(label, report))
        payload = report.to_dict()
        payload["elapsed_s"] = elapsed
        payloads.append(payload)
    return payloads, failures


def check_report(label: str, report) -> list[str]:
    """The three CI contracts for one sweep report."""
    failures: list[str] = []
    if not report.comparable:
        failures.append(f"{label}: no comparable points")
        return failures
    if not report.never_loses(REVERT_TOLERANCE):
        losers = [
            (p.intensity, p.seed, p.speedup) for p in report.comparable
            if p.dynamic_time > p.static_time * (1 + REVERT_TOLERANCE)
        ]
        failures.append(f"{label}: dynamic LOSES at {losers}")
    for point in report.points:
        if point.intensity == 0.0 and point.static_feasible:
            if point.replans or point.reverts:
                failures.append(
                    f"{label}: clean point seed={point.seed} replanned "
                    f"({point.replans} replans, {point.reverts} reverts)"
                )
            if point.dynamic_time != point.static_time:
                failures.append(
                    f"{label}: clean point seed={point.seed} diverged "
                    f"({point.dynamic_time} != {point.static_time})"
                )
    if report.fault_class == "degraded_pcie":
        nonzero = [p for p in report.comparable if p.intensity > 0]
        if nonzero:
            mean = sum(p.speedup for p in nonzero) / len(nonzero)
            if mean <= 1.0:
                failures.append(
                    f"{label}: no mean win under degraded PCIe "
                    f"({mean:.3f}x over {len(nonzero)} points)"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="two small sweeps for CI")
    parser.add_argument("--out", default="BENCH_replan.json")
    args = parser.parse_args(argv)

    configs = SMOKE_CONFIGS if args.smoke else FULL_CONFIGS
    sweeps: list[dict] = []
    failures: list[str] = []
    for model, batch, gpu_name, frac, policy in configs:
        payloads, errors = run_config(
            model, batch, gpu_name, frac, policy, smoke=args.smoke,
        )
        sweeps.extend(payloads)
        failures.extend(errors)

    degraded = [s for s in sweeps if s["fault_class"] == "degraded_pcie"]
    payload = {
        "benchmark": "replan",
        "mode": "smoke" if args.smoke else "full",
        "revert_tolerance": REVERT_TOLERANCE,
        "never_loses": all(s["never_loses"] for s in sweeps),
        "degraded_pcie_mean_speedup": (
            sum(s["mean_speedup"] for s in degraded) / len(degraded)
            if degraded else 0.0
        ),
        "failures": failures,
        "sweeps": sweeps,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"all contracts hold over "
        f"{sum(len(s['points']) for s in sweeps)} points "
        f"({payload['degraded_pcie_mean_speedup']:.2f}x mean speedup "
        f"on degraded PCIe)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
