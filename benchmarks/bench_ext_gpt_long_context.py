"""Extension bench: long-context GPT training.

The paper motivates TSPLIT with "larger DNNs ... such as BERT, GPT-3";
the decoder-only long-context regime is where the (N, heads, T, T)
attention scores explode quadratically. This bench sweeps sequence
length at a fixed batch and reports which policies can still train and
at what throughput. Conv-based baselines are inapplicable throughout.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, render_table
from repro.analysis.runner import run_policy
from repro.models import build_gpt

POLICIES = ["base", "vdnn_all", "checkpoints", "tsplit"]
SEQ_LENS = [512, 1024, 2048]
BATCH = 16


@pytest.fixture(scope="module")
def sweep(rtx):
    results = {}
    for seq_len in SEQ_LENS:
        graph = build_gpt(BATCH, seq_len=seq_len)
        for policy in POLICIES:
            results[(policy, seq_len)] = run_policy(graph, policy, rtx)
    return results


def test_ext_gpt_long_context(benchmark, rtx, sweep):
    benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    rows = []
    for policy in POLICIES:
        cells = [policy]
        for seq_len in SEQ_LENS:
            result = sweep[(policy, seq_len)]
            cells.append(
                f"{result.throughput:.1f}/s" if result.feasible else "OOM"
            )
        rows.append(cells)
    lines = render_table(
        ["policy"] + [f"T={s}" for s in SEQ_LENS], rows,
    )
    lines.append(f"(GPT-2-small shapes, batch {BATCH}, TITAN RTX)")
    emit("Extension - long-context GPT training", lines)

    # TSPLIT trains at least as long a context as every baseline, and is
    # at least as fast wherever both are feasible.
    for seq_len in SEQ_LENS:
        tsplit = sweep[("tsplit", seq_len)]
        for policy in POLICIES:
            rival = sweep[(policy, seq_len)]
            if rival.feasible:
                assert tsplit.feasible, (policy, seq_len)
                assert tsplit.throughput >= rival.throughput * 0.95
    # The longest context is TSPLIT-only or infeasible for some baseline.
    longest = SEQ_LENS[-1]
    assert sweep[("tsplit", longest)].feasible
    assert not all(
        sweep[(policy, longest)].feasible for policy in POLICIES
    )
