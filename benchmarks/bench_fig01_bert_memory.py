"""Figure 1: BERT-Large memory requirement vs model scale.

The paper sweeps sample scale (batch 4..64) x parameter scale (hidden
768..2560) and marks, per GPU, the largest trainable scale without
memory optimisation. We regenerate the grid and the per-GPU frontiers.
"""

from __future__ import annotations

from benchmarks.conftest import emit, render_series
from repro.hardware.gpu import P100, RTX_TITAN, V100_16GB, V100_32GB
from repro.models.bert import build_bert_large
from repro.units import GB

BATCHES = [4, 8, 16, 32, 64]
HIDDENS = [768, 1024, 1280, 1536, 2048]
GPUS = [P100, V100_16GB, V100_32GB, RTX_TITAN]


def full_grid() -> dict[tuple[int, int], int]:
    result: dict[tuple[int, int], int] = {}
    for hidden in HIDDENS:
        for batch in BATCHES:
            graph = build_bert_large(batch, hidden=hidden)
            from repro.analysis.footprint import model_memory_requirement

            result[(batch, hidden)] = model_memory_requirement(graph)
    return result


def test_fig01_bert_memory_requirement(benchmark):
    grid = benchmark.pedantic(full_grid, rounds=1, iterations=1)
    series = {
        f"h={hidden}": [grid[(b, hidden)] / GB for b in BATCHES]
        for hidden in HIDDENS
    }
    lines = render_series("batch", BATCHES, series, fmt="{:8.1f}")
    lines.append("")
    lines.append("max trainable scale (batch x hidden) without optimisation:")
    for gpu in GPUS:
        fit = [
            (b, h) for (b, h), peak in grid.items()
            if peak <= gpu.memory_bytes
        ]
        best = max(fit, key=lambda bh: bh[0] * bh[1], default=None)
        lines.append(f"  {gpu.name:12s} ({gpu.memory_bytes / GB:.0f} GB): "
                     f"{best[0]} x {best[1]}" if best else
                     f"  {gpu.name:12s}: none")
    emit("Figure 1 - BERT-Large memory requirement (GB)", lines)

    # Shape assertions: memory grows along both axes; bigger GPUs train
    # strictly larger scales.
    assert grid[(64, 1024)] > grid[(4, 1024)]
    assert grid[(16, 2048)] > grid[(16, 768)]
    fits = {
        gpu.name: sum(
            1 for peak in grid.values() if peak <= gpu.memory_bytes
        )
        for gpu in GPUS
    }
    assert fits[V100_32GB.name] >= fits[V100_16GB.name] >= 0
    assert fits[RTX_TITAN.name] >= fits[P100.name]
