"""Figure 2: SuperNeurons' memory peaks and overheads.

(a) the memory-usage timeline of SuperNeurons executing VGG-16 shows
repeated high peaks; (b) across five models SuperNeurons pays a
25-45% performance overhead at ~45% average PCIe utilisation.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit, render_table
from repro.analysis.runner import evaluate

MODELS_2B = [
    ("vgg16", 256), ("vgg19", 256), ("resnet50", 256),
    ("resnet101", 192), ("inception_v4", 96),
]


@pytest.fixture(scope="module")
def vgg_trace(rtx):
    result = evaluate("vgg16", "superneurons", rtx, 256)
    assert result.feasible, result.failure
    return result.trace


def test_fig02a_memory_peaks(benchmark, rtx, vgg_trace):
    curve = benchmark.pedantic(vgg_trace.memory_curve, rounds=1, iterations=1)
    used = curve[:, 1]
    mean = used.mean()
    # Count local maxima above 1.2x the mean usage: the "multiple high
    # memory peaks" of Figure 2(a).
    peaks = 0
    for i in range(1, len(used) - 1):
        if used[i] > used[i - 1] and used[i] >= used[i + 1] and used[i] > 1.2 * mean:
            peaks += 1
    quantiles = np.percentile(used, [50, 90, 99, 100]) / 2**30
    emit("Figure 2a - SuperNeurons VGG-16 memory timeline", [
        f"samples: {len(used)}  mean {mean / 2**30:.2f} GB",
        f"p50/p90/p99/max: "
        + " / ".join(f"{q:.2f} GB" for q in quantiles),
        f"high peaks (>1.2x mean): {peaks}",
    ])
    assert peaks >= 3, "SuperNeurons should show multiple memory peaks"
    assert used.max() > 1.3 * mean


def test_fig02b_overhead_and_pcie(benchmark, rtx):
    def measure():
        rows = []
        for model, batch in MODELS_2B:
            base_result = evaluate(model, "base", rtx, batch)
            sn_result = evaluate(model, "superneurons", rtx, batch)
            rows.append((model, batch, base_result, sn_result))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = []
    overheads = []
    pcie_utils = []
    for model, batch, base_result, sn_result in rows:
        if not (base_result.feasible and sn_result.feasible):
            table.append([model, batch, "x", "x"])
            continue
        overhead = (
            sn_result.iteration_time / base_result.iteration_time - 1.0
        )
        overheads.append(overhead)
        pcie_utils.append(sn_result.trace.pcie_utilization)
        table.append([
            model, batch, f"{overhead:6.1%}",
            f"{sn_result.trace.pcie_utilization:6.1%}",
        ])
    lines = render_table(
        ["model", "batch", "overhead", "pcie_util"], table,
    )
    lines.append(
        f"mean PCIe utilisation: {np.mean(pcie_utils):.1%} "
        f"(paper: 45.6%)"
    )
    emit("Figure 2b - SuperNeurons overhead & PCIe utilisation", lines)
    # Shape: consistent overhead, substantial but non-saturated PCIe.
    assert all(o > 0.1 for o in overheads)
    assert 0.25 < float(np.mean(pcie_utils)) < 0.75
