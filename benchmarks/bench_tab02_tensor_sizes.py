"""Table II: tensor-size distribution of BERT-Large.

The paper reports, at its evaluation configuration, a heavy tail of very
large tensors (13.41% above 500 MB) to motivate sub-tensor memory
operations. We regenerate the histogram at BERT-Large fine-tuning scale.
"""

from __future__ import annotations

from benchmarks.conftest import emit, render_table
from repro.analysis.distribution import SIZE_BUCKETS, tensor_size_distribution
from repro.models.bert import build_bert_large


def distribution():
    # Large-scale configuration: big batch and long sequences produce
    # the >100 MB attention/FFN tensors the paper's Table II shows.
    graph = build_bert_large(64, seq_len=512)
    by_count = tensor_size_distribution(graph)
    by_bytes = tensor_size_distribution(graph, weight_by_bytes=True)
    return by_count, by_bytes


def test_tab02_tensor_size_distribution(benchmark):
    by_count, by_bytes = benchmark.pedantic(
        distribution, rounds=1, iterations=1,
    )
    rows = [
        [label, f"{by_count[label]:7.2%}", f"{by_bytes[label]:7.2%}"]
        for label, _, _ in SIZE_BUCKETS
    ]
    emit("Table II - BERT-Large tensor size distribution", render_table(
        ["bucket", "by count", "by bytes"], rows,
    ))
    # Shape assertions: a meaningful fraction of large tensors exists,
    # and large tensors dominate the byte mass (the paper's motivation
    # for splitting).
    large_count = by_count["100 ~ 500MB"] + by_count["> 500MB"]
    large_bytes = by_bytes["100 ~ 500MB"] + by_bytes["> 500MB"]
    assert large_count > 0.03
    assert large_bytes > 0.3
    assert abs(sum(by_count.values()) - 1.0) < 1e-9
