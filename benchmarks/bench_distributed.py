"""Multi-GPU cluster benchmark: rank scaling across parallelism modes.

An infrastructure extension rather than a paper table: the TSPLIT paper
is single-GPU, but its planner co-planning each rank of a simulated
cluster is what the cluster subsystem exists for. Three sections:

* **scaling** — per-rank peak memory and step time versus rank count
  for data-parallel, multi-rank ZeRO sharding and 1F1B pipeline modes,
  with TSPLIT planning every rank (the per-rank batch is held constant,
  so ranks add throughput, not relief);
* **zero_shard_vs_offload** — 4-rank ZeRO sharding against the paper's
  single-GPU ``zero_offload`` baseline on ``gpt`` at the same per-rank
  batch, asserting the sharded ranks peak *lower* than the offload rank
  (shards stay on device yet beat streaming the full state over PCIe);
* **tsplit_admission** — a data-parallel batch that OOMs under the
  ``base`` policy on every rank but trains once TSPLIT co-plans
  split/swap/recompute per rank, asserting the admission.

Usage::

    PYTHONPATH=src python benchmarks/bench_distributed.py          # full
    PYTHONPATH=src python benchmarks/bench_distributed.py --smoke  # CI-sized

Not a pytest benchmark: the point is a machine-readable artifact
(``BENCH_distributed.json``) CI can upload and compare across commits.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.cluster_sweep import (  # noqa: E402
    ClusterPointSpec,
    run_cluster_point,
)
from repro.analysis.runner import evaluate  # noqa: E402
from repro.hardware.gpu import GPU_PRESETS  # noqa: E402
from repro.pipeline import CompileCache  # noqa: E402

#: (model, per-rank batch) for the scaling matrix. Batches match the
#: regimes BENCH_planner.json exercises, scaled down to per-rank size.
FULL_MODELS = [("bert_large", 32), ("gpt", 2)]
SMOKE_MODELS = [("transformer", 8)]

MODES = ("dp", "zero_shard", "pp")


def bench_scaling(
    models, worlds, gpu_name: str, cache: CompileCache,
) -> list[dict]:
    """Per-rank peak and step time versus rank count, TSPLIT per rank."""
    rows: list[dict] = []
    gpu = GPU_PRESETS[gpu_name]
    for model, per_rank in models:
        for mode in MODES:
            for world in worlds:
                spec = ClusterPointSpec(
                    model=model, policy="tsplit", batch=per_rank * world,
                    gpu=gpu, world=world, mode=mode,
                )
                started = time.perf_counter()
                point = run_cluster_point(spec, cache=cache)
                wall = time.perf_counter() - started
                row = {
                    "model": model,
                    "mode": mode,
                    "world": world,
                    "per_rank_batch": per_rank,
                    "gpu": gpu_name,
                    "feasible": point.feasible,
                    "compile_wall_s": wall,
                }
                if point.feasible:
                    row.update({
                        "step_time_s": point.makespan,
                        "throughput": point.throughput,
                        "per_rank_peak": max(point.per_rank_peak),
                        "comm_busy_s": max(point.comm_busy),
                        "collective_gb": max(point.collective_bytes) / 1e9,
                    })
                else:
                    row["failure"] = point.failure
                rows.append(row)
                status = (
                    f"{row.get('step_time_s', 0) * 1e3:7.1f} ms "
                    f"peak={row.get('per_rank_peak', 0) / 2**30:5.2f} GiB"
                    if point.feasible else "INFEASIBLE"
                )
                print(
                    f"{model:12s} {mode:10s} world={world}  {status}",
                    flush=True,
                )
    return rows


def bench_zero_vs_offload(
    gpu_name: str, per_rank: int, cache: CompileCache,
) -> dict:
    """4-rank ZeRO sharding vs the single-GPU zero_offload baseline."""
    gpu = GPU_PRESETS[gpu_name]
    offload = evaluate("gpt", "zero_offload", gpu, per_rank, cache=cache)
    if not offload.feasible or offload.trace is None:
        raise AssertionError(
            f"zero_offload baseline infeasible: {offload.failure}"
        )
    sharded = run_cluster_point(ClusterPointSpec(
        model="gpt", policy="tsplit", batch=per_rank * 4,
        gpu=gpu, world=4, mode="zero_shard",
    ), cache=cache)
    if not sharded.feasible:
        raise AssertionError(f"zero_shard infeasible: {sharded.failure}")
    offload_peak = offload.trace.peak_memory
    shard_peak = max(sharded.per_rank_peak)
    if shard_peak >= offload_peak:
        raise AssertionError(
            f"4-rank zero_shard peak {shard_peak} should undercut "
            f"1-rank zero_offload peak {offload_peak}"
        )
    return {
        "model": "gpt",
        "gpu": gpu_name,
        "per_rank_batch": per_rank,
        "zero_offload_peak": offload_peak,
        "zero_shard_world": 4,
        "zero_shard_peak": shard_peak,
        "shard_undercuts_offload": True,
    }


def bench_tsplit_admission(gpu_name: str, cache: CompileCache) -> dict:
    """A per-rank batch only TSPLIT co-planning admits."""
    gpu = GPU_PRESETS[gpu_name]
    config = dict(
        model="bert_large", batch=512, gpu=gpu, world=2, mode="dp",
    )
    base = run_cluster_point(
        ClusterPointSpec(policy="base", **config), cache=cache,
    )
    tsplit = run_cluster_point(
        ClusterPointSpec(policy="tsplit", **config), cache=cache,
    )
    if base.feasible:
        raise AssertionError(
            "expected the base policy to OOM at batch 512 on 2 ranks"
        )
    if not tsplit.feasible:
        raise AssertionError(
            f"TSPLIT should admit the batch base OOMs on: {tsplit.failure}"
        )
    return {
        "model": "bert_large",
        "gpu": gpu_name,
        "world": 2,
        "global_batch": 512,
        "base_feasible": False,
        "base_failure": base.failure,
        "tsplit_feasible": True,
        "tsplit_step_time_s": tsplit.makespan,
        "tsplit_per_rank_peak": max(tsplit.per_rank_peak),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized matrix (one small model, 2 ranks)")
    parser.add_argument("--out", default="BENCH_distributed.json")
    args = parser.parse_args()

    cache = CompileCache()
    models = SMOKE_MODELS if args.smoke else FULL_MODELS
    worlds = (1, 2) if args.smoke else (1, 2, 4)

    scaling = bench_scaling(models, worlds, "v100_16gb", cache)

    zero = bench_zero_vs_offload("v100_16gb", 2, cache)
    print(
        f"\nzero_shard x4 peak {zero['zero_shard_peak'] / 2**30:.2f} GiB "
        f"< zero_offload peak {zero['zero_offload_peak'] / 2**30:.2f} GiB",
        flush=True,
    )

    admission = bench_tsplit_admission("v100_16gb", cache)
    print(
        f"tsplit admits bert_large b={admission['global_batch']} on "
        f"{admission['world']} ranks (base: OOM) at "
        f"{admission['tsplit_step_time_s'] * 1e3:.1f} ms/step",
        flush=True,
    )

    payload = {
        "benchmark": "distributed",
        "smoke": args.smoke,
        "scaling": scaling,
        "zero_shard_vs_offload": zero,
        "tsplit_admission": admission,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    feasible = sum(1 for row in scaling if row["feasible"])
    print(
        f"\nwrote {args.out}: {feasible}/{len(scaling)} scaling points "
        f"feasible, both cluster claims hold",
        flush=True,
    )


if __name__ == "__main__":
    main()
