"""Disabled-memscope overhead benchmark for the plan+run pipeline.

An infrastructure guard rather than a paper table: it enforces the
memscope observatory's two-sided contract from DESIGN.md §13.

1. **Byte identity** — the execution trace of a ``compile_run`` with a
   :class:`MemscopeObserver` attached is byte-for-byte identical to one
   without it. Memscope is a pure observer: it derives its shadow
   address space from callbacks and never feeds anything back into the
   engine, so this must hold exactly (asserted, not sampled).
2. **Disabled-path cost under 2 %** — with no observer attached, the
   only residue this subsystem leaves in the plan+run hot path is a
   ``recorder is None`` branch per pool event and a stall-event append
   per engine stall. The microbenchmark times those primitives in a
   tight loop, multiplies by a generous hook census taken from the
   real run (every alloc event twice, every stall once), and asserts
   the estimate stays **under 2 %** of the measured plan+run wall
   time. Like the telemetry bench, the microbenchmark bound is what CI
   enforces; the end-to-end delta of two noisy runs is reported
   informationally.

It also writes the artifacts CI uploads: ``BENCH_memscope.json`` and a
sample merged Perfetto trace (engine slices + memscope address-space
counter tracks) from an enabled run.

Usage::

    PYTHONPATH=src python benchmarks/bench_memscope_overhead.py          # full
    PYTHONPATH=src python benchmarks/bench_memscope_overhead.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import telemetry  # noqa: E402
from repro.analysis.memscope import MemscopeObserver, run_memscope  # noqa: E402
from repro.hardware.gpu import GPU_PRESETS  # noqa: E402
from repro.hardware.memory_pool import MemoryPool  # noqa: E402
from repro.models.registry import build_model  # noqa: E402
from repro.pipeline.cache import CompileCache  # noqa: E402
from repro.pipeline.compile import compile_run  # noqa: E402
from repro.runtime.observers import TraceObserver  # noqa: E402

#: CI-enforced ceiling on the estimated disabled-path overhead.
MAX_DISABLED_OVERHEAD = 0.02

FULL_CONFIG = ("vgg16", 512, "gtx_1080ti")
SMOKE_CONFIG = ("vgg16", 256, "gtx_1080ti")


def _time_loop(fn, n: int = 100_000) -> float:
    """Per-call seconds of ``fn`` over ``n`` iterations."""
    start = time.perf_counter()
    for _ in range(n):
        fn()
    return (time.perf_counter() - start) / n


def microbench_disabled_hooks() -> dict:
    """Per-call cost of every disabled memscope primitive.

    ``recorder_none_check`` is the branch a recorder-less pool pays per
    alloc/free; ``stall_append`` is what the engine's TraceObserver pays
    per stall to keep ``trace.stall_events``. ``pool_event_residue``
    additionally includes the shape-stat mirror
    (``_update_shape_stats``) — reported informationally, because that
    mirror is the pool's own stat-reporting feature (allocator replay
    and OOM forensics read it), not residue the plan+run pipeline pays:
    the engine accounts bytes in a ledger and never drives a
    MemoryPool.
    """
    pool = MemoryPool(capacity=1 << 20)

    def recorder_none_check():
        if pool.recorder is not None:  # pragma: no cover - always False
            raise AssertionError

    def pool_event_residue():
        if pool.recorder is not None:  # pragma: no cover - always False
            raise AssertionError
        pool._update_shape_stats()

    stalls: list[tuple[float, str, int, float]] = []

    def stall_append():
        stalls.append((0.0, "x", 0, 0.0))
        if len(stalls) > 4096:
            stalls.clear()

    return {
        "recorder_none_check_s": _time_loop(recorder_none_check),
        "pool_event_residue_s": _time_loop(pool_event_residue),
        "stall_append_s": _time_loop(stall_append),
    }


def estimate_overhead(hooks: dict, alloc_events: int, stalls: int) -> float:
    """Upper-bound seconds of disabled-path work in one compile+run.

    Hook census: one stall-event append per engine stall, plus —
    generously, since the engine's ledger never touches a MemoryPool —
    two recorder-``None`` branches per alloc event (one alloc + one
    free) in case a pool-backed execution path is ever wired in. The
    shape-stat mirror is deliberately excluded: it only runs inside
    pool-driving analyses (allocator replay, memscope itself), whose
    callers asked for exactly those statistics.
    """
    return (
        2 * alloc_events * hooks["recorder_none_check_s"]
        + stalls * hooks["stall_append_s"]
    )


def trace_bytes(trace) -> bytes:
    """Canonical serialization for byte-identity comparison."""
    return json.dumps(
        dataclasses.asdict(trace), sort_keys=True, default=str,
    ).encode()


def run_pipeline(model: str, batch: int, gpu_name: str, *,
                 memscope: bool) -> dict:
    """One timed compile_run, with or without a MemscopeObserver."""
    graph = build_model(model, batch)
    gpu = GPU_PRESETS[gpu_name]
    observers = [TraceObserver()]
    scope = None
    if memscope:
        scope = MemscopeObserver()
        observers.append(scope)
    start = time.perf_counter()
    run = compile_run(graph, "tsplit", gpu, cache=CompileCache(),
                      observers=tuple(observers))
    elapsed = time.perf_counter() - start
    if not run.result.feasible:
        raise AssertionError(f"{model} b={batch} {gpu_name}: infeasible")
    trace = run.result.trace
    return {
        "elapsed_s": elapsed,
        "alloc_events": len(trace.alloc_events),
        "stalls": len(trace.stall_events),
        "records": len(scope.pool.recorder.records) if scope else 0,
        "_trace": trace,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="smaller batch for CI")
    parser.add_argument("--out", default="BENCH_memscope.json")
    parser.add_argument("--trace-out", default="memscope_trace.json")
    args = parser.parse_args(argv)

    model, batch, gpu_name = SMOKE_CONFIG if args.smoke else FULL_CONFIG

    hooks = microbench_disabled_hooks()
    for name, per_call in sorted(hooks.items()):
        print(f"{name:24s} {per_call * 1e9:8.1f} ns/call", flush=True)

    disabled = run_pipeline(model, batch, gpu_name, memscope=False)
    enabled = run_pipeline(model, batch, gpu_name, memscope=True)

    # Contract 1: attaching memscope never perturbs the execution trace.
    identical = trace_bytes(disabled["_trace"]) == trace_bytes(
        enabled["_trace"],
    )
    assert identical, "memscope observer perturbed the execution trace"
    print("byte-identity: traces with/without memscope are identical")

    # Contract 2: the disabled-path residue stays under the ceiling.
    estimated = estimate_overhead(
        hooks, disabled["alloc_events"], disabled["stalls"],
    )
    ratio = estimated / disabled["elapsed_s"]
    e2e_delta = (
        (enabled["elapsed_s"] - disabled["elapsed_s"])
        / disabled["elapsed_s"]
    )
    print(
        f"\n{model} b={batch} {gpu_name}: plan+run "
        f"{disabled['elapsed_s']:.2f}s disabled, "
        f"{enabled['elapsed_s']:.2f}s with memscope "
        f"(e2e delta {e2e_delta:+.1%}, informational; "
        f"{enabled['records']} provenance records)"
    )
    print(
        f"estimated disabled-path overhead: {estimated * 1e3:.3f} ms "
        f"= {ratio:.4%} of plan+run (limit {MAX_DISABLED_OVERHEAD:.0%})"
    )

    # Sample merged Perfetto trace: engine slices + address-space tracks.
    sample = run_memscope(
        model, "tsplit", GPU_PRESETS[gpu_name], batch,
        cache=CompileCache(), with_chrome=True,
    )
    telemetry.write_trace(args.trace_out, sample.merged_trace())

    payload = {
        "benchmark": "memscope_overhead",
        "mode": "smoke" if args.smoke else "full",
        "config": {"model": model, "batch": batch, "gpu": gpu_name},
        "hooks_ns": {k: v * 1e9 for k, v in hooks.items()},
        "disabled": {k: v for k, v in disabled.items() if k != "_trace"},
        "enabled": {k: v for k, v in enabled.items() if k != "_trace"},
        "traces_identical": identical,
        "estimated_overhead_s": estimated,
        "estimated_overhead_ratio": ratio,
        "e2e_delta_ratio": e2e_delta,
        "limit": MAX_DISABLED_OVERHEAD,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}, {args.trace_out}")

    assert ratio < MAX_DISABLED_OVERHEAD, (
        f"disabled memscope overhead {ratio:.4%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%} of plan+run time"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
