"""Figure 12: throughput vs sample size on the TITAN RTX.

Four workloads (VGG-16, ResNet-50, Inception-V4, Transformer). The paper
plots the speedup over vDNN; we print raw samples/second for every
policy plus the speedups against vDNN-all (its weakest-throughput swap
baseline). Expected shape: TSPLIT tracks Base while memory is ample,
degrades gracefully under over-subscription, and stays above
SuperNeurons / Checkpoints / vDNN at every feasible point.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, render_series
from repro.analysis.throughput import speedups_over, throughput_sweep

POLICIES = [
    "base", "vdnn_conv", "vdnn_all", "checkpoints", "superneurons", "tsplit",
]

SWEEPS = [
    ("vgg16", [32, 64, 128, 256, 384, 512]),
    ("resnet50", [64, 128, 256, 384, 512]),
    ("inception_v4", [32, 64, 96, 128, 160]),
    ("transformer", [16, 32, 48, 64, 96]),
]


@pytest.fixture(scope="module")
def sweeps(rtx):
    return {
        model: throughput_sweep(model, POLICIES, batches, rtx)
        for model, batches in SWEEPS
    }


def test_fig12_throughput_on_rtx(benchmark, rtx, sweeps):
    benchmark.pedantic(lambda: sweeps, rounds=1, iterations=1)
    for model, batches in SWEEPS:
        points = sweeps[model]
        series = {}
        for policy in POLICIES:
            series[policy] = [
                next(
                    (p.throughput for p in points
                     if p.policy == policy and p.batch == b), 0.0,
                )
                for b in batches
            ]
        lines = render_series("batch", batches, series)
        speedups = speedups_over(points, "vdnn_all")
        tsplit_speedups = [
            f"{speedups.get(('tsplit', b), float('nan')):.2f}x"
            for b in batches if ("tsplit", b) in speedups
        ]
        lines.append(
            "TSPLIT speedup over vDNN-all: " + " ".join(tsplit_speedups)
        )
        emit(f"Figure 12 - throughput on TITAN RTX: {model}", lines)

    # Shape assertions per model.
    for model, batches in SWEEPS:
        points = {(p.policy, p.batch): p for p in sweeps[model]}
        for batch in batches:
            tsplit = points[("tsplit", batch)]
            if not tsplit.feasible:
                continue
            for rival in ("vdnn_all", "checkpoints", "superneurons"):
                rival_point = points.get((rival, batch))
                if rival_point and rival_point.feasible:
                    assert tsplit.throughput >= rival_point.throughput * 0.95, (
                        model, batch, rival,
                    )
        # TSPLIT survives at least as far as every baseline.
        for policy in POLICIES:
            last_feasible = max(
                (b for b in batches if points[(policy, b)].feasible),
                default=0,
            )
            tsplit_last = max(
                (b for b in batches if points[("tsplit", b)].feasible),
                default=0,
            )
            assert tsplit_last >= last_feasible, (model, policy)
