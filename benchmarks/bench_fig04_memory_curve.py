"""Figure 4: memory requirement and live-tensor curves, with and
without memory optimisation.

The paper's toy graph (Figure 3) is a two-conv network; the optimised
execution frees feature maps in the forward pass and re-generates them
towards the tail, trading a lower peak for more live tensors late.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit, render_series
from repro.core.plan import MemOption, Plan, TensorConfig
from repro.core.simulate import simulate_memory, tensor_timeline
from repro.graph.autodiff import build_training_graph
from repro.graph.liveness import compute_liveness, live_tensor_counts, memory_curve
from repro.graph.scheduler import dfs_schedule
from repro.models.layers import ModelBuilder


def figure3_graph():
    """The paper's Figure 3 pattern, deep enough for the forward sum of
    feature maps (the Base peak) to exceed any one backward working set."""
    builder = ModelBuilder("fig3", 32)
    x = builder.input_image(3, 64, 64)
    for block, channels in enumerate((32, 64, 96, 128), start=1):
        x = builder.conv2d(x, channels, 3, name=f"conv{block}")
        x = builder.relu(x, name=f"act{block}")
        if block % 2 == 0:
            x = builder.maxpool(x, 2, name=f"pool{block}")
    flat = builder.flatten(x)
    logits = builder.linear(flat, 10, name="fc")
    loss = builder.cross_entropy_loss(logits)
    return build_training_graph(builder.graph, loss)


def curves():
    graph = figure3_graph()
    schedule = dfs_schedule(graph)
    liveness = compute_liveness(graph, schedule)
    base_curve = memory_curve(graph, schedule)
    counts = live_tensor_counts(graph, schedule)
    # Optimised: evict every feature map with a backward use.
    plan = Plan(policy="optimised")
    for tensor in graph.activations():
        timeline = tensor_timeline(graph, liveness, tensor)
        if timeline and timeline.bwd_uses:
            plan.set(tensor.tensor_id, TensorConfig(opt=MemOption.SWAP))
    opt_curve = simulate_memory(graph, schedule, plan)
    return graph, schedule, base_curve, opt_curve, counts


def test_fig04_memory_and_live_tensor_curves(benchmark):
    graph, schedule, base_curve, opt_curve, counts = benchmark.pedantic(
        curves, rounds=1, iterations=1,
    )
    xs = list(range(len(schedule)))
    lines = render_series("step", xs, {
        "M_base(MB)": list(base_curve / 2**20),
        "M_opt(MB)": list(opt_curve / 2**20),
        "live": [float(c) for c in counts],
    }, fmt="{:10.2f}")
    emit("Figure 4 - memory requirement and live tensors", lines)

    # Shape: optimisation lowers the peak...
    assert opt_curve.max() < base_curve.max()
    # ...and the optimised curve's relative tail (re-generation) is
    # heavier: the tail share of total memory-time grows.
    split = len(schedule) * 2 // 3
    base_tail_share = base_curve[split:].sum() / base_curve.sum()
    opt_tail_share = opt_curve[split:].sum() / opt_curve.sum()
    assert opt_tail_share > base_tail_share
    # The peak sits mid-execution (rise through forward, fall through
    # backward).
    assert 0 < int(np.argmax(base_curve)) < len(schedule) - 1
