"""Legacy setup shim: enables `pip install -e . --no-use-pep517` in offline
environments where the `wheel` package (needed by PEP 660 editable builds
with older setuptools) is unavailable. Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
