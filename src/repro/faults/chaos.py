"""Chaos sweeps: fault-intensity ladders over one configuration.

A chaos sweep answers "is this plan robust, not just optimal": it
compiles and runs one (model, policy, GPU) configuration clean, then
re-runs it across a ladder of fault intensities × seeds and reports the
slowdown and recovery statistics of every point. The
``python -m repro chaos`` command is a thin wrapper over
:func:`chaos_sweep`.

Intensity is a single scalar knob mapped onto the individual
:class:`~repro.faults.model.FaultConfig` axes by
:func:`intensity_config`: intensity 0 is the all-zero (null) config —
timing-identical to a clean run by the fault model's construction —
and intensity 1 is an already-hostile device (±5 % kernel jitter, ±10 %
bandwidth jitter, 25 % persistent bandwidth loss, 15 % transfer-failure
rate). Sweeps typically ladder 0 → 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.errors import HardwareError
from repro.faults.model import FaultConfig
from repro.hardware.gpu import GPUSpec
from repro.units import format_bytes, format_time

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.graph.graph import Graph
    from repro.pipeline.cache import CompileCache

#: Per-unit-intensity slope of each fault axis (see intensity_config).
_KERNEL_NOISE_SLOPE = 0.05
_PCIE_JITTER_SLOPE = 0.10
_PCIE_DEGRADATION_SLOPE = 0.25
_FAILURE_RATE_SLOPE = 0.15
#: Ceilings keeping high intensities valid FaultConfigs.
_MAX_DEGRADATION = 0.75
_MAX_FAILURE_RATE = 0.90


def intensity_config(
    intensity: float,
    seed: int = 0,
    *,
    emergency_eviction: bool = True,
) -> FaultConfig:
    """Map a scalar intensity onto a :class:`FaultConfig`.

    Intensity 0 yields the null config (every noise term zero — the
    fault model then never draws from its RNG and timing is identical
    to a clean run); degradation and failure rate saturate at ceilings
    that keep arbitrarily large intensities valid.
    """
    if intensity < 0:
        raise HardwareError(f"chaos intensity must be >= 0, got {intensity}")
    return FaultConfig(
        seed=seed,
        kernel_noise=_KERNEL_NOISE_SLOPE * intensity,
        pcie_jitter=_PCIE_JITTER_SLOPE * intensity,
        pcie_degradation=min(
            _MAX_DEGRADATION, _PCIE_DEGRADATION_SLOPE * intensity,
        ),
        transfer_failure_rate=min(
            _MAX_FAILURE_RATE, _FAILURE_RATE_SLOPE * intensity,
        ),
        emergency_eviction=emergency_eviction,
    )


def artifact_name(
    prefix: str,
    model: str,
    policy: str,
    *,
    intensity: float | None = None,
    seed: int | None = None,
    suffix: str = "",
    ext: str = "json",
) -> str:
    """A collision-free file name for one sweep artifact.

    Embeds everything that distinguishes parallel ``repro chaos``
    invocations — model, policy and (when given) the fault intensity
    and seed — so concurrent sweeps writing into one directory never
    overwrite each other's traces. Path-hostile characters in the
    identifying parts are flattened to ``-``.
    """
    def clean(part: str) -> str:
        return "".join(
            ch if ch.isalnum() or ch in "._-" else "-" for ch in part
        )

    parts = [clean(prefix), clean(model), clean(policy)]
    if intensity is not None:
        parts.append(f"i{intensity:g}")
    if seed is not None:
        parts.append(f"s{seed}")
    if suffix:
        parts.append(clean(suffix))
    return "_".join(parts) + f".{ext}"


def fault_class_config(
    fault_class: str,
    intensity: float,
    seed: int = 0,
    *,
    emergency_eviction: bool = True,
) -> FaultConfig:
    """A :class:`FaultConfig` exercising one isolated fault class.

    ``mixed`` is :func:`intensity_config` (every axis at once);
    ``degraded_pcie`` loses persistent link bandwidth only (the fault
    class dynamic replanning is built to win), ``flaky_link`` injects
    transient transfer failures only, and ``noisy`` jitters kernel and
    link timing without any persistent shift.
    """
    if intensity < 0:
        raise HardwareError(f"chaos intensity must be >= 0, got {intensity}")
    if fault_class == "mixed":
        return intensity_config(
            intensity, seed, emergency_eviction=emergency_eviction,
        )
    if fault_class == "degraded_pcie":
        return FaultConfig(
            seed=seed,
            pcie_degradation=min(
                _MAX_DEGRADATION, _PCIE_DEGRADATION_SLOPE * 2.0 * intensity,
            ),
            emergency_eviction=emergency_eviction,
        )
    if fault_class == "flaky_link":
        return FaultConfig(
            seed=seed,
            transfer_failure_rate=min(
                _MAX_FAILURE_RATE, _FAILURE_RATE_SLOPE * 2.0 * intensity,
            ),
            emergency_eviction=emergency_eviction,
        )
    if fault_class == "noisy":
        return FaultConfig(
            seed=seed,
            kernel_noise=_KERNEL_NOISE_SLOPE * intensity,
            pcie_jitter=_PCIE_JITTER_SLOPE * intensity,
            emergency_eviction=emergency_eviction,
        )
    raise HardwareError(
        f"unknown fault class {fault_class!r}; expected one of "
        f"'mixed', 'degraded_pcie', 'flaky_link', 'noisy'"
    )


@dataclass(frozen=True)
class ChaosPoint:
    """One (intensity, seed) run of the sweep."""

    intensity: float
    seed: int
    feasible: bool
    failure: str = ""
    iteration_time: float = 0.0
    #: Iteration time relative to the clean run (1.0 = no slowdown).
    slowdown: float = 0.0
    peak_memory: int = 0
    transfer_retries: int = 0
    retry_backoff_time: float = 0.0
    emergency_evictions: int = 0
    emergency_evicted_bytes: int = 0
    emergency_refetches: int = 0
    recovered_skips: int = 0

    @property
    def recovery_actions(self) -> int:
        return (
            self.transfer_retries
            + self.emergency_evictions
            + self.emergency_refetches
            + self.recovered_skips
        )

    def to_dict(self) -> dict:
        return {
            "intensity": self.intensity,
            "seed": self.seed,
            "feasible": self.feasible,
            "failure": self.failure,
            "iteration_time_s": self.iteration_time,
            "slowdown": self.slowdown,
            "peak_memory_bytes": self.peak_memory,
            "transfer_retries": self.transfer_retries,
            "retry_backoff_time_s": self.retry_backoff_time,
            "emergency_evictions": self.emergency_evictions,
            "emergency_evicted_bytes": self.emergency_evicted_bytes,
            "emergency_refetches": self.emergency_refetches,
            "recovered_skips": self.recovered_skips,
            "recovery_actions": self.recovery_actions,
        }


@dataclass
class ChaosReport:
    """Clean baseline + every chaos point of one sweep."""

    model: str
    policy: str
    gpu: str
    batch: int
    capacity_bytes: int
    clean_feasible: bool
    clean_failure: str = ""
    clean_iteration_time: float = 0.0
    clean_peak_memory: int = 0
    points: list[ChaosPoint] = field(default_factory=list)

    @property
    def survived(self) -> int:
        """Chaos points that completed (recovered from every fault)."""
        return sum(1 for p in self.points if p.feasible)

    @property
    def survival_rate(self) -> float:
        return self.survived / len(self.points) if self.points else 0.0

    @property
    def worst_slowdown(self) -> float:
        """Largest slowdown among the surviving chaos points."""
        feasible = [p.slowdown for p in self.points if p.feasible]
        return max(feasible) if feasible else 0.0

    @property
    def total_recovery_actions(self) -> int:
        return sum(p.recovery_actions for p in self.points)

    def to_dict(self) -> dict:
        return {
            "report": "chaos_sweep",
            "model": self.model,
            "policy": self.policy,
            "gpu": self.gpu,
            "batch": self.batch,
            "capacity_bytes": self.capacity_bytes,
            "clean": {
                "feasible": self.clean_feasible,
                "failure": self.clean_failure,
                "iteration_time_s": self.clean_iteration_time,
                "peak_memory_bytes": self.clean_peak_memory,
            },
            "survived": self.survived,
            "survival_rate": self.survival_rate,
            "worst_slowdown": self.worst_slowdown,
            "total_recovery_actions": self.total_recovery_actions,
            "points": [p.to_dict() for p in self.points],
        }

    def describe(self) -> str:
        """Human-readable sweep summary, one line per intensity level."""
        lines = [
            f"{self.model} b={self.batch} under {self.policy} on "
            f"{self.gpu} (capacity {format_bytes(self.capacity_bytes)})",
        ]
        if not self.clean_feasible:
            lines.append(f"clean run INFEASIBLE: {self.clean_failure}")
            return "\n".join(lines)
        lines.append(
            f"clean: iter {format_time(self.clean_iteration_time)}, "
            f"peak {format_bytes(self.clean_peak_memory)}"
        )
        lines.append(
            f"{'intensity':>9s} {'runs':>5s} {'ok':>4s} {'slowdown':>12s} "
            f"{'retries':>8s} {'evict':>6s} {'refetch':>8s} {'skips':>6s}"
        )
        by_level: dict[float, list[ChaosPoint]] = {}
        for point in self.points:
            by_level.setdefault(point.intensity, []).append(point)
        for intensity in sorted(by_level):
            level = by_level[intensity]
            ok = [p for p in level if p.feasible]
            slowdowns = [p.slowdown for p in ok]
            span = (
                f"{min(slowdowns):.2f}-{max(slowdowns):.2f}x"
                if slowdowns else "-"
            )
            lines.append(
                f"{intensity:9.2f} {len(level):5d} {len(ok):4d} "
                f"{span:>12s} "
                f"{sum(p.transfer_retries for p in level):8d} "
                f"{sum(p.emergency_evictions for p in level):6d} "
                f"{sum(p.emergency_refetches for p in level):8d} "
                f"{sum(p.recovered_skips for p in level):6d}"
            )
        lines.append(
            f"survived {self.survived}/{len(self.points)} chaos runs, "
            f"worst slowdown {self.worst_slowdown:.2f}x, "
            f"{self.total_recovery_actions} recovery actions"
        )
        return "\n".join(lines)


def chaos_sweep(
    graph: Graph,
    policy,
    gpu: GPUSpec,
    *,
    intensities: tuple[float, ...] | list[float] = (0.0, 0.5, 1.0, 2.0),
    seeds: tuple[int, ...] | list[int] = tuple(range(5)),
    emergency_eviction: bool = True,
    cache: CompileCache | None = None,
) -> ChaosReport:
    """Run one configuration clean, then across intensities × seeds.

    Every chaos point goes through the full staged pipeline with a
    fault configuration attached (so plan cache keys separate by fault
    signature; the profile is shared — it is fault-independent). A
    point that cannot recover (engine OOM with eviction disabled, or a
    genuinely unsatisfiable allocation) is reported infeasible, never
    raised.
    """
    from repro.pipeline.cache import CompileCache
    from repro.pipeline.compile import compile_run

    cache = cache if cache is not None else CompileCache()
    clean = compile_run(graph, policy, gpu, cache=cache)
    report = ChaosReport(
        model=graph.name,
        policy=clean.result.policy,
        gpu=gpu.name,
        batch=0,
        capacity_bytes=gpu.memory_bytes,
        clean_feasible=clean.result.feasible,
        clean_failure=clean.result.failure,
    )
    if not clean.result.feasible:
        return report
    clean_trace = clean.result.trace
    report.batch = clean_trace.batch
    report.clean_iteration_time = clean_trace.iteration_time
    report.clean_peak_memory = clean_trace.peak_memory
    for intensity in intensities:
        for seed in seeds:
            faults = intensity_config(
                intensity, seed, emergency_eviction=emergency_eviction,
            )
            run = compile_run(graph, policy, gpu, cache=cache, faults=faults)
            if not run.result.feasible:
                report.points.append(ChaosPoint(
                    intensity=intensity, seed=seed, feasible=False,
                    failure=run.result.failure,
                ))
                continue
            trace = run.result.trace
            report.points.append(ChaosPoint(
                intensity=intensity,
                seed=seed,
                feasible=True,
                iteration_time=trace.iteration_time,
                slowdown=(
                    trace.iteration_time / clean_trace.iteration_time
                    if clean_trace.iteration_time > 0 else 0.0
                ),
                peak_memory=trace.peak_memory,
                transfer_retries=trace.transfer_retries,
                retry_backoff_time=trace.retry_backoff_time,
                emergency_evictions=trace.emergency_evictions,
                emergency_evicted_bytes=trace.emergency_evicted_bytes,
                emergency_refetches=trace.emergency_refetches,
                recovered_skips=trace.recovered_skips,
            ))
    return report

@dataclass(frozen=True)
class ReplanPoint:
    """One (intensity, seed) static-vs-dynamic comparison."""

    intensity: float
    seed: int
    static_feasible: bool
    dynamic_feasible: bool
    static_time: float = 0.0
    dynamic_time: float = 0.0
    static_failure: str = ""
    dynamic_failure: str = ""
    replans: int = 0
    reverts: int = 0
    pressure_events: int = 0
    recovery_actions: int = 0
    #: Content hash of the dynamic run's executed program history
    #: (:meth:`~repro.pipeline.replan.ReplanReport.stream_digest`);
    #: byte-identical across sweep backends for the same point.
    stream_digest: str = ""

    @property
    def speedup(self) -> float:
        """End-to-end static/dynamic time ratio (>1 = dynamic wins)."""
        if not (self.static_feasible and self.dynamic_feasible):
            return 0.0
        if self.dynamic_time <= 0:
            return 0.0
        return self.static_time / self.dynamic_time

    def to_dict(self) -> dict:
        return {
            "intensity": self.intensity,
            "seed": self.seed,
            "static_feasible": self.static_feasible,
            "dynamic_feasible": self.dynamic_feasible,
            "static_time_s": self.static_time,
            "dynamic_time_s": self.dynamic_time,
            "static_failure": self.static_failure,
            "dynamic_failure": self.dynamic_failure,
            "speedup": self.speedup,
            "replans": self.replans,
            "reverts": self.reverts,
            "pressure_events": self.pressure_events,
            "recovery_actions": self.recovery_actions,
            "stream_digest": self.stream_digest,
        }


@dataclass
class ReplanChaosReport:
    """Static vs dynamic (replanning) runs across a fault ladder."""

    model: str
    policy: str
    gpu: str
    batch: int
    capacity_bytes: int
    iterations: int
    fault_class: str
    points: list[ReplanPoint] = field(default_factory=list)

    def never_loses(self, tolerance: float = 0.02) -> bool:
        """Dynamic never ends slower than static beyond ``tolerance``.

        The controller's measured-trial revert enforces this by
        construction; the tolerance absorbs the single trial iteration a
        reverted swap may have paid for.
        """
        return all(
            p.dynamic_time <= p.static_time * (1.0 + tolerance)
            for p in self.points
            if p.static_feasible and p.dynamic_feasible
        )

    @property
    def comparable(self) -> list[ReplanPoint]:
        return [
            p for p in self.points
            if p.static_feasible and p.dynamic_feasible
        ]

    @property
    def wins(self) -> int:
        """Points where dynamic beat static by more than rounding."""
        return sum(1 for p in self.comparable if p.speedup > 1.001)

    @property
    def mean_speedup(self) -> float:
        """Mean static/dynamic time ratio over the comparable points."""
        comparable = self.comparable
        if not comparable:
            return 0.0
        return sum(p.speedup for p in comparable) / len(comparable)

    @property
    def max_speedup(self) -> float:
        return max((p.speedup for p in self.comparable), default=0.0)

    @property
    def total_replans(self) -> int:
        return sum(p.replans for p in self.points)

    def to_dict(self) -> dict:
        return {
            "report": "replan_chaos_sweep",
            "model": self.model,
            "policy": self.policy,
            "gpu": self.gpu,
            "batch": self.batch,
            "capacity_bytes": self.capacity_bytes,
            "iterations": self.iterations,
            "fault_class": self.fault_class,
            "never_loses": self.never_loses(),
            "wins": self.wins,
            "mean_speedup": self.mean_speedup,
            "max_speedup": self.max_speedup,
            "total_replans": self.total_replans,
            "points": [p.to_dict() for p in self.points],
        }

    def describe(self) -> str:
        """Per-intensity static-vs-dynamic table."""
        lines = [
            f"{self.model} b={self.batch} under {self.policy} on "
            f"{self.gpu} ({self.fault_class}, {self.iterations} iters, "
            f"capacity {format_bytes(self.capacity_bytes)})",
            f"{'intensity':>9s} {'runs':>5s} {'ok':>4s} {'speedup':>14s} "
            f"{'replans':>8s} {'reverts':>8s}",
        ]
        by_level: dict[float, list[ReplanPoint]] = {}
        for point in self.points:
            by_level.setdefault(point.intensity, []).append(point)
        for intensity in sorted(by_level):
            level = by_level[intensity]
            ok = [p for p in level if p.static_feasible and p.dynamic_feasible]
            speedups = [p.speedup for p in ok]
            span = (
                f"{min(speedups):.2f}-{max(speedups):.2f}x"
                if speedups else "-"
            )
            lines.append(
                f"{intensity:9.2f} {len(level):5d} {len(ok):4d} "
                f"{span:>14s} "
                f"{sum(p.replans for p in level):8d} "
                f"{sum(p.reverts for p in level):8d}"
            )
        lines.append(
            f"dynamic {'never loses' if self.never_loses() else 'LOSES'}; "
            f"wins {self.wins}/{len(self.comparable)}, mean speedup "
            f"{self.mean_speedup:.2f}x, max {self.max_speedup:.2f}x, "
            f"{self.total_replans} replans"
        )
        return "\n".join(lines)


def replan_chaos_sweep(
    graph: Graph,
    policy,
    gpu: GPUSpec,
    *,
    intensities: tuple[float, ...] | list[float] = (0.0, 0.5, 1.0, 2.0),
    seeds: tuple[int, ...] | list[int] = tuple(range(5)),
    iterations: int = 4,
    fault_class: str = "mixed",
    emergency_eviction: bool = True,
    cache: CompileCache | None = None,
    replan=True,
    trace_dir=None,
) -> ReplanChaosReport:
    """Static vs dynamic-replanning runs over intensities × seeds.

    Every point runs the configuration twice over ``iterations``
    back-to-back iterations with the *same* seeded fault schedule: once
    on the compile-time plan, once with the DELTA-style feedback loop
    attached (``compile_run(replan=...)``). The warm cache is shared, so
    dynamic points pay planning only for conditions not seen before.
    Infeasibility (either side) is carried in the point, never raised.

    With ``trace_dir`` set, every point additionally writes merged
    Chrome traces (engine events + the dynamic run's ``replan`` pipeline
    spans) into that directory under :func:`artifact_name` names — the
    model, policy, intensity and fault seed are all embedded, so
    parallel sweeps sharing one directory never overwrite each other.
    """
    from pathlib import Path

    from repro import telemetry
    from repro.pipeline.cache import CompileCache
    from repro.pipeline.compile import compile_run
    from repro.runtime.observers import ChromeTraceObserver

    cache = cache if cache is not None else CompileCache()
    if trace_dir is not None:
        trace_dir = Path(trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
    clean = compile_run(graph, policy, gpu, cache=cache)
    report = ReplanChaosReport(
        model=graph.name,
        policy=clean.result.policy,
        gpu=gpu.name,
        batch=clean.result.trace.batch if clean.result.feasible else 0,
        capacity_bytes=gpu.memory_bytes,
        iterations=iterations,
        fault_class=fault_class,
    )
    for intensity in intensities:
        for seed in seeds:
            faults = fault_class_config(
                fault_class, intensity, seed,
                emergency_eviction=emergency_eviction,
            )
            static_obs: tuple = ()
            dynamic_obs: tuple = ()
            if trace_dir is not None:
                static_obs = (ChromeTraceObserver(),)
                dynamic_obs = (ChromeTraceObserver(),)
            static = compile_run(
                graph, policy, gpu, cache=cache,
                iterations=iterations, faults=faults,
                observers=static_obs,
            )
            if trace_dir is None:
                dynamic = compile_run(
                    graph, policy, gpu, cache=cache,
                    iterations=iterations, faults=faults, replan=replan,
                )
            else:
                with telemetry.session(
                    metrics=False, provenance=False, spans=True,
                ) as tel:
                    dynamic = compile_run(
                        graph, policy, gpu, cache=cache,
                        iterations=iterations, faults=faults, replan=replan,
                        observers=dynamic_obs,
                    )
                telemetry.write_trace(
                    trace_dir / artifact_name(
                        "chaos", graph.name, report.policy,
                        intensity=intensity, seed=seed,
                        suffix="static", ext="trace.json",
                    ),
                    telemetry.merge_traces(
                        static_obs[0], names=["engine (static)"],
                    ),
                )
                telemetry.write_trace(
                    trace_dir / artifact_name(
                        "chaos", graph.name, report.policy,
                        intensity=intensity, seed=seed,
                        suffix="dynamic", ext="trace.json",
                    ),
                    telemetry.merge_traces(
                        dynamic_obs[0], tel.tracer,
                        names=["engine (dynamic)", "pipeline"],
                    ),
                )
            static_ok = static.result.feasible
            dynamic_ok = dynamic.result.feasible
            trace = dynamic.result.trace
            rep = dynamic.replan
            report.points.append(ReplanPoint(
                intensity=intensity,
                seed=seed,
                static_feasible=static_ok,
                dynamic_feasible=dynamic_ok,
                static_time=(
                    sum(static.executed.durations) if static_ok else 0.0
                ),
                dynamic_time=(
                    sum(dynamic.executed.durations) if dynamic_ok else 0.0
                ),
                static_failure=static.result.failure,
                dynamic_failure=dynamic.result.failure,
                replans=rep.replans if rep else 0,
                reverts=rep.reverts if rep else 0,
                pressure_events=len(rep.events) if rep else 0,
                recovery_actions=trace.recovery_actions if dynamic_ok else 0,
                stream_digest=rep.stream_digest() if rep else "",
            ))
    return report
