"""Chaos sweeps: fault-intensity ladders over one configuration.

A chaos sweep answers "is this plan robust, not just optimal": it
compiles and runs one (model, policy, GPU) configuration clean, then
re-runs it across a ladder of fault intensities × seeds and reports the
slowdown and recovery statistics of every point. The
``python -m repro chaos`` command is a thin wrapper over
:func:`chaos_sweep`.

Intensity is a single scalar knob mapped onto the individual
:class:`~repro.faults.model.FaultConfig` axes by
:func:`intensity_config`: intensity 0 is the all-zero (null) config —
timing-identical to a clean run by the fault model's construction —
and intensity 1 is an already-hostile device (±5 % kernel jitter, ±10 %
bandwidth jitter, 25 % persistent bandwidth loss, 15 % transfer-failure
rate). Sweeps typically ladder 0 → 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.errors import HardwareError
from repro.faults.model import FaultConfig
from repro.hardware.gpu import GPUSpec
from repro.units import format_bytes, format_time

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.graph.graph import Graph
    from repro.pipeline.cache import CompileCache

#: Per-unit-intensity slope of each fault axis (see intensity_config).
_KERNEL_NOISE_SLOPE = 0.05
_PCIE_JITTER_SLOPE = 0.10
_PCIE_DEGRADATION_SLOPE = 0.25
_FAILURE_RATE_SLOPE = 0.15
#: Ceilings keeping high intensities valid FaultConfigs.
_MAX_DEGRADATION = 0.75
_MAX_FAILURE_RATE = 0.90


def intensity_config(
    intensity: float,
    seed: int = 0,
    *,
    emergency_eviction: bool = True,
) -> FaultConfig:
    """Map a scalar intensity onto a :class:`FaultConfig`.

    Intensity 0 yields the null config (every noise term zero — the
    fault model then never draws from its RNG and timing is identical
    to a clean run); degradation and failure rate saturate at ceilings
    that keep arbitrarily large intensities valid.
    """
    if intensity < 0:
        raise HardwareError(f"chaos intensity must be >= 0, got {intensity}")
    return FaultConfig(
        seed=seed,
        kernel_noise=_KERNEL_NOISE_SLOPE * intensity,
        pcie_jitter=_PCIE_JITTER_SLOPE * intensity,
        pcie_degradation=min(
            _MAX_DEGRADATION, _PCIE_DEGRADATION_SLOPE * intensity,
        ),
        transfer_failure_rate=min(
            _MAX_FAILURE_RATE, _FAILURE_RATE_SLOPE * intensity,
        ),
        emergency_eviction=emergency_eviction,
    )


@dataclass(frozen=True)
class ChaosPoint:
    """One (intensity, seed) run of the sweep."""

    intensity: float
    seed: int
    feasible: bool
    failure: str = ""
    iteration_time: float = 0.0
    #: Iteration time relative to the clean run (1.0 = no slowdown).
    slowdown: float = 0.0
    peak_memory: int = 0
    transfer_retries: int = 0
    retry_backoff_time: float = 0.0
    emergency_evictions: int = 0
    emergency_evicted_bytes: int = 0
    emergency_refetches: int = 0
    recovered_skips: int = 0

    @property
    def recovery_actions(self) -> int:
        return (
            self.transfer_retries
            + self.emergency_evictions
            + self.emergency_refetches
            + self.recovered_skips
        )

    def to_dict(self) -> dict:
        return {
            "intensity": self.intensity,
            "seed": self.seed,
            "feasible": self.feasible,
            "failure": self.failure,
            "iteration_time_s": self.iteration_time,
            "slowdown": self.slowdown,
            "peak_memory_bytes": self.peak_memory,
            "transfer_retries": self.transfer_retries,
            "retry_backoff_time_s": self.retry_backoff_time,
            "emergency_evictions": self.emergency_evictions,
            "emergency_evicted_bytes": self.emergency_evicted_bytes,
            "emergency_refetches": self.emergency_refetches,
            "recovered_skips": self.recovered_skips,
            "recovery_actions": self.recovery_actions,
        }


@dataclass
class ChaosReport:
    """Clean baseline + every chaos point of one sweep."""

    model: str
    policy: str
    gpu: str
    batch: int
    capacity_bytes: int
    clean_feasible: bool
    clean_failure: str = ""
    clean_iteration_time: float = 0.0
    clean_peak_memory: int = 0
    points: list[ChaosPoint] = field(default_factory=list)

    @property
    def survived(self) -> int:
        """Chaos points that completed (recovered from every fault)."""
        return sum(1 for p in self.points if p.feasible)

    @property
    def survival_rate(self) -> float:
        return self.survived / len(self.points) if self.points else 0.0

    @property
    def worst_slowdown(self) -> float:
        """Largest slowdown among the surviving chaos points."""
        feasible = [p.slowdown for p in self.points if p.feasible]
        return max(feasible) if feasible else 0.0

    @property
    def total_recovery_actions(self) -> int:
        return sum(p.recovery_actions for p in self.points)

    def to_dict(self) -> dict:
        return {
            "report": "chaos_sweep",
            "model": self.model,
            "policy": self.policy,
            "gpu": self.gpu,
            "batch": self.batch,
            "capacity_bytes": self.capacity_bytes,
            "clean": {
                "feasible": self.clean_feasible,
                "failure": self.clean_failure,
                "iteration_time_s": self.clean_iteration_time,
                "peak_memory_bytes": self.clean_peak_memory,
            },
            "survived": self.survived,
            "survival_rate": self.survival_rate,
            "worst_slowdown": self.worst_slowdown,
            "total_recovery_actions": self.total_recovery_actions,
            "points": [p.to_dict() for p in self.points],
        }

    def describe(self) -> str:
        """Human-readable sweep summary, one line per intensity level."""
        lines = [
            f"{self.model} b={self.batch} under {self.policy} on "
            f"{self.gpu} (capacity {format_bytes(self.capacity_bytes)})",
        ]
        if not self.clean_feasible:
            lines.append(f"clean run INFEASIBLE: {self.clean_failure}")
            return "\n".join(lines)
        lines.append(
            f"clean: iter {format_time(self.clean_iteration_time)}, "
            f"peak {format_bytes(self.clean_peak_memory)}"
        )
        lines.append(
            f"{'intensity':>9s} {'runs':>5s} {'ok':>4s} {'slowdown':>12s} "
            f"{'retries':>8s} {'evict':>6s} {'refetch':>8s} {'skips':>6s}"
        )
        by_level: dict[float, list[ChaosPoint]] = {}
        for point in self.points:
            by_level.setdefault(point.intensity, []).append(point)
        for intensity in sorted(by_level):
            level = by_level[intensity]
            ok = [p for p in level if p.feasible]
            slowdowns = [p.slowdown for p in ok]
            span = (
                f"{min(slowdowns):.2f}-{max(slowdowns):.2f}x"
                if slowdowns else "-"
            )
            lines.append(
                f"{intensity:9.2f} {len(level):5d} {len(ok):4d} "
                f"{span:>12s} "
                f"{sum(p.transfer_retries for p in level):8d} "
                f"{sum(p.emergency_evictions for p in level):6d} "
                f"{sum(p.emergency_refetches for p in level):8d} "
                f"{sum(p.recovered_skips for p in level):6d}"
            )
        lines.append(
            f"survived {self.survived}/{len(self.points)} chaos runs, "
            f"worst slowdown {self.worst_slowdown:.2f}x, "
            f"{self.total_recovery_actions} recovery actions"
        )
        return "\n".join(lines)


def chaos_sweep(
    graph: Graph,
    policy,
    gpu: GPUSpec,
    *,
    intensities: tuple[float, ...] | list[float] = (0.0, 0.5, 1.0, 2.0),
    seeds: tuple[int, ...] | list[int] = tuple(range(5)),
    emergency_eviction: bool = True,
    cache: CompileCache | None = None,
) -> ChaosReport:
    """Run one configuration clean, then across intensities × seeds.

    Every chaos point goes through the full staged pipeline with a
    fault configuration attached (so plan cache keys separate by fault
    signature; the profile is shared — it is fault-independent). A
    point that cannot recover (engine OOM with eviction disabled, or a
    genuinely unsatisfiable allocation) is reported infeasible, never
    raised.
    """
    from repro.pipeline.cache import CompileCache
    from repro.pipeline.compile import compile_run

    cache = cache if cache is not None else CompileCache()
    clean = compile_run(graph, policy, gpu, cache=cache)
    report = ChaosReport(
        model=graph.name,
        policy=clean.result.policy,
        gpu=gpu.name,
        batch=0,
        capacity_bytes=gpu.memory_bytes,
        clean_feasible=clean.result.feasible,
        clean_failure=clean.result.failure,
    )
    if not clean.result.feasible:
        return report
    clean_trace = clean.result.trace
    report.batch = clean_trace.batch
    report.clean_iteration_time = clean_trace.iteration_time
    report.clean_peak_memory = clean_trace.peak_memory
    for intensity in intensities:
        for seed in seeds:
            faults = intensity_config(
                intensity, seed, emergency_eviction=emergency_eviction,
            )
            run = compile_run(graph, policy, gpu, cache=cache, faults=faults)
            if not run.result.feasible:
                report.points.append(ChaosPoint(
                    intensity=intensity, seed=seed, feasible=False,
                    failure=run.result.failure,
                ))
                continue
            trace = run.result.trace
            report.points.append(ChaosPoint(
                intensity=intensity,
                seed=seed,
                feasible=True,
                iteration_time=trace.iteration_time,
                slowdown=(
                    trace.iteration_time / clean_trace.iteration_time
                    if clean_trace.iteration_time > 0 else 0.0
                ),
                peak_memory=trace.peak_memory,
                transfer_retries=trace.transfer_retries,
                retry_backoff_time=trace.retry_backoff_time,
                emergency_evictions=trace.emergency_evictions,
                emergency_evicted_bytes=trace.emergency_evicted_bytes,
                emergency_refetches=trace.emergency_refetches,
                recovered_skips=trace.recovered_skips,
            ))
    return report
