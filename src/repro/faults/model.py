"""The seeded, deterministic fault model.

A :class:`FaultConfig` is a frozen value object describing how hostile
the simulated hardware is; it travels in
:class:`~repro.runtime.engine.EngineOptions` and — through
:func:`fault_signature` — into the compilation-pipeline cache keys, so
two sweeps at different fault intensities never share artifacts that
could become fault-dependent.

A :class:`FaultModel` is the *per-run* sampler the engine instantiates
from a config: it owns one ``random.Random`` seeded from the config, so
every perturbation is a pure function of (config, dispatch order) and a
re-run with the same seed reproduces the execution byte for byte. The
engine's dispatcher is itself deterministic, which makes this the whole
determinism story — there is no wall-clock or global RNG anywhere in
the fault path.

Failure semantics are *transient* (the SuperNeurons / DELTA setting:
a cudaMemcpyAsync that must be reissued, not a dead link): each transfer
attempt fails independently with ``transfer_failure_rate``, but the
model guarantees success within ``max_transfer_retries`` retries, so a
retrying engine always converges and every injected failure is
recoverable by construction.
"""

from __future__ import annotations

import math
import random
from dataclasses import asdict, dataclass

from repro.errors import HardwareError


@dataclass(frozen=True)
class FaultConfig:
    """How hostile the simulated hardware is. All-zero = perfect world.

    Attributes
    ----------
    seed:
        Seed of the per-run sampler. Same seed (and same program) ⇒
        byte-identical traces; different seeds diverge whenever any
        noise term is non-zero.
    kernel_noise:
        Sigma of the lognormal multiplier applied to every GPU kernel
        duration (0 disables). 0.05 ≈ ±5 % timing jitter.
    pcie_jitter:
        Sigma of the lognormal multiplier applied to every transfer's
        effective bandwidth (0 disables).
    pcie_degradation:
        Persistent fraction of PCIe bandwidth lost for the whole run
        (link training down a generation, neighbour traffic, ...).
    transfer_failure_rate:
        Per-attempt probability that a D2H/H2D transfer fails
        transiently and must be retried.
    max_transfer_retries:
        Retries after which a transfer is guaranteed to succeed (the
        failures are transient by contract, so the engine never sees an
        unrecoverable transfer).
    retry_backoff:
        Base backoff delay in seconds before the first retry; doubles
        per subsequent retry (exponential backoff).
    failed_fraction:
        Fraction of the attempt's transfer time spent on the wire before
        the failure is detected (the copy engine is busy that long).
    emergency_eviction:
        Allow the engine to degrade gracefully on an over-capacity
        allocation by evicting the coldest resident (micro-)tensors
        (SuperNeurons-style) instead of raising OOM.
    """

    seed: int = 0
    kernel_noise: float = 0.0
    pcie_jitter: float = 0.0
    pcie_degradation: float = 0.0
    transfer_failure_rate: float = 0.0
    max_transfer_retries: int = 6
    retry_backoff: float = 100e-6
    failed_fraction: float = 0.5
    emergency_eviction: bool = True

    def __post_init__(self) -> None:
        if self.kernel_noise < 0 or self.pcie_jitter < 0:
            raise HardwareError("fault noise sigmas must be >= 0")
        if not 0.0 <= self.pcie_degradation < 1.0:
            raise HardwareError(
                f"pcie_degradation must be in [0, 1), got "
                f"{self.pcie_degradation}"
            )
        if not 0.0 <= self.transfer_failure_rate <= 1.0:
            raise HardwareError(
                f"transfer_failure_rate must be in [0, 1], got "
                f"{self.transfer_failure_rate}"
            )
        if self.max_transfer_retries < 1:
            raise HardwareError("max_transfer_retries must be >= 1")
        if self.retry_backoff < 0:
            raise HardwareError("retry_backoff must be >= 0")
        if not 0.0 < self.failed_fraction <= 1.0:
            raise HardwareError(
                f"failed_fraction must be in (0, 1], got "
                f"{self.failed_fraction}"
            )

    @property
    def perturbs_timing(self) -> bool:
        """Whether any noise term can change a clean run's timing."""
        return bool(
            self.kernel_noise
            or self.pcie_jitter
            or self.pcie_degradation
            or self.transfer_failure_rate
        )

    def signature(self) -> dict:
        """Canonical dict identity, for pipeline cache keys."""
        return asdict(self)


def fault_signature(faults: "FaultConfig | None") -> dict | None:
    """Cache-key identity of a fault configuration (``None`` stays
    ``None`` so pre-fault cache keys are preserved bit for bit)."""
    return None if faults is None else faults.signature()


class FaultModel:
    """Per-run sampler over one :class:`FaultConfig`.

    Owns the run's RNG; the engine creates one per execution so repeated
    runs of one program under one config are identical, and state never
    leaks between runs sharing an :class:`~repro.runtime.engine.
    EngineOptions` instance.
    """

    __slots__ = ("config", "_rng")

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)

    def kernel_scale(self) -> float:
        """Multiplier on one GPU kernel's duration (lognormal, mean~1)."""
        sigma = self.config.kernel_noise
        if sigma == 0.0:
            return 1.0
        return math.exp(self._rng.gauss(0.0, sigma))

    def transfer_rate_scale(self) -> float:
        """Multiplier on one transfer attempt's effective bandwidth.

        Combines the persistent degradation with per-attempt jitter;
        always strictly positive, so transfer times stay finite.
        """
        scale = 1.0 - self.config.pcie_degradation
        sigma = self.config.pcie_jitter
        if sigma:
            scale *= math.exp(self._rng.gauss(0.0, sigma))
        return scale

    def transfer_fails(self, attempt: int) -> bool:
        """Whether transfer ``attempt`` (0-based) fails transiently.

        Guaranteed ``False`` once ``attempt`` reaches
        ``max_transfer_retries`` — the failures are transient by
        contract, so a retrying engine always converges.
        """
        rate = self.config.transfer_failure_rate
        if rate == 0.0 or attempt >= self.config.max_transfer_retries:
            return False
        return self._rng.random() < rate

    def backoff(self, attempt: int) -> float:
        """Exponential backoff before retrying after failure ``attempt``."""
        return self.config.retry_backoff * (2.0 ** attempt)
