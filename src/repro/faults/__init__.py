"""Fault injection and graceful degradation for the simulated runtime.

The planner prices plans against a *perfect-world* device model: every
kernel takes exactly its profiled time, every PCIe transfer moves at the
nominal bandwidth, and every allocation that was planned to fit does
fit. Real devices are noisier — the paper's own profiling (Figure 5)
is measurement-based precisely because analytic models drift, and the
dynamic baselines it compares against (SuperNeurons' on-demand eviction,
vDNN's transfer scheduling) exist because runtime conditions deviate
from any static plan.

This package supplies the adversarial half of the simulator:

* :class:`~repro.faults.model.FaultConfig` — a frozen, seeded
  description of how hostile the simulated hardware is (kernel-time
  noise, PCIe bandwidth jitter and persistent degradation, transient
  transfer failures, and whether the engine may degrade gracefully on
  an over-capacity allocation);
* :class:`~repro.faults.model.FaultModel` — the per-run deterministic
  sampler the engine draws perturbations from (same seed ⇒ byte-identical
  execution);
* :func:`~repro.faults.chaos.chaos_sweep` — sweep fault intensity over
  one configuration and report slowdown + recovery statistics against
  the clean run (the ``python -m repro chaos`` command).

The engine-side recovery semantics (retry with exponential backoff for
failed transfers; emergency eviction of the coldest resident
(micro-)tensors instead of aborting on OOM) live in
:mod:`repro.runtime.engine` and are documented in DESIGN.md §9.
"""

from __future__ import annotations

from repro.faults.model import FaultConfig, FaultModel, fault_signature

__all__ = [
    "ChaosPoint",
    "ChaosReport",
    "FaultConfig",
    "FaultModel",
    "chaos_sweep",
    "fault_signature",
    "intensity_config",
]

#: Chaos names resolved lazily (PEP 562): the sweep layer imports the
#: compilation pipeline, which transitively imports the engine — which
#: imports this package for the fault model. Deferring the chaos import
#: keeps ``repro.faults`` importable from anywhere in that cycle.
_CHAOS_NAMES = frozenset(
    {"ChaosPoint", "ChaosReport", "chaos_sweep", "intensity_config"},
)


def __getattr__(name: str):
    if name in _CHAOS_NAMES:
        from repro.faults import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
