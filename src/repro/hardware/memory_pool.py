"""Pooled device-memory allocator.

The paper pre-allocates one large region and manages it with a runtime
pool using a *best-fit* placement strategy to keep micro-tensors in
contiguous chunks (Section V-C/V-D). This module implements that pool
over a simulated address space, with first-fit and worst-fit variants for
the allocator ablation bench, full coalescing of adjacent free blocks,
and fragmentation statistics.
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import dataclass, field

from repro.errors import AllocationError, OutOfMemoryError

_STRATEGIES = ("best_fit", "first_fit", "worst_fit", "segregated", "planned")

#: Allocation granularity; real pools round to 256-byte aligned chunks.
ALIGNMENT = 256

#: Label of the pre-allocated persistent region (weights, optimizer
#: state, inputs). Shared by the allocator replay, memscope's shadow
#: pool and the address planner so planned streams line up.
PERSISTENT_LABEL = "<persistent>"

#: "segregated" strategy: allocations below this size are carved from
#: the *top* of the highest free block, keeping micro-tensors away from
#: the large long-lived buffers at the bottom of the address space and
#: preserving big contiguous holes.
SEGREGATION_THRESHOLD = 32 * 1024 * 1024


def _align(nbytes: int) -> int:
    return (nbytes + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


@dataclass
class PoolStats:
    """Counters accumulated over a pool's lifetime.

    ``largest_free_block`` and ``free_block_count`` mirror the pool's
    free-list shape as of the *most recent* alloc/free attempt —
    including failed allocations, so an OOM report can state the
    free-space structure at the failure instant, not as of the last
    successful event.
    """

    alloc_count: int = 0
    free_count: int = 0
    failed_allocs: int = 0
    peak_used: int = 0
    bytes_allocated_total: int = 0
    largest_free_block: int = 0
    free_block_count: int = 0
    #: High-watermark address (``max(offset + size)`` over every
    #: placement) — the address-space extent the run actually needed.
    peak_extent: int = 0
    #: ``"planned"`` strategy only: allocations placed at their planned
    #: offset vs allocations that fell back to best-fit.
    plan_hits: int = 0
    plan_misses: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "alloc_count": self.alloc_count,
            "free_count": self.free_count,
            "failed_allocs": self.failed_allocs,
            "peak_used": self.peak_used,
            "bytes_allocated_total": self.bytes_allocated_total,
            "largest_free_block": self.largest_free_block,
            "free_block_count": self.free_block_count,
            "peak_extent": self.peak_extent,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
        }


@dataclass(frozen=True)
class PoolSnapshot:
    """The pool's free-space structure at one instant.

    ``free_block_histogram`` buckets the free blocks by size in
    powers-of-two of :data:`ALIGNMENT`-aligned bytes: entry ``i`` counts
    blocks with ``2**i KiB <= size < 2**(i+1) KiB`` (entry 0 holds
    everything below 2 KiB).
    """

    time: float
    used_bytes: int
    free_bytes: int
    largest_free_block: int
    free_block_count: int
    fragmentation: float
    free_block_histogram: tuple[int, ...] = ()

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "used_bytes": self.used_bytes,
            "free_bytes": self.free_bytes,
            "largest_free_block": self.largest_free_block,
            "free_block_count": self.free_block_count,
            "fragmentation": self.fragmentation,
            "free_block_histogram": list(self.free_block_histogram),
        }


@dataclass
class AllocationRecord:
    """Provenance of one pool allocation: who, where, and when.

    ``death`` stays ``None`` while the allocation is live; ``offset`` is
    the concrete address within the pool's address space. ``nbytes`` is
    the requested size, ``size`` the :data:`ALIGNMENT`-rounded span the
    allocation actually occupies.
    """

    handle: int
    label: str
    offset: int
    size: int
    nbytes: int
    birth: float
    death: float | None = None
    instr: str = ""

    @property
    def live(self) -> bool:
        return self.death is None

    def to_dict(self) -> dict:
        return {
            "handle": self.handle,
            "label": self.label,
            "offset": self.offset,
            "size": self.size,
            "nbytes": self.nbytes,
            "birth": self.birth,
            "death": self.death,
            "instr": self.instr,
        }


class PoolRecorder:
    """Accumulates per-allocation provenance and per-event snapshots.

    Attach to a :class:`MemoryPool` (``pool.recorder = PoolRecorder()``)
    and every subsequent ``alloc``/``free`` appends an
    :class:`AllocationRecord` / closes one, plus a :class:`PoolSnapshot`
    of the free-space structure after the event. Failed allocations
    record a snapshot too — the forensically interesting instant.

    With no recorder attached the pool pays one ``is not None`` check
    per event and nothing else.
    """

    __slots__ = ("records", "snapshots", "failures", "_by_handle",
                 "snapshot_every", "_events")

    def __init__(self, snapshot_every: int = 1) -> None:
        #: Every allocation ever made, in birth order.
        self.records: list[AllocationRecord] = []
        #: Free-space structure after each recorded event.
        self.snapshots: list[PoolSnapshot] = []
        #: ``(time, label, requested bytes)`` of failed allocations.
        self.failures: list[tuple[float, str, int]] = []
        self._by_handle: dict[int, AllocationRecord] = {}
        #: Snapshot cadence: 1 records the structure after every event;
        #: larger values thin the snapshot stream (records are always
        #: complete).
        self.snapshot_every = max(1, snapshot_every)
        self._events = 0

    def live_records(self) -> list[AllocationRecord]:
        """Records whose allocation is still live, in birth order."""
        return [r for r in self.records if r.death is None]

    def record(self, handle: int) -> AllocationRecord | None:
        """The (live or dead) record for a pool handle, if any."""
        return self._by_handle.get(handle)

    # -- hooks driven by MemoryPool -------------------------------------------

    def on_alloc(
        self, pool: "MemoryPool", handle: int, offset: int, size: int,
        nbytes: int, label: str, time: float, instr: str,
    ) -> None:
        """Open a provenance record for a fresh allocation."""
        record = AllocationRecord(
            handle=handle, label=label, offset=offset, size=size,
            nbytes=nbytes, birth=time, instr=instr,
        )
        self.records.append(record)
        self._by_handle[handle] = record
        self._snapshot(pool, time)

    def on_free(self, pool: "MemoryPool", handle: int, time: float) -> None:
        """Stamp the handle's record dead at ``time``."""
        record = self._by_handle.get(handle)
        if record is not None:
            record.death = time
        self._snapshot(pool, time)

    def on_fail(
        self, pool: "MemoryPool", nbytes: int, label: str, time: float,
    ) -> None:
        """Log a failed allocation and always snapshot the instant."""
        self.failures.append((time, label, nbytes))
        self.snapshots.append(pool.snapshot(time))

    def on_reset(self, pool: "MemoryPool", time: float) -> None:
        """Close every live record at ``time`` and snapshot the wipe."""
        for record in self.records:
            if record.death is None:
                record.death = time
        self.snapshots.append(pool.snapshot(time))

    def _snapshot(self, pool: "MemoryPool", time: float) -> None:
        self._events += 1
        if self._events % self.snapshot_every == 0:
            self.snapshots.append(pool.snapshot(time))


class DeviceMemoryLedger:
    """Chronological byte accounting of device memory.

    The discrete-event engine dispatches work in non-decreasing start
    time; the ledger mirrors that order exactly. ``used`` is the number
    of bytes live at the ledger clock (``time``), allocations are
    applied at their start instant, and frees — which land in the future
    when a transfer or kernel completes — wait in a pending queue until
    the clock advances past them. Because events are applied in
    chronological order, ``peak`` *is* the chronological peak: no
    post-hoc replay of the allocation log is needed to recover it.
    """

    __slots__ = ("capacity", "used", "peak", "time", "_pending", "_seq")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.used = 0
        self.peak = 0
        self.time = 0.0
        #: Min-heap of (free time, sequence, nbytes, label).
        self._pending: list[tuple[float, int, int, str]] = []
        self._seq = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes scheduled to free at some future instant."""
        return sum(entry[2] for entry in self._pending)

    def charge(self, nbytes: int) -> None:
        """Apply an untimed allocation (the persistent region, at t=0)."""
        self.used += nbytes
        self.peak = max(self.peak, self.used)

    def allocate(self, nbytes: int, at: float, on_free=None) -> None:
        """Apply an allocation at instant ``at``.

        Frees due at or before ``at`` are committed first (frees-first at
        equal timestamps, matching the allocator-replay convention), so
        ``used`` and ``peak`` stay chronologically exact.
        """
        self.commit(at, on_free)
        self.time = max(self.time, at)
        self.used += nbytes
        self.peak = max(self.peak, self.used)

    def schedule_free(self, nbytes: int, at: float, label: str = "") -> None:
        """Register ``nbytes`` to be released at instant ``at``."""
        heapq.heappush(self._pending, (at, self._seq, nbytes, label))
        self._seq += 1

    def commit(self, now: float, on_free=None) -> None:
        """Apply every pending free due at or before ``now``."""
        while self._pending and self._pending[0][0] <= now:
            at, _, nbytes, label = heapq.heappop(self._pending)
            self.used -= nbytes
            self.time = max(self.time, at)
            if on_free is not None:
                on_free(at, label, nbytes, self.used)

    def drain(self, on_free=None) -> None:
        """Commit every remaining pending free (end of execution)."""
        self.commit(float("inf"), on_free)

    def earliest_fit(
        self, need: int, not_before: float, *, credit: int = 0,
    ) -> float | None:
        """Earliest instant >= ``not_before`` at which ``need`` bytes fit.

        A pure probe: no state changes. ``credit`` discounts bytes the
        caller will release at the same instant (a merge consuming its
        micro pieces). Returns ``None`` when no amount of waiting on the
        currently-scheduled frees can ever satisfy the request.
        """
        base = self.used - credit
        if base + need <= self.capacity:
            return not_before
        freed = 0
        for at, _, nbytes, _ in sorted(self._pending):
            freed += nbytes
            if base - freed + need <= self.capacity:
                return max(at, not_before)
        return None

    def best_case_free(self, *, credit: int = 0) -> int:
        """Bytes available once every scheduled free has landed."""
        return self.capacity - (self.used - credit - self.pending_bytes)


@dataclass
class _Block:
    offset: int
    size: int


@dataclass
class MemoryPool:
    """Contiguous-address-space allocator with pluggable placement.

    Parameters
    ----------
    capacity:
        Pool size in bytes (the GPU memory handed to the framework).
    strategy:
        ``"best_fit"`` (paper default), ``"first_fit"``, ``"worst_fit"``,
        ``"segregated"``, or ``"planned"`` (requires ``plan``).
    plan:
        An :class:`~repro.planner.address_plan.AddressPlan` (duck-typed:
        anything with ``entries`` carrying ``size``/``label``/``offset``
        and a ``loop_start``) consumed by the ``"planned"`` strategy. A
        cursor walks the plan's entries in stream order; each allocation
        matching the cursor entry (same aligned size and label) is
        carved at its planned offset in O(log n). Any mismatch — an
        unplanned allocation such as a fault-recovery refetch, or a
        planned offset already occupied after an earlier fallback —
        falls back **loudly** to best-fit placement (one
        ``RuntimeWarning`` per pool, ``stats.plan_misses`` counted,
        ``plan_fallbacks`` recorded) without corrupting the pool.
    """

    capacity: int
    strategy: str = "best_fit"
    _free: list[_Block] = field(default_factory=list, repr=False)
    _allocated: dict[int, _Block] = field(default_factory=dict, repr=False)
    _next_handle: int = 0
    stats: PoolStats = field(default_factory=PoolStats)
    #: Optional provenance recorder (:class:`PoolRecorder`); ``None``
    #: keeps alloc/free at one extra ``is not None`` check per event.
    recorder: PoolRecorder | None = field(
        default=None, repr=False, compare=False,
    )
    #: Address plan for the ``"planned"`` strategy (``None`` otherwise).
    plan: object | None = field(default=None, repr=False, compare=False)
    #: ``(time, label, nbytes)`` of every planned-strategy fallback.
    plan_fallbacks: list = field(
        default_factory=list, repr=False, compare=False,
    )
    _plan_cursor: int = field(default=0, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise AllocationError(f"non-positive pool capacity {self.capacity}")
        if self.strategy not in _STRATEGIES:
            raise AllocationError(
                f"unknown strategy {self.strategy!r}; expected {_STRATEGIES}"
            )
        if self.strategy == "planned" and self.plan is None:
            raise AllocationError(
                "strategy 'planned' requires an AddressPlan (plan=...)"
            )
        self._free = [_Block(0, self.capacity)]

    # -- queries ---------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return sum(b.size for b in self._allocated.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    @property
    def largest_free_block(self) -> int:
        return max((b.size for b in self._free), default=0)

    def fragmentation(self) -> float:
        """1 - largest_free / total_free; 0 means perfectly coalesced.

        A pool with no free bytes at all (fully allocated *or* empty
        with zero free space) has no holes to fragment, so the result is
        0.0 — never a division by zero.
        """
        free = self.free_bytes
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_block / free

    def can_alloc(self, nbytes: int) -> bool:
        return self.largest_free_block >= _align(nbytes)

    def free_blocks(self) -> tuple[tuple[int, int], ...]:
        """The free list as ``(offset, size)`` pairs, address-ordered."""
        return tuple((b.offset, b.size) for b in self._free)

    def allocated_blocks(self) -> tuple[tuple[int, int, int], ...]:
        """Live allocations as ``(offset, size, handle)``, address-ordered."""
        return tuple(sorted(
            (b.offset, b.size, handle)
            for handle, b in self._allocated.items()
        ))

    def block_offset(self, handle: int) -> int:
        """Concrete address of a live allocation."""
        try:
            return self._allocated[handle].offset
        except KeyError:
            raise AllocationError(f"unknown handle {handle}") from None

    def free_block_histogram(self) -> tuple[int, ...]:
        """Free-block counts bucketed by ``floor(log2(size in KiB))``."""
        if not self._free:
            return ()
        buckets: dict[int, int] = {}
        top = 0
        for block in self._free:
            index = max(0, (block.size // 1024).bit_length() - 1)
            buckets[index] = buckets.get(index, 0) + 1
            top = max(top, index)
        return tuple(buckets.get(i, 0) for i in range(top + 1))

    def snapshot(self, time: float = 0.0) -> PoolSnapshot:
        """The free-space structure at this instant as a value object."""
        return PoolSnapshot(
            time=time,
            used_bytes=self.used_bytes,
            free_bytes=self.free_bytes,
            largest_free_block=self.largest_free_block,
            free_block_count=len(self._free),
            fragmentation=self.fragmentation(),
            free_block_histogram=self.free_block_histogram(),
        )

    def _update_shape_stats(self) -> None:
        """Mirror the free-list shape into the lifetime stats."""
        self.stats.largest_free_block = self.largest_free_block
        self.stats.free_block_count = len(self._free)

    # -- allocation --------------------------------------------------------------

    def alloc(
        self, nbytes: int, *, label: str = "", time: float = 0.0,
        instr: str = "",
    ) -> int:
        """Allocate ``nbytes``; returns an opaque handle.

        ``label``, ``time`` and ``instr`` are provenance-only: they are
        recorded when a :class:`PoolRecorder` is attached (owning
        tensor, event-clock birth time, requesting instruction) and
        ignored otherwise.

        Raises
        ------
        OutOfMemoryError
            If no free block is large enough (even if total free space
            would suffice — external fragmentation is real in the pool).
        """
        if nbytes <= 0:
            raise AllocationError(f"non-positive allocation of {nbytes} B")
        size = _align(nbytes)
        offset: int | None = None
        if self.strategy == "planned":
            entry = self._next_plan_entry(size, label)
            if entry is not None and self._carve_at(entry.offset, size):
                offset = entry.offset
                self.stats.plan_hits += 1
            else:
                # Loud fallback: the request is not the next planned
                # allocation (stale plan, recovery refetch) or its
                # planned offset is occupied by an earlier fallback.
                self.stats.plan_misses += 1
                self.plan_fallbacks.append((time, label, nbytes))
                if len(self.plan_fallbacks) == 1:
                    warnings.warn(
                        f"planned pool falling back to best-fit for "
                        f"{label or '<unlabelled>'} ({nbytes} B): "
                        f"allocation not in the address plan",
                        RuntimeWarning,
                        stacklevel=2,
                    )
        if offset is None:
            index = self._pick_block(size)
            if index is None:
                self.stats.failed_allocs += 1
                self._update_shape_stats()
                if self.recorder is not None:
                    self.recorder.on_fail(self, nbytes, label, time)
                raise OutOfMemoryError(
                    requested=size,
                    available=self.largest_free_block,
                    capacity=self.capacity,
                )
            block = self._free[index]
            carve_from_top = (
                self.strategy == "segregated" and size < SEGREGATION_THRESHOLD
            )
            if block.size == size:
                offset = block.offset
                del self._free[index]
            elif carve_from_top:
                block.size -= size
                offset = block.offset + block.size
            else:
                offset = block.offset
                block.offset += size
                block.size -= size
        handle = self._next_handle
        self._next_handle += 1
        self._allocated[handle] = _Block(offset, size)
        self.stats.alloc_count += 1
        self.stats.bytes_allocated_total += size
        self.stats.peak_used = max(self.stats.peak_used, self.used_bytes)
        self.stats.peak_extent = max(self.stats.peak_extent, offset + size)
        self._update_shape_stats()
        if self.recorder is not None:
            self.recorder.on_alloc(
                self, handle, offset, size, nbytes, label, time, instr,
            )
        return handle

    def free(self, handle: int, *, time: float = 0.0) -> None:
        """Release an allocation and coalesce with adjacent free blocks."""
        try:
            block = self._allocated.pop(handle)
        except KeyError:
            raise AllocationError(f"unknown or double-freed handle {handle}") from None
        self.stats.free_count += 1
        self._insert_free(block)
        self._update_shape_stats()
        if self.recorder is not None:
            self.recorder.on_free(self, handle, time)

    def _next_plan_entry(self, size: int, label: str):
        """The plan entry this allocation should land on, or ``None``.

        A cursor walks the plan's entries in stream order; a request
        matches when its aligned size equals the cursor entry's and the
        labels agree (an empty label on either side matches anything —
        callers that do not thread labels still get planned
        placements). On a match the cursor advances *even if the
        subsequent carve fails* — the plan slot is consumed either way.
        An exhausted cursor wraps to ``loop_start`` (past the one-time
        persistent entry) so multi-iteration streams keep matching.
        """
        entries = getattr(self.plan, "entries", ())
        cursor = self._plan_cursor
        if cursor >= len(entries):
            cursor = getattr(self.plan, "loop_start", 0)
            self._plan_cursor = cursor
            if cursor >= len(entries):
                return None
        entry = entries[cursor]
        if entry.size == size and (
            not label or not entry.label or entry.label == label
        ):
            self._plan_cursor = cursor + 1
            return entry
        return None

    def _carve_at(self, offset: int, size: int) -> bool:
        """Carve ``[offset, offset + size)`` out of the free list.

        Binary-searches the (offset-sorted) free list for the block
        containing the range and splits it in place; returns ``False``
        — leaving the free list untouched — when the range is not
        entirely free (the planned-strategy fallback trigger).
        """
        free = self._free
        lo, hi = 0, len(free)
        while lo < hi:
            mid = (lo + hi) // 2
            if free[mid].offset <= offset:
                lo = mid + 1
            else:
                hi = mid
        index = lo - 1
        if index < 0:
            return False
        block = free[index]
        if offset + size > block.offset + block.size:
            return False
        left = offset - block.offset
        right = block.offset + block.size - (offset + size)
        if left and right:
            block.size = left
            free.insert(index + 1, _Block(offset + size, right))
        elif left:
            block.size = left
        elif right:
            block.offset = offset + size
            block.size = right
        else:
            del free[index]
        return True

    def _pick_block(self, size: int) -> int | None:
        """Index into the free list per the placement strategy.

        The ``"planned"`` strategy only reaches here on fallback and
        places like best-fit.
        """
        if self.strategy == "segregated":
            if size < SEGREGATION_THRESHOLD:
                # Highest-offset hole that fits: micro-tensors cluster
                # at the top of the address space.
                for index in range(len(self._free) - 1, -1, -1):
                    if self._free[index].size >= size:
                        return index
                return None
            # Large buffers: best fit among the low holes.
            strategy = "best_fit"
        elif self.strategy == "planned":
            strategy = "best_fit"
        else:
            strategy = self.strategy
        best_index: int | None = None
        best_size: int | None = None
        for index, block in enumerate(self._free):
            if block.size < size:
                continue
            if strategy == "first_fit":
                return index
            better = (
                best_size is None
                or (strategy == "best_fit" and block.size < best_size)
                or (strategy == "worst_fit" and block.size > best_size)
            )
            if better:
                best_index, best_size = index, block.size
        return best_index

    def _insert_free(self, block: _Block) -> None:
        """Insert into the (offset-sorted) free list, coalescing neighbours."""
        free = self._free
        lo, hi = 0, len(free)
        while lo < hi:
            mid = (lo + hi) // 2
            if free[mid].offset < block.offset:
                lo = mid + 1
            else:
                hi = mid
        free.insert(lo, block)
        # Coalesce with successor, then predecessor.
        if lo + 1 < len(free) and block.offset + block.size == free[lo + 1].offset:
            block.size += free[lo + 1].size
            del free[lo + 1]
        if lo > 0 and free[lo - 1].offset + free[lo - 1].size == block.offset:
            free[lo - 1].size += block.size
            del free[lo]

    def reset(self, *, time: float = 0.0) -> None:
        """Free everything (end of iteration); stats are preserved.

        With a recorder attached, every live allocation's provenance
        record is closed at ``time`` so ``live_records()`` never reports
        allocations the pool has already discarded.
        """
        self._allocated.clear()
        self._free = [_Block(0, self.capacity)]
        self._plan_cursor = 0
        self._update_shape_stats()
        if self.recorder is not None:
            self.recorder.on_reset(self, time)
