"""Cluster topology: N GPU lanes joined by typed interconnect links.

A :class:`ClusterSpec` groups N :class:`~repro.hardware.gpu.GPUSpec`
devices and describes how collectives move bytes between them. Links are
typed (NVLink / PCIe peer-to-peer / network), each with its own
bandwidth + latency model — the intra-node link serves groups contained
in one node, the inter-node link bottlenecks any group that spans nodes.
This sits alongside the per-device host link
(:class:`~repro.hardware.pcie.PCIeModel`), which keeps modelling
swap traffic between each rank and its own host memory.

Collective cost models follow the standard ring algorithm accounting
(as used by NCCL and by the distributed-training simulator literature):

* ring all-reduce moves ``2 (N-1) / N`` of the payload through the
  bottleneck link in ``2 (N-1)`` latency-bound steps;
* all-gather and reduce-scatter are one-way halves of that ring;
* point-to-point send/recv is a single hop.

Every model degenerates to zero cost at ``N = 1``, which is what makes
the 1-rank data-parallel configuration byte-identical to the
single-GPU engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.gpu import GPUSpec

#: Link kinds with distinct physical transports.
LINK_KINDS = ("nvlink", "pcie", "network")


@dataclass(frozen=True)
class LinkSpec:
    """One interconnect type: a bandwidth + latency pipe."""

    name: str
    kind: str  # "nvlink" | "pcie" | "network"
    bandwidth: float  # bytes/second, per direction
    latency: float  # seconds per hop

    def __post_init__(self) -> None:
        if self.kind not in LINK_KINDS:
            raise ValueError(
                f"link kind must be one of {LINK_KINDS}, got {self.kind!r}"
            )
        if self.bandwidth <= 0:
            raise ValueError(f"link bandwidth must be > 0, got {self.bandwidth}")
        if self.latency < 0:
            raise ValueError(f"link latency must be >= 0, got {self.latency}")

    def transfer_time(self, nbytes: int) -> float:
        """One point-to-point hop: latency plus serialisation."""
        return self.latency + nbytes / self.bandwidth


#: Interconnect presets (per-direction effective bandwidths).
LINK_PRESETS: dict[str, LinkSpec] = {
    "nvlink": LinkSpec("NVLink2", "nvlink", 150e9, 2e-6),
    "pcie": LinkSpec("PCIe3-p2p", "pcie", 24e9, 5e-6),
    "ethernet": LinkSpec("100GbE", "network", 12.5e9, 15e-6),
}


@dataclass(frozen=True)
class ClusterSpec:
    """N GPUs, an intra-node link, and (optionally) an inter-node link.

    ``node_size`` ranks share a node and communicate over
    ``intra_link``; a collective group spanning node boundaries is
    bottlenecked by ``inter_link`` (which defaults to the intra link for
    single-node clusters).
    """

    name: str
    gpus: tuple[GPUSpec, ...]
    intra_link: LinkSpec = field(default=LINK_PRESETS["nvlink"])
    inter_link: LinkSpec | None = None
    node_size: int | None = None

    def __post_init__(self) -> None:
        if not self.gpus:
            raise ValueError("a cluster needs at least one GPU")
        if self.node_size is not None and self.node_size < 1:
            raise ValueError(f"node_size must be >= 1, got {self.node_size}")

    @classmethod
    def homogeneous(
        cls,
        gpu: GPUSpec,
        world_size: int,
        *,
        link: LinkSpec | str = "nvlink",
        inter_link: LinkSpec | None = None,
        node_size: int | None = None,
        name: str = "",
    ) -> "ClusterSpec":
        """The common case: ``world_size`` identical GPUs on one fabric."""
        if isinstance(link, str):
            link = LINK_PRESETS[link]
        return cls(
            name=name or f"{world_size}x {gpu.name}",
            gpus=(gpu,) * world_size,
            intra_link=link,
            inter_link=inter_link,
            node_size=node_size,
        )

    @property
    def world_size(self) -> int:
        return len(self.gpus)

    def node_of(self, rank: int) -> int:
        """Which node a rank lives on (all on node 0 without node_size)."""
        if self.node_size is None:
            return 0
        return rank // self.node_size

    def link_for(self, group: tuple[int, ...]) -> LinkSpec:
        """Bottleneck link of a collective over ``group`` ranks."""
        nodes = {self.node_of(rank) for rank in group}
        if len(nodes) > 1 and self.inter_link is not None:
            return self.inter_link
        return self.intra_link

    def collective_time(
        self, kind: str, group: tuple[int, ...], nbytes: int,
    ) -> float:
        """Simulated duration of one collective over ``group``."""
        link = self.link_for(group)
        n = len(group)
        if kind == "all_reduce":
            return all_reduce_time(link, nbytes, n)
        if kind == "all_gather":
            return all_gather_time(link, nbytes, n)
        if kind == "reduce_scatter":
            return reduce_scatter_time(link, nbytes, n)
        if kind in ("send", "recv"):
            return send_recv_time(link, nbytes)
        raise ValueError(f"unknown collective kind {kind!r}")


def all_reduce_time(link: LinkSpec, nbytes: int, world_size: int) -> float:
    """Ring all-reduce: reduce-scatter then all-gather, 2(N-1) steps."""
    if world_size <= 1:
        return 0.0
    steps = 2 * (world_size - 1)
    chunk = nbytes / world_size
    return steps * (chunk / link.bandwidth + link.latency)


def all_gather_time(link: LinkSpec, nbytes: int, world_size: int) -> float:
    """Ring all-gather: each rank forwards N-1 chunks of size/N."""
    if world_size <= 1:
        return 0.0
    steps = world_size - 1
    chunk = nbytes / world_size
    return steps * (chunk / link.bandwidth + link.latency)


def reduce_scatter_time(link: LinkSpec, nbytes: int, world_size: int) -> float:
    """Ring reduce-scatter: the mirror half of the all-reduce ring."""
    return all_gather_time(link, nbytes, world_size)


def send_recv_time(link: LinkSpec, nbytes: int) -> float:
    """One point-to-point hop (pipeline-parallel boundary transfer)."""
    return link.transfer_time(nbytes)
