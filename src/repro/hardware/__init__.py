"""Simulated GPU hardware substrate.

Everything the paper measures on real silicon is modelled here: device
specifications (:mod:`repro.hardware.gpu`), an analytic kernel-timing
model reproducing the Figure-5 partition/time patterns
(:mod:`repro.hardware.kernels`), a PCIe transfer model
(:mod:`repro.hardware.pcie`), a best-fit pooled device allocator
(:mod:`repro.hardware.memory_pool`) and CUDA-like streams with events
(:mod:`repro.hardware.streams`).
"""

from repro.hardware.gpu import (
    GPUSpec,
    GTX_1080TI,
    P100,
    RTX_TITAN,
    T4,
    V100_16GB,
    V100_32GB,
    A100_40GB,
    GPU_PRESETS,
)
from repro.hardware.kernels import KernelModel
from repro.hardware.pcie import PCIeModel
from repro.hardware.memory_pool import MemoryPool, PoolStats
from repro.hardware.streams import Stream, StreamSet, Event

__all__ = [
    "GPUSpec",
    "GTX_1080TI",
    "P100",
    "RTX_TITAN",
    "T4",
    "V100_16GB",
    "V100_32GB",
    "A100_40GB",
    "GPU_PRESETS",
    "KernelModel",
    "PCIeModel",
    "MemoryPool",
    "PoolStats",
    "Stream",
    "StreamSet",
    "Event",
]
