"""GPU device specifications and the presets used in the paper.

The two evaluation machines (Section VI-A) are a TITAN RTX (24 GB,
16.3 FP32 TFLOPS) and a GTX 1080Ti (11 GB, 11.34 TFLOPS), both on
PCIe 3.0. Figure 1 additionally references P100 and V100 cards. Effective
PCIe 3.0 x16 bandwidth is ~12 GB/s after protocol overhead, which is what
`cudaMemcpyAsync` on pinned memory achieves in practice.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import HardwareError
from repro.units import GB, TFLOPS


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a (simulated) GPU and its host link.

    Attributes
    ----------
    name:
        Marketing name, used in reports.
    memory_bytes:
        Device memory capacity available to the framework's pool.
    peak_flops:
        Peak FP32 throughput, FLOP/s.
    mem_bandwidth:
        Device memory bandwidth, bytes/s (drives memory-bound kernels).
    pcie_bandwidth:
        Effective host<->device bandwidth, bytes/s, per direction.
    kernel_launch_overhead:
        Fixed per-kernel launch cost, seconds. This is what makes many
        micro-kernels slower than one big kernel (Figure 5).
    pcie_latency:
        Fixed per-transfer setup latency, seconds.
    max_efficiency:
        Fraction of peak FLOPs a large, well-shaped kernel reaches.
    flops_half_efficiency:
        Kernel FLOP count at which efficiency reaches half of
        ``max_efficiency``; smaller kernels under-utilise the GPU.
    """

    name: str
    memory_bytes: int
    peak_flops: float
    mem_bandwidth: float
    pcie_bandwidth: float = 12.0 * 1e9
    kernel_launch_overhead: float = 5e-6
    pcie_latency: float = 15e-6
    max_efficiency: float = 0.65
    flops_half_efficiency: float = 2e8
    #: Host (CPU) memory backing swapped tensors. The paper's machines
    #: carry 256 GB (RTX box) and 128 GB (1080Ti box); offload policies
    #: are bounded by it.
    host_memory_bytes: int = 256 * GB

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise HardwareError(f"{self.name}: non-positive memory capacity")
        if self.peak_flops <= 0 or self.mem_bandwidth <= 0:
            raise HardwareError(f"{self.name}: non-positive throughput")
        if not 0 < self.max_efficiency <= 1:
            raise HardwareError(
                f"{self.name}: max_efficiency must be in (0, 1]"
            )

    def with_memory(self, memory_bytes: int) -> "GPUSpec":
        """Copy of this spec with a different memory capacity.

        Useful for over-subscription sweeps ("x% of required memory").
        """
        return replace(self, memory_bytes=int(memory_bytes))


RTX_TITAN = GPUSpec(
    name="TITAN RTX",
    memory_bytes=24 * GB,
    peak_flops=16.3 * TFLOPS,
    mem_bandwidth=672e9,
)

GTX_1080TI = GPUSpec(
    name="GTX 1080Ti",
    memory_bytes=11 * GB,
    peak_flops=11.34 * TFLOPS,
    mem_bandwidth=484e9,
    host_memory_bytes=128 * GB,
)

P100 = GPUSpec(
    name="P100",
    memory_bytes=16 * GB,
    peak_flops=10.6 * TFLOPS,
    mem_bandwidth=732e9,
)

V100_16GB = GPUSpec(
    name="V100 16GB",
    memory_bytes=16 * GB,
    peak_flops=15.7 * TFLOPS,
    mem_bandwidth=900e9,
)

V100_32GB = GPUSpec(
    name="V100 32GB",
    memory_bytes=32 * GB,
    peak_flops=15.7 * TFLOPS,
    mem_bandwidth=900e9,
)

T4 = GPUSpec(
    name="T4",
    memory_bytes=16 * GB,
    peak_flops=8.1 * TFLOPS,
    mem_bandwidth=300e9,
)

A100_40GB = GPUSpec(
    name="A100 40GB",
    memory_bytes=40 * GB,
    peak_flops=19.5 * TFLOPS,
    mem_bandwidth=1555e9,
    pcie_bandwidth=24e9,  # PCIe 4.0
)

GPU_PRESETS: dict[str, GPUSpec] = {
    "rtx_titan": RTX_TITAN,
    "gtx_1080ti": GTX_1080TI,
    "p100": P100,
    "v100_16gb": V100_16GB,
    "v100_32gb": V100_32GB,
    "t4": T4,
    "a100_40gb": A100_40GB,
}
