"""Analytic kernel execution-time model.

Converts an operator's work estimate (FLOPs + bytes accessed) into
simulated wall time on a :class:`~repro.hardware.gpu.GPUSpec`:

* **Compute-bound** kernels (conv, matmul) run at
  ``peak_flops * efficiency(flops)``, where efficiency saturates for
  large kernels and collapses for tiny ones — this produces the Figure-5
  behaviour where a convolution tolerates splitting but a small kernel
  drowns in launch overhead.
* **Memory-bound** kernels (elementwise, normalisation, pooling) run at
  device memory bandwidth.
* Each kernel additionally pays the fixed launch overhead, so a tensor
  split into ``p`` micro-tensors pays ``p`` launches.

The same model doubles as the "profiler" ground truth: the paper profiles
each operator on hardware before planning (Section V-B); here profiling
queries this model, with optional multiplicative noise to exercise the
profiling machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError
from repro.graph.ops import ComputeClass, Operator
from repro.hardware.gpu import GPUSpec


@dataclass(frozen=True)
class KernelModel:
    """Maps operators to execution time on a given GPU."""

    gpu: GPUSpec

    def efficiency(self, flops: float) -> float:
        """GPU utilisation of a compute kernel of the given FLOP count.

        Saturating curve ``eff_max * flops / (flops + flops_half)``: a
        kernel at ``flops_half`` achieves half the asymptotic efficiency.
        """
        if flops <= 0:
            return self.gpu.max_efficiency
        return self.gpu.max_efficiency * flops / (flops + self.gpu.flops_half_efficiency)

    def compute_time(self, flops: float) -> float:
        """Time of a compute-bound kernel, launch overhead included."""
        if flops < 0:
            raise HardwareError(f"negative flops: {flops}")
        if flops == 0:
            return self.gpu.kernel_launch_overhead
        rate = self.gpu.peak_flops * self.efficiency(flops)
        return self.gpu.kernel_launch_overhead + flops / rate

    def bandwidth_time(self, bytes_accessed: int) -> float:
        """Time of a memory-bound kernel, launch overhead included."""
        if bytes_accessed < 0:
            raise HardwareError(f"negative bytes: {bytes_accessed}")
        return (
            self.gpu.kernel_launch_overhead
            + bytes_accessed / self.gpu.mem_bandwidth
        )

    def op_time(self, op: Operator) -> float:
        """Simulated execution time of one operator."""
        compute_class = op.op_type.compute_class
        if compute_class is ComputeClass.FREE:
            return 0.0
        if compute_class is ComputeClass.COMPUTE_BOUND:
            # A compute kernel can never beat its own memory traffic.
            return max(
                self.compute_time(op.flops),
                self.bandwidth_time(op.bytes_accessed),
            )
        if compute_class is ComputeClass.MEMORY_BOUND:
            return self.bandwidth_time(op.bytes_accessed)
        if compute_class is ComputeClass.TRANSFER:
            raise HardwareError(
                f"transfer op {op.name!r} is timed by PCIeModel, "
                f"not the kernel model"
            )
        raise HardwareError(f"unknown compute class {compute_class}")

    def split_kernel_time(
        self, op: Operator, p_num: int,
    ) -> float:
        """Total compute time of an op executed as ``p_num`` micro-kernels.

        Work divides evenly; each micro-kernel pays its own launch and
        runs at the (lower) efficiency of its smaller FLOP count. This is
        the "performance degradation of the GPU kernels" term of
        Equation 6.
        """
        if p_num < 1:
            raise HardwareError(f"p_num must be >= 1, got {p_num}")
        if p_num == 1:
            return self.op_time(op)
        compute_class = op.op_type.compute_class
        if compute_class is ComputeClass.FREE:
            return 0.0
        if compute_class is ComputeClass.COMPUTE_BOUND:
            micro_flops = op.flops / p_num
            micro_bytes = op.bytes_accessed // p_num
            per_kernel = max(
                self.compute_time(micro_flops),
                self.bandwidth_time(micro_bytes),
            )
            return p_num * per_kernel
        if compute_class is ComputeClass.MEMORY_BOUND:
            micro_bytes = op.bytes_accessed // p_num
            return p_num * self.bandwidth_time(micro_bytes)
        raise HardwareError(
            f"cannot split-time op {op.name!r} of class {compute_class}"
        )

    def split_overhead(self, op: Operator, p_num: int) -> float:
        """Extra time from running ``op`` as ``p_num`` micro-kernels."""
        return max(0.0, self.split_kernel_time(op, p_num) - self.op_time(op))

    def memcpy_time(self, nbytes: int) -> float:
        """Device-to-device copy time (split/merge materialisation)."""
        if nbytes < 0:
            raise HardwareError(f"negative copy size: {nbytes}")
        # Read + write traffic.
        return self.gpu.kernel_launch_overhead + 2 * nbytes / self.gpu.mem_bandwidth

