"""CUDA-like streams and events for the discrete-event runtime.

The paper's runtime (Section V-D) schedules computation on one GPU
stream and swap transfers on two copy streams (D2H and H2D), with CUDA
events enforcing cross-stream ordering. Here a :class:`Stream` is a
serial timeline: work items run back-to-back, each starting no earlier
than its dependencies (events). An :class:`Event` is simply a completion
timestamp that later work can wait on.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Event:
    """Completion marker of a scheduled work item."""

    time: float
    label: str = ""


@dataclass
class Interval:
    """One busy interval on a stream."""

    start: float
    end: float
    label: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Stream:
    """A serial execution timeline (compute, D2H, or H2D)."""

    name: str
    clock: float = 0.0
    intervals: list[Interval] = field(default_factory=list)

    def schedule(
        self, duration: float, *, after: float = 0.0, label: str = "",
    ) -> Event:
        """Append a work item; returns its completion event.

        The item starts at ``max(stream clock, after)`` — the stream is
        serial and the item may additionally wait on cross-stream
        dependencies expressed through ``after``.
        """
        if duration < 0:
            raise ValueError(f"negative duration {duration} on {self.name}")
        start = max(self.clock, after)
        end = start + duration
        self.clock = end
        self.intervals.append(Interval(start, end, label))
        return Event(time=end, label=label)

    def earliest_start(self, after: float = 0.0) -> float:
        """When work queued now, waiting on ``after``, would begin.

        A pure query used by the engine's dispatcher to rank lane heads
        by candidate start time; :meth:`schedule` applies the same
        ``max(clock, after)`` rule when the work is actually dispatched.
        """
        return max(self.clock, after)

    def busy_time(self, until: float | None = None) -> float:
        """Total busy seconds on this stream (optionally clipped)."""
        total = 0.0
        for interval in self.intervals:
            end = interval.end if until is None else min(interval.end, until)
            if end > interval.start:
                total += end - interval.start
        return total

    def utilization(self, horizon: float) -> float:
        """Busy fraction of the stream over ``[0, horizon]``."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time(until=horizon) / horizon)


@dataclass
class StreamSet:
    """The three streams of the TSPLIT runtime."""

    compute: Stream = field(default_factory=lambda: Stream("compute"))
    d2h: Stream = field(default_factory=lambda: Stream("d2h"))
    h2d: Stream = field(default_factory=lambda: Stream("h2d"))

    @property
    def makespan(self) -> float:
        """Latest clock across all streams (iteration finish time)."""
        return max(self.compute.clock, self.d2h.clock, self.h2d.clock)

    def pcie_utilization(self) -> float:
        """Busy fraction of the PCIe link over the whole execution.

        Both directions share the link budget in this accounting, which
        matches how the paper reports "PCIe resource utilization"
        (Figure 2b): transferred time / (2 * makespan) counts full-duplex
        capacity as the denominator.
        """
        horizon = self.makespan
        if horizon <= 0:
            return 0.0
        busy = self.d2h.busy_time() + self.h2d.busy_time()
        return min(1.0, busy / (2.0 * horizon))
