"""PCIe transfer-time model.

Swap operations move tensors between device and host over PCIe. The model
is latency + size/bandwidth per transfer, one transfer at a time per
direction (matching the D2H / H2D copy engines of real GPUs). The paper's
cost model (Equation 3) uses exactly ``size(s_j) / B`` for the transfer
term; the extra fixed latency models `cudaMemcpyAsync` setup and makes
many tiny transfers measurably worse than one large transfer — the
trade-off that bounds useful split counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError
from repro.hardware.gpu import GPUSpec


@dataclass(frozen=True)
class PCIeModel:
    """Transfer timing over the host<->device link of one GPU."""

    gpu: GPUSpec

    def transfer_time(self, nbytes: int, *, rate_scale: float = 1.0) -> float:
        """Seconds to move ``nbytes`` in one direction.

        ``rate_scale`` scales the effective bandwidth for this one
        transfer — the fault layer's jitter/degradation hook. The
        default of 1.0 is float-exact (``bw * 1.0 == bw``), so clean
        runs are byte-identical to a model without the parameter.
        """
        if nbytes < 0:
            raise HardwareError(f"negative transfer size: {nbytes}")
        if rate_scale <= 0:
            raise HardwareError(f"non-positive rate_scale: {rate_scale}")
        if nbytes == 0:
            return 0.0
        return self.gpu.pcie_latency + nbytes / (
            self.gpu.pcie_bandwidth * rate_scale
        )

    def bandwidth(self) -> float:
        """Effective bandwidth ``B`` used by the planner's Equation 3."""
        return self.gpu.pcie_bandwidth

    def effective_rate(self, nbytes: int) -> float:
        """Achieved bytes/s for a transfer of the given size.

        Small transfers amortise the setup latency poorly; this is the
        PCIe-utilisation number reported in Figure 2(b).
        """
        if nbytes <= 0:
            return 0.0
        return nbytes / self.transfer_time(nbytes)
