"""Offline allocator planning: concrete addresses ahead of execution."""

from repro.planner.address_plan import (
    AddressPlan,
    AllocationInterval,
    PlannedAlloc,
    best_fit_extent,
    extract_intervals,
    packed_feasible,
    plan_addresses,
    program_signature,
)

__all__ = [
    "AddressPlan",
    "AllocationInterval",
    "PlannedAlloc",
    "best_fit_extent",
    "extract_intervals",
    "packed_feasible",
    "plan_addresses",
    "program_signature",
]
