"""Spatio-temporal address planning: strip-packing tensors over time.

The runtime pool places allocations *online* (best-fit at the instant of
each request), so a split-heavy TSPLIT stream survives only with
capacity headroom against external fragmentation — the allocator
ablation bench measures ~1.5x on VGG-16. But the lowered program's
allocation stream is fully known ahead of execution: every tensor's
birth, death and aligned size. Following STAlloc (arXiv 2507.16274),
this module assigns concrete addresses *offline* by 2D strip-packing
over address x time, making feasibility exact (``packed peak <=
capacity``) instead of pool-dependent.

Pipeline:

* :func:`extract_intervals` turns a traced run's allocation log into
  lifetime intervals. Interference is computed over **event indices**
  (position in the recorded stream), not timestamps: at equal
  timestamps the engine's ledger can apply a zero-duration op's output
  allocation *before* its inputs' frees, so two tensors distinct in
  time order can coexist at one timestamp — half-open time intervals
  would let the packer overlap them.
* :func:`plan_addresses` packs the intervals with a deterministic
  best-fit-decreasing heuristic (largest tensors first, smallest
  adequate gap among the lifetime-overlapping placements, lowest offset
  on ties; the persistent region is pinned at offset 0), computes the
  *chronological best-fit* baseline as well (the exact placements an
  unbounded online best-fit pool would produce), and keeps whichever
  packing has the smaller address extent — so the packed peak never
  exceeds what the runtime pool would have needed.
* The resulting :class:`AddressPlan` is executed by the memory pool's
  ``"planned"`` strategy (:mod:`repro.hardware.memory_pool`): O(1)
  cursor lookup per allocation, loud best-fit fallback on any
  unplanned request (fault-recovery refetches, hot-swapped programs).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

from repro.hardware.memory_pool import (
    ALIGNMENT,
    PERSISTENT_LABEL,
    MemoryPool,
    _align,
)
from repro.runtime.trace import ExecutionTrace


def _digest(payload) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()
    ).hexdigest()


@dataclass(frozen=True)
class AllocationInterval:
    """One allocation's lifetime in the recorded event stream.

    ``start``/``end`` are half-open **event indices** into the stream
    (persistent region = event 0 when present); ``birth``/``death`` are
    the simulated-clock times, kept for reporting only — packing never
    consults them. ``death is None`` means the allocation was never
    freed (lives to the end of the stream).
    """

    seq: int
    label: str
    nbytes: int
    size: int
    start: int
    end: int
    birth: float
    death: float | None = None


@dataclass(frozen=True)
class PlannedAlloc:
    """One planned placement: the stream's ``seq``-th allocation."""

    seq: int
    label: str
    nbytes: int
    size: int
    offset: int
    birth: float
    death: float | None = None

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "label": self.label,
            "nbytes": self.nbytes,
            "size": self.size,
            "offset": self.offset,
            "birth": self.birth,
            "death": self.death,
        }


@dataclass(frozen=True)
class AddressPlan:
    """Concrete addresses for one program's allocation stream.

    ``entries`` are in stream (allocation) order — the pool's
    ``"planned"`` strategy walks them with a cursor, so entry ``i`` is
    the expected ``i``-th allocation; entry 0 is the persistent region
    when one exists. ``packed_peak`` is the exact address-space extent
    the plan needs (``max(offset + size)``), so :meth:`feasible` is an
    exact capacity test, not a pool-dependent estimate.
    ``baseline_extent`` is what an unbounded online best-fit pool would
    have needed on the same stream; ``packed_peak <= baseline_extent``
    holds by construction (the planner keeps the better packing).
    """

    name: str
    alignment: int
    persistent_size: int
    packed_peak: int
    baseline_extent: int
    heuristic: str
    end_time: float
    source_key: str = ""
    entries: tuple[PlannedAlloc, ...] = ()
    #: Cursor restart index for multi-iteration streams: past the
    #: persistent entry (allocated once, never re-requested).
    loop_start: int = 0

    def feasible(self, capacity: int) -> bool:
        """Exact admission test: does the packed stream fit?"""
        return self.packed_peak <= capacity

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "alignment": self.alignment,
            "persistent_size": self.persistent_size,
            "packed_peak": self.packed_peak,
            "baseline_extent": self.baseline_extent,
            "heuristic": self.heuristic,
            "end_time": self.end_time,
            "source_key": self.source_key,
            "loop_start": self.loop_start,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    def digest(self) -> str:
        """Content hash of the full plan (determinism contract)."""
        return _digest(self.to_dict())


def extract_intervals(
    trace: ExecutionTrace,
) -> tuple[list[AllocationInterval], int]:
    """Lifetime intervals of a traced run's allocation stream.

    Returns ``(intervals, total_events)`` where event index 0 is the
    persistent region (when present) and indices advance one per
    recorded alloc/free event. Frees are matched to live allocations
    per label by the freed byte count with a FIFO fallback — the exact
    convention of the allocator replay and memscope's shadow pool, so
    the planned stream and the replayed stream agree allocation by
    allocation. Never-freed intervals end at ``total_events``.
    """
    intervals: list[AllocationInterval] = []
    #: label -> indices into ``intervals`` of live allocations, FIFO.
    live: dict[str, list[int]] = {}
    index = 0
    if trace.persistent_bytes:
        intervals.append(AllocationInterval(
            seq=0, label=PERSISTENT_LABEL,
            nbytes=trace.persistent_bytes,
            size=_align(trace.persistent_bytes),
            start=index, end=-1, birth=0.0,
        ))
        live[PERSISTENT_LABEL] = [0]
        index += 1
    ends: dict[int, tuple[int, float]] = {}
    for time, label, nbytes in trace.alloc_events:
        if nbytes > 0:
            live.setdefault(label, []).append(len(intervals))
            intervals.append(AllocationInterval(
                seq=len(intervals), label=label, nbytes=nbytes,
                size=_align(nbytes), start=index, end=-1, birth=time,
            ))
        else:
            pending = live.get(label)
            if pending:
                size = -nbytes
                pick = next(
                    (k for k, j in enumerate(pending)
                     if intervals[j].nbytes == size),
                    0,  # no size match: fall back to oldest-first
                )
                ends[pending.pop(pick)] = (index, time)
        index += 1
    total_events = index
    for j, interval in enumerate(intervals):
        end, death = ends.get(j, (total_events, None))
        intervals[j] = AllocationInterval(
            seq=interval.seq, label=interval.label,
            nbytes=interval.nbytes, size=interval.size,
            start=interval.start, end=end, birth=interval.birth,
            death=death,
        )
    return intervals, total_events


def _pack_bfd(
    intervals: list[AllocationInterval],
) -> tuple[list[int], int]:
    """Best-fit-decreasing strip packing over event-index lifetimes.

    Places the persistent region first (pinned at offset 0), then every
    other interval largest-first (earlier birth, then lower ``seq`` on
    size ties). Each candidate goes into the smallest adequate gap
    between the already-placed blocks whose lifetimes overlap it,
    lowest offset on ties, or on top of them when no gap fits. Returns
    ``(offsets in interval order, packed peak)``.
    """
    n = len(intervals)
    if n == 0:
        return [], 0
    starts = np.fromiter(
        (iv.start for iv in intervals), dtype=np.int64, count=n,
    )
    ends = np.fromiter((iv.end for iv in intervals), dtype=np.int64, count=n)
    sizes = np.fromiter((iv.size for iv in intervals), dtype=np.int64, count=n)
    offsets = np.zeros(n, dtype=np.int64)
    placed = np.zeros(n, dtype=bool)

    def order_key(i: int) -> tuple:
        return (-intervals[i].size, intervals[i].start, i)

    pinned = [i for i in range(n) if intervals[i].label == PERSISTENT_LABEL]
    rest = sorted(
        (i for i in range(n) if intervals[i].label != PERSISTENT_LABEL),
        key=order_key,
    )
    for i in pinned + rest:
        size = sizes[i]
        mask = placed & (starts < ends[i]) & (ends > starts[i])
        hits = np.nonzero(mask)[0]
        if hits.size == 0:
            offsets[i] = 0
            placed[i] = True
            continue
        lo = offsets[hits]
        hi = lo + sizes[hits]
        by_offset = np.argsort(lo, kind="stable")
        lo = lo[by_offset]
        hi = hi[by_offset]
        top = np.maximum.accumulate(hi)
        gap_starts = np.concatenate(([0], top[:-1]))
        gaps = lo - gap_starts
        adequate = gaps >= size
        if adequate.any():
            pick = int(np.flatnonzero(adequate)[np.argmin(gaps[adequate])])
            offsets[i] = gap_starts[pick]
        else:
            offsets[i] = top[-1]
        placed[i] = True
    peak = int((offsets + sizes).max())
    return [int(offset) for offset in offsets], peak


def _replay_best_fit(
    intervals: list[AllocationInterval], total_events: int,
) -> tuple[list[int], int]:
    """The placements an unbounded online best-fit pool produces.

    Replays the stream in event order through a real
    :class:`~repro.hardware.memory_pool.MemoryPool` whose capacity is
    generous enough (twice the total aligned footprint) that the top
    free block is always strictly larger than any bounded hole — so
    best-fit only spills onto the high-watermark when no hole fits,
    exactly as an infinite strip would, and the resulting extent is
    capacity-independent. Returns ``(offsets in interval order,
    address extent)``.
    """
    if not intervals:
        return [], 0
    footprint = sum(iv.size for iv in intervals)
    pool = MemoryPool(capacity=2 * footprint + ALIGNMENT,
                      strategy="best_fit")
    ops: list[tuple[int, int, int]] = []
    for k, iv in enumerate(intervals):
        ops.append((iv.start, 0, k))
        if iv.end < total_events:
            ops.append((iv.end, 1, k))
    ops.sort()
    offsets = [0] * len(intervals)
    handles: dict[int, int] = {}
    for _, kind, k in ops:
        if kind == 0:
            handle = pool.alloc(
                intervals[k].nbytes, label=intervals[k].label,
                time=intervals[k].birth,
            )
            handles[k] = handle
            offsets[k] = pool.block_offset(handle)
        else:
            pool.free(handles.pop(k))
    return offsets, pool.stats.peak_extent


def best_fit_extent(trace: ExecutionTrace) -> int:
    """Address extent an unbounded online best-fit pool needs.

    The reference point for the packer: a best-fit replay of ``trace``
    succeeds at exactly the capacities ``>=`` this extent (the generous
    replay makes the same placement decisions as any non-OOMing bounded
    one), and :func:`plan_addresses` guarantees ``packed_peak <=``
    this value.
    """
    intervals, total_events = extract_intervals(trace)
    _, extent = _replay_best_fit(intervals, total_events)
    return extent


def plan_addresses(
    trace: ExecutionTrace, *, source_key: str = "",
) -> AddressPlan:
    """Pack a traced run's allocation stream into concrete addresses.

    Computes both the best-fit-decreasing packing and the chronological
    best-fit baseline and keeps whichever needs the smaller address
    extent, so ``packed_peak <= baseline_extent`` always holds — the
    planned strategy is never worse than the online pool it replaces.
    Deterministic: the same trace yields a byte-identical plan.
    """
    intervals, total_events = extract_intervals(trace)
    bfd_offsets, bfd_peak = _pack_bfd(intervals)
    online_offsets, online_peak = _replay_best_fit(intervals, total_events)
    if bfd_peak <= online_peak:
        offsets, peak, heuristic = bfd_offsets, bfd_peak, "bfd"
    else:  # pragma: no cover - BFD rarely loses, but never silently
        offsets, peak, heuristic = (
            online_offsets, online_peak, "chronological_best_fit",
        )
    persistent_size = _align(trace.persistent_bytes) \
        if trace.persistent_bytes else 0
    entries = tuple(
        PlannedAlloc(
            seq=iv.seq, label=iv.label, nbytes=iv.nbytes, size=iv.size,
            offset=offsets[k], birth=iv.birth, death=iv.death,
        )
        for k, iv in enumerate(intervals)
    )
    return AddressPlan(
        name=trace.name,
        alignment=ALIGNMENT,
        persistent_size=persistent_size,
        packed_peak=peak,
        baseline_extent=online_peak,
        heuristic=heuristic,
        end_time=trace.iteration_time,
        source_key=source_key,
        entries=entries,
        loop_start=1 if trace.persistent_bytes else 0,
    )


def packed_feasible(
    trace: ExecutionTrace, capacity: int, *, plan: AddressPlan | None = None,
) -> bool:
    """Exact feasibility: does the packed stream fit in ``capacity``?

    This is the feedback the planner's admission test consumes: a
    (model, batch) point whose best-fit replay OOMs from fragmentation
    is still admissible when its packed peak fits the device.
    """
    if plan is None:
        plan = plan_addresses(trace)
    return plan.feasible(capacity)


def plan_stale_reasons(trace: ExecutionTrace) -> list[str]:
    """Why an :class:`AddressPlan` no longer matches an executed trace.

    A plan is derived from a clean measurement run of the lowered
    program; any mid-run deviation — dynamic plan hot-swaps, emergency
    evictions and refetches, recovery skips — changes the allocation
    stream, so planned addresses stop corresponding to the requests.
    Returns an empty list when the trace still matches.
    """
    reasons: list[str] = []
    if trace.plan_swaps:
        reasons.append(f"{trace.plan_swaps} plan hot-swap(s)")
    if trace.emergency_evictions:
        reasons.append(
            f"{trace.emergency_evictions} emergency eviction(s)",
        )
    if trace.emergency_refetches:
        reasons.append(f"{trace.emergency_refetches} refetch(es)")
    if trace.recovered_skips:
        reasons.append(f"{trace.recovered_skips} recovered skip(s)")
    return reasons


def program_signature(program) -> str:
    """Content fingerprint of a lowered program's instruction stream.

    The address-plan cache key: two identical instruction streams
    produce identical allocation streams (the engine is deterministic
    without faults), so they share one plan.
    """
    from repro.pipeline.cache import fingerprint

    return fingerprint({
        "name": program.name,
        "batch": program.batch,
        "persistent_bytes": program.persistent_bytes,
        "initial_host": program.initial_host,
        "instructions": [
            (type(instr).__name__, instr) for instr in program.instructions
        ],
    })
