"""Dynamic replanning: close the loop from pressure signals to plans.

The static pipeline compiles once and runs; the recovery layer (PR 4)
keeps degraded runs *alive* but leaves the plan blind to the degradation
— a plan priced at 12 GB/s PCIe keeps swapping at full tilt over a link
now delivering 6 GB/s. This module is the *acting* half of the
DELTA-style feedback loop whose sensing half is
:class:`~repro.runtime.pressure.PressureMonitor`:

1. the monitor closes a signal window at every iteration boundary and
   emits :class:`~repro.runtime.pressure.PressureEvent`\\ s past its
   thresholds;
2. the :class:`ReplanController`'s boundary hook quantises the observed
   conditions into a *replan condition* — a (bandwidth ratio, extra
   memory margin) pair — and re-enters the incremental planner through
   the normal :class:`~repro.pipeline.stages.PlanStage` against a
   **derived profile** whose PCIe model runs at the observed (not
   profiled) bandwidth, with the warm
   :class:`~repro.pipeline.cache.CompileCache` keyed by the condition;
3. if the replanned configs differ from the running plan's, the fresh
   lowering is hot-swapped at the iteration boundary
   (:meth:`~repro.runtime.engine._Run.swap_program`); the next window
   then serves as a measured *trial* — a swap that fails to beat the
   pre-swap iteration time (beyond a small tolerance) is reverted and
   its condition blacklisted, which is what enforces the
   dynamic-never-loses contract even when the cost model misjudges.

Everything is deterministic: conditions are quantised, the planner is
deterministic, and trials compare simulated clocks — so the same seed
and fault schedule replays to byte-identical instruction streams on any
sweep backend. With faults off the monitor never emits, the hook never
fires, and execution is byte-identical to a static run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.core.augment import AugmentOptions
from repro.core.planner import PlannerOptions
from repro.core.profiler import ProfileData
from repro.faults.model import FaultConfig
from repro.graph.graph import Graph
from repro.hardware.gpu import GPUSpec
from repro.hardware.pcie import PCIeModel
from repro.pipeline.cache import CompileCache
from repro.pipeline.stages import (
    LowerArtifact,
    LowerStage,
    PlanArtifact,
    PlanStage,
    ProfileArtifact,
)
from repro.policies.base import MemoryPolicy
from repro.runtime.instructions import Program
from repro.runtime.pressure import (
    PressureEvent,
    PressureMonitor,
    PressureThresholds,
)
from repro.telemetry import get_telemetry

#: A replan condition: (quantised bandwidth ratio, extra memory margin).
#: ``(1.0, 0.0)`` is the static compile-time condition.
Condition = tuple[float, float]

BASE_CONDITION: Condition = (1.0, 0.0)


def program_digest(program: Program) -> str:
    """Content hash of an instruction stream.

    Stable across processes (instruction ``repr``\\ s are value-based),
    so serial/thread/process sweep backends can assert byte-identical
    replanned streams by comparing digests.
    """
    hasher = hashlib.sha256()
    hasher.update(f"{program.name}|{program.batch}|"
                  f"{program.persistent_bytes}\n".encode())
    for instr in program.instructions:
        hasher.update(repr(instr).encode())
        hasher.update(b"\n")
    return hasher.hexdigest()


@dataclass(frozen=True)
class ReplanConfig:
    """Knobs of the feedback loop."""

    #: Master switch; a disabled config compiles to a purely static run.
    enabled: bool = True
    thresholds: PressureThresholds | None = None
    #: Iterations pooled per monitor evaluation window.
    window: int = 1
    #: Hard cap on plan hot-swaps per run (reverts included).
    max_replans: int = 8
    #: Boundaries to wait after a swap/revert before replanning again.
    cooldown_iterations: int = 1
    #: A trial iteration slower than the pre-swap iteration by more than
    #: this fraction loses: the swap is reverted, the condition
    #: blacklisted. Guarantees dynamic never *ends* worse than static.
    revert_tolerance: float = 0.02
    #: A candidate plan must beat the running plan by at least this
    #: fraction in the scratch pre-screen simulation before it is
    #: hot-swapped; marginal predicted wins are not worth a trial risk.
    min_benefit: float = 0.02
    #: Extra memory margin added per ``thrash``/``stall`` signal, and
    #: its cap (margins are planner-budget shrink, see PlannerOptions).
    margin_step: float = 0.02
    max_margin_bump: float = 0.08

    @staticmethod
    def coerce(value: "ReplanConfig | bool | None") -> "ReplanConfig | None":
        """Normalise the ``compile_run(replan=...)`` argument.

        ``None``/``False`` → no replanning; ``True`` → defaults; a
        config instance passes through (``enabled=False`` → ``None``).
        """
        if value is None or value is False:
            return None
        if value is True:
            return ReplanConfig()
        return value if value.enabled else None


@dataclass(frozen=True)
class ReplanRecord:
    """Provenance of one boundary decision that did something.

    ``action`` is one of ``swap`` (new plan hot-swapped), ``revert``
    (trial lost, previous plan restored), ``no_change`` (replanned plan
    identical to the running one), ``no_gain`` (the scratch pre-screen
    predicted no meaningful improvement), ``infeasible`` (replanning
    failed at the observed condition) or ``incompatible`` (replanned
    program cannot be hot-swapped, e.g. it moves persistent tensors).
    """

    iteration: int
    action: str
    condition: Condition
    plan_key: str = ""
    events: tuple[str, ...] = ()
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "action": self.action,
            "bandwidth_ratio": self.condition[0],
            "margin_bump": self.condition[1],
            "plan_key": self.plan_key,
            "events": list(self.events),
            "detail": self.detail,
        }


@dataclass
class ReplanReport:
    """What the feedback loop did over one run."""

    enabled: bool = True
    replans: int = 0
    reverts: int = 0
    records: list[ReplanRecord] = field(default_factory=list)
    #: ``(first iteration, plan key, program digest)`` per executed
    #: program segment; a static run has exactly one segment.
    segments: list[tuple[int, str, str]] = field(default_factory=list)
    #: Every pressure event the monitor emitted (drained or not).
    events: list[PressureEvent] = field(default_factory=list)

    @property
    def triggered(self) -> bool:
        return bool(self.records)

    def stream_digest(self) -> str:
        """One hash over the full replanned instruction-stream history."""
        hasher = hashlib.sha256()
        for iteration, key, digest in self.segments:
            hasher.update(f"{iteration}|{key}|{digest}\n".encode())
        return hasher.hexdigest()

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "replans": self.replans,
            "reverts": self.reverts,
            "stream_digest": self.stream_digest(),
            "segments": [
                {"iteration": it, "plan_key": key, "digest": digest}
                for it, key, digest in self.segments
            ],
            "records": [record.to_dict() for record in self.records],
            "pressure_events": [
                {
                    "kind": event.kind,
                    "iteration": event.iteration,
                    "severity": round(event.severity, 6),
                    "bandwidth_ratio": round(event.bandwidth_ratio, 6),
                }
                for event in self.events
            ],
        }


class ReplanController:
    """Owns the monitor, the replan decisions and the program history.

    Create one per executed run (it is stateful), attach
    :attr:`monitor` as an engine observer, and pass
    :meth:`boundary_hook` to ``execute_iterations``. The controller
    re-enters the planner through the same ``PlanStage``/``LowerStage``
    used at compile time, so every replanned plan lands in (and is
    served from) the warm compile cache under a key extended with the
    observed condition — replanning a condition seen before is a pure
    cache hit, and replanning back to ``(1.0, 0.0)`` returns the exact
    static plan object.
    """

    def __init__(
        self,
        graph: Graph,
        policy: MemoryPolicy,
        gpu: GPUSpec,
        profile: ProfileArtifact,
        plan: PlanArtifact,
        lowered: LowerArtifact,
        *,
        config: ReplanConfig | None = None,
        augment_options: AugmentOptions | None = None,
        cache: CompileCache | None = None,
        faults: FaultConfig | None = None,
        total_iterations: int | None = None,
    ) -> None:
        self.graph = graph
        self.policy = policy
        self.gpu = gpu
        self.profile = profile
        self.cache = cache
        self.faults = faults
        self.total_iterations = total_iterations
        self.config = config or ReplanConfig()
        self.augment_options = augment_options
        self.monitor = PressureMonitor(
            self.config.thresholds, window=self.config.window, gpu=gpu,
        )
        base_program = lowered.program.program
        self._condition: Condition = BASE_CONDITION
        self._current_plan = plan
        self._current_program = base_program
        #: condition -> (plan artifact, lowered program or None).
        self._compiled: dict[Condition, tuple[PlanArtifact, Program | None]] = {
            BASE_CONDITION: (plan, base_program),
        }
        self._rejected: set[Condition] = set()
        #: condition -> predicted per-iteration time of its program in a
        #: one-iteration scratch simulation under the run's fault config.
        self._scratch: dict[Condition, float] = {}
        #: In-flight measured trial: (previous condition, previous plan,
        #: previous program, pre-swap iteration duration).
        self._trial: (
            tuple[Condition, PlanArtifact, Program, float] | None
        ) = None
        self._margin_bump = 0.0
        self._last_action = -10**9
        self.report = ReplanReport(
            enabled=self.config.enabled,
            segments=[(0, plan.key or "static", program_digest(base_program))],
        )

    # -- the boundary hook -------------------------------------------------------

    def boundary_hook(self, index: int, run) -> Program | None:
        """Decide at iteration boundary ``index`` (0-based).

        Returns a replacement :class:`Program` to hot-swap, or ``None``
        to keep running the current one. Passed verbatim to
        :meth:`~repro.runtime.engine.Engine.execute_iterations`.
        """
        window = self.monitor.last_window()
        if window is None or not self.config.enabled:
            return None
        reverted = self._check_trial(index, window.duration)
        if reverted is not None:
            return reverted
        events = self.monitor.take_events()
        if not events:
            return None
        self.report.events.extend(events)
        metrics = get_telemetry().metrics
        if metrics.enabled:
            metrics.counter("pipeline.replan.triggered").inc()
        if self.report.replans + self.report.reverts >= self.config.max_replans:
            return None
        if index - self._last_action < self.config.cooldown_iterations:
            return None
        if (
            self.total_iterations is not None
            and self.total_iterations - (index + 1) < 2
        ):
            # Too late: a swap now would run its measured trial on the
            # final iteration with no boundary left to revert at, so a
            # cost-model misjudgement could not be undone.
            return None
        condition = self._derive_condition(events, window)
        if condition == self._condition or condition in self._rejected:
            return None
        kinds = tuple(event.kind for event in events)
        artifact, program = self._compile(condition, index, kinds)
        if artifact is None or not artifact.feasible:
            self._rejected.add(condition)
            self._record(index, "infeasible", condition, kinds,
                         detail=artifact.error if artifact else "")
            return None
        if program is None or self._same_configs(artifact):
            # The planner agrees with the running plan under the
            # observed condition; remember so the window doesn't
            # re-trigger every boundary.
            self._condition = condition
            self._record(index, "no_change", condition, kinds,
                         plan_key=artifact.key)
            return None
        if (
            program.persistent_bytes != self._current_program.persistent_bytes
            or program.batch != self._current_program.batch
        ):
            self._rejected.add(condition)
            self._record(index, "incompatible", condition, kinds,
                         plan_key=artifact.key,
                         detail="replanned program moves the persistent "
                                "region; cannot hot-swap")
            return None
        current = self._scratch_time(self._condition, self._current_program)
        candidate = self._scratch_time(condition, program)
        if candidate >= current * (1.0 - self.config.min_benefit):
            # The pre-screen simulation predicts no meaningful win; the
            # trial risk (one possibly-slower iteration before a revert)
            # is not worth taking. Blacklist the condition so the same
            # window does not re-trigger every boundary.
            self._rejected.add(condition)
            self._record(
                index, "no_gain", condition, kinds, plan_key=artifact.key,
                detail=f"pre-screen predicts {candidate / max(current, 1e-12):.3f}x "
                       f"the running plan's iteration; not swapped",
            )
            return None
        self._trial = (
            self._condition, self._current_plan, self._current_program,
            window.duration,
        )
        self._condition = condition
        self._current_plan = artifact
        self._current_program = program
        self._last_action = index
        self.report.replans += 1
        self._record(index, "swap", condition, kinds, plan_key=artifact.key)
        self.report.segments.append(
            (index + 1, artifact.key or "replanned", program_digest(program)),
        )
        if metrics.enabled:
            metrics.counter("pipeline.replan.swapped").inc()
        return program

    def _check_trial(self, index: int, duration: float) -> Program | None:
        """Score the first post-swap iteration; revert a losing swap."""
        if self._trial is None:
            return None
        prev_condition, prev_plan, prev_program, prev_duration = self._trial
        self._trial = None
        tolerance = 1.0 + self.config.revert_tolerance
        if duration <= prev_duration * tolerance:
            return None
        # Trial lost: the replanned program ran slower than the plan it
        # replaced. Restore it and never try this condition again.
        self.monitor.take_events()  # signals measured under the loser
        self._rejected.add(self._condition)
        losing = self._condition
        self._condition = prev_condition
        self._current_plan = prev_plan
        self._current_program = prev_program
        self._last_action = index
        self.report.reverts += 1
        self._record(
            index, "revert", prev_condition,
            detail=f"trial at condition {losing} ran "
                   f"{duration / max(prev_duration, 1e-12):.3f}x the "
                   f"pre-swap iteration; reverted",
        )
        self.report.segments.append((
            index + 1, prev_plan.key or "static",
            program_digest(prev_program),
        ))
        metrics = get_telemetry().metrics
        if metrics.enabled:
            metrics.counter("pipeline.replan.reverted").inc()
        return prev_program

    # -- condition derivation ----------------------------------------------------

    def _derive_condition(
        self, events: list[PressureEvent], window,
    ) -> Condition:
        """Map the drained events onto the quantised condition grid."""
        limits = self.monitor.thresholds
        ratio = self.monitor.observed_bandwidth_ratio()
        kinds = {event.kind for event in events}
        if "flaky_link" in kinds and window.transfer_count:
            # Failed attempts and backoff never appear in the transfer
            # records, so retries discount the observed bandwidth: a
            # link failing a fraction p of transfers delivers roughly
            # 1/(1+p) of its apparent rate end to end.
            failure = window.retries / (window.retries + window.transfer_count)
            ratio *= 1.0 / (1.0 + failure)
        if kinds & {"thrash", "stall"}:
            self._margin_bump = min(
                self._margin_bump + self.config.margin_step,
                self.config.max_margin_bump,
            )
        if kinds == {"headroom"}:
            # Pressure receded: relax bandwidth back to nominal but keep
            # the margin bump sticky — thrash signals mean the profiled
            # footprint was optimistic, which recovering bandwidth does
            # not refute.
            return (1.0, round(self._margin_bump, 4))
        quantum = limits.quantum
        if ratio >= limits.headroom_ratio:
            quantised = 1.0
        else:
            # The epsilon keeps float dust (0.3999999...) from landing
            # one grid step below the exact ratio it represents.
            steps = int(ratio / quantum + 1e-9)
            quantised = max(quantum, round(steps * quantum, 10))
        return (quantised, round(self._margin_bump, 4))

    # -- replanning --------------------------------------------------------------

    def _same_configs(self, artifact: PlanArtifact) -> bool:
        current = self._current_plan.plan
        fresh = artifact.plan
        return (
            fresh.configs == current.configs
            and fresh.cpu_update == current.cpu_update
        )

    def _observed_gpu(self, ratio: float) -> GPUSpec:
        if ratio >= 1.0:
            return self.gpu
        return replace(
            self.gpu, pcie_bandwidth=self.gpu.pcie_bandwidth * ratio,
        )

    def _observed_profile(self, gpu: GPUSpec) -> ProfileArtifact:
        """The compile-time profile re-priced at the observed bandwidth.

        Kernel timings, the kernel model and the memoised split-time
        cache are *shared* with the base profile (they do not depend on
        the link); only the PCIe model is swapped, which is the one
        lever the planner's swap costs flow through. The artifact keeps
        the base profile key: the plan key distinguishes conditions via
        its ``extra`` payload.
        """
        base = self.profile.profile
        observed = ProfileData(
            gpu=gpu,
            op_times=base.op_times,
            kernel_model=base.kernel_model,
            pcie=PCIeModel(gpu),
            _split_cache=base._split_cache,
            _ops=base._ops,
        )
        return ProfileArtifact(
            key=self.profile.key,
            graph_signature=self.profile.graph_signature,
            schedule=self.profile.schedule,
            profile=observed,
            cached=True,
        )

    def _observed_policy(self, bump: float) -> MemoryPolicy:
        """The policy re-configured with the bumped memory margin.

        Only planner-backed policies expose a margin; static baselines
        replan unchanged (their plans don't depend on the margin, so the
        result is a ``no_change`` decision — harmless by construction).
        """
        if bump <= 0.0:
            return self.policy
        options = getattr(self.policy, "options", None)
        if not isinstance(options, PlannerOptions):
            return self.policy
        bumped = replace(
            options, memory_margin=round(options.memory_margin + bump, 4),
        )
        return type(self.policy)(bumped)

    def _scratch_time(self, condition: Condition, program: Program) -> float:
        """Predicted per-iteration time of a program, by simulation.

        Runs one iteration of the program on a scratch engine under the
        run's fault configuration — cheap in a simulator, deterministic,
        and far more faithful than the planner's cost model (which
        misjudges overlap often enough that acting on it alone can make
        dynamic *lose*). Memoised per condition; only ever invoked once
        a non-base condition is being considered, so clean runs never
        simulate and stay byte-identical to static plans.
        """
        from repro.runtime.engine import Engine, EngineOptions

        cached = self._scratch.get(condition)
        if cached is not None:
            return cached
        options = EngineOptions(record_trace=False, faults=self.faults)
        try:
            trace = Engine(self.gpu, options).execute(program)
            predicted = trace.iteration_time
        except Exception:  # infeasible at runtime: never worth swapping to
            predicted = float("inf")
        self._scratch[condition] = predicted
        return predicted

    def _compile(
        self, condition: Condition, index: int, kinds: tuple[str, ...],
    ) -> tuple[PlanArtifact | None, Program | None]:
        """Plan + lower for a condition, memoised per controller.

        Conditions hit the warm :class:`CompileCache` across controllers
        (sweep points replanning under the same degradation share plan
        artifacts); the per-controller memo additionally pins the
        lowered program so a revert back to a seen condition is free.
        """
        entry = self._compiled.get(condition)
        if entry is not None:
            return entry
        ratio, bump = condition
        telemetry = get_telemetry()
        with telemetry.tracer.span(
            "replan", model=self.graph.name, policy=self.policy.name,
            iteration=index, bandwidth_ratio=ratio, margin_bump=bump,
            signals=",".join(kinds),
        ):
            gpu = self._observed_gpu(ratio)
            profile = (
                self.profile if ratio >= 1.0 else self._observed_profile(gpu)
            )
            extra = None
            if condition != BASE_CONDITION:
                extra = {
                    "replan": {
                        "bandwidth_ratio": ratio, "margin_bump": bump,
                    },
                }
            stage = PlanStage(self._observed_policy(bump), extra=extra)
            artifact = stage.run(
                self.graph, gpu, profile,
                cache=self.cache, faults=self.faults,
            )
            program: Program | None = None
            if artifact.feasible:
                lowered = LowerStage(self.augment_options).run(
                    self.graph, artifact.plan, self.profile,
                )
                program = lowered.program.program
        self._compiled[condition] = (artifact, program)
        return artifact, program

    def _record(
        self,
        iteration: int,
        action: str,
        condition: Condition,
        events: tuple[str, ...] = (),
        *,
        plan_key: str = "",
        detail: str = "",
    ) -> None:
        self.report.records.append(ReplanRecord(
            iteration=iteration,
            action=action,
            condition=condition,
            plan_key=plan_key,
            events=events,
            detail=detail,
        ))

    def finalize(self) -> ReplanReport:
        """The report, with any undrained monitor events folded in."""
        self.report.events.extend(self.monitor.take_events())
        return self.report


class ClusterReplanController:
    """Rank-local feedback loops for a cluster run.

    Holds one :class:`ReplanController` per participating rank (sparse:
    ranks without a controller still get a passive
    :class:`PressureMonitor`). :attr:`observers` plugs into
    ``ClusterEngine.execute_iterations(observers=...)`` and
    :meth:`boundary_hook` into its ``boundary_hook=``; each rank replans
    against its own signals and only its own program is swapped.
    """

    def __init__(
        self,
        world_size: int,
        controllers: dict[int, ReplanController] | None = None,
        *,
        thresholds: PressureThresholds | None = None,
    ) -> None:
        self.controllers = dict(controllers or {})
        for rank in self.controllers:
            if not 0 <= rank < world_size:
                raise ValueError(
                    f"controller rank {rank} outside world of {world_size}"
                )
        self.monitors = [
            self.controllers[rank].monitor if rank in self.controllers
            else PressureMonitor(thresholds)
            for rank in range(world_size)
        ]

    @property
    def observers(self) -> list[list[PressureMonitor]]:
        """Per-rank observer lists (one monitor each)."""
        return [[monitor] for monitor in self.monitors]

    def boundary_hook(self, index: int, runs) -> dict[int, Program]:
        """Collect each rank-local decision into a swap mapping."""
        swaps: dict[int, Program] = {}
        for rank, controller in sorted(self.controllers.items()):
            program = controller.boundary_hook(index, runs[rank])
            if program is not None:
                swaps[rank] = program
        return swaps

    def finalize(self) -> dict[int, ReplanReport]:
        """Per-rank replan reports for ranks that had controllers."""
        return {
            rank: controller.finalize()
            for rank, controller in sorted(self.controllers.items())
        }
