"""The single entry point of the staged compilation pipeline.

:func:`compile_run` threads one (graph, policy, GPU) configuration
through Profile → Plan → Lower → Execute and returns every stage's
artifact alongside the rolled-up :class:`~repro.pipeline.stages.EvalResult`
the analysis layer consumes. Passing a
:class:`~repro.pipeline.cache.CompileCache` makes the two expensive
deterministic stages incremental across calls: a batch-size sweep
profiles each graph once per GPU *performance* identity, and an
over-subscription sweep (same device, shrunk capacity) re-plans against
a cached profile instead of re-measuring kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.augment import AugmentOptions
from repro.core.profiler import Profiler
from repro.faults.model import FaultConfig
from repro.graph.graph import Graph
from repro.hardware.gpu import GPUSpec
from repro.pipeline.cache import CompileCache
from repro.pipeline.stages import (
    AddressPlanArtifact,
    AddressPlanStage,
    EvalResult,
    ExecuteArtifact,
    ExecuteStage,
    LowerArtifact,
    LowerStage,
    PlanArtifact,
    PlanStage,
    ProfileArtifact,
    ProfileStage,
    default_augment_options,
    resolve_policy,
)
from repro.pipeline.replan import ReplanConfig, ReplanController, ReplanReport
from repro.planner.address_plan import plan_stale_reasons
from repro.policies.base import MemoryPolicy
from repro.runtime.engine import EngineOptions
from repro.runtime.observers import EngineObserver
from repro.telemetry import get_telemetry


@dataclass
class CompiledRun:
    """Every stage artifact for one compiled configuration.

    ``lowered`` and ``executed`` are ``None`` when planning failed (there
    is nothing to lower); ``result`` always exists and mirrors the
    pre-pipeline ``run_policy`` contract. ``replan`` carries the dynamic
    feedback loop's report when one was attached (``None`` otherwise).
    """

    result: EvalResult
    profile: ProfileArtifact
    plan: PlanArtifact
    lowered: LowerArtifact | None = None
    executed: ExecuteArtifact | None = None
    replan: ReplanReport | None = None
    #: Offline address plan (``compile_run(address_plan=True)``);
    #: ``None`` when the stage was not requested or planning failed
    #: upstream. Stamped ``stale`` post-execution if the run deviated
    #: from the measured allocation stream.
    address_plan: AddressPlanArtifact | None = None


def compile_run(
    graph: Graph,
    policy: MemoryPolicy | str,
    gpu: GPUSpec,
    *,
    cache: CompileCache | None = None,
    profiler: Profiler | None = None,
    augment_options: AugmentOptions | None = None,
    engine_options: EngineOptions | None = None,
    observers: tuple[EngineObserver, ...] | list[EngineObserver] = (),
    iterations: int | None = None,
    faults: FaultConfig | None = None,
    replan: ReplanConfig | bool | None = None,
    address_plan: bool = False,
) -> CompiledRun:
    """Profile, plan, lower and execute one configuration.

    Never raises for capacity failures — planning errors and engine OOMs
    surface as ``result.feasible == False`` with the failure message,
    matching the analysis layer's sweep contract. With ``iterations``
    set, the execute stage runs that many back-to-back iterations and
    records per-iteration durations in ``executed.durations``.

    ``faults`` attaches a fault-injection configuration to the execute
    stage (overriding any on ``engine_options``) and folds its
    signature into the plan-stage cache key, so chaos sweeps never share
    plan artifacts across fault configurations. ``faults=None`` leaves
    every stage — and every cache key — byte-identical to a fault-free
    pipeline.

    ``replan`` (``True`` or a :class:`ReplanConfig`) closes the
    DELTA-style feedback loop: a
    :class:`~repro.runtime.pressure.PressureMonitor` watches the run and
    a :class:`ReplanController` may hot-swap re-planned programs at
    iteration boundaries, reusing ``cache`` as the warm plan store.
    Requires ``iterations >= 2`` (there are no boundaries otherwise —
    the loop stays inert and the run is static), and hot-swaps need
    ``iterations >= 3`` so every swap's measured trial has a later
    boundary to revert at. Without pressure the monitor never triggers
    and the executed stream is byte-identical to the static plan.

    ``address_plan=True`` adds the optional post-Lower
    :class:`~repro.pipeline.stages.AddressPlanStage`: a clean
    measurement pass of the lowered program is strip-packed into
    concrete addresses (``CompiledRun.address_plan``), content-cached
    by the instruction stream's hash. Purely additive — the executed
    plan and trace are byte-identical with ``address_plan=False``; the
    artifact is marked ``stale`` after execution when the run deviated
    from the measured stream (hot-swaps, emergency recovery).
    """
    policy = resolve_policy(policy)
    profiler = profiler or Profiler(gpu)
    if faults is not None:
        engine_options = replace(
            engine_options or EngineOptions(), faults=faults,
        )
    telemetry = get_telemetry()
    tracer = telemetry.tracer
    metrics = telemetry.metrics

    with tracer.span("profile", model=graph.name, gpu=gpu.name):
        profile = ProfileStage(profiler).run(graph, gpu, cache=cache)
    if profile.cached:
        metrics.counter("pipeline.profile.cached").inc()
    with tracer.span("plan", model=graph.name, policy=policy.name):
        plan = PlanStage(policy).run(
            graph, gpu, profile, cache=cache,
            faults=(engine_options.faults if engine_options else None),
        )
    if plan.cached:
        metrics.counter("pipeline.plan.cached").inc()
    if not plan.feasible:
        metrics.counter("pipeline.plan.infeasible").inc()
        return CompiledRun(
            result=EvalResult(
                policy=policy.name, feasible=False, failure=plan.error,
            ),
            profile=profile,
            plan=plan,
        )

    options = default_augment_options(policy, augment_options)
    with tracer.span("lower", model=graph.name, policy=policy.name):
        lowered = LowerStage(options).run(graph, plan.plan, profile)
    address_artifact: AddressPlanArtifact | None = None
    if address_plan:
        with tracer.span(
            "address_plan", model=graph.name, policy=policy.name,
        ):
            address_artifact = AddressPlanStage().run(
                gpu, lowered, cache=cache,
            )
        if address_artifact.cached:
            metrics.counter("pipeline.address_plan.cached").inc()
    replan_config = ReplanConfig.coerce(replan)
    controller = None
    boundary_hook = None
    run_observers = observers
    if replan_config is not None and iterations is not None and iterations > 1:
        controller = ReplanController(
            graph, policy, gpu, profile, plan, lowered,
            config=replan_config, augment_options=options, cache=cache,
            faults=(engine_options.faults if engine_options else None),
            total_iterations=iterations,
        )
        run_observers = (*tuple(observers), controller.monitor)
        boundary_hook = controller.boundary_hook
    with tracer.span("execute", model=graph.name, policy=policy.name):
        executed = ExecuteStage(engine_options, run_observers).run(
            gpu, lowered, iterations=iterations,
            boundary_hook=boundary_hook,
        )
    if not executed.feasible:
        result = EvalResult(
            policy=policy.name, feasible=False,
            plan=plan.plan, failure=executed.error,
        )
    else:
        result = EvalResult(
            policy=policy.name, feasible=True,
            plan=plan.plan, trace=executed.trace,
        )
    if address_artifact is not None and executed.feasible:
        # A cached artifact may be shared across runs — never mutate it.
        reasons = plan_stale_reasons(executed.trace)
        if reasons:
            address_artifact = replace(
                address_artifact,
                stale=True, stale_reason="; ".join(reasons),
            )
            metrics.counter("pipeline.address_plan.stale").inc()
    return CompiledRun(
        result=result, profile=profile, plan=plan,
        lowered=lowered, executed=executed,
        replan=controller.finalize() if controller is not None else None,
        address_plan=address_artifact,
    )
