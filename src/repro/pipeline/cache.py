"""Content-addressed caching for the staged compilation pipeline.

Stage artifacts are keyed by *what produced them*, not by who asked:

* a **profile** is determined by the graph's structure, the GPU's
  performance characteristics (capacity excluded — profiling measures
  kernels and transfers, not fit) and the profiler's measurement
  settings;
* a **plan** is determined by the profile it was planned against, the
  device capacity it had to fit, and the policy (including its full
  configuration).

Keys are SHA-256 fingerprints of canonical JSON, so two sweeps probing
the same (model, GPU) pair — or the same model on devices differing only
in memory capacity, as over-subscription sweeps do — share one profile.
"""

from __future__ import annotations

import enum
import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import asdict, is_dataclass

from repro.graph.graph import Graph
from repro.graph.serialize import graph_to_dict
from repro.hardware.gpu import GPUSpec
from repro.telemetry import get_telemetry

#: GPUSpec fields that do not influence profiling results (capacity
#: bounds what *fits*, not how fast kernels run or links move bytes).
_CAPACITY_FIELDS = ("memory_bytes", "host_memory_bytes")


def _jsonify(obj):
    """``json.dumps`` default hook: dataclasses, enums, sets, tuples."""
    if is_dataclass(obj) and not isinstance(obj, type):
        return asdict(obj)
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    raise TypeError(f"{type(obj).__name__} is not fingerprintable")


def fingerprint(obj) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``obj``."""
    encoded = json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=_jsonify,
    )
    return hashlib.sha256(encoded.encode()).hexdigest()


def graph_signature(graph: Graph) -> str:
    """Structural fingerprint of a graph (tensors, ops, attributes)."""
    return fingerprint(graph_to_dict(graph))


def gpu_perf_signature(gpu: GPUSpec) -> dict:
    """The GPU's performance identity — every field except capacity."""
    spec = asdict(gpu)
    for field in _CAPACITY_FIELDS:
        spec.pop(field, None)
    return spec


def gpu_capacity_signature(gpu: GPUSpec) -> dict:
    """The GPU's capacity identity — what a plan had to fit into."""
    return {field: getattr(gpu, field) for field in _CAPACITY_FIELDS}


class CompileCache:
    """Thread-safe LRU store for pipeline stage artifacts.

    One instance can be shared by concurrent sweep workers (the analysis
    modules' ``parallel=`` mode): lookups and insertions hold a lock, and
    artifacts are treated as immutable once stored.

    Hits, misses and evictions are counted per artifact *kind* (the
    stage name callers pass to :meth:`get` / :meth:`put`) and exposed
    through :meth:`cache_stats`; when a telemetry session with metrics
    is active, the same events increment ``compile_cache.<kind>.*``
    counters on its registry.
    """

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._kind_stats: dict[str, dict[str, int]] = {}
        #: key -> kind, so evictions are attributed to the right kind.
        self._kind_of: dict[str, str] = {}

    def _bump(self, kind: str, event: str) -> None:
        """Count one event against a kind (lock held by the caller)."""
        stats = self._kind_stats.get(kind)
        if stats is None:
            stats = {"hits": 0, "misses": 0, "evictions": 0}
            self._kind_stats[kind] = stats
        stats[event] += 1
        metrics = get_telemetry().metrics
        if metrics.enabled:
            metrics.counter(f"compile_cache.{kind or 'any'}.{event}").inc()

    def get(self, key: str, kind: str = ""):
        """Return the cached artifact or ``None``; counts hit/miss."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                self._bump(kind, "misses")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._bump(kind, "hits")
            return value

    def put(self, key: str, value, kind: str = "") -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._kind_of[key] = kind
            while len(self._entries) > self.max_entries:
                evicted_key, _ = self._entries.popitem(last=False)
                self.evictions += 1
                self._bump(self._kind_of.pop(evicted_key, ""), "evictions")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def cache_stats(self) -> dict:
        """Aggregate plus per-kind hit/miss/eviction counts.

        ``{"entries": ..., "hits": ..., "misses": ..., "evictions": ...,
        "kinds": {"profile": {"hits": ...}, "plan": {...}}}``
        """
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "kinds": {
                    kind: dict(stats)
                    for kind, stats in sorted(self._kind_stats.items())
                },
            }
