"""Content-addressed caching for the staged compilation pipeline.

Stage artifacts are keyed by *what produced them*, not by who asked:

* a **profile** is determined by the graph's structure, the GPU's
  performance characteristics (capacity excluded — profiling measures
  kernels and transfers, not fit) and the profiler's measurement
  settings;
* a **plan** is determined by the profile it was planned against, the
  device capacity it had to fit, and the policy (including its full
  configuration).

Keys are SHA-256 fingerprints of canonical JSON, so two sweeps probing
the same (model, GPU) pair — or the same model on devices differing only
in memory capacity, as over-subscription sweeps do — share one profile.

The in-memory LRU can be backed by a **disk tier** (``disk_dir=``):
artifacts are pickled to content-addressed files, written atomically
(temp file + ``os.replace``) so concurrent sweep worker processes never
observe a torn entry, and stamped with :data:`CACHE_FORMAT_VERSION` so a
format change invalidates old files instead of misreading them. Loads
are corruption-tolerant: an unreadable, truncated, version-mismatched or
mis-keyed file counts as a miss and the caller recomputes.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import asdict, is_dataclass
from pathlib import Path

from repro.graph.graph import Graph
from repro.graph.serialize import graph_to_dict
from repro.hardware.gpu import GPUSpec
from repro.telemetry import get_telemetry

#: GPUSpec fields that do not influence profiling results (capacity
#: bounds what *fits*, not how fast kernels run or links move bytes).
_CAPACITY_FIELDS = ("memory_bytes", "host_memory_bytes")

#: Bumped whenever the pickled artifact layout changes incompatibly;
#: disk entries live under a ``v<N>`` subdirectory so old versions are
#: simply never consulted (no migration, no misreads).
CACHE_FORMAT_VERSION = 1


def default_cache_dir() -> Path:
    """The persistent cache location: ``$REPRO_CACHE_DIR`` if set, else
    ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path("~/.cache").expanduser()
    return base / "repro"


def _jsonify(obj):
    """``json.dumps`` default hook: dataclasses, enums, sets, tuples."""
    if is_dataclass(obj) and not isinstance(obj, type):
        return asdict(obj)
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    raise TypeError(f"{type(obj).__name__} is not fingerprintable")


def fingerprint(obj) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``obj``."""
    encoded = json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=_jsonify,
    )
    return hashlib.sha256(encoded.encode()).hexdigest()


def graph_signature(graph: Graph) -> str:
    """Structural fingerprint of a graph (tensors, ops, attributes)."""
    return fingerprint(graph_to_dict(graph))


def gpu_perf_signature(gpu: GPUSpec) -> dict:
    """The GPU's performance identity — every field except capacity."""
    spec = asdict(gpu)
    for field in _CAPACITY_FIELDS:
        spec.pop(field, None)
    return spec


def gpu_capacity_signature(gpu: GPUSpec) -> dict:
    """The GPU's capacity identity — what a plan had to fit into."""
    return {field: getattr(gpu, field) for field in _CAPACITY_FIELDS}


class CompileCache:
    """Thread-safe LRU store for pipeline stage artifacts.

    One instance can be shared by concurrent sweep workers (the analysis
    modules' ``parallel=`` mode): lookups and insertions hold a lock, and
    artifacts are treated as immutable once stored.

    With ``disk_dir`` set, the LRU gains a persistent tier: every
    :meth:`put` also pickles the artifact to a content-addressed file
    under ``<disk_dir>/v<CACHE_FORMAT_VERSION>/``, and a memory miss
    falls through to disk before reporting a miss. Worker *processes*
    (the sweeps' ``backend="process"`` mode) and later sessions pointed
    at the same directory therefore share profiles and plans; memory
    evictions never delete disk files.

    Hits, misses and evictions are counted per artifact *kind* (the
    stage name callers pass to :meth:`get` / :meth:`put`) and exposed
    through :meth:`cache_stats` — disk-backed caches additionally count
    ``disk_hits`` / ``disk_misses`` — and when a telemetry session with
    metrics is active, the same events increment
    ``compile_cache.<kind>.*`` counters on its registry.

    Accounting invariant: every :meth:`get` resolves as exactly one of a
    memory hit (``hits``), a disk hit (``disk_hits``) or a miss
    (``misses``), so ``lookups == total_hits + misses`` with
    ``total_hits = hits + disk_hits``. :meth:`stats` /
    :meth:`cache_stats` report the folded ``lookups`` / ``total_hits`` /
    ``hit_rate`` so a warm-*disk* cache (every lookup served from files,
    none from memory) still reports the hit rate it actually delivers.
    """

    def __init__(
        self,
        max_entries: int = 512,
        disk_dir: str | os.PathLike | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.disk_dir: Path | None = None
        if disk_dir is not None:
            self.disk_dir = (
                Path(disk_dir).expanduser() / f"v{CACHE_FORMAT_VERSION}"
            )
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0
        self.disk_misses = 0
        self._kind_stats: dict[str, dict[str, int]] = {}
        #: key -> kind, so evictions are attributed to the right kind.
        self._kind_of: dict[str, str] = {}

    def _bump(self, kind: str, event: str) -> None:
        """Count one event against a kind (lock held by the caller)."""
        stats = self._kind_stats.get(kind)
        if stats is None:
            stats = {"hits": 0, "misses": 0, "evictions": 0}
            if self.disk_dir is not None:
                stats["disk_hits"] = 0
                stats["disk_misses"] = 0
            self._kind_stats[kind] = stats
        stats[event] = stats.get(event, 0) + 1
        metrics = get_telemetry().metrics
        if metrics.enabled:
            metrics.counter(f"compile_cache.{kind or 'any'}.{event}").inc()

    # -- disk tier ---------------------------------------------------------

    def _disk_path(self, key: str, kind: str) -> Path:
        return self.disk_dir / f"{kind or 'any'}-{key}.pkl"

    def _disk_load(self, key: str, kind: str):
        """Load one disk entry, or ``None`` on any failure.

        Anything short of a well-formed, version- and key-matching
        payload — missing file, torn/truncated write survivor, foreign
        pickle, stale format — is treated as a miss: the caller
        recomputes and the next :meth:`put` overwrites the bad file.
        """
        try:
            raw = self._disk_path(key, kind).read_bytes()
            payload = pickle.loads(raw)
        except Exception:
            return None
        if not isinstance(payload, dict):
            return None
        if (
            payload.get("version") != CACHE_FORMAT_VERSION
            or payload.get("key") != key
            or payload.get("kind") != kind
        ):
            return None
        return payload.get("artifact")

    def _disk_store(self, key: str, value, kind: str) -> None:
        """Atomically persist one entry (best-effort: IO errors are
        swallowed — a failed write just means a future miss)."""
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "kind": kind,
            "key": key,
            "artifact": value,
        }
        try:
            encoded = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.disk_dir, prefix=".tmp-", suffix=".pkl",
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(encoded)
                os.replace(tmp_name, self._disk_path(key, kind))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            pass

    def get(self, key: str, kind: str = ""):
        """Return the cached artifact or ``None``; counts hit/miss.

        Memory first; with a disk tier, a memory miss probes the disk
        file and a disk hit is promoted into the in-memory LRU. Only a
        miss in *every* tier counts as a miss.
        """
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                pass
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                self._bump(kind, "hits")
                return value
            if self.disk_dir is None:
                self.misses += 1
                self._bump(kind, "misses")
                return None
        # Disk IO happens outside the lock; content-addressed entries
        # make concurrent promotion idempotent.
        value = self._disk_load(key, kind)
        with self._lock:
            if value is not None:
                self.disk_hits += 1
                self._bump(kind, "disk_hits")
                self._insert(key, value, kind)
                return value
            self.disk_misses += 1
            self._bump(kind, "disk_misses")
            self.misses += 1
            self._bump(kind, "misses")
            return None

    def _insert(self, key: str, value, kind: str) -> None:
        """Memory-tier insertion + LRU eviction (lock held)."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        self._kind_of[key] = kind
        while len(self._entries) > self.max_entries:
            evicted_key, _ = self._entries.popitem(last=False)
            self.evictions += 1
            self._bump(self._kind_of.pop(evicted_key, ""), "evictions")

    def put(self, key: str, value, kind: str = "") -> None:
        """Store an artifact in memory and, when enabled, on disk."""
        with self._lock:
            self._insert(key, value, kind)
        if self.disk_dir is not None:
            self._disk_store(key, value, kind)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _aggregate_stats(self) -> dict:
        """Tier counters folded into coherent totals (lock held).

        ``hits`` stays the *memory*-tier count (its historical meaning);
        ``total_hits`` folds the disk tier in, and
        ``lookups == total_hits + misses`` holds across every path a
        :meth:`get` can take.
        """
        total_hits = self.hits + self.disk_hits
        lookups = total_hits + self.misses
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
            "lookups": lookups,
            "total_hits": total_hits,
            "hit_rate": total_hits / lookups if lookups else 0.0,
        }

    def stats(self) -> dict:
        """Aggregate counters, including the folded ``lookups`` /
        ``total_hits`` / ``hit_rate`` totals."""
        with self._lock:
            return self._aggregate_stats()

    def cache_stats(self) -> dict:
        """Aggregate plus per-kind hit/miss/eviction counts.

        ``{"entries": ..., "hits": ..., "misses": ..., "evictions": ...,
        "disk_hits": ..., "disk_misses": ..., "lookups": ...,
        "total_hits": ..., "hit_rate": ...,
        "kinds": {"profile": {"hits": ...}, "plan": {...}}}``
        """
        with self._lock:
            return {
                **self._aggregate_stats(),
                "kinds": {
                    kind: dict(stats)
                    for kind, stats in sorted(self._kind_stats.items())
                },
            }
