"""Staged compilation pipeline: Profile → Plan → Lower → Execute.

:func:`compile_run` is the single entry point; pass a
:class:`CompileCache` to make repeated compilations (sweeps) incremental.
"""

from repro.pipeline.cache import (
    CACHE_FORMAT_VERSION,
    CompileCache,
    default_cache_dir,
    fingerprint,
    gpu_capacity_signature,
    gpu_perf_signature,
    graph_signature,
)
from repro.pipeline.compile import CompiledRun, compile_run
from repro.pipeline.replan import (
    ClusterReplanController,
    ReplanConfig,
    ReplanController,
    ReplanRecord,
    ReplanReport,
    program_digest,
)
from repro.pipeline.stages import (
    EvalResult,
    ExecuteArtifact,
    ExecuteStage,
    LowerArtifact,
    LowerStage,
    PlanArtifact,
    PlanStage,
    ProfileArtifact,
    ProfileStage,
    default_augment_options,
    resolve_policy,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "ClusterReplanController",
    "CompileCache",
    "CompiledRun",
    "ReplanConfig",
    "ReplanController",
    "ReplanRecord",
    "ReplanReport",
    "program_digest",
    "default_cache_dir",
    "EvalResult",
    "ExecuteArtifact",
    "ExecuteStage",
    "LowerArtifact",
    "LowerStage",
    "PlanArtifact",
    "PlanStage",
    "ProfileArtifact",
    "ProfileStage",
    "compile_run",
    "default_augment_options",
    "fingerprint",
    "gpu_capacity_signature",
    "gpu_perf_signature",
    "graph_signature",
    "resolve_policy",
]
