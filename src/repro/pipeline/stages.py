"""The four pipeline stages and their artifacts.

Profile → Plan → Lower → Execute, mirroring the paper's system flow
(profiling-based estimation, model-guided planning, sTensor graph
generation, runtime execution). Each stage consumes the previous stage's
artifact and — for the two expensive, deterministic stages (profile,
plan) — supports content-addressed caching through a
:class:`~repro.pipeline.cache.CompileCache`.

Artifacts carry their cache key and a ``cached`` flag so sweeps can be
audited: a parallel batch sweep should profile each model exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.augment import AugmentedProgram, AugmentOptions, augment_graph
from repro.core.plan import Plan
from repro.core.profiler import ProfileData, Profiler
from repro.errors import OutOfMemoryError, PlanningError, PolicyError
from repro.faults.model import FaultConfig, fault_signature
from repro.graph.graph import Graph
from repro.graph.scheduler import dfs_schedule
from repro.hardware.gpu import GPUSpec
from repro.hardware.memory_pool import ALIGNMENT
from repro.pipeline.cache import (
    CompileCache,
    fingerprint,
    gpu_capacity_signature,
    gpu_perf_signature,
    graph_signature,
)
from repro.planner.address_plan import (
    AddressPlan,
    plan_addresses,
    program_signature,
)
from repro.policies.base import MemoryPolicy, get_policy
from repro.runtime.engine import Engine, EngineOptions
from repro.runtime.observers import EngineObserver
from repro.runtime.trace import ExecutionTrace
from repro.telemetry import get_telemetry


@dataclass
class EvalResult:
    """Outcome of one configuration run."""

    policy: str
    feasible: bool
    plan: Plan | None = None
    trace: ExecutionTrace | None = None
    failure: str = ""

    @property
    def throughput(self) -> float:
        return self.trace.throughput if self.trace else 0.0

    @property
    def iteration_time(self) -> float:
        return self.trace.iteration_time if self.trace else float("inf")


@dataclass
class ProfileArtifact:
    """Schedule + per-op timings for one (graph, GPU-perf) pair."""

    key: str
    graph_signature: str
    schedule: list[int]
    profile: ProfileData
    cached: bool = False


@dataclass
class PlanArtifact:
    """A policy's plan (or its planning failure) against one profile."""

    key: str
    policy: str
    plan: Plan | None = None
    #: Planning failure message; non-empty means the configuration is
    #: infeasible at the planning stage (cached like a successful plan —
    #: the same inputs fail the same way).
    error: str = ""
    cached: bool = False

    @property
    def feasible(self) -> bool:
        return self.plan is not None


@dataclass
class LowerArtifact:
    """The augmented (sTensor) program lowered from a plan."""

    program: AugmentedProgram
    options: AugmentOptions | None = None


@dataclass
class AddressPlanArtifact:
    """An offline address plan for the lowered program (or its failure).

    ``error`` is set when the clean measurement pass OOMed — there is
    no stream to pack. ``stale`` is stamped by the pipeline *after*
    execution when the run deviated from the measured stream (plan
    hot-swaps, emergency evictions/refetches, recovery skips): the
    plan's addresses no longer correspond to the executed allocations,
    and consumers must fall back to an online strategy.
    """

    key: str
    plan: AddressPlan | None = None
    error: str = ""
    cached: bool = False
    stale: bool = False
    stale_reason: str = ""

    @property
    def feasible(self) -> bool:
        return self.plan is not None


@dataclass
class ExecuteArtifact:
    """Execution outcome: a trace, per-iteration times, or an OOM."""

    trace: ExecutionTrace | None = None
    durations: list[float] = field(default_factory=list)
    error: str = ""

    @property
    def feasible(self) -> bool:
        return self.trace is not None


def resolve_policy(policy: MemoryPolicy | str) -> MemoryPolicy:
    return get_policy(policy) if isinstance(policy, str) else policy


def default_augment_options(
    policy: MemoryPolicy, options: AugmentOptions | None,
) -> AugmentOptions | None:
    """Fill lowering options from the policy's recompute style.

    Policies name the recomputation execution strategy their original
    system uses; explicit options always win.
    """
    if options is not None or policy.recompute_strategy is None:
        return options
    from repro.core.recompute import RecomputeStrategy

    return AugmentOptions(
        recompute_strategy=RecomputeStrategy(policy.recompute_strategy),
    )


class ProfileStage:
    """Schedule the graph and profile every operator."""

    def __init__(self, profiler: Profiler) -> None:
        self.profiler = profiler

    def key(self, graph: Graph, gpu: GPUSpec) -> str:
        """Profiles depend on graph structure, GPU *performance* (not
        capacity) and the profiler's measurement settings."""
        return fingerprint({
            "stage": "profile",
            "graph": graph_signature(graph),
            "gpu": gpu_perf_signature(gpu),
            "profiler": self.profiler.cache_token(),
        })

    def run(
        self, graph: Graph, gpu: GPUSpec, cache: CompileCache | None = None,
    ) -> ProfileArtifact:
        """Profile the graph, or return the cached artifact for its key."""
        key = ""
        if cache is not None:
            metrics = get_telemetry().metrics
            with metrics.timer("compile_cache.profile.key_seconds").time():
                key = self.key(graph, gpu)
        if cache is not None:
            hit = cache.get(key, kind="profile")
            if hit is not None:
                return ProfileArtifact(
                    key=key,
                    graph_signature=hit.graph_signature,
                    schedule=hit.schedule,
                    profile=hit.profile,
                    cached=True,
                )
        artifact = ProfileArtifact(
            key=key,
            graph_signature=graph_signature(graph) if cache is not None else "",
            schedule=dfs_schedule(graph),
            profile=self.profiler.profile(graph),
        )
        if cache is not None:
            cache.put(key, artifact, kind="profile")
        return artifact


class PlanStage:
    """Run one policy against a profiled graph.

    ``extra`` distinguishes otherwise-identical planning contexts in the
    cache — e.g. the cluster compiler keys each rank's plan by parallelism
    mode, world size and rank-visible budget, so a 4-rank ZeRO plan never
    collides with a single-GPU plan of the same graph. When unset the key
    payload is bit-identical to pre-cluster keys (caches survive).
    """

    def __init__(
        self, policy: MemoryPolicy, extra: dict | None = None,
    ) -> None:
        self.policy = policy
        self.extra = extra or None

    def key(
        self,
        profile: ProfileArtifact,
        gpu: GPUSpec,
        faults: FaultConfig | None = None,
    ) -> str:
        """Plans depend on the profile they were planned against, the
        capacity they had to fit, and the policy's full configuration.

        A fault configuration joins the payload only when one is set:
        fault-free keys are bit-identical to pre-fault keys (caches
        survive the upgrade), while chaos sweeps at different
        intensities never share plan artifacts that could become
        fault-dependent.
        """
        payload = {
            "stage": "plan",
            "profile": profile.key,
            "capacity": gpu_capacity_signature(gpu),
            "policy": self.policy.cache_token(),
        }
        signature = fault_signature(faults)
        if signature is not None:
            payload["faults"] = signature
        if self.extra:
            payload["extra"] = self.extra
        return fingerprint(payload)

    def run(
        self,
        graph: Graph,
        gpu: GPUSpec,
        profile: ProfileArtifact,
        cache: CompileCache | None = None,
        faults: FaultConfig | None = None,
    ) -> PlanArtifact:
        """Plan against a profile; planning failures become artifacts
        too (``error`` set), never exceptions."""
        key = ""
        if cache is not None and profile.key:
            metrics = get_telemetry().metrics
            with metrics.timer("compile_cache.plan.key_seconds").time():
                key = self.key(profile, gpu, faults)
        if key:
            hit = cache.get(key, kind="plan")
            if hit is not None:
                return PlanArtifact(
                    key=key,
                    policy=hit.policy,
                    plan=hit.plan,
                    error=hit.error,
                    cached=True,
                )
        try:
            plan = self.policy.build_plan(
                graph, gpu,
                schedule=profile.schedule, profile=profile.profile,
            )
        except (PolicyError, PlanningError) as exc:
            artifact = PlanArtifact(
                key=key, policy=self.policy.name, error=str(exc),
            )
        else:
            artifact = PlanArtifact(
                key=key, policy=self.policy.name, plan=plan,
            )
        if key:
            cache.put(key, artifact, kind="plan")
        return artifact


class LowerStage:
    """Lower a plan to the augmented (sTensor) instruction program."""

    def __init__(self, options: AugmentOptions | None = None) -> None:
        self.options = options

    def run(
        self, graph: Graph, plan: Plan, profile: ProfileArtifact,
    ) -> LowerArtifact:
        """Generate the augmented program implementing the plan."""
        program = augment_graph(
            graph, plan, profile.profile,
            schedule=profile.schedule, options=self.options,
        )
        return LowerArtifact(program=program, options=self.options)


class AddressPlanStage:
    """Pack the lowered program's allocation stream into addresses.

    An optional post-Lower stage: one *clean* measurement pass (no
    observers, no faults — the engine is deterministic, so the
    measured stream is exactly what a fault-free execution allocates)
    recovers every tensor's birth/death, and
    :func:`~repro.planner.address_plan.plan_addresses` strip-packs the
    stream into an :class:`~repro.planner.address_plan.AddressPlan`.
    Content-addressed by the lowered instruction stream and the device
    capacity, so sweeps re-plan only when the program changes.
    """

    def key(self, lowered: LowerArtifact, gpu: GPUSpec) -> str:
        """Plans depend on the exact instruction stream, the capacity
        the measurement pass ran against, and the pool alignment."""
        return fingerprint({
            "stage": "address_plan",
            "program": program_signature(lowered.program.program),
            "capacity": gpu_capacity_signature(gpu),
            "alignment": ALIGNMENT,
        })

    def run(
        self,
        gpu: GPUSpec,
        lowered: LowerArtifact,
        cache: CompileCache | None = None,
    ) -> AddressPlanArtifact:
        """Measure + pack, or return the cached plan for this key; a
        measurement-pass OOM becomes an error artifact, not an
        exception (the execute stage will report the same failure)."""
        key = ""
        if cache is not None:
            metrics = get_telemetry().metrics
            with metrics.timer("compile_cache.address_plan.key_seconds").time():
                key = self.key(lowered, gpu)
            hit = cache.get(key, kind="address_plan")
            if hit is not None:
                return AddressPlanArtifact(
                    key=key, plan=hit.plan, error=hit.error, cached=True,
                )
        try:
            trace = Engine(gpu).execute(lowered.program.program)
        except OutOfMemoryError as exc:
            artifact = AddressPlanArtifact(key=key, error=str(exc))
        else:
            artifact = AddressPlanArtifact(
                key=key, plan=plan_addresses(trace, source_key=key),
            )
        if key:
            cache.put(key, artifact, kind="address_plan")
        return artifact


class ExecuteStage:
    """Run the lowered program on the simulated device."""

    def __init__(
        self,
        options: EngineOptions | None = None,
        observers: tuple[EngineObserver, ...] | list[EngineObserver] = (),
    ) -> None:
        self.options = options
        self.observers = observers

    def run(
        self,
        gpu: GPUSpec,
        lowered: LowerArtifact,
        iterations: int | None = None,
        boundary_hook=None,
    ) -> ExecuteArtifact:
        """Execute the program (optionally ``iterations`` times); an
        engine OOM becomes an infeasible artifact, not an exception.

        ``boundary_hook`` is forwarded to
        :meth:`~repro.runtime.engine.Engine.execute_iterations` — the
        dynamic-replanning entry point; it requires ``iterations``.
        """
        engine = Engine(gpu, self.options)
        try:
            if iterations is None:
                if boundary_hook is not None:
                    raise ValueError(
                        "boundary_hook requires iterations: replanning "
                        "hot-swaps at iteration boundaries"
                    )
                trace = engine.execute(
                    lowered.program.program, observers=self.observers,
                )
                return ExecuteArtifact(trace=trace)
            durations, trace = engine.execute_iterations(
                lowered.program.program, iterations,
                observers=self.observers, boundary_hook=boundary_hook,
            )
            return ExecuteArtifact(trace=trace, durations=durations)
        except OutOfMemoryError as exc:
            return ExecuteArtifact(error=str(exc))
