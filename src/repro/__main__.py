"""Command-line driver: run paper experiments without writing code.

Examples
--------
Run one configuration and print the trace::

    python -m repro run --model vgg16 --policy tsplit --batch 640

Search the maximum trainable batch::

    python -m repro scale --model resnet101 --policy superneurons

Sweep throughput across batch sizes::

    python -m repro sweep --model vgg16 --batches 64,128,256,512 \
        --policies base,vdnn_all,tsplit

Show the plan TSPLIT chooses::

    python -m repro plan --model vgg16 --batch 640 --gpu gtx_1080ti

Export a Chrome trace (open in chrome://tracing or ui.perfetto.dev)::

    python -m repro trace vgg16 tsplit --batch 256 --out trace.json

Explain every planner decision (provenance report)::

    python -m repro explain resnet152 --batch-size 256

Sweep fault intensity and report slowdown + recovery statistics::

    python -m repro chaos vgg16 --batch 256 --intensities 0,0.5,1,2 \
        --seeds 5 --capacity-frac 0.9 --json chaos.json
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.runner import evaluate
from repro.analysis.scaling import max_param_scale, max_sample_scale
from repro.analysis.throughput import throughput_sweep
from repro.core.planner import TsplitPlanner
from repro.graph.scheduler import dfs_schedule
from repro.hardware.gpu import GPU_PRESETS
from repro.models.registry import build_model, model_names
from repro.policies.base import POLICY_REGISTRY, get_policy
from repro.units import format_bytes


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model", default="vgg16",
        help=f"model name ({', '.join(model_names())})",
    )
    parser.add_argument(
        "--gpu", default="rtx_titan",
        help=f"GPU preset ({', '.join(GPU_PRESETS)})",
    )
    parser.add_argument(
        "--param-scale", type=float, default=1.0,
        help="channel/hidden multiplier (paper's parameter scale)",
    )
    parser.add_argument(
        "--precision", choices=("fp32", "fp16"), default="fp32",
        help="activation precision (parameters stay fp32 masters)",
    )


def _gpu(name: str):
    try:
        return GPU_PRESETS[name]
    except KeyError:
        sys.exit(f"unknown GPU {name!r}; available: {', '.join(GPU_PRESETS)}")


def cmd_run(args: argparse.Namespace) -> None:
    """Execute one (model, policy, batch) configuration and report."""
    gpu = _gpu(args.gpu)
    result = evaluate(
        args.model, args.policy, gpu, args.batch,
        param_scale=args.param_scale, precision=args.precision,
    )
    if not result.feasible:
        print(f"INFEASIBLE: {result.failure}")
        sys.exit(1)
    trace = result.trace
    print(trace.describe())
    print(f"  compute busy:   {trace.compute_busy * 1e3:9.1f} ms "
          f"({trace.compute_utilization:.1%} of iteration)")
    print(f"  memory stall:   {trace.memory_stall * 1e3:9.1f} ms")
    print(f"  recompute:      {trace.recompute_time * 1e3:9.1f} ms "
          f"({trace.recompute_ops} chain ops)")
    print(f"  swapped out/in: {format_bytes(trace.swapped_out_bytes)} / "
          f"{format_bytes(trace.swapped_in_bytes)}")
    print(f"  split kernels:  {trace.split_kernels}")
    if result.plan is not None:
        graph = build_model(args.model, args.batch,
                            param_scale=args.param_scale)
        print(f"  plan: {result.plan.summary(graph)}")


def cmd_scale(args: argparse.Namespace) -> None:
    """Search the maximum trainable sample/parameter scale."""
    gpu = _gpu(args.gpu)
    if args.axis == "sample":
        value = max_sample_scale(
            args.model, args.policy, gpu,
            param_scale=args.param_scale, cap=args.cap,
            precision=args.precision,
        )
        print(f"max batch for {args.model} under {args.policy} "
              f"on {gpu.name}: {value if value else 'x (inapplicable)'}")
    else:
        value = max_param_scale(
            args.model, args.policy, gpu, cap=args.cap,
        )
        print(f"max parameter scale for {args.model} under {args.policy} "
              f"on {gpu.name}: {value if value else 'x (inapplicable)'}")


def cmd_serve(args: argparse.Namespace) -> None:
    """Boot the plan-serving daemon (planning-as-a-service).

    A long-lived HTTP server multiplexing concurrent JSON plan/run
    requests over one warm, shared CompileCache: admission control with
    per-tenant quotas, single-flight coalescing of identical in-flight
    compiles, and a bounded compile pool whose slots split the machine's
    worker budget. SIGINT/SIGTERM drain gracefully (in-flight work
    lands, new requests get 503).
    """
    import signal
    import threading

    from repro import telemetry
    from repro.serve import PlanHTTPServer, PlanService, ServeConfig

    if args.telemetry:
        telemetry.enable(metrics=True, spans=False, provenance=False)
    service = PlanService(ServeConfig(
        workers=args.workers,
        max_inflight=args.max_inflight,
        tenant_quota=args.tenant_quota,
        cache_dir=args.cache_dir or None,
        cache_entries=args.cache_entries,
    ))
    server = PlanHTTPServer(
        (args.host, args.port), service, quiet=not args.verbose,
    )
    print(f"repro serve listening on {server.url} "
          f"(workers={args.workers}, budget_share={service.budget_share}"
          f"{', cache_dir=' + args.cache_dir if args.cache_dir else ''})",
          file=sys.stderr)

    def _drain(signum, frame) -> None:
        print("draining in-flight requests ...", file=sys.stderr)
        threading.Thread(target=server.drain, daemon=True).start()

    signal.signal(signal.SIGINT, _drain)
    signal.signal(signal.SIGTERM, _drain)
    try:
        server.serve_forever()
    finally:
        service.close(drain=True)
        server.server_close()
        print("repro serve stopped", file=sys.stderr)


def cmd_sweep(args: argparse.Namespace) -> None:
    """Print a throughput table across batch sizes and policies.

    ``--parallel N --backend process`` fans points out over worker
    processes (the planner and engine are pure Python, so threads don't
    overlap compute); ``--cache-dir`` persists profiles and plans on
    disk so warm re-runs — and concurrent worker processes — skip
    recompilation. ``--cache-stats PATH`` writes the driver cache's
    hit/miss/disk counters as JSON (serial/thread backends only: worker
    processes keep their own caches, so the driver has no counters to
    report).
    """
    import json as json_module

    from repro.analysis.parallel import resolve_backend
    from repro.pipeline.cache import CompileCache

    gpu = _gpu(args.gpu)
    policies = args.policies.split(",")
    batches = [int(b) for b in args.batches.split(",")]
    for policy in policies:
        get_policy(policy)  # fail fast on typos
    backend = resolve_backend(args.backend, args.parallel)
    cache = None
    if backend != "process":
        cache = CompileCache(disk_dir=args.cache_dir)
    elif args.cache_stats:
        sys.exit("--cache-stats needs a driver-side cache; use "
                 "--backend serial or --backend thread (process workers "
                 "keep their own caches)")
    points = throughput_sweep(
        args.model, policies, batches, gpu,
        param_scale=args.param_scale, precision=args.precision,
        parallel=args.parallel, backend=backend,
        cache=cache, cache_dir=args.cache_dir,
    )
    if args.cache_stats:
        stats = cache.cache_stats()
        with open(args.cache_stats, "w", encoding="utf-8") as handle:
            json_module.dump(stats, handle, indent=2)
            handle.write("\n")
        print(f"cache: {stats['hits']} hits, {stats['misses']} misses, "
              f"{stats['disk_hits']} disk hits "
              f"(stats -> {args.cache_stats})", file=sys.stderr)
    width = max(len(p) for p in policies) + 2
    print("batch".rjust(8) + "".join(p.rjust(max(width, 12)) for p in policies))
    for batch in batches:
        row = f"{batch:8d}"
        for policy in policies:
            point = next(
                p for p in points if p.policy == policy and p.batch == batch
            )
            cell = f"{point.throughput:.1f}/s" if point.feasible else "OOM"
            row += cell.rjust(max(width, 12))
        print(row)


def cmd_plan(args: argparse.Namespace) -> None:
    """Run the TSPLIT planner and show its largest decisions."""
    gpu = _gpu(args.gpu)
    graph = build_model(
        args.model, args.batch,
        param_scale=args.param_scale, precision=args.precision,
    )
    planner = TsplitPlanner(gpu)
    result = planner.plan(graph, schedule=dfs_schedule(graph))
    print(result.describe())
    print(f"configured tensors: {len(result.plan.configs)}")
    for tid, cfg in sorted(
        result.plan.configs.items(),
        key=lambda kv: -graph.tensors[kv[0]].size_bytes,
    )[: args.top]:
        tensor = graph.tensors[tid]
        print(f"  {tensor.name:32s} {format_bytes(tensor.size_bytes):>10s}"
              f"  {cfg.describe()}")


def cmd_trace(args: argparse.Namespace) -> None:
    """Execute one configuration and export a Chrome trace-event file."""
    from repro.runtime.observers import ChromeTraceObserver

    gpu = _gpu(args.gpu)
    observer = ChromeTraceObserver()
    result = evaluate(
        args.model, args.policy, gpu, args.batch,
        param_scale=args.param_scale, precision=args.precision,
        observers=(observer,),
    )
    if not result.feasible:
        print(f"INFEASIBLE: {result.failure}")
        sys.exit(1)
    observer.write(args.out)
    trace = result.trace
    print(f"wrote {len(observer.events)} trace events to {args.out}")
    print(f"  iteration: {trace.iteration_time * 1e3:.1f} ms, "
          f"peak memory: {format_bytes(trace.peak_memory)}, "
          f"stall: {trace.memory_stall * 1e3:.1f} ms")


def cmd_explain(args: argparse.Namespace) -> None:
    """Compile one configuration with full telemetry and explain it.

    Runs the staged pipeline inside a telemetry session (metrics +
    spans + provenance), then renders the planner's decision record —
    every split/swap/recompute decision with its cost delta and
    peak-memory effect — as markdown (or JSON with ``--json``).
    ``--trace`` additionally writes a single Chrome-trace file merging
    the pipeline spans with the engine's execution events.
    ``--fault-intensity`` attaches seeded fault injection so the report
    surfaces the engine's recovery activity (retries, emergency
    evictions, refetched bytes). ``--memscope`` attaches the
    allocation-level observatory and embeds its per-tensor residency
    and address-space forensics section in the report.
    """
    import json as json_module

    from repro import telemetry
    from repro.analysis.report import explain_json, explain_markdown
    from repro.faults.chaos import intensity_config
    from repro.pipeline.cache import CompileCache
    from repro.pipeline.compile import compile_run
    from repro.runtime.observers import ChromeTraceObserver

    gpu = _gpu(args.gpu)
    graph = build_model(
        args.model, args.batch_size,
        param_scale=args.param_scale, precision=args.precision,
    )
    faults = None
    if args.fault_intensity:
        faults = intensity_config(args.fault_intensity, args.fault_seed)
    observer = ChromeTraceObserver()
    observers: list = [observer]
    scope = None
    if args.memscope:
        from repro.analysis.memscope import MemscopeObserver

        scope = MemscopeObserver()
        observers.append(scope)
    with telemetry.session() as tel:
        run = compile_run(
            graph, args.policy, gpu, observers=tuple(observers),
            cache=CompileCache(), faults=faults,
        )
        if args.trace:
            merged = telemetry.merge_traces(
                tel.tracer, observer,
                names=("compiler pipeline", "engine execution"),
            )
            telemetry.write_trace(args.trace, merged)
        if args.metrics:
            tel.metrics.write_jsonl(args.metrics)
    if not run.result.feasible:
        print(f"INFEASIBLE: {run.result.failure}")
        sys.exit(1)
    memscope_report = None
    if scope is not None:
        memscope_report = scope.report(
            gpu=gpu.name, policy=str(args.policy),
            feasible=run.result.feasible, failure=run.result.failure or "",
        )
    explanation = run.plan.plan.explanation
    trace = run.result.trace
    if explanation is None:
        print(f"(policy {args.policy!r} records no decision provenance; "
              f"only the tsplit planner explains its decisions)")
        if trace is not None:
            print(trace.describe())
        if memscope_report is not None:
            print(memscope_report.to_markdown(top=args.top))
    elif args.json:
        payload = explain_json(
            explanation, graph=graph, plan=run.plan.plan,
            trace=trace, top=args.top, memscope=memscope_report,
        )
        print(json_module.dumps(payload, indent=2))
    else:
        print(explain_markdown(
            explanation, graph=graph, plan=run.plan.plan,
            trace=trace, top=args.top, memscope=memscope_report,
        ))
    if args.trace:
        print(f"\nwrote merged Chrome trace to {args.trace}",
              file=sys.stderr)
    if args.metrics:
        print(f"wrote metrics JSONL to {args.metrics}", file=sys.stderr)


def cmd_chaos(args: argparse.Namespace) -> None:
    """Sweep fault intensity over one configuration and report.

    Runs the configuration clean, then across an intensity ladder ×
    seeds with fault injection attached; prints per-level slowdown and
    recovery statistics and optionally writes the full report as JSON.
    ``--capacity-frac`` shrinks the device below the preset to provoke
    the emergency-eviction path; ``--no-eviction`` disables graceful
    degradation so unrecoverable points surface as infeasible instead.

    ``--dynamic`` switches to the static-vs-replanning comparison
    (:func:`~repro.faults.chaos.replan_chaos_sweep`): every point runs
    twice over ``--iterations`` back-to-back iterations — once on the
    compile-time plan, once with the DELTA-style feedback loop attached
    — and the report shows per-intensity speedups, replan/revert counts
    and whether dynamic ever lost. ``--fault-class`` selects the
    isolated fault axis; ``--trace-dir`` writes collision-free
    per-point Chrome traces with the replan spans merged in.
    """
    import dataclasses
    import json as json_module

    from repro.faults.chaos import chaos_sweep, replan_chaos_sweep

    gpu = _gpu(args.gpu)
    if args.capacity_frac != 1.0:
        if args.capacity_frac <= 0:
            sys.exit(f"--capacity-frac must be > 0, got {args.capacity_frac}")
        gpu = dataclasses.replace(
            gpu,
            name=f"{gpu.name} (x{args.capacity_frac:g} capacity)",
            memory_bytes=int(gpu.memory_bytes * args.capacity_frac),
        )
    graph = build_model(
        args.model, args.batch,
        param_scale=args.param_scale, precision=args.precision,
    )
    if args.smoke:
        intensities: tuple[float, ...] = (0.0, 1.0)
        seed_count = 2
    else:
        try:
            intensities = tuple(
                float(x) for x in args.intensities.split(",") if x.strip()
            )
        except ValueError:
            sys.exit(f"bad --intensities list: {args.intensities!r}")
        seed_count = args.seeds
    if args.dynamic:
        if args.iterations < 2:
            sys.exit(
                f"--dynamic needs --iterations >= 2 (there are no "
                f"iteration boundaries to replan at), got {args.iterations}"
            )
        report = replan_chaos_sweep(
            graph, args.policy, gpu,
            intensities=intensities, seeds=tuple(range(seed_count)),
            iterations=args.iterations, fault_class=args.fault_class,
            emergency_eviction=not args.no_eviction,
            trace_dir=args.trace_dir or None,
        )
        failed = not report.points or not any(
            p.static_feasible for p in report.points
        )
    else:
        report = chaos_sweep(
            graph, args.policy, gpu,
            intensities=intensities, seeds=tuple(range(seed_count)),
            emergency_eviction=not args.no_eviction,
        )
        failed = not report.clean_feasible
    print(report.describe())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote chaos report to {args.json}", file=sys.stderr)
    if failed:
        sys.exit(1)


def cmd_cluster(args: argparse.Namespace) -> None:
    """Simulate one configuration on an N-rank homogeneous cluster.

    Compiles the model under the chosen parallelism mode (``dp``
    gradient all-reduce, ``zero_shard`` multi-rank ZeRO sharding, ``pp``
    1F1B pipeline), runs all ranks under one global event clock, and
    prints per-rank peaks plus cluster aggregates. ``--trace`` writes a
    merged Chrome trace with one named process track per rank.
    """
    from repro import telemetry
    from repro.cluster import bubble_fraction, compile_cluster
    from repro.hardware.cluster import LINK_PRESETS, ClusterSpec
    from repro.pipeline.cache import CompileCache
    from repro.runtime.observers import ChromeTraceObserver

    gpu = _gpu(args.gpu)
    if args.link not in LINK_PRESETS:
        sys.exit(f"unknown link {args.link!r}; available: "
                 f"{', '.join(LINK_PRESETS)}")
    cluster = ClusterSpec.homogeneous(gpu, args.world, link=args.link)
    compiled = compile_cluster(
        args.model, args.batch, args.policy, cluster,
        mode=args.mode, micros=args.micros or None,
        cache=CompileCache(), param_scale=args.param_scale,
    )
    if not compiled.feasible:
        print(f"INFEASIBLE: {compiled.failure}")
        sys.exit(1)
    observers = None
    if args.trace:
        observers = [
            [ChromeTraceObserver(pid=rank)] for rank in range(args.world)
        ]
    trace = compiled.execute(observers=observers)
    micros = compiled.meta.get("micros")
    print(f"{trace.name}: {args.world}x {gpu.name} over "
          f"{cluster.intra_link.name} ({args.mode})")
    print(f"  makespan:       {trace.makespan * 1e3:9.1f} ms")
    print(f"  throughput:     {trace.throughput:9.1f} samples/s")
    for rank, rank_trace in enumerate(trace.ranks):
        print(f"  rank {rank}: peak {format_bytes(rank_trace.peak_memory):>10} "
              f"comm {trace.comm_busy[rank] * 1e3:7.1f} ms "
              f"collective {format_bytes(trace.collective_bytes[rank])}")
    if args.mode == "pp" and micros:
        print(f"  pipeline:       {args.world} stages x {micros} micros, "
              f"bubble fraction {bubble_fraction(args.world, micros):.1%}")
    if args.trace:
        merged = telemetry.merge_traces(
            *(obs[0] for obs in observers),
            names=[f"rank {r} ({gpu.name})" for r in range(args.world)],
        )
        telemetry.write_trace(args.trace, merged)
        print(f"\nwrote merged Chrome trace to {args.trace}",
              file=sys.stderr)


def cmd_memscope(args: argparse.Namespace) -> None:
    """Allocation-level memory observatory for one configuration.

    Runs the configuration with the memscope observer attached (a
    shadow address-space allocator driven from the engine's event
    stream) and prints the report: per-tensor residency, pool shape,
    and — when the run OOMs — the forensic postmortem (capacity vs
    fragmentation, blocking tensors, minimal eviction set). The
    executed plan and trace are byte-identical to an unobserved run;
    memscope only watches.

    ``--capacity-frac`` shrinks the device to provoke pressure;
    ``--trace`` writes one Perfetto file merging the engine's execution
    slices with memscope's address-space counter tracks; ``--heatmap``
    writes the address x time occupancy grid as JSON; ``--world N``
    switches to the cluster path with one shadow pool per rank. An
    infeasible run still exits 0 — the postmortem is the product.
    """
    import json as json_module

    from repro import telemetry
    from repro.analysis.memscope import run_memscope, run_memscope_cluster
    from repro.hardware.cluster import LINK_PRESETS, ClusterSpec
    from repro.pipeline.cache import CompileCache

    gpu = _gpu(args.gpu)
    if args.capacity_frac <= 0:
        sys.exit(f"--capacity-frac must be > 0, got {args.capacity_frac}")
    if args.world > 1:
        if args.link not in LINK_PRESETS:
            sys.exit(f"unknown link {args.link!r}; available: "
                     f"{', '.join(LINK_PRESETS)}")
        if args.capacity_frac != 1.0:
            import dataclasses

            gpu = dataclasses.replace(
                gpu,
                name=f"{gpu.name} (x{args.capacity_frac:g} capacity)",
                memory_bytes=int(gpu.memory_bytes * args.capacity_frac),
            )
        cluster = ClusterSpec.homogeneous(gpu, args.world, link=args.link)
        runs, cluster_trace = run_memscope_cluster(
            args.model, args.batch, args.policy, cluster,
            mode=args.mode, micros=args.micros or None,
            strategy=args.strategy, param_scale=args.param_scale,
            cache=CompileCache(),
        )
        if args.json:
            payload = {
                "cluster": cluster_trace.describe(),
                "ranks": [run.report.to_json() for run in runs],
            }
            print(json_module.dumps(payload, indent=2))
        else:
            print(cluster_trace.describe())
            for run in runs:
                print()
                print(run.report.to_markdown(top=args.top))
        if args.trace:
            merged = telemetry.merge_traces(
                *(run.chrome for run in runs),
                *(run.report.timeline.to_chrome_events() for run in runs),
                names=[
                    *(f"rank {r} ({gpu.name})" for r in range(args.world)),
                    *(f"rank {r} memscope" for r in range(args.world)),
                ],
            )
            telemetry.write_trace(args.trace, merged)
            print(f"\nwrote merged Chrome trace to {args.trace}",
                  file=sys.stderr)
        if args.heatmap:
            grids = [
                run.report.timeline.heatmap() for run in runs
            ]
            with open(args.heatmap, "w", encoding="utf-8") as handle:
                json_module.dump(grids, handle)
            print(f"wrote heatmaps to {args.heatmap}", file=sys.stderr)
        return
    run = run_memscope(
        args.model, args.policy, gpu, args.batch,
        param_scale=args.param_scale, precision=args.precision,
        capacity_frac=args.capacity_frac, strategy=args.strategy,
        cache=CompileCache(), with_chrome=bool(args.trace),
    )
    report = run.report
    if args.json:
        print(json_module.dumps(report.to_json(), indent=2))
    else:
        print(report.to_markdown(top=args.top))
    if args.trace:
        telemetry.write_trace(args.trace, run.merged_trace())
        print(f"\nwrote merged Chrome trace to {args.trace}",
              file=sys.stderr)
    if args.heatmap:
        with open(args.heatmap, "w", encoding="utf-8") as handle:
            json_module.dump(report.timeline.heatmap(), handle)
        print(f"wrote heatmap to {args.heatmap}", file=sys.stderr)


def main(argv: list[str] | None = None) -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TSPLIT reproduction experiment driver",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="execute one configuration")
    _add_common(run_parser)
    run_parser.add_argument("--policy", default="tsplit",
                            help=f"policy ({', '.join(sorted(POLICY_REGISTRY) or ['tsplit', 'base', '...'])})")
    run_parser.add_argument("--batch", type=int, default=64)
    run_parser.set_defaults(func=cmd_run)

    scale_parser = sub.add_parser("scale", help="max trainable scale search")
    _add_common(scale_parser)
    scale_parser.add_argument("--policy", default="tsplit")
    scale_parser.add_argument("--axis", choices=("sample", "parameter"),
                              default="sample")
    scale_parser.add_argument("--cap", type=int, default=4096)
    scale_parser.set_defaults(func=cmd_scale)

    sweep_parser = sub.add_parser("sweep", help="throughput sweep")
    _add_common(sweep_parser)
    sweep_parser.add_argument("--policies", default="base,vdnn_all,tsplit")
    sweep_parser.add_argument("--batches", default="64,128,256")
    sweep_parser.add_argument(
        "--parallel", type=int, default=0, metavar="N",
        help="fan sweep points out over N workers (0 = serial)")
    sweep_parser.add_argument(
        "--backend", choices=("serial", "thread", "process"), default=None,
        help="worker pool for --parallel: threads share one in-memory "
             "cache, processes sidestep the GIL and share via --cache-dir "
             "(default: thread when --parallel is set)")
    sweep_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist compiled profiles/plans as content-addressed files "
             "under DIR (e.g. ~/.cache/repro); warm re-runs and process "
             "workers reuse them")
    sweep_parser.add_argument(
        "--cache-stats", default="", metavar="PATH",
        help="write the driver cache's hit/miss/disk counters as JSON "
             "(serial/thread backends)")
    sweep_parser.set_defaults(func=cmd_sweep)

    serve_parser = sub.add_parser(
        "serve",
        help="boot the plan-serving daemon (JSON plan/run over HTTP)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8757,
                              help="listen port (0 = ephemeral)")
    serve_parser.add_argument(
        "--workers", type=int, default=4,
        help="compile worker slots (HTTP threads only wait; each slot "
             "gets an equal share of the machine worker budget)")
    serve_parser.add_argument(
        "--max-inflight", type=int, default=64,
        help="admission cap on requests in flight (excess gets 429)")
    serve_parser.add_argument(
        "--tenant-quota", type=int, default=16,
        help="per-tenant in-flight cap")
    serve_parser.add_argument(
        "--cache-dir", default="", metavar="DIR",
        help="persist compiled profiles/plans under DIR (restarts and "
             "sweep workers share them)")
    serve_parser.add_argument(
        "--cache-entries", type=int, default=2048,
        help="in-memory LRU capacity of the shared compile cache")
    serve_parser.add_argument(
        "--no-telemetry", dest="telemetry", action="store_false",
        help="skip the metrics-only telemetry session (/stats then "
             "reports no telemetry counters)")
    serve_parser.add_argument(
        "--verbose", action="store_true",
        help="log every HTTP request to stderr")
    serve_parser.set_defaults(func=cmd_serve)

    plan_parser = sub.add_parser("plan", help="show TSPLIT's plan")
    _add_common(plan_parser)
    plan_parser.add_argument("--batch", type=int, default=64)
    plan_parser.add_argument("--top", type=int, default=15,
                             help="largest configured tensors to show")
    plan_parser.set_defaults(func=cmd_plan)

    trace_parser = sub.add_parser(
        "trace", help="export a Chrome trace-event JSON of one run",
    )
    trace_parser.add_argument("model",
                              help=f"model name ({', '.join(model_names())})")
    trace_parser.add_argument("policy",
                              help=f"policy ({', '.join(sorted(POLICY_REGISTRY) or ['tsplit'])})")
    trace_parser.add_argument("--batch", type=int, default=64)
    trace_parser.add_argument("--gpu", default="rtx_titan",
                              help=f"GPU preset ({', '.join(GPU_PRESETS)})")
    trace_parser.add_argument("--param-scale", type=float, default=1.0)
    trace_parser.add_argument("--precision", choices=("fp32", "fp16"),
                              default="fp32")
    trace_parser.add_argument("--out", default="trace.json",
                              help="output path for the trace JSON")
    trace_parser.set_defaults(func=cmd_trace)

    explain_parser = sub.add_parser(
        "explain",
        help="explain every planner decision for one configuration",
    )
    explain_parser.add_argument(
        "model", help=f"model name ({', '.join(model_names())})",
    )
    explain_parser.add_argument(
        "--batch-size", "--batch", dest="batch_size", type=int, default=64,
    )
    explain_parser.add_argument("--policy", default="tsplit")
    explain_parser.add_argument("--gpu", default="rtx_titan",
                                help=f"GPU preset ({', '.join(GPU_PRESETS)})")
    explain_parser.add_argument("--param-scale", type=float, default=1.0)
    explain_parser.add_argument("--precision", choices=("fp32", "fp16"),
                                default="fp32")
    explain_parser.add_argument("--top", type=int, default=10,
                                help="most expensive decisions to detail")
    explain_parser.add_argument("--json", action="store_true",
                                help="emit the report as JSON")
    explain_parser.add_argument(
        "--trace", default="", metavar="PATH",
        help="write a merged Chrome trace (pipeline spans + engine events)")
    explain_parser.add_argument(
        "--metrics", default="", metavar="PATH",
        help="write the session's metrics as JSONL")
    explain_parser.add_argument(
        "--fault-intensity", type=float, default=0.0,
        help="attach fault injection at this chaos intensity (the "
             "report then includes the fault-recovery section)")
    explain_parser.add_argument(
        "--fault-seed", type=int, default=0,
        help="fault-schedule seed for --fault-intensity")
    explain_parser.add_argument(
        "--memscope", action="store_true",
        help="attach the allocation-level memory observatory and embed "
             "its residency/forensics report")
    explain_parser.set_defaults(func=cmd_explain)

    chaos_parser = sub.add_parser(
        "chaos",
        help="sweep fault intensity and report slowdown + recovery stats",
    )
    chaos_parser.add_argument(
        "model", help=f"model name ({', '.join(model_names())})",
    )
    chaos_parser.add_argument("--policy", default="tsplit")
    chaos_parser.add_argument("--batch", type=int, default=64)
    chaos_parser.add_argument("--gpu", default="rtx_titan",
                              help=f"GPU preset ({', '.join(GPU_PRESETS)})")
    chaos_parser.add_argument("--param-scale", type=float, default=1.0)
    chaos_parser.add_argument("--precision", choices=("fp32", "fp16"),
                              default="fp32")
    chaos_parser.add_argument(
        "--intensities", default="0,0.5,1,2",
        help="comma-separated fault-intensity ladder (0 = clean-equivalent)")
    chaos_parser.add_argument(
        "--seeds", type=int, default=5,
        help="fault seeds per intensity (0..N-1)")
    chaos_parser.add_argument(
        "--capacity-frac", type=float, default=1.0,
        help="shrink device memory to this fraction of the preset "
             "(provokes the emergency-eviction path)")
    chaos_parser.add_argument(
        "--no-eviction", action="store_true",
        help="disable graceful degradation (unrecoverable points become "
             "infeasible)")
    chaos_parser.add_argument(
        "--json", default="", metavar="PATH",
        help="write the full report as JSON")
    chaos_parser.add_argument(
        "--smoke", action="store_true",
        help="tiny ladder for CI (intensities 0,1 x 2 seeds)")
    chaos_parser.add_argument(
        "--dynamic", action="store_true",
        help="compare static plans against the DELTA-style replanning "
             "feedback loop at every point")
    chaos_parser.add_argument(
        "--iterations", type=int, default=4,
        help="back-to-back iterations per point under --dynamic "
             "(replans happen at iteration boundaries)")
    chaos_parser.add_argument(
        "--fault-class",
        choices=("mixed", "degraded_pcie", "flaky_link", "noisy"),
        default="mixed",
        help="isolated fault axis for --dynamic sweeps")
    chaos_parser.add_argument(
        "--trace-dir", default="", metavar="DIR",
        help="with --dynamic: write per-point merged Chrome traces "
             "(names embed model, policy, intensity and seed)")
    chaos_parser.set_defaults(func=cmd_chaos)

    cluster_parser = sub.add_parser(
        "cluster",
        help="simulate one configuration on an N-rank cluster",
    )
    cluster_parser.add_argument(
        "model", help=f"model name ({', '.join(model_names())})",
    )
    cluster_parser.add_argument("--policy", default="tsplit")
    cluster_parser.add_argument("--batch", type=int, default=64,
                                help="global batch, divided across ranks "
                                     "(dp/zero_shard) or micro-batches (pp)")
    cluster_parser.add_argument("--gpu", default="rtx_titan",
                                help=f"GPU preset ({', '.join(GPU_PRESETS)})")
    cluster_parser.add_argument("--world", type=int, default=2,
                                help="number of ranks")
    cluster_parser.add_argument(
        "--mode", choices=("dp", "zero_shard", "pp"), default="dp",
        help="parallelism: data-parallel all-reduce, multi-rank ZeRO "
             "sharding, or 1F1B pipeline stages")
    cluster_parser.add_argument(
        "--micros", type=int, default=0,
        help="pipeline micro-batch count (pp only; 0 = 2 x world)")
    cluster_parser.add_argument(
        "--link", default="nvlink",
        help="link preset between ranks "
             "(nvlink, pcie, ethernet, or any LINK_PRESETS key)")
    cluster_parser.add_argument("--param-scale", type=float, default=1.0)
    cluster_parser.add_argument(
        "--trace", default="", metavar="PATH",
        help="write a merged Chrome trace with one process per rank")
    cluster_parser.set_defaults(func=cmd_cluster)

    memscope_parser = sub.add_parser(
        "memscope",
        help="allocation-level memory observatory with OOM forensics",
    )
    memscope_parser.add_argument(
        "model", help=f"model name ({', '.join(model_names())})",
    )
    memscope_parser.add_argument("--policy", default="tsplit")
    memscope_parser.add_argument("--batch", type=int, default=64)
    memscope_parser.add_argument("--gpu", default="rtx_titan",
                                 help=f"GPU preset ({', '.join(GPU_PRESETS)})")
    memscope_parser.add_argument("--param-scale", type=float, default=1.0)
    memscope_parser.add_argument("--precision", choices=("fp32", "fp16"),
                                 default="fp32")
    memscope_parser.add_argument(
        "--capacity-frac", type=float, default=1.0,
        help="shrink device memory to this fraction of the preset "
             "(provokes pressure; the OOM postmortem needs a failure)")
    memscope_parser.add_argument(
        "--strategy",
        choices=("best_fit", "first_fit", "worst_fit", "segregated"),
        default="best_fit",
        help="shadow-pool placement strategy")
    memscope_parser.add_argument("--top", type=int, default=15,
                                 help="residency rows to show")
    memscope_parser.add_argument("--json", action="store_true",
                                 help="emit the report as JSON")
    memscope_parser.add_argument(
        "--trace", default="", metavar="PATH",
        help="write one Perfetto trace merging engine execution with "
             "memscope's address-space counter tracks")
    memscope_parser.add_argument(
        "--heatmap", default="", metavar="PATH",
        help="write the address x time occupancy heatmap as JSON")
    memscope_parser.add_argument("--world", type=int, default=1,
                                 help="ranks (>1 = cluster memscope)")
    memscope_parser.add_argument(
        "--mode", choices=("dp", "zero_shard", "pp"), default="dp",
        help="cluster parallelism mode (with --world > 1)")
    memscope_parser.add_argument(
        "--micros", type=int, default=0,
        help="pipeline micro-batch count (pp only; 0 = 2 x world)")
    memscope_parser.add_argument(
        "--link", default="nvlink",
        help="link preset between ranks (with --world > 1)")
    memscope_parser.set_defaults(func=cmd_memscope)

    args = parser.parse_args(argv)
    args.func(args)


if __name__ == "__main__":
    main()
