"""The discrete-event execution engine.

Executes an augmented instruction program against a simulated GPU as a
true discrete-event system:

* one serial **compute** stream, serial **D2H** / **H2D** copy streams
  (the paper's three CUDA streams), plus a **host** stream for
  CPU-offloaded optimizer updates;
* a global dispatcher that always advances the lane whose head
  instruction starts earliest (ties broken by issue order), so
  allocation, free and swap-completion events are applied to the
  :class:`~repro.hardware.memory_pool.DeviceMemoryLedger` in
  chronological order — ``used``, ``peak_memory`` and the Equation-3
  memory stalls are exact by construction, with no post-hoc replay of
  the allocation log needed to recover the true peak;
* event-based dependencies: a compute kernel starts only when its input
  (micro-)tensors are ready, a swap-in only when its host copy exists,
  and a buffer is reclaimed only once *both* its eviction transfer and
  every previously-issued consumer have finished (the CUDA-event
  ordering a real runtime enforces before returning memory to the pool);
* byte-accurate device-memory accounting: allocations wait for enough
  pending frees (swap-out completions) to land — the stall the paper's
  Equation 3 models — and raise
  :class:`~repro.errors.OutOfMemoryError` when no amount of waiting can
  ever satisfy them;
* pluggable :class:`~repro.runtime.observers.EngineObserver` instances
  that watch the chronological event stream (instruction start/end,
  alloc/free, stall begin/end, fault/recovery, OOM) — tracing cost is
  opt-in per observer;
* optional **fault injection with graceful degradation**: with a
  :class:`~repro.faults.model.FaultConfig` attached, kernel times and
  PCIe bandwidth jitter, transfers fail transiently and are retried
  with exponential backoff, and an allocation that can never fit
  triggers emergency eviction of the coldest resident (micro-)tensors
  (SuperNeurons-style) — with automatic re-fetch when an evicted tensor
  is consumed again — instead of aborting. Every recovery action is
  recorded in the trace and telemetry. With ``faults=None`` the fault
  machinery is completely inert and runs are byte-identical to a
  pre-fault engine.

The engine is deliberately *not* given the plan or the graph: everything
it needs is in the instruction stream, which keeps the augmenter honest
(any bookkeeping bug shows up as an engine error, not silent drift).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import OutOfMemoryError, RuntimeExecutionError
from repro.faults.model import FaultConfig, FaultModel
from repro.hardware.gpu import GPUSpec
from repro.hardware.memory_pool import DeviceMemoryLedger
from repro.hardware.pcie import PCIeModel
from repro.hardware.streams import Event, Stream, StreamSet
from repro.runtime.instructions import (
    CollectiveInstr,
    ComputeInstr,
    Device,
    FreeInstr,
    Instruction,
    Program,
    SwapInInstr,
    SwapOutInstr,
    TensorRef,
    XferInstr,
    instr_reads,
    instr_stream,
)

from repro.runtime.observers import EngineObserver, TraceObserver
from repro.runtime.trace import ExecutionTrace

#: The engine's built-in serial lanes; anything else (collective comm
#: lanes, pipeline point-to-point lanes) is created on demand, so
#: programs without collectives see exactly the classic four streams.
FIXED_LANES = ("compute", "d2h", "h2d", "cpu")


@dataclass(frozen=True)
class EngineOptions:
    """Engine knobs."""

    #: Record per-instruction timing and memory samples by implicitly
    #: attaching a :class:`~repro.runtime.observers.TraceObserver`
    #: (disable for large parameter sweeps where only aggregates matter;
    #: aggregate numbers are identical either way).
    record_trace: bool = True
    #: Observers attached to every run of this engine, in addition to
    #: any passed per-call to :meth:`Engine.execute`.
    observers: tuple[EngineObserver, ...] = ()
    #: Fault-injection configuration; ``None`` (the default) keeps every
    #: fault/recovery code path inert and execution byte-identical to an
    #: engine without the fault layer.
    faults: FaultConfig | None = None


class Engine:
    """Executes programs on one simulated GPU."""

    def __init__(self, gpu: GPUSpec, options: EngineOptions | None = None) -> None:
        self.gpu = gpu
        self.options = options or EngineOptions()
        self.pcie = PCIeModel(gpu)

    def execute(
        self,
        program: Program,
        observers: tuple[EngineObserver, ...] | list[EngineObserver] = (),
    ) -> ExecutionTrace:
        """Run a program to completion and return its trace.

        Raises
        ------
        OutOfMemoryError
            When an allocation cannot be satisfied even after every
            pending eviction completes.
        RuntimeExecutionError
            On inconsistent programs (use of non-resident tensors,
            double allocation, ...).
        """
        run = _Run(self.gpu, self.pcie, program, self.options, observers)
        return run.execute()

    def execute_iterations(
        self,
        program: Program,
        iterations: int,
        observers: tuple[EngineObserver, ...] | list[EngineObserver] = (),
        *,
        boundary_hook=None,
    ) -> tuple[list[float], ExecutionTrace]:
        """Run the same iteration program back to back.

        Streams, host copies and sharded-parameter state carry across
        iterations, so the result shows the warm-up effect (iteration 1
        pays cold prefetches; later iterations reach steady state). The
        returned trace aggregates all iterations; the list holds each
        iteration's duration, read off the event clock (latest completion
        event dispatched so far), so the durations sum exactly to the
        aggregate makespan.

        After every iteration each observer's ``on_iteration_end`` fires;
        between iterations (never after the last) an optional
        ``boundary_hook(index, run)`` may return a replacement
        :class:`~repro.runtime.instructions.Program` to hot-swap via
        :meth:`_Run.swap_program` — the dynamic-replanning entry point.
        Returning ``None`` (or the current program) keeps execution
        untouched, and with no hook the loop is byte-identical to the
        pre-hook engine.

        Raises the same errors as :meth:`execute`.
        """
        if iterations < 1:
            raise RuntimeExecutionError(
                f"iterations must be >= 1, got {iterations}"
            )
        run = _Run(self.gpu, self.pcie, program, self.options, observers)
        durations: list[float] = []
        previous = 0.0
        for index in range(iterations):
            run.execute_instructions()
            start, previous = previous, run.clock
            durations.append(run.clock - start)
            for observer in run.observers:
                observer.on_iteration_end(index, start, run.clock)
            if boundary_hook is not None and index + 1 < iterations:
                replacement = boundary_hook(index, run)
                if replacement is not None and replacement is not run.program:
                    run.swap_program(replacement)
        return durations, run.finalize()


class _Lane:
    """One serial dispatch queue (a CUDA stream or the host)."""

    __slots__ = ("name", "stream", "queue")

    def __init__(self, name: str, stream: Stream) -> None:
        self.name = name
        self.stream = stream
        self.queue: deque[tuple[int, Instruction]] = deque()


class _Candidate:
    """A dispatchable lane head with its resolved start time."""

    __slots__ = ("start", "issue", "lane", "instr", "not_before", "need",
                 "skip")

    def __init__(
        self,
        start: float,
        issue: int,
        lane: _Lane,
        instr: Instruction,
        not_before: float = 0.0,
        need: int = 0,
        skip: bool = False,
    ) -> None:
        self.start = start
        self.issue = issue
        self.lane = lane
        self.instr = instr
        self.not_before = not_before
        self.need = need
        #: Recovery no-op: the instruction's effect already happened out
        #: of band (emergency eviction / re-fetch), so dispatch only
        #: updates bookkeeping without touching streams or the ledger.
        self.skip = skip


class _Blocked:
    """A lane head that cannot dispatch yet.

    Carries the error to raise if the whole machine turns out to be
    stuck on it; transient blocks (a dependency produced by a not yet
    dispatched earlier instruction) clear on their own as other lanes
    advance, so the error only surfaces when no lane can move. With the
    recovery layer enabled it additionally carries what a recovery
    could do about the block: refs to re-fetch from host, or the
    allocation shape (need/credit/protected keys) an emergency eviction
    would have to satisfy.
    """

    __slots__ = ("issue", "error", "label", "refetch", "need", "credit",
                 "protect")

    def __init__(
        self,
        issue: int,
        error: Exception,
        label: str = "",
        refetch: tuple[TensorRef, ...] = (),
        need: int = 0,
        credit: int = 0,
        protect: tuple[tuple[int, int], ...] = (),
    ) -> None:
        self.issue = issue
        self.error = error
        self.label = label
        self.refetch = refetch
        self.need = need
        self.credit = credit
        self.protect = protect


class _Run:
    """Mutable state of one engine execution."""

    def __init__(
        self,
        gpu: GPUSpec,
        pcie: PCIeModel,
        program: Program,
        options: EngineOptions,
        extra_observers: tuple[EngineObserver, ...] | list[EngineObserver] = (),
    ) -> None:
        self.gpu = gpu
        self.pcie = pcie
        self.program = program
        self.options = options
        self.streams = StreamSet()
        self.cpu = Stream("cpu")
        self.capacity = gpu.memory_bytes
        self.ledger = DeviceMemoryLedger(self.capacity)
        if program.persistent_bytes > self.capacity:
            raise OutOfMemoryError(
                requested=program.persistent_bytes,
                available=self.capacity,
                capacity=self.capacity,
                message=(
                    f"{program.name}: persistent tensors "
                    f"({program.persistent_bytes} B) exceed device memory "
                    f"({self.capacity} B)"
                ),
            )
        self.ledger.charge(program.persistent_bytes)
        self.resident: dict[tuple[int, int], int] = {}
        self.ready: dict[tuple[int, int], float] = {}
        self.host_copy: dict[tuple[int, int], float] = {
            ref.key: 0.0 for ref in program.initial_host
        }
        self.host_used = sum(ref.nbytes for ref in program.initial_host)
        self.host_peak = self.host_used
        self.memory_stall = 0.0
        self.swapped_out = 0
        self.swapped_in = 0
        self.recompute_time = 0.0
        self.recompute_ops = 0
        self.split_kernels = 0
        #: Latest completion event dispatched so far (the event clock).
        self.clock = 0.0
        #: Per-run fault sampler; ``None`` keeps every fault path inert.
        self.faults: FaultModel | None = (
            FaultModel(options.faults) if options.faults is not None else None
        )
        self._recovery = (
            options.faults is not None and options.faults.emergency_eviction
        )
        #: Keys whose current *non*-residency is an emergency eviction
        #: the plan doesn't know about (skip planned swap-out/free,
        #: re-fetch on demand).
        self._emergency: set[tuple[int, int]] = set()
        #: Keys currently resident because of an emergency re-fetch the
        #: plan doesn't know about (skip the planned swap-in).
        self._refetched: set[tuple[int, int]] = set()
        #: Fault/recovery statistics (all stay zero with faults=None).
        self.transfer_retries = 0
        self.retry_backoff_time = 0.0
        self.emergency_evictions = 0
        self.emergency_evicted_bytes = 0
        self.emergency_refetches = 0
        self.emergency_refetched_bytes = 0
        self.recovered_skips = 0
        #: Mid-run plan hot-swaps applied via :meth:`swap_program`.
        self.plan_swaps = 0
        #: Consecutive recovery actions with no dispatch in between
        #: (defensive thrash guard).
        self._recovery_streak = 0
        self._key_labels: dict[tuple[int, int], str] = {}
        self.lanes = {
            "compute": _Lane("compute", self.streams.compute),
            "d2h": _Lane("d2h", self.streams.d2h),
            "h2d": _Lane("h2d", self.streams.h2d),
            "cpu": _Lane("cpu", self.cpu),
        }
        #: Latest finish time of any dispatched reader, per key; an
        #: eviction reclaims memory no earlier than this (CUDA-event
        #: ordering with the buffer's consumers).
        self._read_end: dict[tuple[int, int], float] = {}
        #: Reads dispatched so far, per key (guard progress).
        self._reads_done: dict[tuple[int, int], int] = {}
        self._dispatched: list[bool] = []
        self._read_guard: dict[int, int] = {}
        self._coll_read_guard: dict[int, tuple[tuple[tuple[int, int], int], ...]] = {}
        self._dep_guard: dict[int, tuple[int, ...]] = {}
        #: Payload bytes moved by collectives dispatched on this rank.
        self.collective_bytes = 0
        self._precompute_guards()
        observers: list[EngineObserver] = [
            *options.observers, *extra_observers,
        ]
        self._tracer: TraceObserver | None = None
        if options.record_trace:
            self._tracer = TraceObserver()
            observers.append(self._tracer)
        self.observers: tuple[EngineObserver, ...] = tuple(observers)
        self._free_hook = self._on_ledger_free if self.observers else None
        for observer in self.observers:
            observer.on_run_begin(program, gpu)

    @staticmethod
    def _guard_keys(instr: Instruction) -> tuple[tuple[int, int], ...]:
        """Keys whose issue-order state an instruction depends on."""
        if isinstance(instr, ComputeInstr):
            refs = (*instr.inputs, *instr.outputs, *instr.alloc_only,
                    *instr.finishes)
        elif isinstance(instr, XferInstr):
            refs = instr.after
        elif isinstance(instr, CollectiveInstr):
            refs = (*instr.inputs, *instr.outputs, *instr.frees)
        else:
            refs = (instr.ref,)
        return tuple(ref.key for ref in refs)

    def _precompute_guards(self) -> None:
        """Issue-order guards that keep per-key state transitions sane.

        Dispatch is chronological, but the *state machine* of each key
        (produced, evicted, re-materialised, ...) must follow issue
        order, or a backward-pass swap-in could run before the forward
        pass re-produces and re-evicts the tensor in iteration two. Two
        guards enforce this without constraining timing:

        * every instruction waits until the **latest earlier-issued
          writer** of each key it touches (producer or eviction — the
          key's "changer") has dispatched, so it observes the state its
          issue position implies;
        * an eviction additionally waits until every earlier-issued
          **reader** of its key has dispatched, so the finish times of
          the buffer's consumers are known when the release instant
          ``max(transfer end, last read end)`` is computed.
        """
        counts: dict[tuple[int, int], int] = {}
        changer: dict[tuple[int, int], int] = {}
        for issue, instr in enumerate(self.program.instructions):
            if isinstance(instr, (SwapOutInstr, FreeInstr)):
                self._read_guard[issue] = counts.get(instr.ref.key, 0)
            elif isinstance(instr, CollectiveInstr) and instr.frees:
                # A collective that retires buffers is an eviction of
                # each of them: hold it until their earlier readers ran.
                self._coll_read_guard[issue] = tuple(
                    (ref.key, counts.get(ref.key, 0)) for ref in instr.frees
                )
            guards = {
                changer[key] for key in self._guard_keys(instr)
                if key in changer
            }
            if guards:
                self._dep_guard[issue] = tuple(guards)
            for ref in instr_reads(instr):
                counts[ref.key] = counts.get(ref.key, 0) + 1
            if isinstance(instr, ComputeInstr):
                for ref in (*instr.outputs, *instr.alloc_only,
                            *instr.finishes):
                    changer[ref.key] = issue
            elif isinstance(instr, (SwapInInstr, SwapOutInstr, FreeInstr)):
                changer[instr.ref.key] = issue
            elif isinstance(instr, CollectiveInstr):
                # Inputs count too: an in-place collective pushes its
                # operands' ready times, so later consumers must observe
                # it dispatched before they resolve their start.
                for ref in (*instr.inputs, *instr.outputs, *instr.frees):
                    changer[ref.key] = issue

    # -- mid-run plan swap -------------------------------------------------------

    def swap_program(self, program: Program) -> None:
        """Hot-swap the iteration program at an iteration boundary.

        The replacement must be a lowering of the *same* training step
        (same batch, same persistent region, graph-stable tensor keys),
        so residency, host copies and the recovery markers carry across
        untouched — the ledger keeps its chronological history and no
        buffer is double-freed or leaked; any genuine inconsistency the
        new instruction stream introduces surfaces as the usual engine
        state-machine error on dispatch. Only the issue-order guards are
        program-shaped, so they are recomputed from scratch; host copies
        the new lowering expects pinned from the start (its
        ``initial_host``) are materialised at the swap instant.
        """
        for lane in self.lanes.values():
            if lane.queue:
                raise RuntimeExecutionError(
                    f"{self.program.name}: cannot swap programs "
                    f"mid-iteration ({sum(len(l.queue) for l in self.lanes.values())} "
                    f"instructions still queued)"
                )
        if program.persistent_bytes != self.program.persistent_bytes:
            raise RuntimeExecutionError(
                f"{program.name}: plan swap changes the persistent region "
                f"({self.program.persistent_bytes} B -> "
                f"{program.persistent_bytes} B); replans must keep "
                f"weights/optimizer placement fixed"
            )
        if program.batch != self.program.batch:
            raise RuntimeExecutionError(
                f"{program.name}: plan swap changes the batch size "
                f"({self.program.batch} -> {program.batch})"
            )
        for ref in program.initial_host:
            if ref.key not in self.host_copy:
                self.host_copy[ref.key] = self.clock
                self.host_used += ref.nbytes
                self.host_peak = max(self.host_peak, self.host_used)
        self.program = program
        self._read_guard = {}
        self._coll_read_guard = {}
        self._dep_guard = {}
        self._precompute_guards()
        self.plan_swaps += 1

    def attach_observer(self, observer: EngineObserver) -> None:
        """Attach an observer mid-run.

        Takes effect at the next dispatch; ``on_run_begin`` does not
        fire retroactively (the observer sees events from now on).
        """
        self.observers = (*self.observers, observer)
        self._free_hook = self._on_ledger_free

    def detach_observer(self, observer: EngineObserver) -> None:
        """Detach a previously-attached observer mid-run.

        Detaching an observer that is not attached is a no-op; with no
        observers left the ledger free hook is dropped so the clean-run
        fast path is restored.
        """
        self.observers = tuple(
            existing for existing in self.observers
            if existing is not observer
        )
        if not self.observers:
            self._free_hook = None

    # -- observer notification ---------------------------------------------------

    def _on_ledger_free(self, at: float, label: str, nbytes: int,
                        used: int) -> None:
        """Ledger commit hook: fan a free event out to the observers."""
        for observer in self.observers:
            observer.on_free(at, label, nbytes, used)

    def _notify_alloc(self, at: float, label: str, nbytes: int) -> None:
        if not self.observers:
            return
        used = self.ledger.used
        for observer in self.observers:
            observer.on_alloc(at, label, nbytes, used)

    def _notify_instr(
        self,
        label: str,
        kind: str,
        stream: str,
        start: float,
        end: float,
        *,
        nbytes: int = 0,
        tag: str = "",
    ) -> None:
        for observer in self.observers:
            observer.on_instr_start(label, kind, stream, start, nbytes, tag)
            observer.on_instr_end(label, kind, stream, start, end, nbytes, tag)

    def _notify_fault(
        self, time: float, kind: str, label: str, nbytes: int = 0,
    ) -> None:
        """Record one fault/recovery action in observers and telemetry.

        Only reachable from fault paths, so the clean-run hot path never
        pays for the telemetry lookup.
        """
        for observer in self.observers:
            observer.on_fault(time, kind, label, nbytes)
        from repro.telemetry import get_telemetry

        metrics = get_telemetry().metrics
        if metrics.enabled:
            metrics.counter(f"engine.faults.{kind}").inc()

    # -- execution ---------------------------------------------------------------

    def execute(self) -> ExecutionTrace:
        """One pass over the program, then aggregate the trace."""
        self.execute_instructions()
        return self.finalize()

    def execute_instructions(self) -> None:
        """Dispatch one pass over the program in chronological order.

        Each instruction joins the FIFO queue of its lane (stream); the
        dispatcher repeatedly resolves every lane head's candidate start
        time and dispatches the earliest-starting head, ties broken by
        issue order. Because every state change a dispatch makes lands at
        or after its start time, dispatch order is chronological and the
        memory ledger sees allocation and free events in time order.

        A head blocked on a dependency that an undispatched earlier
        instruction will produce simply waits; if no head at all can
        dispatch, the block at the lowest issue position is a genuine
        program error (or OOM) and its error is raised.
        """
        remaining = self._enqueue_pass()
        while remaining:
            best: _Candidate | None = None
            stuck: _Blocked | None = None
            blocked: list[_Blocked] = []
            for lane in self.lanes.values():
                if not lane.queue:
                    continue
                head = self._prepare_head(lane)
                if isinstance(head, _Blocked):
                    if stuck is None or head.issue < stuck.issue:
                        stuck = head
                    if self._recovery:
                        blocked.append(head)
                    continue
                if best is None or (head.start, head.issue) < (
                    best.start, best.issue,
                ):
                    best = head
            if best is None:
                if stuck is None:  # pragma: no cover - defensive
                    raise RuntimeExecutionError(
                        f"{self.program.name}: dispatcher wedged with "
                        f"{remaining} instructions left"
                    )
                # Graceful degradation: with recovery enabled, a wedged
                # machine gets one recovery action (re-fetch an
                # emergency-evicted dependency, or evict cold residents
                # to satisfy a terminal allocation failure) and the
                # dispatch loop retries.
                if self._recovery and self._recover(blocked):
                    continue
                error = stuck.error
                if isinstance(error, OutOfMemoryError):
                    for observer in self.observers:
                        observer.on_oom(
                            self.ledger.time, stuck.label,
                            error.requested, error.available,
                        )
                raise error
            best.lane.queue.popleft()
            self._dispatch(best)
            self._commit_dispatch(best)
            remaining -= 1

    def _enqueue_pass(self) -> int:
        """Reset per-pass state and queue every instruction on its lane.

        Lanes beyond the four fixed streams (collective ``comm`` lanes,
        pipeline point-to-point lanes) are created on first use, so
        programs without collectives see exactly the classic stream set.
        """
        self._reads_done = {}
        self._dispatched = [False] * len(self.program.instructions)
        for issue, instr in enumerate(self.program.instructions):
            name = instr_stream(instr)
            lane = self.lanes.get(name)
            if lane is None:
                lane = self.lanes[name] = _Lane(name, Stream(name))
            lane.queue.append((issue, instr))
        return len(self.program.instructions)

    def _commit_dispatch(self, cand: _Candidate) -> None:
        """Bookkeeping after one dispatched candidate (guard progress)."""
        self._dispatched[cand.issue] = True
        self._recovery_streak = 0
        for ref in instr_reads(cand.instr):
            key = ref.key
            self._reads_done[key] = self._reads_done.get(key, 0) + 1

    def comm_busy(self) -> float:
        """Busy time summed over the on-demand communication lanes."""
        return sum(
            lane.stream.busy_time()
            for name, lane in self.lanes.items()
            if name not in FIXED_LANES
        )

    def finalize(self) -> ExecutionTrace:
        """Aggregate stream/memory statistics into a trace."""
        self.ledger.drain(self._free_hook)
        tracer = self._tracer
        trace = ExecutionTrace(
            name=self.program.name,
            batch=self.program.batch,
            iteration_time=self.clock,
            compute_busy=self.streams.compute.busy_time(),
            cpu_busy=self.cpu.busy_time(),
            d2h_busy=self.streams.d2h.busy_time(),
            h2d_busy=self.streams.h2d.busy_time(),
            memory_stall=self.memory_stall,
            peak_memory=self.ledger.peak,
            persistent_bytes=self.program.persistent_bytes,
            swapped_out_bytes=self.swapped_out,
            swapped_in_bytes=self.swapped_in,
            recompute_time=self.recompute_time,
            recompute_ops=self.recompute_ops,
            split_kernels=self.split_kernels,
            host_peak_bytes=self.host_peak,
            records=tracer.records if tracer else [],
            memory_samples=tracer.samples if tracer else [],
            alloc_events=tracer.alloc_events if tracer else [],
            transfer_retries=self.transfer_retries,
            retry_backoff_time=self.retry_backoff_time,
            emergency_evictions=self.emergency_evictions,
            emergency_evicted_bytes=self.emergency_evicted_bytes,
            emergency_refetches=self.emergency_refetches,
            emergency_refetched_bytes=self.emergency_refetched_bytes,
            recovered_skips=self.recovered_skips,
            plan_swaps=self.plan_swaps,
            fault_events=tracer.fault_events if tracer else [],
            stall_events=tracer.stall_events if tracer else [],
        )
        for observer in self.observers:
            observer.on_run_end(trace)
        return trace

    # -- head preparation --------------------------------------------------------

    def _prepare_head(self, lane: _Lane) -> _Candidate | _Blocked:
        """Resolve a lane head into a candidate start time, or a block."""
        issue, instr = lane.queue[0]
        for guard in self._dep_guard.get(issue, ()):
            if not self._dispatched[guard]:
                return _Blocked(issue, RuntimeExecutionError(
                    f"{self.program.name}: instruction {issue} deadlocked "
                    f"waiting for instruction {guard}"
                ))
        if isinstance(instr, ComputeInstr):
            if instr.device is Device.CPU:
                return self._prepare_cpu(issue, instr, lane)
            return self._prepare_compute(issue, instr, lane)
        if isinstance(instr, SwapOutInstr):
            return self._prepare_swap_out(issue, instr, lane)
        if isinstance(instr, SwapInInstr):
            return self._prepare_swap_in(issue, instr, lane)
        if isinstance(instr, FreeInstr):
            return self._prepare_free(issue, instr, lane)
        if isinstance(instr, XferInstr):
            return self._prepare_xfer(issue, instr, lane)
        if isinstance(instr, CollectiveInstr):
            return self._prepare_collective(issue, instr, lane)
        raise RuntimeExecutionError(  # pragma: no cover - defensive
            f"unknown instruction {instr!r}"
        )

    def _prepare_collective(
        self, issue: int, instr: CollectiveInstr, lane: _Lane,
    ) -> _Candidate | _Blocked:
        """Local readiness of one rank's share of a collective.

        The returned candidate's ``start`` is when *this rank* could
        join; the actual start is the maximum over the group, resolved
        by the dispatcher that owns the rendezvous (the cluster engine,
        or trivially this run for single-member groups).
        """
        for key, guard in self._coll_read_guard.get(issue, ()):
            if self._reads_done.get(key, 0) < guard:
                return _Blocked(issue, RuntimeExecutionError(
                    f"{self.program.name}: collective {instr.label!r} "
                    f"deadlocked waiting for earlier consumers of {key}"
                ), instr.label)
        deps = 0.0
        for ref in (*instr.inputs, *instr.frees):
            time = self.ready.get(ref.key)
            if time is None:
                return _Blocked(issue, RuntimeExecutionError(
                    f"{self.program.name}: collective {instr.label!r} uses "
                    f"tensor {ref.key} which is not resident"
                ), instr.label)
            deps = max(deps, time)
        need = 0
        for ref in instr.outputs:
            if ref.key in self.resident:
                return _Blocked(issue, RuntimeExecutionError(
                    f"{self.program.name}: collective {instr.label!r} "
                    f"re-allocates resident tensor {ref.label!r}"
                ), instr.label)
            need += ref.nbytes
        not_before = max(lane.stream.earliest_start(deps), self.ledger.time)
        start = self.ledger.earliest_fit(need, not_before)
        if start is None:
            return _Blocked(
                issue, self._device_oom(instr.label, need, 0), instr.label,
                need=need,
            )
        return _Candidate(start, issue, lane, instr, not_before, need)

    def _eviction_guard(
        self, issue: int, instr: SwapOutInstr | FreeInstr,
    ) -> _Blocked | None:
        """Hold an eviction until its earlier consumers have dispatched."""
        key = instr.ref.key
        if self._reads_done.get(key, 0) < self._read_guard[issue]:
            return _Blocked(issue, RuntimeExecutionError(
                f"{self.program.name}: eviction of {instr.ref.label!r} "
                f"deadlocked waiting for earlier consumers"
            ), instr.ref.label)
        return None

    def _prepare_compute(
        self, issue: int, instr: ComputeInstr, lane: _Lane,
    ) -> _Candidate | _Blocked:
        deps = 0.0
        for ref in instr.inputs:
            time = self.ready.get(ref.key)
            if time is None:
                refetch: tuple[TensorRef, ...] = ()
                if self._recovery:
                    # Inputs whose absence is an emergency eviction can
                    # be re-materialised from their host copy if the
                    # machine wedges on this block.
                    refetch = tuple(
                        r for r in instr.inputs
                        if r.key not in self.ready
                        and r.key in self._emergency
                        and r.key in self.host_copy
                    )
                return _Blocked(issue, RuntimeExecutionError(
                    f"{self.program.name}: {instr.label!r} uses tensor "
                    f"{ref.key} which is not resident"
                ), instr.label, refetch=refetch)
            deps = max(deps, time)
        need = instr.transient_bytes
        for ref in (*instr.outputs, *instr.alloc_only):
            if ref.key in self.resident:
                return _Blocked(issue, RuntimeExecutionError(
                    f"{self.program.name}: {instr.label!r} re-allocates "
                    f"resident tensor {ref.label!r}"
                ), instr.label)
            need += ref.nbytes
        for ref in instr.finishes:
            if ref.key not in self.resident:
                return _Blocked(issue, RuntimeExecutionError(
                    f"{self.program.name}: {instr.label!r} finishes "
                    f"unallocated tensor {ref.label!r}"
                ), instr.label)
        # A merge aliases its micro pieces: the whole buffer replaces
        # them at its start instant, so only the size delta is new.
        credit = (
            sum(ref.nbytes for ref in instr.inputs)
            if instr.tag == "merge" else 0
        )
        # Ledger floor: an instruction issued after already-applied
        # events cannot allocate in their past (keeps accounting exact).
        not_before = max(lane.stream.earliest_start(deps), self.ledger.time)
        start = self.ledger.earliest_fit(need, not_before, credit=credit)
        if start is None:
            protect = (
                tuple(ref.key for ref in (*instr.inputs, *instr.finishes))
                if self._recovery else ()
            )
            return _Blocked(issue, self._device_oom(instr.label, need, credit),
                            instr.label, need=need, credit=credit,
                            protect=protect)
        return _Candidate(start, issue, lane, instr, not_before, need)

    def _prepare_cpu(
        self, issue: int, instr: ComputeInstr, lane: _Lane,
    ) -> _Candidate | _Blocked:
        deps = 0.0
        for ref in instr.inputs:
            time = self._any_time(ref.key)
            if time is None:
                return _Blocked(issue, RuntimeExecutionError(
                    f"{self.program.name}: dependency {ref.key} exists nowhere"
                ), instr.label)
            deps = max(deps, time)
        return _Candidate(
            lane.stream.earliest_start(deps), issue, lane, instr,
        )

    def _prepare_swap_out(
        self, issue: int, instr: SwapOutInstr, lane: _Lane,
    ) -> _Candidate | _Blocked:
        held = self._eviction_guard(issue, instr)
        if held is not None:
            return held
        time = self.ready.get(instr.ref.key)
        if time is None:
            if self._recovery and instr.ref.key in self._emergency:
                # Already on host via an emergency eviction: the planned
                # swap-out is satisfied; dispatch as a bookkeeping no-op.
                return _Candidate(
                    lane.stream.clock, issue, lane, instr, skip=True,
                )
            return _Blocked(issue, RuntimeExecutionError(
                f"{self.program.name}: 'swap_out({instr.ref.label})' uses "
                f"tensor {instr.ref.key} which is not resident"
            ), instr.ref.label)
        return _Candidate(
            lane.stream.earliest_start(time), issue, lane, instr,
        )

    def _prepare_swap_in(
        self, issue: int, instr: SwapInInstr, lane: _Lane,
    ) -> _Candidate | _Blocked:
        key = instr.ref.key
        host_ready = self.host_copy.get(key)
        if host_ready is None:
            return _Blocked(issue, RuntimeExecutionError(
                f"{self.program.name}: swap-in of {instr.ref.label!r} "
                f"without a host copy"
            ), instr.ref.label)
        if key in self.resident:
            if self._recovery and key in self._refetched:
                # Already brought back by an emergency re-fetch: the
                # planned swap-in is satisfied; dispatch as a no-op.
                return _Candidate(
                    lane.stream.clock, issue, lane, instr, skip=True,
                )
            return _Blocked(issue, RuntimeExecutionError(
                f"{self.program.name}: swap-in of already-resident "
                f"{instr.ref.label!r}"
            ), instr.ref.label)
        # Ledger floor: a re-fetch issued after its predecessor's free
        # cannot start the transfer in the ledger's past.
        not_before = max(
            lane.stream.earliest_start(host_ready), self.ledger.time,
        )
        start = self.ledger.earliest_fit(instr.ref.nbytes, not_before)
        if start is None:
            label = f"swap_in({instr.ref.label})"
            return _Blocked(
                issue, self._device_oom(label, instr.ref.nbytes, 0), label,
                need=instr.ref.nbytes,
            )
        return _Candidate(
            start, issue, lane, instr, not_before, instr.ref.nbytes,
        )

    def _prepare_free(
        self, issue: int, instr: FreeInstr, lane: _Lane,
    ) -> _Candidate | _Blocked:
        held = self._eviction_guard(issue, instr)
        if held is not None:
            return held
        if instr.ref.key not in self.resident and not instr.missing_ok:
            if self._recovery and instr.ref.key in self._emergency:
                # The bytes were already reclaimed by an emergency
                # eviction; the planned free is satisfied.
                return _Candidate(
                    lane.stream.clock, issue, lane, instr, skip=True,
                )
            return _Blocked(issue, RuntimeExecutionError(
                f"{self.program.name}: free of non-resident "
                f"{instr.ref.label!r}"
            ), instr.ref.label)
        return _Candidate(lane.stream.clock, issue, lane, instr)

    def _prepare_xfer(
        self, issue: int, instr: XferInstr, lane: _Lane,
    ) -> _Candidate | _Blocked:
        deps = 0.0
        for ref in instr.after:
            time = self._any_time(ref.key)
            if time is None:
                return _Blocked(issue, RuntimeExecutionError(
                    f"{self.program.name}: dependency {ref.key} exists nowhere"
                ), instr.label)
            deps = max(deps, time)
        return _Candidate(
            lane.stream.earliest_start(deps), issue, lane, instr,
        )

    def _any_time(self, key: tuple[int, int]) -> float | None:
        """Ready time on device or host (for CPU consumers / xfer deps)."""
        device = self.ready.get(key)
        host = self.host_copy.get(key)
        times = [t for t in (device, host) if t is not None]
        return min(times) if times else None

    def _device_oom(self, label: str, need: int, credit: int) -> OutOfMemoryError:
        """The terminal allocation failure: waiting can never help."""
        available = self.ledger.best_case_free(credit=credit)
        return OutOfMemoryError(
            requested=need,
            available=available,
            capacity=self.capacity,
            message=(
                f"{self.program.name}: {label!r} needs {need} B; only "
                f"{available} B can ever free up "
                f"(capacity {self.capacity} B)"
            ),
        )

    # -- dispatch ----------------------------------------------------------------

    def _dispatch(self, cand: _Candidate) -> None:
        """Apply one instruction's effects at its resolved start time."""
        instr = cand.instr
        if cand.skip:
            self._dispatch_skip(cand)
            return
        if isinstance(instr, ComputeInstr):
            if instr.device is Device.CPU:
                self._dispatch_cpu(cand, instr)
            else:
                self._dispatch_compute(cand, instr)
        elif isinstance(instr, SwapOutInstr):
            self._dispatch_swap_out(cand, instr)
        elif isinstance(instr, SwapInInstr):
            self._dispatch_swap_in(cand, instr)
        elif isinstance(instr, FreeInstr):
            self._dispatch_free(cand, instr)
        elif isinstance(instr, CollectiveInstr):
            self._dispatch_collective(
                cand, cand.start, self._collective_duration(instr),
            )
        else:
            self._dispatch_xfer(cand, instr)

    def _collective_duration(self, instr: CollectiveInstr) -> float:
        """Cost of a collective dispatched without a cluster context.

        A single-GPU engine has no peers: only degenerate single-member
        groups (zero cost) are executable here. Multi-rank programs must
        run under the cluster engine, which owns the rendezvous and the
        link cost model.
        """
        if len(instr.group) > 1:
            raise RuntimeExecutionError(
                f"{self.program.name}: collective {instr.label!r} spans "
                f"ranks {instr.group}; multi-rank programs must run on a "
                f"ClusterEngine"
            )
        return 0.0

    def _dispatch_collective(
        self, cand: _Candidate, start: float, duration: float,
    ) -> None:
        """Apply one rank's share of a collective at the group's start."""
        instr = cand.instr
        assert isinstance(instr, CollectiveInstr)
        need = cand.need
        stall = start - cand.not_before
        if stall > 0 and need:
            self.memory_stall += stall
            for observer in self.observers:
                observer.on_stall_begin(cand.not_before, instr.label, need)
                observer.on_stall_end(start, instr.label, stall)
        if need:
            self.ledger.allocate(need, start, self._free_hook)
        event = cand.lane.stream.schedule(
            duration, after=start, label=instr.label,
        )
        self.clock = max(self.clock, event.time)
        for ref in instr.outputs:
            self.resident[ref.key] = ref.nbytes
            self.ready[ref.key] = event.time
            self._key_labels[ref.key] = ref.label
            self._notify_alloc(start, ref.label, ref.nbytes)
        for ref in instr.inputs:
            # In-place operand: rewritten by the collective, so its
            # ready time moves to the collective's completion.
            key = ref.key
            self.ready[key] = event.time
            if event.time > self._read_end.get(key, 0.0):
                self._read_end[key] = event.time
        for ref in instr.frees:
            release_at = max(
                event.time, self._read_end.get(ref.key, 0.0),
                self.ledger.time,
            )
            self._release(ref.key, release_at, f"{instr.kind}({ref.label})")
        self.collective_bytes += instr.nbytes
        self._notify_instr(
            instr.label, instr.kind, cand.lane.name, start, event.time,
            nbytes=instr.nbytes, tag="collective",
        )

    def _dispatch_compute(self, cand: _Candidate, instr: ComputeInstr) -> None:
        start, not_before, need = cand.start, cand.not_before, cand.need
        stall = start - not_before
        if stall > 0:
            self.memory_stall += stall
            for observer in self.observers:
                observer.on_stall_begin(not_before, instr.label, need)
                observer.on_stall_end(start, instr.label, stall)
        if instr.tag == "merge":
            for ref in instr.inputs:
                self._release(ref.key, start, instr.label)
        self.ledger.allocate(need, start, self._free_hook)
        duration = instr.duration
        if self.faults is not None:
            duration = duration * self.faults.kernel_scale()
        event = cand.lane.stream.schedule(
            duration, after=start, label=instr.label,
        )
        self.clock = max(self.clock, event.time)
        if instr.transient_bytes:
            self.ledger.schedule_free(
                instr.transient_bytes, event.time, f"{instr.label}/workspace",
            )
            self._notify_alloc(
                start, f"{instr.label}/workspace", instr.transient_bytes,
            )
        for ref in instr.outputs:
            self.resident[ref.key] = ref.nbytes
            self.ready[ref.key] = event.time
            self._key_labels[ref.key] = ref.label
            self._notify_alloc(start, ref.label, ref.nbytes)
        for ref in instr.alloc_only:
            self.resident[ref.key] = ref.nbytes
            self._key_labels[ref.key] = ref.label
            self._notify_alloc(start, ref.label, ref.nbytes)
            # Not ready yet: a later instruction `finishes` it.
        for ref in instr.finishes:
            self.ready[ref.key] = event.time
        for ref in instr.inputs:
            key = ref.key
            if event.time > self._read_end.get(key, 0.0):
                self._read_end[key] = event.time
        if instr.tag == "recompute":
            self.recompute_time += duration
            self.recompute_ops += 1
        if "[" in instr.label:
            self.split_kernels += 1
        self._notify_instr(instr.label, "compute", "compute", start,
                           event.time, tag=instr.tag)

    def _dispatch_cpu(self, cand: _Candidate, instr: ComputeInstr) -> None:
        event = cand.lane.stream.schedule(
            instr.duration, after=cand.start, label=instr.label,
        )
        self.clock = max(self.clock, event.time)
        for ref in instr.outputs:
            if ref.nbytes == 0:
                self.ready[ref.key] = event.time  # zero-byte marker
            else:
                raise RuntimeExecutionError(
                    f"CPU op {instr.label!r} cannot allocate GPU tensor "
                    f"{ref.label!r}"
                )
        for ref in instr.inputs:
            key = ref.key
            if event.time > self._read_end.get(key, 0.0):
                self._read_end[key] = event.time
        self._notify_instr(instr.label, "compute", "cpu", cand.start,
                           event.time, tag=instr.tag)

    def _pcie_schedule(
        self, stream: Stream, nbytes: int, after: float, label: str,
    ) -> tuple[Event, float]:
        """Schedule one PCIe transfer, injecting faults when configured.

        Clean path (``faults=None``): exactly one schedule at nominal
        bandwidth — byte-identical to the pre-fault engine. Fault path:
        each attempt's bandwidth is jittered/degraded; a transiently
        failing attempt occupies the copy engine for ``failed_fraction``
        of its would-be duration, then the stream backs off
        exponentially before retrying. The fault model guarantees
        success within ``max_transfer_retries``, so the loop always
        terminates. Returns ``(completion event, successful-attempt
        duration)``.
        """
        faults = self.faults
        if faults is None or nbytes == 0:
            duration = self.pcie.transfer_time(nbytes)
            return stream.schedule(duration, after=after, label=label), duration
        attempt = 0
        start_after = after
        while True:
            duration = self.pcie.transfer_time(
                nbytes, rate_scale=faults.transfer_rate_scale(),
            )
            if not faults.transfer_fails(attempt):
                event = stream.schedule(
                    duration, after=start_after, label=label,
                )
                return event, duration
            wasted = duration * faults.config.failed_fraction
            fail = stream.schedule(
                wasted, after=start_after, label=f"{label}!fail",
            )
            backoff = faults.backoff(attempt)
            start_after = fail.time + backoff
            attempt += 1
            self.transfer_retries += 1
            self.retry_backoff_time += backoff
            self.clock = max(self.clock, fail.time)
            self._notify_fault(fail.time, "transfer_retry", label, nbytes)

    def _dispatch_swap_out(self, cand: _Candidate, instr: SwapOutInstr) -> None:
        key = instr.ref.key
        event, duration = self._pcie_schedule(
            cand.lane.stream, instr.ref.nbytes, cand.start,
            f"d2h({instr.ref.label})",
        )
        self.clock = max(self.clock, event.time)
        # The buffer dies when both the transfer and every earlier
        # consumer are done (its eviction guard made those ends known);
        # never in the past of already-applied ledger events.
        release_at = max(
            event.time, self._read_end.get(key, 0.0), self.ledger.time,
        )
        self._release(key, release_at, f"swap_out({instr.ref.label})")
        if key not in self.host_copy:
            self.host_used += instr.ref.nbytes
            self.host_peak = max(self.host_peak, self.host_used)
            if self.host_used > self.gpu.host_memory_bytes:
                error = OutOfMemoryError(
                    requested=instr.ref.nbytes,
                    available=self.gpu.host_memory_bytes - self.host_used
                    + instr.ref.nbytes,
                    capacity=self.gpu.host_memory_bytes,
                    message=(
                        f"{self.program.name}: host memory exhausted "
                        f"swapping out {instr.ref.label!r} "
                        f"({self.host_used} B of "
                        f"{self.gpu.host_memory_bytes} B host RAM)"
                    ),
                )
                # Host OOMs are as terminal as device OOMs; observers
                # (and memscope's postmortem) must hear about both.
                for observer in self.observers:
                    observer.on_oom(
                        event.time, f"swap_out({instr.ref.label})",
                        error.requested, error.available,
                    )
                raise error
        self.host_copy[key] = event.time
        self.swapped_out += instr.ref.nbytes
        self._notify_instr(
            instr.ref.label, "swap_out", "d2h",
            event.time - duration, event.time, nbytes=instr.ref.nbytes,
        )

    def _dispatch_swap_in(self, cand: _Candidate, instr: SwapInInstr) -> None:
        key = instr.ref.key
        start = cand.start
        self.ledger.allocate(instr.ref.nbytes, start, self._free_hook)
        event, duration = self._pcie_schedule(
            cand.lane.stream, instr.ref.nbytes, start,
            f"h2d({instr.ref.label})",
        )
        self.clock = max(self.clock, event.time)
        self.resident[key] = instr.ref.nbytes
        self.ready[key] = event.time
        self._key_labels[key] = instr.ref.label
        self._notify_alloc(start, instr.ref.label, instr.ref.nbytes)
        self.swapped_in += instr.ref.nbytes
        self._notify_instr(
            instr.ref.label, "swap_in", "h2d", start, event.time,
            nbytes=instr.ref.nbytes,
        )

    def _dispatch_free(self, cand: _Candidate, instr: FreeInstr) -> None:
        key = instr.ref.key
        if key not in self.resident:
            # missing_ok; _prepare_free rejected the other case. If the
            # absence is an emergency eviction, the planned free is the
            # key's official end of life — forget the recovery state so
            # a later reuse of the key id starts clean.
            if self._recovery:
                self._emergency.discard(key)
            return
        # The buffer dies when the compute stream has passed its last
        # consumer — no earlier than its ready time, the compute clock,
        # the finish of any dispatched reader on another lane, or the
        # ledger's already-applied past.
        at = max(
            self.ready.get(key, 0.0),
            self.streams.compute.clock,
            self._read_end.get(key, 0.0),
            self.ledger.time,
        )
        self._release(key, at, f"free({instr.ref.label})")

    def _dispatch_xfer(self, cand: _Candidate, instr: XferInstr) -> None:
        event, duration = self._pcie_schedule(
            cand.lane.stream, instr.nbytes, cand.start, instr.label,
        )
        self.clock = max(self.clock, event.time)
        if instr.direction == "h2d":
            self.swapped_in += instr.nbytes
        else:
            self.swapped_out += instr.nbytes
        for ref in instr.after:
            key = ref.key
            if event.time > self._read_end.get(key, 0.0):
                self._read_end[key] = event.time
        self._notify_instr(
            instr.label, "xfer", instr.direction,
            event.time - duration, event.time, nbytes=instr.nbytes,
        )

    def _release(self, key: tuple[int, int], at: float, label: str) -> None:
        """Schedule a resident (micro-)tensor's bytes to free at ``at``."""
        nbytes = self.resident.pop(key, None)
        if nbytes is None:
            raise RuntimeExecutionError(
                f"{self.program.name}: {label} releases non-resident {key}"
            )
        self.ready.pop(key, None)
        if self._recovery:
            # A planned eviction/free of a re-fetched tensor is its
            # normal end of life; the re-fetch marker must not outlive
            # residency.
            self._refetched.discard(key)
        self.ledger.schedule_free(
            nbytes, at, self._key_labels.pop(key, label),
        )

    # -- fault recovery (graceful degradation) -----------------------------------

    def _dispatch_skip(self, cand: _Candidate) -> None:
        """Bookkeeping no-op for a planned instruction whose effect an
        emergency action already produced out of band."""
        instr = cand.instr
        key = instr.ref.key  # type: ignore[union-attr]
        if isinstance(instr, SwapInInstr):
            self._refetched.discard(key)
            kind = "skip_swap_in"
        elif isinstance(instr, SwapOutInstr):
            self._emergency.discard(key)
            kind = "skip_swap_out"
        else:
            self._emergency.discard(key)
            kind = "skip_free"
        self.recovered_skips += 1
        self._notify_fault(cand.start, kind, instr.ref.label,
                           instr.ref.nbytes)

    def _recover(self, blocked: list[_Blocked]) -> bool:
        """One recovery action for a fully-wedged machine.

        Preference order: re-materialise an emergency-evicted dependency
        of the lowest-issue block that carries re-fetch hints, otherwise
        emergency-evict cold residents to satisfy the lowest-issue
        terminal allocation failure. Returns True when an action was
        taken (the dispatch loop then retries head preparation), False
        to let the original error surface.
        """
        self._recovery_streak += 1
        if self._recovery_streak > 4 * len(self.program.instructions) + 64:
            return False  # thrashing; surface the underlying error
        for head in sorted(blocked, key=lambda b: b.issue):
            if head.refetch and self._refetch(head.refetch):
                return True
        for head in sorted(blocked, key=lambda b: b.issue):
            if isinstance(head.error, OutOfMemoryError) and head.need > 0:
                if self._evict_until_fits(
                    head.need, head.credit, set(head.protect), head.label,
                ):
                    return True
        return False

    def _refetch(self, refs: tuple[TensorRef, ...]) -> bool:
        """Re-materialise emergency-evicted tensors from their host copies."""
        done = False
        for ref in refs:
            key = ref.key
            if key in self.resident or key not in self._emergency:
                continue
            host_ready = self.host_copy.get(key)
            if host_ready is None:  # pragma: no cover - defensive
                continue
            not_before = max(
                self.streams.h2d.earliest_start(host_ready), self.ledger.time,
            )
            start = self.ledger.earliest_fit(ref.nbytes, not_before)
            if start is None:
                if not self._evict_until_fits(
                    ref.nbytes, 0, {key}, f"refetch({ref.label})",
                ):
                    continue
                start = self.ledger.earliest_fit(ref.nbytes, not_before)
                if start is None:  # pragma: no cover - defensive
                    continue
            self.ledger.allocate(ref.nbytes, start, self._free_hook)
            event, duration = self._pcie_schedule(
                self.streams.h2d, ref.nbytes, start, f"refetch({ref.label})",
            )
            self.clock = max(self.clock, event.time)
            self.resident[key] = ref.nbytes
            self.ready[key] = event.time
            self._key_labels[key] = ref.label
            self._emergency.discard(key)
            self._refetched.add(key)
            self.swapped_in += ref.nbytes
            self.emergency_refetches += 1
            self.emergency_refetched_bytes += ref.nbytes
            self._notify_alloc(start, ref.label, ref.nbytes)
            self._notify_instr(
                ref.label, "swap_in", "h2d", event.time - duration,
                event.time, nbytes=ref.nbytes, tag="refetch",
            )
            self._notify_fault(start, "refetch", ref.label, ref.nbytes)
            done = True
        return done

    def _evict_until_fits(
        self,
        need: int,
        credit: int,
        protect: set[tuple[int, int]],
        label: str,
    ) -> bool:
        """Emergency-evict coldest residents until ``need`` can ever fit."""
        evicted = False
        while self.ledger.best_case_free(credit=credit) < need:
            victim = self._coldest_victim(protect)
            if victim is None:
                return False
            self._emergency_evict(victim)
            evicted = True
        return evicted

    def _coldest_victim(
        self, protect: set[tuple[int, int]],
    ) -> tuple[int, int] | None:
        """Coldest evictable resident tensor (SuperNeurons-style).

        Coldness is the last instant the tensor was touched —
        ``max(ready time, latest dispatched read end)`` — oldest first;
        ties prefer the largest buffer (fewest evictions), then the
        smallest key for determinism. Buffers still being written
        (alloc_only, not yet in ``ready``) and protected keys (the
        blocked instruction's own operands) are never victims.
        """
        best_key: tuple[int, int] | None = None
        best_rank: tuple[float, int, tuple[int, int]] | None = None
        for key, nbytes in self.resident.items():
            if nbytes <= 0 or key in protect:
                continue
            ready = self.ready.get(key)
            if ready is None:
                continue
            rank = (
                max(ready, self._read_end.get(key, 0.0)), -nbytes, key,
            )
            if best_rank is None or rank < best_rank:
                best_key, best_rank = key, rank
        return best_key

    def _emergency_evict(self, key: tuple[int, int]) -> None:
        """Evict one resident tensor to host, out of band of the plan."""
        nbytes = self.resident[key]
        label = self._key_labels.get(key, f"tensor{key}")
        after = max(
            self.ready.get(key, 0.0), self.streams.d2h.clock,
            self.ledger.time,
        )
        event, duration = self._pcie_schedule(
            self.streams.d2h, nbytes, after, f"evict({label})",
        )
        self.clock = max(self.clock, event.time)
        release_at = max(
            event.time, self._read_end.get(key, 0.0), self.ledger.time,
        )
        self._release(key, release_at, f"evict({label})")
        if key not in self.host_copy:
            self.host_used += nbytes
            self.host_peak = max(self.host_peak, self.host_used)
        self.host_copy[key] = event.time
        self.swapped_out += nbytes
        self.emergency_evictions += 1
        self.emergency_evicted_bytes += nbytes
        self._emergency.add(key)
        self._notify_instr(
            label, "swap_out", "d2h", event.time - duration, event.time,
            nbytes=nbytes, tag="emergency",
        )
        self._notify_fault(event.time - duration, "emergency_evict",
                           label, nbytes)
