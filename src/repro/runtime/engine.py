"""The discrete-event execution engine.

Executes an augmented instruction program against a simulated GPU:

* one serial **compute** stream, serial **D2H** / **H2D** copy streams
  (the paper's three CUDA streams), plus a **host** stream for
  CPU-offloaded optimizer updates;
* event-based dependencies: a compute kernel starts only when its input
  (micro-)tensors are ready, a swap-in only when its host copy exists;
* byte-accurate device-memory accounting: allocations wait for enough
  pending frees (swap-out completions) to land — the stall the paper's
  Equation 3 models — and raise
  :class:`~repro.errors.OutOfMemoryError` when no amount of waiting can
  ever satisfy them.

The engine is deliberately *not* given the plan or the graph: everything
it needs is in the instruction stream, which keeps the augmenter honest
(any bookkeeping bug shows up as an engine error, not silent drift).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import OutOfMemoryError, RuntimeExecutionError
from repro.hardware.gpu import GPUSpec
from repro.hardware.pcie import PCIeModel
from repro.hardware.streams import Stream, StreamSet
from repro.runtime.instructions import (
    ComputeInstr,
    Device,
    FreeInstr,
    Program,
    SwapInInstr,
    SwapOutInstr,
    XferInstr,
)
from repro.runtime.trace import ExecutionTrace, InstrRecord, MemorySample


@dataclass(frozen=True)
class EngineOptions:
    """Engine knobs."""

    #: Record per-instruction timing and memory samples (disable for
    #: large parameter sweeps where only aggregates matter).
    record_trace: bool = True


class Engine:
    """Executes programs on one simulated GPU."""

    def __init__(self, gpu: GPUSpec, options: EngineOptions | None = None) -> None:
        self.gpu = gpu
        self.options = options or EngineOptions()
        self.pcie = PCIeModel(gpu)

    def execute(self, program: Program) -> ExecutionTrace:
        """Run a program to completion and return its trace.

        Raises
        ------
        OutOfMemoryError
            When an allocation cannot be satisfied even after every
            pending eviction completes.
        RuntimeExecutionError
            On inconsistent programs (use of non-resident tensors,
            double allocation, ...).
        """
        run = _Run(self.gpu, self.pcie, program, self.options)
        return run.execute()

    def execute_iterations(
        self, program: Program, iterations: int,
    ) -> tuple[list[float], ExecutionTrace]:
        """Run the same iteration program back to back.

        Streams, host copies and sharded-parameter state carry across
        iterations, so the result shows the warm-up effect (iteration 1
        pays cold prefetches; later iterations reach steady state). The
        returned trace aggregates all iterations; the list holds each
        iteration's duration.

        Raises the same errors as :meth:`execute`.
        """
        if iterations < 1:
            raise RuntimeExecutionError(
                f"iterations must be >= 1, got {iterations}"
            )
        run = _Run(self.gpu, self.pcie, program, self.options)
        durations: list[float] = []
        previous = 0.0
        for _ in range(iterations):
            run.execute_instructions()
            makespan = max(run.streams.makespan, run.cpu.clock)
            durations.append(makespan - previous)
            previous = makespan
        return durations, run.finalize()


class _Run:
    """Mutable state of one engine execution."""

    def __init__(
        self,
        gpu: GPUSpec,
        pcie: PCIeModel,
        program: Program,
        options: EngineOptions,
    ) -> None:
        self.gpu = gpu
        self.pcie = pcie
        self.program = program
        self.options = options
        self.streams = StreamSet()
        self.cpu = Stream("cpu")
        self.capacity = gpu.memory_bytes
        self.used = program.persistent_bytes
        if self.used > self.capacity:
            raise OutOfMemoryError(
                requested=self.used,
                available=self.capacity,
                capacity=self.capacity,
                message=(
                    f"{program.name}: persistent tensors "
                    f"({self.used} B) exceed device memory "
                    f"({self.capacity} B)"
                ),
            )
        self.resident: dict[tuple[int, int], int] = {}
        self.ready: dict[tuple[int, int], float] = {}
        self.host_copy: dict[tuple[int, int], float] = {
            ref.key: 0.0 for ref in program.initial_host
        }
        self.pending_frees: list[tuple[float, int]] = []  # min-heap by time
        self.peak = self.used
        self.host_used = sum(ref.nbytes for ref in program.initial_host)
        self.host_peak = self.host_used
        self.memory_stall = 0.0
        self.swapped_out = 0
        self.swapped_in = 0
        self.recompute_time = 0.0
        self.recompute_ops = 0
        self.split_kernels = 0
        self.records: list[InstrRecord] = []
        self.samples: list[MemorySample] = []
        self.alloc_events: list[tuple[float, str, int]] = []
        self._key_labels: dict[tuple[int, int], str] = {}

    # -- memory accounting -------------------------------------------------------

    def _commit_frees(self, now: float) -> None:
        while self.pending_frees and self.pending_frees[0][0] <= now:
            _, nbytes = heapq.heappop(self.pending_frees)
            self.used -= nbytes

    def _earliest_fit(self, need: int, not_before: float, label: str) -> float:
        """Earliest time >= not_before at which ``need`` bytes fit."""
        self._commit_frees(not_before)
        if self.used + need <= self.capacity:
            return not_before
        # Walk pending frees chronologically until the allocation fits.
        future = sorted(self.pending_frees)
        freed = 0
        for time, nbytes in future:
            freed += nbytes
            if self.used - freed + need <= self.capacity:
                return max(time, not_before)
        raise OutOfMemoryError(
            requested=need,
            available=self.capacity - (self.used - freed),
            capacity=self.capacity,
            message=(
                f"{self.program.name}: {label!r} needs {need} B; only "
                f"{self.capacity - (self.used - freed)} B can ever free up "
                f"(capacity {self.capacity} B)"
            ),
        )

    def _allocate(self, need: int, at: float) -> None:
        self._commit_frees(at)
        self.used += need
        self.peak = max(self.peak, self.used)
        if self.options.record_trace:
            self.samples.append(MemorySample(at, self.used))

    def _log_alloc(self, at: float, label: str, nbytes: int) -> None:
        if self.options.record_trace and nbytes:
            self.alloc_events.append((at, label, nbytes))

    def _schedule_free(self, nbytes: int, at: float) -> None:
        heapq.heappush(self.pending_frees, (at, nbytes))

    # -- dependency resolution -----------------------------------------------------

    def _ready_time(self, key: tuple[int, int], label: str) -> float:
        time = self.ready.get(key)
        if time is None:
            raise RuntimeExecutionError(
                f"{self.program.name}: {label!r} uses tensor {key} which "
                f"is not resident"
            )
        return time

    def _any_time(self, key: tuple[int, int]) -> float:
        """Ready time on device or host (for CPU consumers / xfer deps)."""
        device = self.ready.get(key)
        host = self.host_copy.get(key)
        times = [t for t in (device, host) if t is not None]
        if not times:
            raise RuntimeExecutionError(
                f"{self.program.name}: dependency {key} exists nowhere"
            )
        return min(times)

    # -- execution ---------------------------------------------------------------

    def execute(self) -> ExecutionTrace:
        """One pass over the program, then aggregate the trace."""
        self.execute_instructions()
        return self.finalize()

    def execute_instructions(self) -> None:
        """Dispatch one pass over the program's instruction list."""
        for instr in self.program.instructions:
            if isinstance(instr, ComputeInstr):
                self._run_compute(instr)
            elif isinstance(instr, SwapOutInstr):
                self._run_swap_out(instr)
            elif isinstance(instr, SwapInInstr):
                self._run_swap_in(instr)
            elif isinstance(instr, FreeInstr):
                self._run_free(instr)
            elif isinstance(instr, XferInstr):
                self._run_xfer(instr)
            else:  # pragma: no cover - defensive
                raise RuntimeExecutionError(f"unknown instruction {instr!r}")

    def finalize(self) -> ExecutionTrace:
        """Aggregate stream/memory statistics into a trace."""
        makespan = max(self.streams.makespan, self.cpu.clock)
        return ExecutionTrace(
            name=self.program.name,
            batch=self.program.batch,
            iteration_time=makespan,
            compute_busy=self.streams.compute.busy_time(),
            cpu_busy=self.cpu.busy_time(),
            d2h_busy=self.streams.d2h.busy_time(),
            h2d_busy=self.streams.h2d.busy_time(),
            memory_stall=self.memory_stall,
            peak_memory=self.peak,
            persistent_bytes=self.program.persistent_bytes,
            swapped_out_bytes=self.swapped_out,
            swapped_in_bytes=self.swapped_in,
            recompute_time=self.recompute_time,
            recompute_ops=self.recompute_ops,
            split_kernels=self.split_kernels,
            host_peak_bytes=self.host_peak,
            records=self.records,
            memory_samples=self.samples,
            alloc_events=self.alloc_events,
        )

    def _run_compute(self, instr: ComputeInstr) -> None:
        if instr.device is Device.CPU:
            self._run_cpu_compute(instr)
            return
        deps = 0.0
        for ref in instr.inputs:
            deps = max(deps, self._ready_time(ref.key, instr.label))
        stream = self.streams.compute
        not_before = max(stream.clock, deps)
        if instr.tag == "merge":
            # Merge aliases its pieces: the whole buffer replaces the
            # micro pieces, so only the size delta is genuinely new
            # memory. Release the pieces as the merge begins.
            for ref in instr.inputs:
                self._release(ref.key, not_before, instr.label)
        need = instr.transient_bytes
        for ref in list(instr.outputs) + list(instr.alloc_only):
            if ref.key in self.resident:
                raise RuntimeExecutionError(
                    f"{self.program.name}: {instr.label!r} re-allocates "
                    f"resident tensor {ref.label!r}"
                )
            need += ref.nbytes
        start = self._earliest_fit(need, not_before, instr.label)
        self.memory_stall += start - not_before
        self._allocate(need, start)
        event = stream.schedule(
            instr.duration, after=start, label=instr.label,
        )
        if instr.transient_bytes:
            self._schedule_free(instr.transient_bytes, event.time)
            self._log_alloc(start, f"{instr.label}/workspace",
                            instr.transient_bytes)
            self._log_alloc(event.time, f"{instr.label}/workspace",
                            -instr.transient_bytes)
        for ref in instr.outputs:
            self.resident[ref.key] = ref.nbytes
            self.ready[ref.key] = event.time
            self._key_labels[ref.key] = ref.label
            self._log_alloc(start, ref.label, ref.nbytes)
        for ref in instr.alloc_only:
            self.resident[ref.key] = ref.nbytes
            self._key_labels[ref.key] = ref.label
            self._log_alloc(start, ref.label, ref.nbytes)
            # Not ready yet: a later instruction `finishes` it.
        for ref in instr.finishes:
            if ref.key not in self.resident:
                raise RuntimeExecutionError(
                    f"{self.program.name}: {instr.label!r} finishes "
                    f"unallocated tensor {ref.label!r}"
                )
            self.ready[ref.key] = event.time
        if instr.tag == "recompute":
            self.recompute_time += instr.duration
            self.recompute_ops += 1
        if "[" in instr.label:
            self.split_kernels += 1
        self._record(instr.label, "compute", "compute", start, event.time,
                     tag=instr.tag)

    def _run_cpu_compute(self, instr: ComputeInstr) -> None:
        deps = 0.0
        for ref in instr.inputs:
            deps = max(deps, self._any_time(ref.key))
        start = max(self.cpu.clock, deps)
        event = self.cpu.schedule(instr.duration, after=start, label=instr.label)
        for ref in instr.outputs:
            if ref.nbytes == 0:
                self.ready[ref.key] = event.time  # zero-byte marker
            else:
                raise RuntimeExecutionError(
                    f"CPU op {instr.label!r} cannot allocate GPU tensor "
                    f"{ref.label!r}"
                )
        self._record(instr.label, "compute", "cpu", start, event.time,
                     tag=instr.tag)

    def _run_swap_out(self, instr: SwapOutInstr) -> None:
        key = instr.ref.key
        dep = self._ready_time(key, f"swap_out({instr.ref.label})")
        stream = self.streams.d2h
        duration = self.pcie.transfer_time(instr.ref.nbytes)
        event = stream.schedule(
            duration, after=dep, label=f"d2h({instr.ref.label})",
        )
        self._release(key, event.time, f"swap_out({instr.ref.label})")
        if key not in self.host_copy:
            self.host_used += instr.ref.nbytes
            self.host_peak = max(self.host_peak, self.host_used)
            if self.host_used > self.gpu.host_memory_bytes:
                raise OutOfMemoryError(
                    requested=instr.ref.nbytes,
                    available=self.gpu.host_memory_bytes - self.host_used
                    + instr.ref.nbytes,
                    capacity=self.gpu.host_memory_bytes,
                    message=(
                        f"{self.program.name}: host memory exhausted "
                        f"swapping out {instr.ref.label!r} "
                        f"({self.host_used} B of "
                        f"{self.gpu.host_memory_bytes} B host RAM)"
                    ),
                )
        self.host_copy[key] = event.time
        self.swapped_out += instr.ref.nbytes
        self._record(
            instr.ref.label, "swap_out", "d2h",
            event.time - duration, event.time, nbytes=instr.ref.nbytes,
        )

    def _run_swap_in(self, instr: SwapInInstr) -> None:
        key = instr.ref.key
        host_ready = self.host_copy.get(key)
        if host_ready is None:
            raise RuntimeExecutionError(
                f"{self.program.name}: swap-in of {instr.ref.label!r} "
                f"without a host copy"
            )
        if key in self.resident:
            raise RuntimeExecutionError(
                f"{self.program.name}: swap-in of already-resident "
                f"{instr.ref.label!r}"
            )
        stream = self.streams.h2d
        not_before = max(stream.clock, host_ready)
        start = self._earliest_fit(
            instr.ref.nbytes, not_before, f"swap_in({instr.ref.label})",
        )
        self._allocate(instr.ref.nbytes, start)
        duration = self.pcie.transfer_time(instr.ref.nbytes)
        event = stream.schedule(
            duration, after=start, label=f"h2d({instr.ref.label})",
        )
        self.resident[key] = instr.ref.nbytes
        self.ready[key] = event.time
        self._key_labels[key] = instr.ref.label
        self._log_alloc(start, instr.ref.label, instr.ref.nbytes)
        self.swapped_in += instr.ref.nbytes
        self._record(
            instr.ref.label, "swap_in", "h2d", start, event.time,
            nbytes=instr.ref.nbytes,
        )

    def _run_free(self, instr: FreeInstr) -> None:
        key = instr.ref.key
        if key not in self.resident:
            if instr.missing_ok:
                return
            raise RuntimeExecutionError(
                f"{self.program.name}: free of non-resident "
                f"{instr.ref.label!r}"
            )
        # The buffer dies when the compute stream has passed its last
        # consumer — which is the compute clock at emission point.
        at = max(self.ready.get(key, 0.0), self.streams.compute.clock)
        self._release(key, at, f"free({instr.ref.label})")

    def _release(self, key: tuple[int, int], at: float, label: str) -> None:
        nbytes = self.resident.pop(key, None)
        if nbytes is None:
            raise RuntimeExecutionError(
                f"{self.program.name}: {label} releases non-resident {key}"
            )
        self.ready.pop(key, None)
        self._schedule_free(nbytes, at)
        self._log_alloc(at, self._key_labels.pop(key, label), -nbytes)

    def _run_xfer(self, instr: XferInstr) -> None:
        deps = 0.0
        for ref in instr.after:
            deps = max(deps, self._any_time(ref.key))
        stream = self.streams.h2d if instr.direction == "h2d" else self.streams.d2h
        duration = self.pcie.transfer_time(instr.nbytes)
        event = stream.schedule(duration, after=deps, label=instr.label)
        if instr.direction == "h2d":
            self.swapped_in += instr.nbytes
        else:
            self.swapped_out += instr.nbytes
        self._record(
            instr.label, "xfer", instr.direction,
            event.time - duration, event.time, nbytes=instr.nbytes,
        )

    def _record(
        self,
        label: str,
        kind: str,
        stream: str,
        start: float,
        end: float,
        *,
        nbytes: int = 0,
        tag: str = "",
    ) -> None:
        if self.options.record_trace:
            self.records.append(
                InstrRecord(label, kind, stream, start, end, nbytes, tag),
            )
