"""Execution traces: what the engine measured.

An :class:`ExecutionTrace` is the simulated analogue of everything the
paper measures on hardware: iteration time and throughput (Figures 12,
13, 15), the memory-usage timeline (Figures 2a and 4), PCIe utilisation
(Figure 2b), stall and recomputation overheads, and transfer volumes
(Figure 14b). The engine dispatches in chronological order, so
``peak_memory`` is the exact chronological peak, ``memory_samples`` are
time-sorted, and ``alloc_events`` is an exact chronological allocation
log — the allocator-replay analysis consumes it as ground truth rather
than as a correction of issue-ordered accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.units import format_bytes, format_time


@dataclass(frozen=True)
class MemorySample:
    """Device memory in use at a point in simulated time."""

    time: float
    used_bytes: int


@dataclass(frozen=True)
class InstrRecord:
    """Timing record of one executed instruction."""

    label: str
    kind: str     # compute | swap_out | swap_in | free | xfer
    stream: str   # compute | d2h | h2d | cpu
    start: float
    end: float
    nbytes: int = 0
    tag: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """Aggregate results of executing one augmented program."""

    name: str
    batch: int
    iteration_time: float
    compute_busy: float
    cpu_busy: float
    d2h_busy: float
    h2d_busy: float
    memory_stall: float
    peak_memory: int
    persistent_bytes: int
    swapped_out_bytes: int
    swapped_in_bytes: int
    recompute_time: float
    recompute_ops: int
    split_kernels: int
    #: Peak host (CPU) memory holding swapped-out copies.
    host_peak_bytes: int = 0
    #: Fault/recovery statistics (all zero for clean runs, ``faults=None``).
    #: Transient transfer failures that were retried with backoff.
    transfer_retries: int = 0
    #: Total simulated seconds spent in retry backoff.
    retry_backoff_time: float = 0.0
    #: Emergency evictions of cold residents on over-capacity allocation.
    emergency_evictions: int = 0
    emergency_evicted_bytes: int = 0
    #: Emergency-evicted tensors re-materialised on demand.
    emergency_refetches: int = 0
    #: Bytes moved back to the device by those re-fetches.
    emergency_refetched_bytes: int = 0
    #: Planned instructions satisfied out of band by a recovery action
    #: and dispatched as bookkeeping no-ops.
    recovered_skips: int = 0
    #: Mid-run plan hot-swaps applied at iteration boundaries (dynamic
    #: replanning); zero for static runs.
    plan_swaps: int = 0
    records: list[InstrRecord] = field(default_factory=list)
    memory_samples: list[MemorySample] = field(default_factory=list)
    #: Chronologically-ordered (time, label, +/-bytes) allocation events,
    #: recorded when tracing is on; consumed by the allocator-replay
    #: analysis to study pool placement and fragmentation.
    alloc_events: list[tuple[float, str, int]] = field(default_factory=list)
    #: Chronological ``(time, kind, label, nbytes)`` fault/recovery log,
    #: recorded when tracing is on. Kinds: ``transfer_retry``,
    #: ``emergency_evict``, ``refetch``, ``skip_swap_out``,
    #: ``skip_swap_in``, ``skip_free``.
    fault_events: list[tuple[float, str, str, int]] = field(
        default_factory=list,
    )
    #: Chronological ``(end_time, label, stalled_seconds)`` memory-stall
    #: log, recorded when tracing is on; ``end_time - stalled_seconds``
    #: is when the allocation began waiting. Memscope attributes stall
    #: time to resident tensors from this log.
    stall_events: list[tuple[float, str, float]] = field(
        default_factory=list,
    )

    @property
    def throughput(self) -> float:
        """Samples per second of this configuration."""
        if self.iteration_time <= 0:
            return 0.0
        return self.batch / self.iteration_time

    @property
    def pcie_utilization(self) -> float:
        """Busy fraction of the (full-duplex) PCIe link, as Figure 2b."""
        if self.iteration_time <= 0:
            return 0.0
        return min(
            1.0,
            (self.d2h_busy + self.h2d_busy) / (2.0 * self.iteration_time),
        )

    @property
    def compute_utilization(self) -> float:
        """Busy fraction of the compute stream."""
        if self.iteration_time <= 0:
            return 0.0
        return min(1.0, self.compute_busy / self.iteration_time)

    @property
    def overhead_vs_compute(self) -> float:
        """Iteration-time overhead relative to pure compute time."""
        if self.compute_busy <= 0:
            return 0.0
        return self.iteration_time / self.compute_busy - 1.0

    @property
    def recovery_actions(self) -> int:
        """Total fault-recovery actions taken (zero for clean runs)."""
        return (
            self.transfer_retries
            + self.emergency_evictions
            + self.emergency_refetches
            + self.recovered_skips
        )

    @property
    def stall_fraction(self) -> float:
        """Fraction of the iteration spent stalled waiting for memory."""
        if self.iteration_time <= 0:
            return 0.0
        return min(1.0, self.memory_stall / self.iteration_time)

    def memory_curve(self) -> np.ndarray:
        """(time, used_bytes) samples as a 2-column array."""
        if not self.memory_samples:
            return np.zeros((0, 2))
        return np.array(
            [(s.time, s.used_bytes) for s in self.memory_samples],
            dtype=np.float64,
        )

    def describe(self) -> str:
        """One-line summary with consistent stall + PCIe attribution.

        Stall is reported both as absolute time and as its fraction of
        the iteration; the PCIe figure is the same full-duplex busy
        fraction :attr:`pcie_utilization` exposes, with the per-direction
        busy times broken out so the two always agree. Runs that took
        fault-recovery actions (or dynamic plan swaps) get an extra
        recovery clause so static and dynamic runs are diagnosable from
        the same one-liner; clean static runs print exactly as before.
        """
        text = (
            f"{self.name}: iter {format_time(self.iteration_time)} "
            f"({self.throughput:.1f} samples/s), peak "
            f"{format_bytes(self.peak_memory)}, pcie "
            f"{self.pcie_utilization:.1%} "
            f"(d2h {format_time(self.d2h_busy)}, "
            f"h2d {format_time(self.h2d_busy)}), stall "
            f"{format_time(self.memory_stall)} "
            f"({self.stall_fraction:.1%} of iter), recompute "
            f"{format_time(self.recompute_time)}"
        )
        if self.recovery_actions:
            text += (
                f", recovery [{self.transfer_retries} retries "
                f"(backoff {format_time(self.retry_backoff_time)}), "
                f"{self.emergency_evictions} emergency evictions "
                f"({format_bytes(self.emergency_evicted_bytes)}), "
                f"{self.emergency_refetches} refetches "
                f"({format_bytes(self.emergency_refetched_bytes)}), "
                f"{self.recovered_skips} skips]"
            )
        if self.plan_swaps:
            text += f", replans {self.plan_swaps}"
        return text
