"""The N-rank discrete-event cluster engine.

Generalises the single-GPU :class:`~repro.runtime.engine.Engine` to a
cluster: one :class:`~repro.runtime.engine._Run` per rank (its own
stream set, lanes and :class:`~repro.hardware.memory_pool.
DeviceMemoryLedger`), advanced by a single global dispatcher under one
event clock. Non-collective instructions dispatch exactly as on the
single engine — the earliest-starting lane head across *all* ranks wins,
ties broken by (rank, issue order) — which is why a one-rank cluster
executes byte-identically to the plain engine.

Collectives synchronise ranks at dispatch time: a
:class:`~repro.runtime.instructions.CollectiveInstr` becomes
dispatchable only when the matching instruction (same ``comm_id``) is
the locally-ready lane head on **every** rank of its group. The group
then starts together at the latest member's local ready time and
occupies each member's lane for the duration given by the cluster's
link cost model (:mod:`repro.hardware.cluster`). A program whose
collective wiring can never rendezvous (mismatched orders, missing
peers) wedges the dispatcher and raises, exactly like a data-dependency
deadlock on the single engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import OutOfMemoryError, RuntimeExecutionError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.pcie import PCIeModel
from repro.runtime.engine import EngineOptions, _Blocked, _Candidate, _Run
from repro.runtime.instructions import CollectiveInstr, Program
from repro.runtime.observers import EngineObserver
from repro.runtime.trace import ExecutionTrace


def _kinds_match(a: str, b: str) -> bool:
    """Whether two members can be shares of one collective.

    Symmetric collectives require identical kinds; a point-to-point
    transfer pairs a ``send`` with a ``recv``.
    """
    return a == b or {a, b} == {"send", "recv"}


@dataclass
class ClusterTrace:
    """Per-rank execution traces plus cluster-level aggregates."""

    name: str
    world_size: int
    #: Global makespan: the latest completion event on any rank.
    makespan: float
    ranks: list[ExecutionTrace] = field(default_factory=list)
    #: Busy time of each rank's communication lanes.
    comm_busy: list[float] = field(default_factory=list)
    #: Logical payload bytes each rank moved through collectives.
    collective_bytes: list[int] = field(default_factory=list)

    @property
    def peak_memory(self) -> int:
        """Largest per-rank device-memory peak."""
        return max((trace.peak_memory for trace in self.ranks), default=0)

    @property
    def per_rank_peak(self) -> list[int]:
        return [trace.peak_memory for trace in self.ranks]

    @property
    def throughput(self) -> float:
        """Samples/second summed over ranks (data-parallel semantics)."""
        if self.makespan <= 0:
            return 0.0
        return sum(trace.batch for trace in self.ranks) / self.makespan

    def describe(self) -> str:
        """One-line cluster summary plus one line per rank.

        The cluster counterpart of :meth:`~repro.runtime.trace.
        ExecutionTrace.describe`: makespan, aggregate throughput, and
        each rank's peak memory / communication busy time / collective
        payload, so multi-rank reports (``repro memscope --world N``)
        don't have to re-derive the aggregates.
        """
        from repro.units import format_bytes, format_time

        lines = [
            f"{self.name}: {self.world_size} rank(s), makespan "
            f"{format_time(self.makespan)} "
            f"({self.throughput:.1f} samples/s), peak "
            f"{format_bytes(self.peak_memory)}",
        ]
        for rank, trace in enumerate(self.ranks):
            comm = self.comm_busy[rank] if rank < len(self.comm_busy) else 0.0
            nbytes = (
                self.collective_bytes[rank]
                if rank < len(self.collective_bytes) else 0
            )
            lines.append(
                f"  rank {rank}: peak "
                f"{format_bytes(trace.peak_memory):>10s}, comm "
                f"{format_time(comm)}, collective {format_bytes(nbytes)}, "
                f"stall {format_time(trace.memory_stall)}"
            )
        return "\n".join(lines)


class ClusterEngine:
    """Executes one program per rank against a simulated cluster."""

    def __init__(
        self, cluster: ClusterSpec, options: EngineOptions | None = None,
    ) -> None:
        self.cluster = cluster
        self.options = options or EngineOptions()
        if self.options.faults is not None:
            raise ValueError(
                "fault injection is not supported by the cluster engine; "
                "run per-rank programs on the single-GPU Engine instead"
            )

    def execute(
        self,
        programs: list[Program],
        observers: list[list[EngineObserver]] | None = None,
    ) -> ClusterTrace:
        """Run one program per rank to completion under one event clock.

        ``observers[rank]`` attaches extra observers to that rank's run.

        Raises
        ------
        OutOfMemoryError
            When any rank's allocation can never be satisfied.
        RuntimeExecutionError
            On inconsistent programs or unmatchable collective wiring.
        """
        world = self.cluster.world_size
        if len(programs) != world:
            raise RuntimeExecutionError(
                f"cluster of {world} ranks needs {world} programs, "
                f"got {len(programs)}"
            )
        runs: list[_Run] = []
        for rank, (gpu, program) in enumerate(
            zip(self.cluster.gpus, programs),
        ):
            extra = observers[rank] if observers else ()
            runs.append(_Run(gpu, PCIeModel(gpu), program, self.options, extra))
        self._dispatch_all(runs)
        traces = [run.finalize() for run in runs]
        return ClusterTrace(
            name=programs[0].name,
            world_size=world,
            makespan=max((run.clock for run in runs), default=0.0),
            ranks=traces,
            comm_busy=[run.comm_busy() for run in runs],
            collective_bytes=[run.collective_bytes for run in runs],
        )

    def execute_iterations(
        self,
        programs: list[Program],
        iterations: int,
        observers: list[list[EngineObserver]] | None = None,
        *,
        boundary_hook=None,
    ) -> tuple[list[list[float]], ClusterTrace]:
        """Run every rank's program back to back ``iterations`` times.

        The cluster analogue of
        :meth:`~repro.runtime.engine.Engine.execute_iterations`: one
        global event clock across all passes, per-rank state (streams,
        host copies, residency) carried across iterations. Each rank's
        observers get ``on_iteration_end`` with that rank's own window;
        between iterations an optional ``boundary_hook(index, runs)``
        may return a ``{rank: Program}`` mapping of *rank-local*
        replacement programs to hot-swap — other ranks keep running
        their current program, so replanning decisions stay local to the
        rank whose monitor triggered.

        Returns per-rank duration lists (``durations[rank][i]`` is how
        much the global clock advanced rank ``i``'s completion front)
        plus the aggregate :class:`ClusterTrace`.
        """
        world = self.cluster.world_size
        if len(programs) != world:
            raise RuntimeExecutionError(
                f"cluster of {world} ranks needs {world} programs, "
                f"got {len(programs)}"
            )
        if iterations < 1:
            raise RuntimeExecutionError(
                f"iterations must be >= 1, got {iterations}"
            )
        runs: list[_Run] = []
        for rank, (gpu, program) in enumerate(
            zip(self.cluster.gpus, programs),
        ):
            extra = observers[rank] if observers else ()
            runs.append(_Run(gpu, PCIeModel(gpu), program, self.options, extra))
        durations: list[list[float]] = [[] for _ in range(world)]
        previous = [0.0] * world
        for index in range(iterations):
            self._dispatch_all(runs)
            for rank, run in enumerate(runs):
                start, previous[rank] = previous[rank], run.clock
                durations[rank].append(run.clock - start)
                for observer in run.observers:
                    observer.on_iteration_end(index, start, run.clock)
            if boundary_hook is not None and index + 1 < iterations:
                swaps = boundary_hook(index, runs) or {}
                for rank, program in sorted(swaps.items()):
                    if program is not None and program is not runs[rank].program:
                        runs[rank].swap_program(program)
        traces = [run.finalize() for run in runs]
        return durations, ClusterTrace(
            name=programs[0].name,
            world_size=world,
            makespan=max((run.clock for run in runs), default=0.0),
            ranks=traces,
            comm_busy=[run.comm_busy() for run in runs],
            collective_bytes=[run.collective_bytes for run in runs],
        )

    # -- global dispatch ---------------------------------------------------------

    def _dispatch_all(self, runs: list[_Run]) -> None:
        remaining = sum(run._enqueue_pass() for run in runs)
        while remaining:
            best: tuple[tuple[float, int, int], _Run, _Candidate] | None = None
            stuck: tuple[tuple[int, int], _Blocked, _Run] | None = None
            pending: dict[int, list[tuple[int, _Run, _Candidate]]] = {}
            for rank, run in enumerate(runs):
                for lane in run.lanes.values():
                    if not lane.queue:
                        continue
                    head = run._prepare_head(lane)
                    if isinstance(head, _Blocked):
                        rank_key = (head.issue, rank)
                        if stuck is None or rank_key < stuck[0]:
                            stuck = (rank_key, head, run)
                        continue
                    instr = head.instr
                    if (
                        isinstance(instr, CollectiveInstr)
                        and len(instr.group) > 1
                    ):
                        pending.setdefault(instr.comm_id, []).append(
                            (rank, run, head),
                        )
                        continue
                    order = (head.start, rank, head.issue)
                    if best is None or order < best[0]:
                        best = (order, run, head)
            ready = self._ready_collective(pending)
            if best is not None and (ready is None or best[0] <= ready[0]):
                _, run, cand = best
                cand.lane.queue.popleft()
                run._dispatch(cand)
                run._commit_dispatch(cand)
                remaining -= 1
                continue
            if ready is not None:
                order, members = ready
                start = order[0]
                instr = members[0][2].instr
                # A point-to-point recv advertises zero payload; the
                # transfer is priced by the largest member share.
                nbytes = max(m[2].instr.nbytes for m in members)
                duration = self.cluster.collective_time(
                    instr.kind, instr.group, nbytes,
                )
                for _, run, cand in members:
                    cand.lane.queue.popleft()
                    run._dispatch_collective(cand, start, duration)
                    run._commit_dispatch(cand)
                remaining -= len(members)
                continue
            self._raise_wedged(stuck, pending, remaining)

    def _ready_collective(
        self, pending: dict[int, list[tuple[int, _Run, _Candidate]]],
    ) -> tuple[tuple[float, int, int], list[tuple[int, _Run, _Candidate]]] | None:
        """The dispatchable collective with the earliest group start."""
        chosen = None
        for comm_id, members in pending.items():
            instr = members[0][2].instr
            assert isinstance(instr, CollectiveInstr)
            for _, _, cand in members[1:]:
                peer = cand.instr
                if (
                    not isinstance(peer, CollectiveInstr)
                    or peer.group != instr.group
                    or not _kinds_match(peer.kind, instr.kind)
                ):
                    raise RuntimeExecutionError(
                        f"collective comm {comm_id} is wired inconsistently: "
                        f"{instr.label!r} vs {peer.label!r}"
                    )
            if len(members) != len(instr.group):
                continue
            ranks = sorted(rank for rank, _, _ in members)
            if ranks != sorted(instr.group):
                raise RuntimeExecutionError(
                    f"collective comm {comm_id} ({instr.label!r}) expects "
                    f"ranks {sorted(instr.group)} but matched {ranks}"
                )
            start = max(cand.start for _, _, cand in members)
            order = (
                start,
                min(rank for rank, _, _ in members),
                min(cand.issue for _, _, cand in members),
            )
            if chosen is None or order < chosen[0]:
                chosen = (order, members)
        return chosen

    def _raise_wedged(
        self,
        stuck: tuple[tuple[int, int], _Blocked, _Run] | None,
        pending: dict[int, list[tuple[int, _Run, _Candidate]]],
        remaining: int,
    ) -> None:
        if stuck is not None:
            _, head, run = stuck
            error = head.error
            if isinstance(error, OutOfMemoryError):
                for observer in run.observers:
                    observer.on_oom(
                        run.ledger.time, head.label,
                        error.requested, error.available,
                    )
            raise error
        if pending:
            waiting = {
                comm_id: sorted(rank for rank, _, _ in members)
                for comm_id, members in sorted(pending.items())
            }
            raise RuntimeExecutionError(
                f"cluster dispatcher wedged with {remaining} instructions "
                f"left: collectives {waiting} never complete their groups "
                f"(mismatched send/recv ordering between ranks?)"
            )
        raise RuntimeExecutionError(  # pragma: no cover - defensive
            f"cluster dispatcher wedged with {remaining} instructions left"
        )
