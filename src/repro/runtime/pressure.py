"""Runtime pressure monitoring for the dynamic-replanning feedback loop.

TSPLIT's plans are static: they price swaps at the *profiled* PCIe
bandwidth and assume allocations land exactly where the cost model
predicted. Under runtime drift — fault-degraded links, transient
transfer failures, emergency evictions from the recovery layer — a
static plan keeps paying for bandwidth it no longer has. DELTA (arXiv
2203.15980) shows a dynamic joint recomputation+swap loop beats any
static plan under such pressure; this module supplies the *sensing*
half of that loop.

:class:`PressureMonitor` is a plain
:class:`~repro.runtime.observers.EngineObserver`: it accumulates
per-iteration windows of transfer traffic, stall time and recovery
activity from the chronological event stream, closes a window on every
``on_iteration_end``, and emits typed :class:`PressureEvent`\\ s when a
:class:`PressureThresholds` bound is crossed. It never mutates engine
state — acting on the events is the replan stage's job
(:mod:`repro.pipeline.replan`).

The bandwidth signal is latency-corrected: each PCIe transfer costs
``latency + nbytes / bandwidth``, so the effective bandwidth of a
window is ``bytes / (busy - transfers * latency)``. On a clean run this
recovers the nominal bandwidth exactly (up to float rounding), which is
what guarantees the monitor *observes but never triggers* when faults
are off — a hard requirement for dynamic runs to stay byte-identical
to static plans in the absence of pressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.runtime.observers import EngineObserver

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.hardware.gpu import GPUSpec
    from repro.runtime.instructions import Program

#: Instruction kinds that occupy a PCIe copy lane.
_TRANSFER_KINDS = frozenset({"swap_out", "swap_in", "xfer"})


@dataclass(frozen=True)
class PressureThresholds:
    """When a window's signals become a :class:`PressureEvent`.

    The defaults are deliberately conservative: profiling noise and
    float rounding must never trip them on a clean run (the monitor's
    never-triggers-clean contract), while a 25%-degraded link or a
    thrashing recovery layer trips them within one window.
    """

    #: Observed/nominal PCIe bandwidth below this emits
    #: ``bandwidth_degraded``; at or above :attr:`headroom_ratio` while
    #: a degraded condition is active emits ``headroom``.
    bandwidth_ratio: float = 0.90
    headroom_ratio: float = 0.97
    #: Windows that moved less than this over PCIe carry too little
    #: signal for a bandwidth estimate and never emit bandwidth events.
    min_transfer_bytes: int = 1 << 20
    #: Emergency evictions + refetches per window at or above this emit
    #: ``thrash`` (the plan's working set no longer fits as planned).
    eviction_rate: float = 1.0
    #: Transfer retries per window at or above this emit ``flaky_link``.
    retry_rate: float = 2.0
    #: Stall fraction exceeding the best prior window's by more than
    #: this margin emits ``stall``.
    stall_margin: float = 0.10
    #: Bandwidth-ratio quantisation step for replan conditions; coarse
    #: steps keep jittery links from producing a new plan every window.
    quantum: float = 0.05


@dataclass(frozen=True)
class WindowStats:
    """Signals accumulated over one iteration window."""

    index: int
    start: float
    end: float
    transfer_bytes: int
    transfer_busy: float
    transfer_count: int
    stall_time: float
    retries: int
    evictions: int
    refetches: int

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def stall_fraction(self) -> float:
        """Stall share of the window (0 for degenerate windows)."""
        if self.duration <= 0:
            return 0.0
        return min(1.0, self.stall_time / self.duration)

    @property
    def swap_lane_utilization(self) -> float:
        """Copy-lane busy time as a fraction of the window."""
        if self.duration <= 0:
            return 0.0
        return self.transfer_busy / (2.0 * self.duration)


@dataclass(frozen=True)
class PressureEvent:
    """One threshold crossing, with the signal snapshot that caused it.

    Kinds: ``bandwidth_degraded`` (effective PCIe bandwidth fell below
    the profiled value), ``flaky_link`` (transfer retries), ``thrash``
    (emergency evictions / refetches — the plan under-reserves memory),
    ``stall`` (allocation stalls grew vs the best window seen), and
    ``headroom`` (a previously-degraded signal recovered — the plan can
    relax back towards the static optimum).
    """

    kind: str
    iteration: int
    time: float
    #: How far past the threshold the signal is, in [0, 1]-ish units
    #: (e.g. ``1 - bandwidth_ratio`` for degradation).
    severity: float
    #: Observed/nominal PCIe bandwidth over the window (1.0 = nominal).
    bandwidth_ratio: float = 1.0
    stall_fraction: float = 0.0
    evictions: int = 0
    retries: int = 0
    detail: str = ""


class PressureMonitor(EngineObserver):
    """Sliding-window pressure sensor over the engine's event stream.

    Attach like any observer (``compile_run(..., observers=[monitor])``
    or mid-run via ``run.attach_observer``); windows close on iteration
    boundaries, so single-pass ``execute`` runs accumulate one open
    window that is never evaluated. ``window`` iterations are pooled
    per evaluation (a window of 2 smooths single-iteration blips).

    The monitor is pure observation: reading :attr:`history`, calling
    :meth:`take_events` and :meth:`observed_bandwidth_ratio` never
    perturbs execution, so a clean run with a monitor attached stays
    byte-identical to one without.
    """

    def __init__(
        self,
        thresholds: PressureThresholds | None = None,
        *,
        window: int = 1,
        gpu: "GPUSpec | None" = None,
    ) -> None:
        self.thresholds = thresholds or PressureThresholds()
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.gpu = gpu
        #: Closed windows, oldest first.
        self.history: list[WindowStats] = []
        self.events: list[PressureEvent] = []
        #: All events ever emitted (``take_events`` drains only
        #: :attr:`events`); useful for reports.
        self.event_log: list[PressureEvent] = []
        #: Whether a degraded/thrash condition is currently signalled
        #: (cleared by a ``headroom`` emission).
        self._degraded = False
        self._window_start = 0.0
        self._reset_accumulators()

    def _reset_accumulators(self) -> None:
        self._xfer_bytes = 0
        self._xfer_busy = 0.0
        self._xfer_count = 0
        self._stall_time = 0.0
        self._retries = 0
        self._evictions = 0
        self._refetches = 0

    # -- observer callbacks ------------------------------------------------------

    def on_run_begin(self, program: "Program", gpu: "GPUSpec") -> None:
        """Bind the nominal link parameters and reset the window."""
        self.gpu = gpu
        self._window_start = 0.0
        self._reset_accumulators()

    def on_instr_end(
        self, label: str, kind: str, stream: str, start: float, end: float,
        nbytes: int = 0, tag: str = "",
    ) -> None:
        """Accumulate PCIe traffic (planned swaps, evictions, refetches)."""
        if kind in _TRANSFER_KINDS and nbytes > 0:
            self._xfer_bytes += nbytes
            self._xfer_busy += end - start
            self._xfer_count += 1

    def on_stall_end(self, time: float, label: str, stalled: float) -> None:
        """Accumulate allocation-stall time."""
        self._stall_time += stalled

    def on_fault(
        self, time: float, kind: str, label: str, nbytes: int = 0,
    ) -> None:
        """Count recovery-layer activity (never fires on clean runs)."""
        if kind == "transfer_retry":
            self._retries += 1
        elif kind == "emergency_evict":
            self._evictions += 1
        elif kind == "refetch":
            self._refetches += 1

    def on_iteration_end(self, index: int, start: float, end: float) -> None:
        """Close the window ending at this boundary and evaluate it."""
        stats = WindowStats(
            index=index,
            start=self._window_start,
            end=end,
            transfer_bytes=self._xfer_bytes,
            transfer_busy=self._xfer_busy,
            transfer_count=self._xfer_count,
            stall_time=self._stall_time,
            retries=self._retries,
            evictions=self._evictions,
            refetches=self._refetches,
        )
        self.history.append(stats)
        self._window_start = end
        self._reset_accumulators()
        self._evaluate(stats)

    # -- signal derivation -------------------------------------------------------

    def _pooled(self) -> WindowStats:
        """The last ``window`` iterations merged into one stats block."""
        tail = self.history[-self.window:]
        first, last = tail[0], tail[-1]
        return WindowStats(
            index=last.index,
            start=first.start,
            end=last.end,
            transfer_bytes=sum(w.transfer_bytes for w in tail),
            transfer_busy=sum(w.transfer_busy for w in tail),
            transfer_count=sum(w.transfer_count for w in tail),
            stall_time=sum(w.stall_time for w in tail),
            retries=sum(w.retries for w in tail),
            evictions=sum(w.evictions for w in tail),
            refetches=sum(w.refetches for w in tail),
        )

    def observed_bandwidth_ratio(
        self, stats: WindowStats | None = None,
    ) -> float:
        """Effective/nominal PCIe bandwidth over a window.

        Latency-corrected (see module docstring); returns 1.0 when the
        window moved too few bytes for a meaningful estimate or no GPU
        spec is bound yet (mid-run attach before any run begin).
        """
        if stats is None:
            if not self.history:
                return 1.0
            stats = self._pooled()
        if (
            self.gpu is None
            or stats.transfer_bytes < self.thresholds.min_transfer_bytes
        ):
            return 1.0
        pure = stats.transfer_busy - stats.transfer_count * self.gpu.pcie_latency
        if pure <= 0.0:
            return 1.0
        observed = stats.transfer_bytes / pure
        return observed / self.gpu.pcie_bandwidth

    def quantized_bandwidth_ratio(self) -> float:
        """Current bandwidth ratio snapped down to the quantisation grid.

        Replan conditions are keyed on this value, so a jittering link
        maps to a small set of plans (and the warm cache absorbs
        repeats) instead of producing a fresh plan every window. Clean
        links snap to exactly 1.0.
        """
        ratio = min(1.0, self.observed_bandwidth_ratio())
        quantum = self.thresholds.quantum
        if ratio >= self.thresholds.headroom_ratio:
            return 1.0
        # Epsilon so float dust (0.3999...986 for a 60%-degraded link)
        # still lands on the grid step it represents.
        steps = int(ratio / quantum + 1e-9)
        return max(quantum, round(steps * quantum, 10))

    def _baseline_stall(self) -> float:
        """Best (lowest) stall fraction over prior windows."""
        prior = self.history[:-1]
        if not prior:
            return self.history[-1].stall_fraction
        return min(w.stall_fraction for w in prior)

    def _evaluate(self, latest: WindowStats) -> None:
        """Emit events for every threshold the pooled window crosses."""
        limits = self.thresholds
        stats = self._pooled()
        windows = min(self.window, len(self.history))
        ratio = self.observed_bandwidth_ratio(stats)
        emitted = False

        def emit(kind: str, severity: float, detail: str) -> None:
            nonlocal emitted
            event = PressureEvent(
                kind=kind,
                iteration=latest.index,
                time=latest.end,
                severity=severity,
                bandwidth_ratio=ratio,
                stall_fraction=stats.stall_fraction,
                evictions=stats.evictions + stats.refetches,
                retries=stats.retries,
                detail=detail,
            )
            self.events.append(event)
            self.event_log.append(event)
            emitted = True

        if ratio < limits.bandwidth_ratio:
            emit(
                "bandwidth_degraded", 1.0 - ratio,
                f"effective PCIe bandwidth at {ratio:.0%} of profiled",
            )
        if stats.evictions + stats.refetches >= limits.eviction_rate * windows:
            emit(
                "thrash",
                (stats.evictions + stats.refetches) / max(1, windows),
                f"{stats.evictions} emergency evictions / "
                f"{stats.refetches} refetches in window",
            )
        if stats.retries >= limits.retry_rate * windows:
            emit(
                "flaky_link", stats.retries / max(1, windows),
                f"{stats.retries} transfer retries in window",
            )
        baseline = self._baseline_stall()
        if stats.stall_fraction > baseline + limits.stall_margin:
            emit(
                "stall", stats.stall_fraction - baseline,
                f"stall fraction {stats.stall_fraction:.0%} vs baseline "
                f"{baseline:.0%}",
            )
        if emitted:
            self._degraded = True
        elif self._degraded and ratio >= limits.headroom_ratio:
            self._degraded = False
            emit(
                "headroom", ratio - limits.headroom_ratio,
                "pressure receded; static-optimal plan viable again",
            )

    # -- consumption -------------------------------------------------------------

    def take_events(self) -> list[PressureEvent]:
        """Drain and return the pending events (oldest first)."""
        events, self.events = self.events, []
        return events

    def last_window(self) -> WindowStats | None:
        """The most recently closed iteration window, if any."""
        return self.history[-1] if self.history else None
