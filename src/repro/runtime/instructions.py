"""Instruction IR executed by the runtime engine.

The augmenter lowers the sTensor graph (Figure 10) into a *linear*
program of instructions; ordering in the list is issue order, and data
dependencies are expressed through :class:`TensorRef` ready-events that
the engine tracks. Micro-tensors are first-class: a ref with
``micro_index is not None`` names one piece of a split tensor, and is an
independent unit of allocation, transfer and eviction — exactly the
fine granularity the paper's design introduces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

WHOLE = -1  # micro_index value denoting the un-split tensor


@dataclass(frozen=True)
class TensorRef:
    """A (micro-)tensor as seen by the runtime.

    ``key`` identifies the storage unit; a whole tensor and its micro
    pieces never coexist (a merge replaces the pieces with the whole).
    """

    tensor_id: int
    nbytes: int
    micro_index: int = WHOLE
    label: str = ""

    @property
    def key(self) -> tuple[int, int]:
        return (self.tensor_id, self.micro_index)

    @property
    def is_micro(self) -> bool:
        return self.micro_index != WHOLE


class Device(enum.Enum):
    """Where a compute instruction runs."""

    GPU = "gpu"
    CPU = "cpu"


@dataclass(frozen=True)
class ComputeInstr:
    """Run a kernel: wait for inputs, allocate outputs, occupy a stream.

    ``duration`` is pre-computed by the augmenter from the profile (for
    GPU kernels) or the host-speed model (for CPU-offloaded updates).
    ``transient_bytes`` is workspace: allocated at start, released at end.
    """

    label: str
    duration: float
    inputs: tuple[TensorRef, ...] = ()
    outputs: tuple[TensorRef, ...] = ()
    transient_bytes: int = 0
    device: Device = Device.GPU
    op_id: int | None = None
    tag: str = ""  # "forward" / "backward" / "update" / "recompute" / "merge"
    #: Allocated at start but *not* ready at end (a whole buffer written
    #: incrementally by a sequence of micro-kernels).
    alloc_only: tuple[TensorRef, ...] = ()
    #: Marked ready at end without allocation (the last micro-kernel
    #: finishing a buffer allocated by an earlier ``alloc_only``).
    finishes: tuple[TensorRef, ...] = ()


@dataclass(frozen=True)
class SwapOutInstr:
    """D2H transfer of a resident (micro-)tensor; frees GPU memory on
    completion. The host copy is retained for a later swap-in."""

    ref: TensorRef


@dataclass(frozen=True)
class SwapInInstr:
    """H2D transfer re-materialising a previously swapped (micro-)tensor.

    Allocates GPU memory when the transfer starts; the ref becomes ready
    (usable by compute) when it completes.
    """

    ref: TensorRef


@dataclass(frozen=True)
class FreeInstr:
    """Release a (micro-)tensor's GPU memory without any transfer.

    Used for ordinary end-of-life frees and for recompute evictions.
    """

    ref: TensorRef
    missing_ok: bool = False


@dataclass(frozen=True)
class XferInstr:
    """A bare PCIe transfer with no allocation effect (e.g. copying
    CPU-updated parameters back over a resident GPU buffer)."""

    nbytes: int
    direction: str  # "d2h" | "h2d"
    label: str = ""
    after: tuple[TensorRef, ...] = ()


@dataclass(frozen=True)
class CollectiveInstr:
    """One rank's share of a multi-rank collective operation.

    Matching instructions (same ``comm_id``) on every rank in ``group``
    rendezvous at dispatch time: the collective starts when every member
    rank is locally ready, and its duration comes from the cluster's
    link cost model. Semantics per ref set:

    * ``inputs`` — in-place operands: must be ready at start; their
      ready time is pushed to the collective's end (an all-reduce
      rewrites the gradient buffer, so later consumers wait for it);
    * ``outputs`` — fresh buffers allocated at start, ready at end
      (an all-gather's assembled shards, a recv's payload marker);
    * ``frees`` — buffers released when the collective completes
      (a reduce-scatter retires the full-size gradient).

    ``nbytes`` is the logical payload the cost model prices (the full
    tensor size, not this rank's shard). ``lane`` names the serial
    queue the instruction occupies — ``"comm"`` for symmetric
    collectives; pipeline send/recv use per-peer-per-direction lanes so
    opposite-direction traffic cannot head-of-line deadlock.
    """

    kind: str  # "all_reduce" | "all_gather" | "reduce_scatter" | "send" | "recv"
    comm_id: int
    group: tuple[int, ...]
    nbytes: int
    label: str = ""
    inputs: tuple[TensorRef, ...] = ()
    outputs: tuple[TensorRef, ...] = ()
    frees: tuple[TensorRef, ...] = ()
    lane: str = "comm"


Instruction = (
    ComputeInstr | SwapOutInstr | SwapInInstr | FreeInstr | XferInstr
    | CollectiveInstr
)


def instr_stream(instr: Instruction) -> str:
    """Which serial stream an instruction occupies.

    ``FreeInstr`` is bookkeeping tied to the compute stream's position
    (a buffer dies when compute has passed its last consumer), so it
    rides the compute lane with zero duration.
    """
    if isinstance(instr, ComputeInstr):
        return "cpu" if instr.device is Device.CPU else "compute"
    if isinstance(instr, SwapOutInstr):
        return "d2h"
    if isinstance(instr, SwapInInstr):
        return "h2d"
    if isinstance(instr, FreeInstr):
        return "compute"
    if isinstance(instr, XferInstr):
        return instr.direction
    if isinstance(instr, CollectiveInstr):
        return instr.lane
    raise TypeError(f"unknown instruction {instr!r}")


def instr_reads(instr: Instruction) -> tuple[TensorRef, ...]:
    """The (micro-)tensors an instruction reads.

    Used by the engine to order evictions after every previously-issued
    consumer (the CUDA-event semantics a real runtime enforces before
    reclaiming a buffer): compute inputs, a swap-out's source, and the
    ordering dependencies of bare transfers all count as reads.
    """
    if isinstance(instr, ComputeInstr):
        return instr.inputs
    if isinstance(instr, SwapOutInstr):
        return (instr.ref,)
    if isinstance(instr, XferInstr):
        return instr.after
    if isinstance(instr, CollectiveInstr):
        return (*instr.inputs, *instr.frees)
    return ()


@dataclass
class Program:
    """A lowered instruction program plus bookkeeping metadata."""

    instructions: list[Instruction] = field(default_factory=list)
    #: Bytes resident before the iteration starts (weights, optimizer
    #: state, input batch) — charged to the pool up front.
    persistent_bytes: int = 0
    #: Tensors whose host copy exists before the iteration starts
    #: (sharded parameters living in CPU memory between uses).
    initial_host: list[TensorRef] = field(default_factory=list)
    #: Samples processed per iteration (for throughput).
    batch: int = 0
    name: str = ""

    def append(self, instr: Instruction) -> None:
        self.instructions.append(instr)

    def extend(self, instrs: list[Instruction]) -> None:
        self.instructions.extend(instrs)

    def __len__(self) -> int:
        return len(self.instructions)

    def counts(self) -> dict[str, int]:
        """Instruction histogram, for tests and reports."""
        histogram: dict[str, int] = {}
        for instr in self.instructions:
            key = type(instr).__name__
            histogram[key] = histogram.get(key, 0) + 1
        return histogram
