"""Deep-learning runtime: discrete-event execution of augmented programs.

The augmenter (:mod:`repro.core.augment`) lowers a (graph, plan) pair
into a linear instruction program; the engine here
(:mod:`repro.runtime.engine`) executes that program against the
simulated GPU — one compute stream, D2H and H2D copy streams, a host
"stream" for CPU-offloaded updates, event-based dependencies, and a
chronological dispatcher that applies allocation/free/swap-completion
events to the device-memory ledger in time order, so peak memory and
stall accounting are exact by construction — and produces an
:class:`~repro.runtime.trace.ExecutionTrace` with iteration time,
throughput, memory timeline, stall and PCIe-utilisation statistics.
Pluggable :mod:`~repro.runtime.observers` watch the same event stream
for per-instruction tracing, memory timelines, or Chrome trace export.
"""

from repro.runtime.instructions import (
    ComputeInstr,
    FreeInstr,
    Instruction,
    SwapInInstr,
    SwapOutInstr,
    TensorRef,
    XferInstr,
)
from repro.runtime.engine import Engine, EngineOptions
from repro.runtime.observers import (
    ChromeTraceObserver,
    EngineObserver,
    MemoryTimelineObserver,
    TraceObserver,
)
from repro.runtime.pressure import (
    PressureEvent,
    PressureMonitor,
    PressureThresholds,
    WindowStats,
)
from repro.runtime.trace import ExecutionTrace, MemorySample

__all__ = [
    "TensorRef",
    "Instruction",
    "ComputeInstr",
    "SwapOutInstr",
    "SwapInInstr",
    "FreeInstr",
    "XferInstr",
    "Engine",
    "EngineOptions",
    "EngineObserver",
    "TraceObserver",
    "MemoryTimelineObserver",
    "ChromeTraceObserver",
    "ExecutionTrace",
    "MemorySample",
    "PressureEvent",
    "PressureMonitor",
    "PressureThresholds",
    "WindowStats",
]
