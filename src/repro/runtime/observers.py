"""Pluggable execution observers for the discrete-event engine.

The engine dispatches work in chronological start order and exposes that
event stream through :class:`EngineObserver` callbacks — instruction
start/end, allocation/free, stall begin/end, OOM. Tracing cost is opt-in
per observer: a run with no observers attached computes only the
aggregate scalars (iteration time, peak memory, stalls), while attaching
observers buys progressively richer views of the same execution:

* :class:`TraceObserver` — the classic :class:`~repro.runtime.trace.
  ExecutionTrace` payload (per-instruction records, memory samples,
  the chronological allocation log);
* :class:`MemoryTimelineObserver` — the exact chronological
  device-memory curve and its peak (Figures 2a and 4);
* :class:`ChromeTraceObserver` — a Chrome trace-event JSON file viewable
  in ``chrome://tracing`` or Perfetto, one track per stream plus a
  device-memory counter track.

Observer callbacks fire in non-decreasing event time for allocation,
free and instruction-*start* events (the engine's dispatch order);
instruction-*end* callbacks fire at dispatch, when the completion time
is already known.
"""

from __future__ import annotations

import itertools
import json
from typing import TYPE_CHECKING

import numpy as np

from repro.runtime.trace import ExecutionTrace, InstrRecord, MemorySample

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.hardware.gpu import GPUSpec
    from repro.runtime.instructions import Program


class EngineObserver:
    """Base observer: every callback is a no-op; override what you need.

    Subclass and attach via ``Engine(gpu).execute(program,
    observers=[...])`` (or :class:`~repro.runtime.engine.EngineOptions.
    observers` to attach for every run of an engine). Callbacks must not
    mutate engine state; they see an exact chronological account of the
    execution.
    """

    def on_run_begin(self, program: "Program", gpu: "GPUSpec") -> None:
        """Called once before the first instruction is dispatched."""

    def on_instr_start(
        self, label: str, kind: str, stream: str, time: float,
        nbytes: int = 0, tag: str = "",
    ) -> None:
        """An instruction began occupying its stream at ``time``."""

    def on_instr_end(
        self, label: str, kind: str, stream: str, start: float, end: float,
        nbytes: int = 0, tag: str = "",
    ) -> None:
        """An instruction's completion time is known (fires at dispatch)."""

    def on_alloc(
        self, time: float, label: str, nbytes: int, used: int,
    ) -> None:
        """``nbytes`` were allocated at ``time``; ``used`` is the total after."""

    def on_free(
        self, time: float, label: str, nbytes: int, used: int,
    ) -> None:
        """``nbytes`` were released at ``time``; ``used`` is the total after."""

    def on_stall_begin(self, time: float, label: str, nbytes: int) -> None:
        """An allocation of ``nbytes`` started waiting for memory."""

    def on_stall_end(self, time: float, label: str, stalled: float) -> None:
        """The stalled allocation proceeded after ``stalled`` seconds."""

    def on_oom(
        self, time: float, label: str, requested: int, available: int,
    ) -> None:
        """No amount of waiting can satisfy ``requested`` bytes."""

    def on_fault(
        self, time: float, kind: str, label: str, nbytes: int = 0,
    ) -> None:
        """A fault was injected or a recovery action taken at ``time``.

        Kinds: ``transfer_retry`` (transient transfer failure, retried
        with backoff), ``emergency_evict`` (cold resident evicted to
        dodge an over-capacity allocation), ``refetch`` (evicted tensor
        re-materialised on demand), ``skip_swap_out`` / ``skip_swap_in``
        / ``skip_free`` (planned instruction already satisfied by an
        emergency action, dispatched as a no-op). Never fires on clean
        runs (``faults=None``).
        """

    def on_iteration_end(self, index: int, start: float, end: float) -> None:
        """Iteration ``index`` (0-based) ran from ``start`` to ``end``.

        Fires only under :meth:`~repro.runtime.engine.Engine.
        execute_iterations` (single-pass ``execute`` has no iteration
        boundaries). This is the natural point to close a measurement
        window: every instruction of the iteration has dispatched and
        its completion time is known.
        """

    def on_run_end(self, trace: ExecutionTrace) -> None:
        """Called once with the finalized trace."""


class TraceObserver(EngineObserver):
    """Collects the payload carried by a fully-traced ExecutionTrace.

    Per-instruction timing records, memory samples at every allocation
    and free, and the chronological ``(time, label, +/-bytes)``
    allocation log the allocator-replay analysis consumes. This is what
    ``EngineOptions(record_trace=True)`` attaches implicitly.
    """

    def __init__(self) -> None:
        self.records: list[InstrRecord] = []
        self.samples: list[MemorySample] = []
        self.alloc_events: list[tuple[float, str, int]] = []
        self.fault_events: list[tuple[float, str, str, int]] = []
        self.stall_events: list[tuple[float, str, float]] = []

    def on_instr_end(
        self, label: str, kind: str, stream: str, start: float, end: float,
        nbytes: int = 0, tag: str = "",
    ) -> None:
        """Append one InstrRecord per dispatched instruction."""
        self.records.append(
            InstrRecord(label, kind, stream, start, end, nbytes, tag),
        )

    def on_alloc(
        self, time: float, label: str, nbytes: int, used: int,
    ) -> None:
        """Log the allocation event and sample the memory level."""
        if nbytes:
            self.alloc_events.append((time, label, nbytes))
        self.samples.append(MemorySample(time, used))

    def on_free(
        self, time: float, label: str, nbytes: int, used: int,
    ) -> None:
        """Log the release event and sample the memory level."""
        if nbytes:
            self.alloc_events.append((time, label, -nbytes))
        self.samples.append(MemorySample(time, used))

    def on_stall_end(self, time: float, label: str, stalled: float) -> None:
        """Log one completed memory stall."""
        self.stall_events.append((time, label, stalled))

    def on_fault(
        self, time: float, kind: str, label: str, nbytes: int = 0,
    ) -> None:
        """Log one fault/recovery action (empty for clean runs)."""
        self.fault_events.append((time, kind, label, nbytes))


class MemoryTimelineObserver(EngineObserver):
    """Exact chronological device-memory timeline.

    Point ``i`` is the memory in use immediately after the ``i``-th
    ledger event; because the engine applies events in time order, the
    running maximum of this curve equals the engine's ``peak_memory``
    by construction.
    """

    def __init__(self) -> None:
        self.points: list[tuple[float, int]] = []
        self.peak = 0

    def on_run_begin(self, program: "Program", gpu: "GPUSpec") -> None:
        """Seed the curve with the persistent region at t=0."""
        self.points.append((0.0, program.persistent_bytes))
        self.peak = max(self.peak, program.persistent_bytes)

    def _sample(self, time: float, used: int) -> None:
        self.points.append((time, used))
        self.peak = max(self.peak, used)

    def on_alloc(
        self, time: float, label: str, nbytes: int, used: int,
    ) -> None:
        """Record the post-allocation memory level."""
        self._sample(time, used)

    def on_free(
        self, time: float, label: str, nbytes: int, used: int,
    ) -> None:
        """Record the post-release memory level."""
        self._sample(time, used)

    def curve(self) -> np.ndarray:
        """(time, used_bytes) as a 2-column array.

        Guaranteed non-decreasing in time: the engine dispatches ledger
        events chronologically, so samples arrive sorted; if an exotic
        observer composition ever feeds out-of-order points, they are
        stably re-sorted here rather than returned unordered.
        """
        if not self.points:
            return np.zeros((0, 2))
        array = np.array(self.points, dtype=np.float64)
        times = array[:, 0]
        if np.any(np.diff(times) < 0):
            array = array[np.argsort(times, kind="stable")]
        return array


#: Stable Chrome-trace thread ids for the engine's streams.
_CHROME_TIDS = {"compute": 0, "d2h": 1, "h2d": 2, "cpu": 3}
_STALL_TID = 4
_FAULT_TID = 5

#: Process-id allocator shared by every ChromeTraceObserver: multiple
#: observers (or multiple runs through one observer) written into one
#: trace file must land on distinct process tracks, not collide on 0.
_CHROME_PIDS = itertools.count(1)


class ChromeTraceObserver(EngineObserver):
    """Exports the execution as Chrome trace-event JSON.

    Open the written file in ``chrome://tracing`` or
    https://ui.perfetto.dev: one track per stream (compute, D2H, H2D,
    CPU), a track for memory stalls, and a counter track with the
    chronological device-memory level. Timestamps are microseconds, as
    the format requires.

    Each observer instance gets a unique process id (unless ``pid`` is
    pinned explicitly), and every additional run through the *same*
    observer allocates a fresh pid + process name — so a sweep that
    funnels several runs into one trace file shows one named process
    group per run instead of interleaving them all on pid 0.
    """

    def __init__(
        self, pid: int | None = None, process_name: str | None = None,
    ) -> None:
        self.events: list[dict] = []
        self._auto_pid = pid is None
        self._pid = next(_CHROME_PIDS) if pid is None else pid
        self._process_name = process_name
        self._runs = 0
        self._tids = dict(_CHROME_TIDS)
        self._next_tid = _FAULT_TID + 1

    def _stream_tid(self, stream: str) -> int:
        """Resolve a stream to its thread track, naming new ones lazily.

        The four fixed engine lanes keep their stable ids; any other
        lane (cluster communication lanes like ``"comm"`` or
        ``"send:1:t42"``) gets the next free tid plus a ``thread_name``
        metadata event on first sight, so merged multi-rank traces stay
        human-readable in Perfetto.
        """
        tid = self._tids.get(stream)
        if tid is None:
            tid = self._tids[stream] = self._next_tid
            self._next_tid += 1
            self.events.append({
                "ph": "M", "name": "thread_name", "pid": self._pid,
                "tid": tid, "args": {"name": stream},
            })
        return tid

    def on_run_begin(self, program: "Program", gpu: "GPUSpec") -> None:
        """Emit process/thread metadata naming the tracks."""
        self._runs += 1
        if self._runs > 1 and self._auto_pid:
            self._pid = next(_CHROME_PIDS)
            # Fresh pid, fresh thread-name namespace: dynamic lanes must
            # re-announce themselves under the new process.
            self._tids = dict(_CHROME_TIDS)
            self._next_tid = _FAULT_TID + 1
        name = (
            self._process_name
            or f"{program.name or 'program'} on {gpu.name}"
        )
        if self._runs > 1:
            name = f"{name} (run {self._runs})"
        self.events.append({
            "ph": "M", "name": "process_name", "pid": self._pid,
            "args": {"name": name},
        })
        names = dict(_CHROME_TIDS)
        for stream, tid in sorted(names.items(), key=lambda kv: kv[1]):
            self.events.append({
                "ph": "M", "name": "thread_name", "pid": self._pid,
                "tid": tid, "args": {"name": stream},
            })
        self.events.append({
            "ph": "M", "name": "thread_name", "pid": self._pid,
            "tid": _STALL_TID, "args": {"name": "memory stalls"},
        })
        self.events.append({
            "ph": "M", "name": "thread_name", "pid": self._pid,
            "tid": _FAULT_TID, "args": {"name": "faults & recovery"},
        })

    def on_instr_end(
        self, label: str, kind: str, stream: str, start: float, end: float,
        nbytes: int = 0, tag: str = "",
    ) -> None:
        """Emit one complete ("X") slice on the instruction's stream."""
        self.events.append({
            "ph": "X", "name": label, "cat": tag or kind,
            "pid": self._pid, "tid": self._stream_tid(stream),
            "ts": start * 1e6, "dur": (end - start) * 1e6,
            "args": {"kind": kind, "nbytes": nbytes},
        })

    def on_stall_end(self, time: float, label: str, stalled: float) -> None:
        """Emit the stall as a slice on the dedicated stall track."""
        self.events.append({
            "ph": "X", "name": f"stall({label})", "cat": "stall",
            "pid": self._pid, "tid": _STALL_TID,
            "ts": (time - stalled) * 1e6, "dur": stalled * 1e6,
            "args": {},
        })

    def on_fault(
        self, time: float, kind: str, label: str, nbytes: int = 0,
    ) -> None:
        """Emit an instant event on the dedicated fault/recovery track."""
        self.events.append({
            "ph": "i", "name": f"{kind}({label})", "cat": "fault",
            "pid": self._pid, "tid": _FAULT_TID, "ts": time * 1e6,
            "s": "t", "args": {"kind": kind, "nbytes": nbytes},
        })

    def _counter(self, time: float, used: int) -> None:
        self.events.append({
            "ph": "C", "name": "device memory", "pid": self._pid,
            "ts": time * 1e6, "args": {"used_bytes": used},
        })

    def on_alloc(
        self, time: float, label: str, nbytes: int, used: int,
    ) -> None:
        """Update the device-memory counter track."""
        self._counter(time, used)

    def on_free(
        self, time: float, label: str, nbytes: int, used: int,
    ) -> None:
        """Update the device-memory counter track."""
        self._counter(time, used)

    def to_json(self) -> str:
        """The trace as a JSON string in Chrome trace-event format."""
        return json.dumps(
            {"traceEvents": self.events, "displayTimeUnit": "ms"},
        )

    def write(self, path) -> None:
        """Write the trace JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
