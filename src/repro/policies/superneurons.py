"""SuperNeurons (Wang et al., PPoPP'18): layer-type-driven swap + recompute.

The strongest prior baseline of the paper. Its static rule: convolution
outputs (expensive to recompute, big) are *swapped* to host memory; the
outputs of cheap-to-recompute layers (pooling, batch norm, activation
functions, dropout, ...) are *freed and recomputed* in the backward pass
using the swapped conv outputs as checkpoints; everything else resides.

Without convolution layers there are neither swap targets nor recompute
checkpoints, so the policy is inapplicable to Transformers — the paper's
"x" entries in Tables IV/V.
"""

from __future__ import annotations

from repro.core.plan import MemOption, Plan, TensorConfig
from repro.core.profiler import ProfileData
from repro.core.simulate import tensor_timeline
from repro.errors import PolicyError
from repro.graph.graph import Graph
from repro.graph.liveness import compute_liveness
from repro.graph.scheduler import dfs_schedule
from repro.graph.tensor import TensorKind
from repro.hardware.gpu import GPUSpec
from repro.policies.base import MemoryPolicy

_SWAP = TensorConfig(opt=MemOption.SWAP)
_RECOMPUTE = TensorConfig(opt=MemOption.RECOMPUTE)


class SuperNeuronsPolicy(MemoryPolicy):
    """Swap conv outputs; recompute cheap-layer outputs."""

    name = "superneurons"

    def _build(
        self,
        graph: Graph,
        gpu: GPUSpec,
        *,
        schedule: list[int] | None,
        profile: ProfileData | None,
    ) -> Plan:
        if not graph.has_conv():
            raise PolicyError(
                f"{graph.name}: SuperNeurons has no convolution layers to "
                f"swap and no checkpoints for recomputation"
            )
        schedule = schedule or dfs_schedule(graph)
        liveness = compute_liveness(graph, schedule)
        plan = Plan(policy=self.name)
        for op in graph.ops.values():
            if op.is_backward:
                continue
            for tid in op.outputs:
                tensor = graph.tensors[tid]
                if tensor.kind is not TensorKind.ACTIVATION:
                    continue
                timeline = tensor_timeline(graph, liveness, tensor)
                if timeline is None:
                    continue
                # No backward-use filter: a swapped conv output with no
                # direct backward consumer still serves as the recompute
                # checkpoint for the cheap layers stacked on top of it.
                if op.op_type.is_conv:
                    plan.set(tid, _SWAP)
                elif op.op_type.cheap_to_recompute:
                    plan.set(tid, _RECOMPUTE)
        return plan
