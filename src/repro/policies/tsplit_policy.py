"""TSPLIT as a policy: the model-guided planner, with ablation variant.

``TsplitPolicy`` wraps :class:`~repro.core.planner.TsplitPlanner`
(Algorithm 2, full split + swap + recompute joint search).
``TsplitNoSplitPolicy`` disables the split mechanism, yielding the
"TSPLIT w/o Split" system of Figure 14a — still cost-model-guided
swap/recompute selection, but tensor-wise only.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.plan import Plan
from repro.core.planner import PlannerOptions, TsplitPlanner
from repro.core.profiler import ProfileData
from repro.graph.graph import Graph
from repro.hardware.gpu import GPUSpec
from repro.policies.base import MemoryPolicy


class TsplitPolicy(MemoryPolicy):
    """The paper's planner: joint split + swap + recompute."""

    name = "tsplit"
    allow_split = True

    def __init__(self, options: PlannerOptions | None = None) -> None:
        self.options = options or PlannerOptions()

    def _build(
        self,
        graph: Graph,
        gpu: GPUSpec,
        *,
        schedule: list[int] | None,
        profile: ProfileData | None,
    ) -> Plan:
        cost = replace(self.options.cost, allow_split=self.allow_split)
        options = replace(self.options, cost=cost)
        planner = TsplitPlanner(gpu, options, policy_name=self.name)
        result = planner.plan(graph, schedule=schedule, profile=profile)
        return result.plan


class TsplitNoSplitPolicy(TsplitPolicy):
    """Ablation: cost-model-guided swap/recompute without splitting."""

    name = "tsplit_nosplit"
    allow_split = False
