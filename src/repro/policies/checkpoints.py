"""Checkpoints (Chen et al., "Training Deep Nets with Sublinear Memory
Cost"): sqrt(N) gradient checkpointing.

Feature maps along the forward pass are grouped into ~sqrt(N) segments;
only segment boundaries (checkpoints) stay resident, everything inside a
segment is freed after forward and recomputed from the preceding
checkpoint during backward. Pure recomputation — no PCIe traffic — so it
beats vDNN in throughput at moderate scale but runs out of savings
earlier (Tables IV/V: "Checkpoints" column).
"""

from __future__ import annotations

import math

from repro.core.plan import MemOption, Plan, TensorConfig
from repro.core.profiler import ProfileData
from repro.core.simulate import tensor_timeline
from repro.graph.graph import Graph
from repro.graph.liveness import compute_liveness
from repro.graph.scheduler import dfs_schedule
from repro.graph.tensor import TensorKind
from repro.hardware.gpu import GPUSpec
from repro.policies.base import MemoryPolicy

_RECOMPUTE = TensorConfig(opt=MemOption.RECOMPUTE)


class CheckpointsPolicy(MemoryPolicy):
    """sqrt(N)-segment recomputation over the forward activation chain."""

    name = "checkpoints"
    # Chen et al. recompute each segment once and keep its intermediates
    # until consumed (speed-centric), trading memory for one-pass cost.
    recompute_strategy = "speed_centric"

    def __init__(self, segment_scale: float = 1.0) -> None:
        if segment_scale <= 0:
            raise ValueError("segment_scale must be positive")
        self.segment_scale = segment_scale

    def _build(
        self,
        graph: Graph,
        gpu: GPUSpec,
        *,
        schedule: list[int] | None,
        profile: ProfileData | None,
    ) -> Plan:
        schedule = schedule or dfs_schedule(graph)
        liveness = compute_liveness(graph, schedule)

        # Forward activations with a backward use, in production order.
        backbone: list[int] = []
        for op_id in schedule:
            op = graph.ops[op_id]
            if op.is_backward:
                break
            for tid in op.outputs:
                tensor = graph.tensors[tid]
                if tensor.kind is not TensorKind.ACTIVATION:
                    continue
                timeline = tensor_timeline(graph, liveness, tensor)
                if timeline and timeline.bwd_uses:
                    backbone.append(tid)

        plan = Plan(policy=self.name)
        count = len(backbone)
        if count == 0:
            return plan
        # Chen et al. balance segments by *bytes*, not op count: a new
        # checkpoint starts once the running segment holds its byte
        # budget. With sqrt(N) segments the per-segment regeneration
        # working set stays uniform even on pyramid-shaped CNNs whose
        # first layers dominate the footprint.
        total_bytes = sum(graph.tensors[tid].size_bytes for tid in backbone)
        segments = max(1, round(self.segment_scale * math.sqrt(count)))
        budget = total_bytes / segments
        running = 0
        for index, tid in enumerate(backbone):
            size = graph.tensors[tid].size_bytes
            if index == 0 or running + size > budget:
                running = size  # checkpoint: keep resident
            else:
                running += size
                plan.set(tid, _RECOMPUTE)
        return plan
