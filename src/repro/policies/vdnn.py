"""vDNN (Rhu et al., MICRO'16): layer-wise feature-map swapping.

vDNN virtualises DNN memory by offloading feature maps to host memory on
a fixed, layer-type-driven rule — no cost model, no recomputation:

* **vDNN-conv** swaps only the *inputs of convolution layers* (the
  biggest feature maps in CNNs). It has nothing to offload in models
  without convolutions, hence the "x" entries for Transformer in
  Tables IV/V.
* **vDNN-all** swaps *every* feature map, regardless of need — which is
  why its throughput is flat and poor (Figure 12) but its trainable
  scale is large.
"""

from __future__ import annotations

from repro.core.plan import MemOption, Plan, TensorConfig
from repro.core.profiler import ProfileData
from repro.core.simulate import tensor_timeline
from repro.errors import PolicyError
from repro.graph.graph import Graph
from repro.graph.liveness import compute_liveness
from repro.graph.scheduler import dfs_schedule
from repro.graph.tensor import TensorKind
from repro.hardware.gpu import GPUSpec
from repro.policies.base import MemoryPolicy

_SWAP = TensorConfig(opt=MemOption.SWAP)


def _activations(graph: Graph, schedule: list[int]) -> list[int]:
    """Activation tensor ids that are actually materialised."""
    liveness = compute_liveness(graph, schedule)
    result: list[int] = []
    for tensor in graph.tensors.values():
        if tensor.kind is not TensorKind.ACTIVATION:
            continue
        if tensor_timeline(graph, liveness, tensor) is not None:
            result.append(tensor.tensor_id)
    return result


class VdnnConvPolicy(MemoryPolicy):
    """Swap the input feature maps of convolution layers."""

    name = "vdnn_conv"

    def _build(
        self,
        graph: Graph,
        gpu: GPUSpec,
        *,
        schedule: list[int] | None,
        profile: ProfileData | None,
    ) -> Plan:
        if not graph.has_conv():
            raise PolicyError(
                f"{graph.name}: vDNN-conv has no convolution layers to "
                f"offload"
            )
        schedule = schedule or dfs_schedule(graph)
        materialised = set(_activations(graph, schedule))
        plan = Plan(policy=self.name)
        for op in graph.ops.values():
            if not op.op_type.is_conv or op.is_backward:
                continue
            for tid in op.inputs:
                tensor = graph.tensors[tid]
                if (
                    tensor.kind is TensorKind.ACTIVATION
                    and tid in materialised
                ):
                    plan.set(tid, _SWAP)
        return plan


class VdnnAllPolicy(MemoryPolicy):
    """Swap every feature map with a backward use."""

    name = "vdnn_all"

    def _build(
        self,
        graph: Graph,
        gpu: GPUSpec,
        *,
        schedule: list[int] | None,
        profile: ProfileData | None,
    ) -> Plan:
        schedule = schedule or dfs_schedule(graph)
        plan = Plan(policy=self.name)
        # vDNN-all swaps every feature map on its fixed rule, useful or
        # not — the wasted round-trips are exactly the inefficiency the
        # paper measures against it.
        for tid in _activations(graph, schedule):
            plan.set(tid, _SWAP)
        return plan
