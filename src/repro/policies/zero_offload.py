"""ZeRO-Offload (Ren et al., ATC'21), reproduced as a plan.

ZeRO-Offload moves the *optimizer state* to host memory permanently,
streams *parameter gradients* to the host as they are produced in the
backward pass, performs the optimizer update on the CPU, and copies the
updated parameters back to the GPU. Activations are untouched — which is
why, for CNNs whose footprint is dominated by feature maps rather than
parameters, it "achieves almost the least sample scale" (Section VI-D).

This is the *single-GPU* member of the ZeRO family: one rank trades
PCIe traffic for host memory, and no collectives are involved. Sharding
optimizer state and gradients *across ranks* (ZeRO-1/2 proper) is a
cluster transform, not a policy — see
:func:`repro.cluster.transforms.splice_zero_shard` and
``compile_cluster(..., mode="zero_shard")``, which keep every shard in
GPU memory and pay all-gather/reduce-scatter time instead of PCIe time.
"""

from __future__ import annotations

from repro.core.plan import MemOption, Plan, TensorConfig
from repro.core.profiler import ProfileData
from repro.graph.graph import Graph
from repro.graph.tensor import TensorKind
from repro.hardware.gpu import GPUSpec
from repro.policies.base import MemoryPolicy


class ZeroOffloadPolicy(MemoryPolicy):
    """Offload optimizer state + gradients to CPU; update on CPU."""

    name = "zero_offload"

    def _build(
        self,
        graph: Graph,
        gpu: GPUSpec,
        *,
        schedule: list[int] | None,
        profile: ProfileData | None,
    ) -> Plan:
        plan = Plan(policy=self.name, cpu_update=True)
        for tensor in graph.tensors.values():
            if tensor.kind is TensorKind.OPTIMIZER_STATE:
                plan.set(tensor.tensor_id, TensorConfig(opt=MemOption.CPU))
            elif tensor.kind is TensorKind.GRAD_PARAM:
                plan.set(tensor.tensor_id, TensorConfig(opt=MemOption.SWAP))
        return plan
