"""Memory-management policies: TSPLIT and every baseline of the paper.

Each policy maps a training graph to a :class:`~repro.core.plan.Plan`:

* ``base`` — keep everything resident (TensorFlow/PyTorch default);
* ``vdnn_conv`` / ``vdnn_all`` — vDNN: swap conv-layer inputs / all
  feature maps;
* ``checkpoints`` — Chen et al. sqrt(N) recomputation;
* ``superneurons`` — swap conv outputs, recompute cheap layers;
* ``tsplit`` / ``tsplit_nosplit`` — the paper's planner, with and
  without the tensor-split mechanism (Figure 14a ablation);
* ``zero_offload`` / ``fairscale_offload`` — the PyTorch-ecosystem
  baselines of Section VI-D, reproduced as plans on the same substrate.
"""

from repro.policies.base import MemoryPolicy, BasePolicy, POLICY_REGISTRY, get_policy
from repro.policies.vdnn import VdnnConvPolicy, VdnnAllPolicy
from repro.policies.checkpoints import CheckpointsPolicy
from repro.policies.superneurons import SuperNeuronsPolicy
from repro.policies.tsplit_policy import TsplitPolicy, TsplitNoSplitPolicy
from repro.policies.zero_offload import ZeroOffloadPolicy
from repro.policies.fairscale_offload import FairscaleOffloadPolicy

__all__ = [
    "MemoryPolicy",
    "BasePolicy",
    "POLICY_REGISTRY",
    "get_policy",
    "VdnnConvPolicy",
    "VdnnAllPolicy",
    "CheckpointsPolicy",
    "SuperNeuronsPolicy",
    "TsplitPolicy",
    "TsplitNoSplitPolicy",
    "ZeroOffloadPolicy",
    "FairscaleOffloadPolicy",
]
