"""Policy interface, the Base (no-optimisation) policy, and the registry."""

from __future__ import annotations

import abc

from repro.core.plan import Plan, validate_plan
from repro.core.profiler import ProfileData
from repro.graph.graph import Graph
from repro.hardware.gpu import GPUSpec


class MemoryPolicy(abc.ABC):
    """Maps a training graph to a memory-management plan.

    Subclasses must set ``name`` and implement :meth:`_build`. Policies
    that need profiled timings or the device spec receive them; static
    baselines ignore them. ``recompute_strategy`` names the
    recomputation execution style the policy's original system uses
    (``None`` keeps the runtime default, memory-centric).
    """

    name: str = "abstract"
    recompute_strategy: str | None = None

    def build_plan(
        self,
        graph: Graph,
        gpu: GPUSpec,
        *,
        schedule: list[int] | None = None,
        profile: ProfileData | None = None,
    ) -> Plan:
        """Build and validate the plan for one graph.

        Raises
        ------
        PolicyError
            When the policy is inapplicable to the model (the paper's
            "x" entries, e.g. vDNN-conv on a Transformer).
        PlanningError
            When a search-based policy cannot find a feasible plan.
        """
        plan = self._build(graph, gpu, schedule=schedule, profile=profile)
        validate_plan(graph, plan)
        return plan

    @abc.abstractmethod
    def _build(
        self,
        graph: Graph,
        gpu: GPUSpec,
        *,
        schedule: list[int] | None,
        profile: ProfileData | None,
    ) -> Plan:
        ...

    def cache_token(self) -> dict:
        """JSON-able identity for plan-cache keys.

        Includes the instance's public constructor state so two
        differently-configured instances of the same policy (e.g. a
        tsplit planner with a custom ``ordering``) never collide in the
        compilation cache. Dataclasses and enums in the state are
        handled by the cache's canonical JSON encoder.
        """
        state = {
            key: value for key, value in vars(self).items()
            if not key.startswith("_")
        }
        return {"policy": self.name, "state": state}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class BasePolicy(MemoryPolicy):
    """Common DL-system behaviour: everything stays resident."""

    name = "base"

    def _build(
        self,
        graph: Graph,
        gpu: GPUSpec,
        *,
        schedule: list[int] | None,
        profile: ProfileData | None,
    ) -> Plan:
        return Plan(policy=self.name)


def _build_registry() -> dict[str, MemoryPolicy]:
    # Imported here to avoid import cycles with the policy modules.
    from repro.policies.checkpoints import CheckpointsPolicy
    from repro.policies.fairscale_offload import FairscaleOffloadPolicy
    from repro.policies.superneurons import SuperNeuronsPolicy
    from repro.policies.tsplit_policy import TsplitNoSplitPolicy, TsplitPolicy
    from repro.policies.vdnn import VdnnAllPolicy, VdnnConvPolicy
    from repro.policies.zero_offload import ZeroOffloadPolicy

    policies: list[MemoryPolicy] = [
        BasePolicy(),
        VdnnConvPolicy(),
        VdnnAllPolicy(),
        CheckpointsPolicy(),
        SuperNeuronsPolicy(),
        TsplitPolicy(),
        TsplitNoSplitPolicy(),
        ZeroOffloadPolicy(),
        FairscaleOffloadPolicy(),
    ]
    return {policy.name: policy for policy in policies}


POLICY_REGISTRY: dict[str, MemoryPolicy] = {}


def get_policy(name: str) -> MemoryPolicy:
    """Look up a policy by its registry name."""
    if not POLICY_REGISTRY:
        POLICY_REGISTRY.update(_build_registry())
    try:
        return POLICY_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: "
            f"{sorted(POLICY_REGISTRY)}"
        ) from None
