"""FairScale OffloadModel, reproduced as a plan.

FairScale's offload wrapper shards the model parameters on the host and
moves each shard to the GPU only around its use — in the forward pass,
again in the backward pass, and for the (CPU-side) optimizer update — and
additionally copies intermediate activations between CPU and GPU while
training. Pure swapping with no recomputation and no cost model: it
scales far (Table VI/VII) but the PCIe link throttles it (Figure 15).
"""

from __future__ import annotations

from repro.core.plan import MemOption, Plan, TensorConfig
from repro.core.profiler import ProfileData
from repro.core.simulate import tensor_timeline
from repro.graph.graph import Graph
from repro.graph.liveness import compute_liveness
from repro.graph.scheduler import dfs_schedule
from repro.graph.tensor import TensorKind
from repro.hardware.gpu import GPUSpec
from repro.policies.base import MemoryPolicy

_SWAP = TensorConfig(opt=MemOption.SWAP)


class FairscaleOffloadPolicy(MemoryPolicy):
    """Shard parameters to host; swap activations; update on CPU."""

    name = "fairscale_offload"

    def _build(
        self,
        graph: Graph,
        gpu: GPUSpec,
        *,
        schedule: list[int] | None,
        profile: ProfileData | None,
    ) -> Plan:
        schedule = schedule or dfs_schedule(graph)
        liveness = compute_liveness(graph, schedule)
        plan = Plan(policy=self.name, cpu_update=True)
        for tensor in graph.tensors.values():
            if tensor.kind is TensorKind.PARAM:
                plan.set(tensor.tensor_id, _SWAP)
            elif tensor.kind is TensorKind.OPTIMIZER_STATE:
                plan.set(tensor.tensor_id, TensorConfig(opt=MemOption.CPU))
            elif tensor.kind is TensorKind.GRAD_PARAM:
                plan.set(tensor.tensor_id, _SWAP)
            elif tensor.kind is TensorKind.ACTIVATION:
                timeline = tensor_timeline(graph, liveness, tensor)
                if timeline and timeline.bwd_uses:
                    plan.set(tensor.tensor_id, _SWAP)
        return plan
